// The simulated RDMA fabric: nodes, their NIC stations, and the timed
// execution of verbs operations between them.
//
// Timing model per op (see DESIGN.md §1 and net/model_params.hpp):
//
//   initiator out-NIC (SerialStation)  ── link latency ──▶
//   responder in-NIC (FairShareStation, flow = initiator QP)
//   ── link latency ──▶ completion at initiator
//
// Completion ordering: strict post order per QP *within a service class*.
// Small control ops (atomics, sub-64-byte transfers) ride the responder's
// fast-path lane and may overtake bulk transfers posted earlier on the
// same QP — the price of modelling the RNIC's small-packet pipeline with
// one station. Haechi keeps its control plane on dedicated QPs, so it only
// ever relies on per-class ordering.
//
// Memory effects happen at the responder's service instant (the DMA):
// READ snapshots remote bytes, WRITE applies the posted snapshot, atomics
// read-modify-write the remote 64-bit word. Validation (rkey, bounds,
// access flags, alignment) happens when the op reaches the responder, and
// failures travel back as error completions without consuming responder
// service time — mirroring RNIC NAK behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/model_params.hpp"
#include "net/station.hpp"
#include "rdma/cq.hpp"
#include "rdma/fault.hpp"
#include "rdma/memory.hpp"
#include "rdma/qp.hpp"
#include "sim/simulator.hpp"

namespace haechi::rdma {

/// Determines which side of the calibrated NIC model a node uses: data
/// nodes serve one-sided ops at full adapter bandwidth (C_G), client nodes
/// are bound by the per-QP DMA budget (C_L).
enum class NodeRole : std::uint8_t { kClient, kData };

/// A machine in the cluster: a protection domain, an outbound NIC pipeline
/// (round-robin across this node's QPs, like a real adapter's SQ
/// arbitration — so an 8-byte QoS report never waits behind a deep data
/// send queue), an inbound NIC engine, and (for data nodes) a CPU used by
/// the two-sided RPC service.
class Node {
 public:
  Node(sim::Simulator& sim, Fabric& fabric, NodeId id, NodeRole role,
       std::string name, const net::ModelParams& params, std::uint64_t seed);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeRole role() const { return role_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] ProtectionDomain& pd() { return pd_; }
  [[nodiscard]] net::FairShareStation& out_nic() { return out_nic_; }
  [[nodiscard]] net::FairShareStation& in_nic() { return in_nic_; }

  /// The node's RPC-serving CPU; only the data node's is ever loaded.
  /// Flow = requesting QP, so CPU time also divides fairly.
  [[nodiscard]] net::FairShareStation& cpu() { return cpu_; }

  CompletionQueue& CreateCq();
  QueuePair& CreateQp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                      std::size_t send_queue_depth = 256);

  /// Fault-injection state (driven by Fabric::CrashNode & friends).
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] bool paused() const { return paused_; }
  /// Bumped on every restart; lets observers distinguish the pre- and
  /// post-crash lives of a node.
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

 private:
  friend class Fabric;

  sim::Simulator& sim_;
  Fabric& fabric_;
  NodeId id_;
  NodeRole role_;
  std::string name_;
  ProtectionDomain pd_;
  net::FairShareStation out_nic_;
  net::FairShareStation in_nic_;
  net::FairShareStation cpu_;
  std::deque<CompletionQueue> cqs_;
  std::deque<QueuePair> qps_;
  bool crashed_ = false;
  bool paused_ = false;
  std::uint32_t incarnation_ = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, net::ModelParams params, std::uint64_t seed);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Adds a machine. References remain valid for the fabric's lifetime.
  Node& AddNode(std::string name, NodeRole role = NodeRole::kClient);

  /// Connects two QPs into an RC pair. Loopback (same node) is allowed —
  /// the QoS monitor's `loopback_cas` mode uses it.
  void Connect(QueuePair& a, QueuePair& b);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const net::ModelParams& params() const { return params_; }
  [[nodiscard]] std::size_t NodeCount() const { return nodes_.size(); }
  Node& node(std::size_t index) { return nodes_.at(index); }

  /// When false, READ/WRITE skip the payload memcpy (timing and validation
  /// are unchanged). Large benches disable copies; correctness tests keep
  /// them on. SEND payloads and atomics are always real (control plane).
  void set_copy_payloads(bool on) { copy_payloads_ = on; }
  [[nodiscard]] bool copy_payloads() const { return copy_payloads_; }

  /// Total ops that reached a responder (served + rejected), for tests.
  [[nodiscard]] std::uint64_t OpsDelivered() const { return ops_delivered_; }

  // --- fault injection ----------------------------------------------------

  /// Installs a fault plan: transport rules take effect immediately and the
  /// plan's node/QP events are scheduled on the simulator. At most one plan
  /// per fabric.
  void InstallFaultPlan(const FaultPlan& plan);

  /// Kills a node: its QPs enter the error state, ops addressed to it time
  /// out at their initiators (kRetryExceeded after retry_timeout — a dead
  /// responder never ACKs), and completions destined for it vanish with the
  /// process. Idempotent.
  void CrashNode(NodeId node);

  /// Revives a crashed node with a new incarnation. Old QPs stay in the
  /// error state — software must create fresh ones and re-connect, exactly
  /// as after a real reboot.
  void RestartNode(NodeId node);

  /// Partitions a node symmetrically: arrivals at it and completions for it
  /// are held (in order) until ResumeNode. Idempotent.
  void PauseNode(NodeId node);

  /// Heals the partition and replays every held op in arrival order.
  void ResumeNode(NodeId node);

  [[nodiscard]] bool IsCrashed(NodeId node) const;
  [[nodiscard]] bool IsPaused(NodeId node) const;

  enum class NodeFault : std::uint8_t { kCrash, kRestart, kPause, kResume };
  /// Observer for node lifecycle transitions (whether applied via a plan or
  /// directly); the harness uses it to stop/revive the node's software.
  using NodeFaultHook = std::function<void(NodeId, NodeFault)>;
  void SetNodeFaultHook(NodeFaultHook hook) { fault_hook_ = std::move(hook); }

  /// The installed plan's runtime evaluator, or nullptr.
  [[nodiscard]] FaultInjector* injector() { return injector_.get(); }

  struct FaultStats {
    std::uint64_t ops_dropped = 0;        // transport drops (retry-exceeded)
    std::uint64_t ops_delayed = 0;
    std::uint64_t ops_duplicated = 0;
    std::uint64_t dead_target_naks = 0;   // ops that timed out on a crashed node
    std::uint64_t flushed_completions = 0;
    std::uint64_t dropped_completions = 0;  // completions for crashed nodes
    std::uint64_t deferred_ops = 0;       // held by a paused node
  };
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  friend class QueuePair;
  friend class Node;

  struct OpState {
    Opcode opcode;
    std::uint64_t wr_id;
    QueuePair* src;
    QueuePair* dst;
    std::byte* local = nullptr;       // READ destination
    std::uint32_t len = 0;
    RemoteAddr remote = 0;
    std::uint32_t rkey = 0;
    std::int64_t atomic_delta = 0;    // FETCH_ADD
    std::uint64_t atomic_expected = 0;  // CMP_SWAP
    std::uint64_t atomic_desired = 0;   // CMP_SWAP
    std::uint64_t atomic_result = 0;
    ServiceClass service_class = ServiceClass::kAuto;
    std::vector<std::byte> staging;   // WRITE/SEND payload or READ snapshot
  };

  /// Entry point from QueuePair::Post*: charge the initiator's out-NIC,
  /// then propagate. (Ops move through the pipeline as shared_ptr because
  /// std::function requires copyable captures.)
  void Initiate(std::shared_ptr<OpState> op);

  /// Op arrives at the responder after the link delay. `duplicate` marks
  /// the second delivery of a duplicated request: it consumes responder
  /// service (and re-applies idempotent WRITE DMA) but never generates a
  /// completion — the transport deduplicates by PSN.
  void ArriveAtResponder(std::shared_ptr<OpState> op, bool duplicate = false);

  /// Validation at the responder NIC; kSuccess means "proceed to service".
  [[nodiscard]] WcStatus ValidateRemote(const OpState& op) const;

  /// Responder service complete: perform memory effects.
  void ExecuteAtResponder(OpState& op, bool duplicate = false);

  /// Sends the completion back to the initiator (after link delay).
  void CompleteToInitiator(std::shared_ptr<OpState> op, WcStatus status);

  /// Delivers (or defers / drops) the completion at the initiator, applying
  /// crash / pause / QP-flush semantics at the delivery instant.
  void FinishCompletion(std::shared_ptr<OpState> op, WcStatus status);

  /// The initiating process died before this op completed: release its
  /// in-flight slot without generating a CQE.
  void AbandonOp(const OpState& op);

  void ApplyNodeEvent(const NodeEvent& event);
  [[nodiscard]] QueuePair* FindQp(QpId id);

  /// Delivers an inbound SEND payload to the responder's recv path.
  void DeliverSend(OpState& op);

  [[nodiscard]] SimDuration InitiatorService(const OpState& op) const;
  [[nodiscard]] SimDuration ResponderService(const OpState& op) const;
  [[nodiscard]] SimDuration NicService(const Node& node,
                                       std::uint32_t bytes) const;

  /// An op held by a paused node, replayed in order on resume.
  struct DeferredOp {
    std::shared_ptr<OpState> op;
    enum class Stage : std::uint8_t { kArrive, kComplete } stage;
    bool duplicate = false;
    WcStatus status = WcStatus::kSuccess;
  };

  Node& NodeRef(NodeId id) { return nodes_.at(Raw(id)); }
  void DeferOnNode(NodeId node, DeferredOp deferred);

  sim::Simulator& sim_;
  net::ModelParams params_;
  Rng seed_rng_;
  std::deque<Node> nodes_;
  QpId next_qp_id_ = 0;
  bool copy_payloads_ = true;
  std::uint64_t ops_delivered_ = 0;

  std::unique_ptr<FaultInjector> injector_;
  NodeFaultHook fault_hook_;
  FaultStats fault_stats_;
  std::unordered_map<std::uint32_t, std::vector<DeferredOp>> deferred_;
};

}  // namespace haechi::rdma
