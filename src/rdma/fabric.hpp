// The simulated RDMA fabric: nodes, their NIC stations, and the timed
// execution of verbs operations between them.
//
// Timing model per op (see DESIGN.md §1 and net/model_params.hpp):
//
//   initiator out-NIC (SerialStation)  ── link latency ──▶
//   responder in-NIC (FairShareStation, flow = initiator QP)
//   ── link latency ──▶ completion at initiator
//
// Completion ordering: strict post order per QP *within a service class*.
// Small control ops (atomics, sub-64-byte transfers) ride the responder's
// fast-path lane and may overtake bulk transfers posted earlier on the
// same QP — the price of modelling the RNIC's small-packet pipeline with
// one station. Haechi keeps its control plane on dedicated QPs, so it only
// ever relies on per-class ordering.
//
// Memory effects happen at the responder's service instant (the DMA):
// READ snapshots remote bytes, WRITE applies the posted snapshot, atomics
// read-modify-write the remote 64-bit word. Validation (rkey, bounds,
// access flags, alignment) happens when the op reaches the responder, and
// failures travel back as error completions without consuming responder
// service time — mirroring RNIC NAK behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/model_params.hpp"
#include "net/station.hpp"
#include "rdma/cq.hpp"
#include "rdma/memory.hpp"
#include "rdma/qp.hpp"
#include "sim/simulator.hpp"

namespace haechi::rdma {

/// Determines which side of the calibrated NIC model a node uses: data
/// nodes serve one-sided ops at full adapter bandwidth (C_G), client nodes
/// are bound by the per-QP DMA budget (C_L).
enum class NodeRole : std::uint8_t { kClient, kData };

/// A machine in the cluster: a protection domain, an outbound NIC pipeline
/// (round-robin across this node's QPs, like a real adapter's SQ
/// arbitration — so an 8-byte QoS report never waits behind a deep data
/// send queue), an inbound NIC engine, and (for data nodes) a CPU used by
/// the two-sided RPC service.
class Node {
 public:
  Node(sim::Simulator& sim, Fabric& fabric, NodeId id, NodeRole role,
       std::string name, const net::ModelParams& params, std::uint64_t seed);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeRole role() const { return role_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] ProtectionDomain& pd() { return pd_; }
  [[nodiscard]] net::FairShareStation& out_nic() { return out_nic_; }
  [[nodiscard]] net::FairShareStation& in_nic() { return in_nic_; }

  /// The node's RPC-serving CPU; only the data node's is ever loaded.
  /// Flow = requesting QP, so CPU time also divides fairly.
  [[nodiscard]] net::FairShareStation& cpu() { return cpu_; }

  CompletionQueue& CreateCq();
  QueuePair& CreateQp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                      std::size_t send_queue_depth = 256);

 private:
  sim::Simulator& sim_;
  Fabric& fabric_;
  NodeId id_;
  NodeRole role_;
  std::string name_;
  ProtectionDomain pd_;
  net::FairShareStation out_nic_;
  net::FairShareStation in_nic_;
  net::FairShareStation cpu_;
  std::deque<CompletionQueue> cqs_;
  std::deque<QueuePair> qps_;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, net::ModelParams params, std::uint64_t seed);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Adds a machine. References remain valid for the fabric's lifetime.
  Node& AddNode(std::string name, NodeRole role = NodeRole::kClient);

  /// Connects two QPs into an RC pair. Loopback (same node) is allowed —
  /// the QoS monitor's `loopback_cas` mode uses it.
  void Connect(QueuePair& a, QueuePair& b);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const net::ModelParams& params() const { return params_; }
  [[nodiscard]] std::size_t NodeCount() const { return nodes_.size(); }
  Node& node(std::size_t index) { return nodes_.at(index); }

  /// When false, READ/WRITE skip the payload memcpy (timing and validation
  /// are unchanged). Large benches disable copies; correctness tests keep
  /// them on. SEND payloads and atomics are always real (control plane).
  void set_copy_payloads(bool on) { copy_payloads_ = on; }
  [[nodiscard]] bool copy_payloads() const { return copy_payloads_; }

  /// Total ops that reached a responder (served + rejected), for tests.
  [[nodiscard]] std::uint64_t OpsDelivered() const { return ops_delivered_; }

 private:
  friend class QueuePair;
  friend class Node;

  struct OpState {
    Opcode opcode;
    std::uint64_t wr_id;
    QueuePair* src;
    QueuePair* dst;
    std::byte* local = nullptr;       // READ destination
    std::uint32_t len = 0;
    RemoteAddr remote = 0;
    std::uint32_t rkey = 0;
    std::int64_t atomic_delta = 0;    // FETCH_ADD
    std::uint64_t atomic_expected = 0;  // CMP_SWAP
    std::uint64_t atomic_desired = 0;   // CMP_SWAP
    std::uint64_t atomic_result = 0;
    ServiceClass service_class = ServiceClass::kAuto;
    std::vector<std::byte> staging;   // WRITE/SEND payload or READ snapshot
  };

  /// Entry point from QueuePair::Post*: charge the initiator's out-NIC,
  /// then propagate. (Ops move through the pipeline as shared_ptr because
  /// std::function requires copyable captures.)
  void Initiate(std::shared_ptr<OpState> op);

  /// Op arrives at the responder after the link delay.
  void ArriveAtResponder(std::shared_ptr<OpState> op);

  /// Validation at the responder NIC; kSuccess means "proceed to service".
  [[nodiscard]] WcStatus ValidateRemote(const OpState& op) const;

  /// Responder service complete: perform memory effects.
  void ExecuteAtResponder(OpState& op);

  /// Sends the completion back to the initiator (after link delay).
  void CompleteToInitiator(std::shared_ptr<OpState> op, WcStatus status);

  /// Delivers an inbound SEND payload to the responder's recv path.
  void DeliverSend(OpState& op);

  [[nodiscard]] SimDuration InitiatorService(const OpState& op) const;
  [[nodiscard]] SimDuration ResponderService(const OpState& op) const;
  [[nodiscard]] SimDuration NicService(const Node& node,
                                       std::uint32_t bytes) const;

  sim::Simulator& sim_;
  net::ModelParams params_;
  Rng seed_rng_;
  std::deque<Node> nodes_;
  QpId next_qp_id_ = 0;
  bool copy_payloads_ = true;
  std::uint64_t ops_delivered_ = 0;
};

}  // namespace haechi::rdma
