#include "rdma/memory.hpp"

#include "common/assert.hpp"

namespace haechi::rdma {

bool MemoryRegion::Covers(RemoteAddr addr, std::size_t len) const {
  const RemoteAddr base = remote_addr();
  if (addr < base) return false;
  const RemoteAddr offset = addr - base;
  // Overflow-safe: offset + len <= length.
  return offset <= buffer_.size() && len <= buffer_.size() - offset;
}

const MemoryRegion& ProtectionDomain::Register(std::span<std::byte> buffer,
                                               AccessFlags flags) {
  HAECHI_EXPECTS(!buffer.empty());
  const std::uint32_t lkey = next_key_++;
  const std::uint32_t rkey = next_key_++;
  auto mr = std::make_unique<MemoryRegion>(buffer, lkey, rkey, flags);
  const MemoryRegion* raw = mr.get();
  by_rkey_.emplace(rkey, std::move(mr));
  return *raw;
}

Status ProtectionDomain::Deregister(std::uint32_t rkey) {
  if (by_rkey_.erase(rkey) == 0) {
    return ErrNotFound("no MR with rkey " + std::to_string(rkey));
  }
  return Status::Ok();
}

const MemoryRegion* ProtectionDomain::FindByRkey(std::uint32_t rkey) const {
  const auto it = by_rkey_.find(rkey);
  return it == by_rkey_.end() ? nullptr : it->second.get();
}

const MemoryRegion* ProtectionDomain::FindCovering(const void* addr,
                                                   std::size_t len) const {
  const auto target = ToRemoteAddr(addr);
  for (const auto& [rkey, mr] : by_rkey_) {
    if (mr->Covers(target, len)) return mr.get();
  }
  return nullptr;
}

}  // namespace haechi::rdma
