#include "rdma/qp.hpp"

#include <memory>

#include "common/assert.hpp"
#include "rdma/fabric.hpp"

namespace haechi::rdma {

QueuePair::QueuePair(Fabric& fabric, Node& node, QpId id,
                     CompletionQueue& send_cq, CompletionQueue& recv_cq,
                     std::size_t send_queue_depth)
    : fabric_(fabric),
      node_(node),
      id_(id),
      send_cq_(send_cq),
      recv_cq_(recv_cq),
      send_queue_depth_(send_queue_depth) {
  HAECHI_EXPECTS(send_queue_depth > 0);
}

Status QueuePair::CheckConnectedAndCapacity() const {
  if (state_ == QpState::kError) {
    return ErrFailedPrecondition("QP " + std::to_string(id_) +
                                 " is in the error state");
  }
  if (remote_ == nullptr) {
    return ErrFailedPrecondition("QP " + std::to_string(id_) +
                                 " is not connected");
  }
  if (in_flight_ >= send_queue_depth_) {
    return ErrResourceExhausted("QP " + std::to_string(id_) +
                                " send queue full");
  }
  return Status::Ok();
}

Status QueuePair::PostRead(std::uint64_t wr_id, std::span<std::byte> local,
                           RemoteAddr remote_addr, std::uint32_t rkey) {
  if (auto s = CheckConnectedAndCapacity(); !s.ok()) return s;
  if (local.empty()) return ErrInvalidArgument("zero-length READ");
  const MemoryRegion* mr = node_.pd().FindCovering(local.data(), local.size());
  if (mr == nullptr || !mr->Allows(access::kLocalWrite)) {
    return ErrPermissionDenied("READ destination not in a writable local MR");
  }
  auto op = std::make_unique<Fabric::OpState>();
  op->opcode = Opcode::kRead;
  op->wr_id = wr_id;
  op->src = this;
  op->dst = remote_;
  op->local = local.data();
  op->len = static_cast<std::uint32_t>(local.size());
  op->remote = remote_addr;
  op->rkey = rkey;
  ++in_flight_;
  fabric_.Initiate(std::move(op));
  return Status::Ok();
}

Status QueuePair::PostWrite(std::uint64_t wr_id,
                            std::span<const std::byte> local,
                            RemoteAddr remote_addr, std::uint32_t rkey) {
  if (auto s = CheckConnectedAndCapacity(); !s.ok()) return s;
  if (local.empty()) return ErrInvalidArgument("zero-length WRITE");
  const MemoryRegion* mr = node_.pd().FindCovering(local.data(), local.size());
  if (mr == nullptr || !mr->Allows(access::kLocalRead)) {
    return ErrPermissionDenied("WRITE source not in a readable local MR");
  }
  auto op = std::make_unique<Fabric::OpState>();
  op->opcode = Opcode::kWrite;
  op->wr_id = wr_id;
  op->src = this;
  op->dst = remote_;
  op->len = static_cast<std::uint32_t>(local.size());
  op->remote = remote_addr;
  op->rkey = rkey;
  // Small writes always carry their bytes: they are control-plane traffic
  // (Haechi's silent reports) whose values matter even when bulk payload
  // copying is disabled for speed.
  if (fabric_.copy_payloads() || local.size() <= kAlwaysCopyBytes) {
    op->staging.assign(local.begin(), local.end());
  }
  ++in_flight_;
  fabric_.Initiate(std::move(op));
  return Status::Ok();
}

Status QueuePair::PostFetchAdd(std::uint64_t wr_id, RemoteAddr remote_addr,
                               std::uint32_t rkey, std::int64_t delta) {
  if (auto s = CheckConnectedAndCapacity(); !s.ok()) return s;
  auto op = std::make_unique<Fabric::OpState>();
  op->opcode = Opcode::kFetchAdd;
  op->wr_id = wr_id;
  op->src = this;
  op->dst = remote_;
  op->len = sizeof(std::uint64_t);
  op->remote = remote_addr;
  op->rkey = rkey;
  op->atomic_delta = delta;
  ++in_flight_;
  fabric_.Initiate(std::move(op));
  return Status::Ok();
}

Status QueuePair::PostCompareSwap(std::uint64_t wr_id, RemoteAddr remote_addr,
                                  std::uint32_t rkey, std::uint64_t expected,
                                  std::uint64_t desired) {
  if (auto s = CheckConnectedAndCapacity(); !s.ok()) return s;
  auto op = std::make_unique<Fabric::OpState>();
  op->opcode = Opcode::kCompareSwap;
  op->wr_id = wr_id;
  op->src = this;
  op->dst = remote_;
  op->len = sizeof(std::uint64_t);
  op->remote = remote_addr;
  op->rkey = rkey;
  op->atomic_expected = expected;
  op->atomic_desired = desired;
  ++in_flight_;
  fabric_.Initiate(std::move(op));
  return Status::Ok();
}

Status QueuePair::PostSend(std::uint64_t wr_id,
                           std::span<const std::byte> payload,
                           ServiceClass service_class) {
  if (auto s = CheckConnectedAndCapacity(); !s.ok()) return s;
  if (payload.empty()) return ErrInvalidArgument("zero-length SEND");
  auto op = std::make_unique<Fabric::OpState>();
  op->opcode = Opcode::kSend;
  op->wr_id = wr_id;
  op->src = this;
  op->dst = remote_;
  op->len = static_cast<std::uint32_t>(payload.size());
  op->service_class = service_class;
  // SEND payloads are always copied: they are small control messages and
  // the receive path must hand real bytes to the application.
  op->staging.assign(payload.begin(), payload.end());
  ++in_flight_;
  fabric_.Initiate(std::move(op));
  return Status::Ok();
}

Status QueuePair::PostRecv(std::uint64_t wr_id, std::span<std::byte> buffer) {
  if (buffer.empty()) return ErrInvalidArgument("zero-length RECV buffer");
  recv_queue_.push_back(PostedRecv{wr_id, buffer});
  // Drain any SEND that arrived before this RECV was posted.
  while (!parked_sends_.empty() && !recv_queue_.empty()) {
    std::vector<std::byte> payload = std::move(parked_sends_.front());
    parked_sends_.pop_front();
    PostedRecv recv = recv_queue_.front();
    recv_queue_.pop_front();
    const std::size_t n = std::min(recv.buffer.size(), payload.size());
    std::copy_n(payload.begin(), n, recv.buffer.begin());
    WorkCompletion wc;
    wc.wr_id = recv.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.status = WcStatus::kSuccess;
    wc.byte_len = static_cast<std::uint32_t>(n);
    wc.timestamp = fabric_.sim().Now();
    recv_cq_.Push(wc);
  }
  return Status::Ok();
}

}  // namespace haechi::rdma
