#include "rdma/cq.hpp"

namespace haechi::rdma {

std::vector<WorkCompletion> CompletionQueue::Poll(std::size_t max) {
  std::vector<WorkCompletion> out;
  const std::size_t n = std::min(max, cqes_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(cqes_.front());
    cqes_.pop_front();
  }
  return out;
}

bool CompletionQueue::PollOne(WorkCompletion& out) {
  if (cqes_.empty()) return false;
  out = cqes_.front();
  cqes_.pop_front();
  return true;
}

void CompletionQueue::Push(const WorkCompletion& wc) {
  ++total_;
  if (notify_) {
    // Callback-consuming mode: hand the CQE straight to the callback
    // without buffering, mirroring an application that drains its CQ on
    // every completion-channel event.
    notify_(wc);
    return;
  }
  cqes_.push_back(wc);
}

}  // namespace haechi::rdma
