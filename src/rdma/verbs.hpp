// Vocabulary types for the simulated verbs API.
//
// The shapes deliberately mirror libibverbs (work requests, completions,
// access flags, lkey/rkey) so the Haechi QoS protocol above this layer is
// written exactly as it would be against real RDMA hardware; only the
// transport timing underneath is simulated. See DESIGN.md §1.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace haechi::rdma {

/// Work request / completion opcode.
enum class Opcode : std::uint8_t {
  kRead,         // one-sided RDMA READ
  kWrite,        // one-sided RDMA WRITE
  kSend,         // two-sided SEND
  kRecv,         // completion of a posted RECV
  kFetchAdd,     // one-sided atomic fetch-and-add (64-bit)
  kCompareSwap,  // one-sided atomic compare-and-swap (64-bit)
};

constexpr std::string_view ToString(Opcode op) {
  switch (op) {
    case Opcode::kRead: return "READ";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kSend: return "SEND";
    case Opcode::kRecv: return "RECV";
    case Opcode::kFetchAdd: return "FETCH_ADD";
    case Opcode::kCompareSwap: return "CMP_SWAP";
  }
  return "UNKNOWN";
}

/// Completion status, following ibv_wc_status's useful subset.
enum class WcStatus : std::uint8_t {
  kSuccess,
  kRemoteInvalidRkey,   // no MR with that rkey at the responder
  kRemoteOutOfRange,    // [addr, addr+len) escapes the MR
  kRemoteAccessError,   // MR lacks the required access flag
  kRemoteMisaligned,    // atomic target not 8-byte aligned
  kRetryExceeded,       // transport retries exhausted (lost packet / dead peer)
  kFlushError,          // WR flushed because the QP entered the error state
};

constexpr std::string_view ToString(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kRemoteInvalidRkey: return "REMOTE_INVALID_RKEY";
    case WcStatus::kRemoteOutOfRange: return "REMOTE_OUT_OF_RANGE";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRemoteMisaligned: return "REMOTE_MISALIGNED";
    case WcStatus::kRetryExceeded: return "RETRY_EXCEEDED";
    case WcStatus::kFlushError: return "WR_FLUSH_ERR";
  }
  return "UNKNOWN";
}

/// MR access permissions (bit-or of Access values).
using AccessFlags = std::uint32_t;

namespace access {
inline constexpr AccessFlags kLocalRead = 1U << 0;
inline constexpr AccessFlags kLocalWrite = 1U << 1;
inline constexpr AccessFlags kRemoteRead = 1U << 2;
inline constexpr AccessFlags kRemoteWrite = 1U << 3;
inline constexpr AccessFlags kRemoteAtomic = 1U << 4;
inline constexpr AccessFlags kAll = kLocalRead | kLocalWrite | kRemoteRead |
                                    kRemoteWrite | kRemoteAtomic;
}  // namespace access

/// Work completion delivered to a CompletionQueue.
struct WorkCompletion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kRead;
  WcStatus status = WcStatus::kSuccess;
  std::uint32_t byte_len = 0;
  /// For kFetchAdd / kCompareSwap: the remote 64-bit value *before* the op.
  std::uint64_t atomic_result = 0;
  /// Simulated time the completion was generated.
  SimTime timestamp = 0;

  [[nodiscard]] bool ok() const { return status == WcStatus::kSuccess; }
};

/// Remote addresses are real process pointers reinterpreted as integers —
/// exactly how verbs exposes remote virtual addresses.
using RemoteAddr = std::uint64_t;

inline RemoteAddr ToRemoteAddr(const void* p) {
  return reinterpret_cast<RemoteAddr>(p);
}

/// READ/WRITE payloads at or below this size are always materialised, even
/// when bulk payload copying is disabled (Fabric::set_copy_payloads(false)):
/// small transfers are control-plane state, not bulk data.
inline constexpr std::uint32_t kAlwaysCopyBytes = 64;

/// Identifies a queue pair fabric-wide; doubles as the fair-share flow id
/// at the responder's NIC (hardware arbitrates per QP).
using QpId = std::uint32_t;

}  // namespace haechi::rdma
