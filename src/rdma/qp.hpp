// Reliable-connected (RC) queue pairs.
//
// A QueuePair validates work requests locally (as ibv_post_send does),
// then hands them to the Fabric, which times them through the NIC stations
// and performs the memory effects at the simulated completion instant.
// Completions arrive on the send CQ (for initiated ops) or the recv CQ
// (for inbound SENDs matching a posted RECV), in post order per QP.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "rdma/cq.hpp"
#include "rdma/verbs.hpp"

namespace haechi::rdma {

class Fabric;
class Node;

/// How the sender's NIC charges for an op. kAuto derives the cost from the
/// byte count (DMA bandwidth); kRpcRequest charges the per-request CPU+NIC
/// cost of a two-sided RPC initiation (ModelParams::client_rpc_service) —
/// this is what makes two-sided I/O slower for the *client* as observed in
/// the paper's Experiment 1A.
enum class ServiceClass : std::uint8_t { kAuto, kRpcRequest };

/// Lifecycle of a QP, condensed to the two states the fault model needs:
/// ready (RTS) or error. A QP enters kError through fault injection (a
/// scheduled QP failure or its node crashing); real hardware gets there on
/// any fatal completion. Posts are rejected in kError and in-flight ops
/// complete with kFlushError, as ibverbs specifies.
enum class QpState : std::uint8_t { kReady, kError };

class QueuePair {
 public:
  QueuePair(Fabric& fabric, Node& node, QpId id, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, std::size_t send_queue_depth);

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  [[nodiscard]] QpId id() const { return id_; }
  [[nodiscard]] bool Connected() const { return remote_ != nullptr; }
  [[nodiscard]] QpState state() const { return state_; }

  /// Forces the QP into the error state: subsequent posts fail with
  /// kFailedPrecondition and in-flight ops are flushed (kFlushError).
  /// Posted RECVs stay queued — inbound SENDs are NAK'd at the fabric, so
  /// they can never match; this mirrors hardware, where flushing recvs
  /// requires destroying the QP.
  void SetError() { state_ = QpState::kError; }
  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] CompletionQueue& send_cq() { return send_cq_; }
  [[nodiscard]] CompletionQueue& recv_cq() { return recv_cq_; }

  /// Number of initiated, not-yet-completed work requests.
  [[nodiscard]] std::size_t InFlight() const { return in_flight_; }

  /// One-sided READ: remote [remote_addr, +local.size()) -> local buffer.
  /// `local` must lie in a registered local MR with kLocalWrite access.
  Status PostRead(std::uint64_t wr_id, std::span<std::byte> local,
                  RemoteAddr remote_addr, std::uint32_t rkey);

  /// One-sided WRITE: local buffer -> remote [remote_addr, +local.size()).
  /// The payload is snapshotted at post time (DMA gather).
  Status PostWrite(std::uint64_t wr_id, std::span<const std::byte> local,
                   RemoteAddr remote_addr, std::uint32_t rkey);

  /// One-sided 64-bit fetch-and-add. The pre-op remote value is returned in
  /// WorkCompletion::atomic_result. `delta` is two's-complement, so negative
  /// deltas (token grabs) work naturally.
  Status PostFetchAdd(std::uint64_t wr_id, RemoteAddr remote_addr,
                      std::uint32_t rkey, std::int64_t delta);

  /// One-sided 64-bit compare-and-swap; swaps iff remote == expected.
  /// The pre-op value is returned in atomic_result either way.
  Status PostCompareSwap(std::uint64_t wr_id, RemoteAddr remote_addr,
                         std::uint32_t rkey, std::uint64_t expected,
                         std::uint64_t desired);

  /// Two-sided SEND; consumed by a RECV posted at the peer.
  Status PostSend(std::uint64_t wr_id, std::span<const std::byte> payload,
                  ServiceClass service_class = ServiceClass::kAuto);

  /// Posts a receive buffer for inbound SENDs.
  Status PostRecv(std::uint64_t wr_id, std::span<std::byte> buffer);

  [[nodiscard]] std::size_t PostedRecvs() const { return recv_queue_.size(); }

 private:
  friend class Fabric;

  struct PostedRecv {
    std::uint64_t wr_id;
    std::span<std::byte> buffer;
  };

  Status CheckConnectedAndCapacity() const;

  Fabric& fabric_;
  Node& node_;
  QpId id_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  std::size_t send_queue_depth_;
  QueuePair* remote_ = nullptr;
  QpState state_ = QpState::kReady;
  std::size_t in_flight_ = 0;
  std::deque<PostedRecv> recv_queue_;
  // Inbound SEND payloads that arrived before a RECV was posted (infinite
  // RNR retry semantics).
  std::deque<std::vector<std::byte>> parked_sends_;
};

}  // namespace haechi::rdma
