// Completion queues.
//
// Completions are pushed by the fabric at the simulated instant an
// operation finishes and consumed by the application either by polling
// (Poll) or via a completion callback (the simulated analogue of a
// completion channel; in a discrete-event world a callback per CQE is the
// faithful stand-in for "poll in a tight loop", without burning events).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "rdma/verbs.hpp"

namespace haechi::rdma {

class CompletionQueue {
 public:
  /// Invoked after each CQE is enqueued. The callback may Poll().
  using NotifyFn = std::function<void(const WorkCompletion&)>;

  /// Removes up to `max` completions in arrival order.
  std::vector<WorkCompletion> Poll(std::size_t max);

  /// Removes a single completion; ok()==false WorkCompletion check via
  /// returned count. Returns true and fills `out` when one was present.
  bool PollOne(WorkCompletion& out);

  [[nodiscard]] std::size_t Pending() const { return cqes_.size(); }

  /// Installs (or clears, with nullptr) the per-completion callback.
  void SetNotify(NotifyFn fn) { notify_ = std::move(fn); }

  /// Fabric-side: enqueue a completion and fire the callback.
  void Push(const WorkCompletion& wc);

  /// Total completions ever pushed (for overhead accounting in benches).
  [[nodiscard]] std::uint64_t TotalPushed() const { return total_; }

 private:
  std::deque<WorkCompletion> cqes_;
  NotifyFn notify_;
  std::uint64_t total_ = 0;
};

}  // namespace haechi::rdma
