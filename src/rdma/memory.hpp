// Memory registration: MemoryRegion and ProtectionDomain.
//
// A MemoryRegion grants the fabric access to a caller-owned buffer; remote
// ops name it by rkey and are validated for key, bounds, and access flags —
// the checks a real RNIC performs — before any memory effect happens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "rdma/verbs.hpp"

namespace haechi::rdma {

class MemoryRegion {
 public:
  MemoryRegion(std::span<std::byte> buffer, std::uint32_t lkey,
               std::uint32_t rkey, AccessFlags flags)
      : buffer_(buffer), lkey_(lkey), rkey_(rkey), flags_(flags) {}

  [[nodiscard]] std::byte* addr() const { return buffer_.data(); }
  [[nodiscard]] std::size_t length() const { return buffer_.size(); }
  [[nodiscard]] std::uint32_t lkey() const { return lkey_; }
  [[nodiscard]] std::uint32_t rkey() const { return rkey_; }
  [[nodiscard]] AccessFlags flags() const { return flags_; }

  /// Base of the region as a remote address for peers.
  [[nodiscard]] RemoteAddr remote_addr() const {
    return ToRemoteAddr(buffer_.data());
  }

  /// True when [addr, addr+len) lies inside this region.
  [[nodiscard]] bool Covers(RemoteAddr addr, std::size_t len) const;

  [[nodiscard]] bool Allows(AccessFlags required) const {
    return (flags_ & required) == required;
  }

 private:
  std::span<std::byte> buffer_;
  std::uint32_t lkey_;
  std::uint32_t rkey_;
  AccessFlags flags_;
};

/// Per-node registry of memory regions. The node's inbound fabric path
/// resolves rkeys here; local posts resolve lkeys/pointers here.
class ProtectionDomain {
 public:
  /// Registers `buffer` with the given access flags and returns a stable
  /// reference (valid until Deregister / PD destruction). The caller keeps
  /// ownership of the bytes and must keep them alive while registered.
  const MemoryRegion& Register(std::span<std::byte> buffer, AccessFlags flags);

  /// Removes a registration. Outstanding remote ops that resolve the rkey
  /// afterwards fail with kRemoteInvalidRkey, as on real hardware.
  Status Deregister(std::uint32_t rkey);

  /// Resolves an rkey for an inbound remote operation.
  [[nodiscard]] const MemoryRegion* FindByRkey(std::uint32_t rkey) const;

  /// Finds the region containing a local buffer (for validating local
  /// scatter/gather entries on post).
  [[nodiscard]] const MemoryRegion* FindCovering(const void* addr,
                                                 std::size_t len) const;

  [[nodiscard]] std::size_t RegionCount() const { return by_rkey_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> by_rkey_;
  std::uint32_t next_key_ = 1;
};

}  // namespace haechi::rdma
