#include "rdma/fabric.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace haechi::rdma {

Node::Node(sim::Simulator& sim, Fabric& fabric, NodeId id, NodeRole role,
           std::string name, const net::ModelParams& params,
           std::uint64_t seed)
    : sim_(sim),
      fabric_(fabric),
      id_(id),
      role_(role),
      name_(std::move(name)),
      out_nic_(sim, name_ + "/out-nic", params.service_jitter, seed,
               net::Discipline::kRoundRobin),
      in_nic_(sim, name_ + "/in-nic", params.service_jitter, seed + 1,
              params.responder_discipline),
      cpu_(sim, name_ + "/cpu", params.service_jitter, seed + 2,
           params.responder_discipline) {}

CompletionQueue& Node::CreateCq() { return cqs_.emplace_back(); }

QueuePair& Node::CreateQp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                          std::size_t send_queue_depth) {
  return qps_.emplace_back(fabric_, *this, fabric_.next_qp_id_++, send_cq,
                           recv_cq, send_queue_depth);
}

Fabric::Fabric(sim::Simulator& sim, net::ModelParams params,
               std::uint64_t seed)
    : sim_(sim), params_(params), seed_rng_(seed) {}

Node& Fabric::AddNode(std::string name, NodeRole role) {
  const auto id = MakeNodeId(static_cast<std::uint32_t>(nodes_.size()));
  return nodes_.emplace_back(sim_, *this, id, role, std::move(name), params_,
                             seed_rng_());
}

SimDuration Fabric::NicService(const Node& node, std::uint32_t bytes) const {
  return node.role() == NodeRole::kData ? params_.ServerNicService(bytes)
                                        : params_.ClientNicService(bytes);
}

void Fabric::Connect(QueuePair& a, QueuePair& b) {
  HAECHI_EXPECTS(a.remote_ == nullptr && b.remote_ == nullptr);
  HAECHI_EXPECTS(&a != &b);
  a.remote_ = &b;
  b.remote_ = &a;
}

SimDuration Fabric::InitiatorService(const OpState& op) const {
  const Node& src = op.src->node();
  switch (op.opcode) {
    case Opcode::kSend:
      if (op.service_class == ServiceClass::kRpcRequest) {
        return params_.ScaledService(params_.client_rpc_service);
      }
      return NicService(src, op.len);
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap:
      // Atomics are tiny on the wire; initiator charges the packet floor
      // (a message-rate cost — unaffected by capacity_scale).
      return params_.min_op_service;
    case Opcode::kRead:
    case Opcode::kWrite:
      return NicService(src, op.len);
    case Opcode::kRecv:
      break;
  }
  HAECHI_UNREACHABLE("RECV is never initiated through the fabric");
}

SimDuration Fabric::ResponderService(const OpState& op) const {
  const Node& dst = op.dst->node();
  switch (op.opcode) {
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap:
      // Atomic execution cost is a NIC message-rate property, not data
      // bandwidth: it stays fixed under capacity_scale.
      return params_.atomic_service;
    case Opcode::kRead:
    case Opcode::kWrite:
    case Opcode::kSend:
      return NicService(dst, op.len);
    case Opcode::kRecv:
      break;
  }
  HAECHI_UNREACHABLE("RECV is never serviced through the fabric");
}

void Fabric::Initiate(std::shared_ptr<OpState> op) {
  HAECHI_ASSERT(op->src != nullptr && op->dst != nullptr);
  Node& src_node = op->src->node();
  const SimDuration service = InitiatorService(*op);
  const net::FlowId flow = op->src->id();
  src_node.out_nic().Submit(flow, service, [this, op = std::move(op)]() mutable {
    sim_.ScheduleAfter(params_.link_latency, [this, op = std::move(op)]() mutable {
      ArriveAtResponder(std::move(op));
    });
  });
}

void Fabric::ArriveAtResponder(std::shared_ptr<OpState> op) {
  ++ops_delivered_;
  const WcStatus verdict = ValidateRemote(*op);
  if (verdict != WcStatus::kSuccess) {
    // NAK path: no responder service time is consumed.
    CompleteToInitiator(std::move(op), verdict);
    return;
  }
  Node& dst_node = op->dst->node();
  const SimDuration service = ResponderService(*op);
  const net::FlowId flow = op->src->id();
  // Atomics and sub-64-byte transfers ride the responder's fast path: an
  // RNIC executes small packets in its pipeline immediately; only bulk DMA
  // queues for bandwidth.
  const net::Priority priority =
      (op->opcode == Opcode::kFetchAdd || op->opcode == Opcode::kCompareSwap ||
       op->len <= kAlwaysCopyBytes)
          ? net::Priority::kControl
          : net::Priority::kBulk;
  dst_node.in_nic().Submit(flow, service, [this, op = std::move(op)]() mutable {
    ExecuteAtResponder(*op);
    CompleteToInitiator(std::move(op), WcStatus::kSuccess);
  }, priority);
}

WcStatus Fabric::ValidateRemote(const OpState& op) const {
  if (op.opcode == Opcode::kSend) return WcStatus::kSuccess;
  const ProtectionDomain& pd = op.dst->node().pd();
  const MemoryRegion* mr = pd.FindByRkey(op.rkey);
  if (mr == nullptr) return WcStatus::kRemoteInvalidRkey;
  if (!mr->Covers(op.remote, op.len)) return WcStatus::kRemoteOutOfRange;
  AccessFlags required = 0;
  switch (op.opcode) {
    case Opcode::kRead: required = access::kRemoteRead; break;
    case Opcode::kWrite: required = access::kRemoteWrite; break;
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap: required = access::kRemoteAtomic; break;
    case Opcode::kSend:
    case Opcode::kRecv: break;
  }
  if (!mr->Allows(required)) return WcStatus::kRemoteAccessError;
  if ((op.opcode == Opcode::kFetchAdd || op.opcode == Opcode::kCompareSwap) &&
      op.remote % alignof(std::uint64_t) != 0) {
    return WcStatus::kRemoteMisaligned;
  }
  return WcStatus::kSuccess;
}

void Fabric::ExecuteAtResponder(OpState& op) {
  // The memory effect happens *now*, at the responder's service instant —
  // this ordering is what makes the simulated atomics and seqlock reads
  // behave like hardware DMA.
  auto* target = reinterpret_cast<std::byte*>(op.remote);
  switch (op.opcode) {
    case Opcode::kRead:
      if (copy_payloads_ || op.len <= kAlwaysCopyBytes) {
        op.staging.assign(target, target + op.len);
      }
      break;
    case Opcode::kWrite:
      if (!op.staging.empty()) {
        std::memcpy(target, op.staging.data(), op.len);
      }
      break;
    case Opcode::kFetchAdd: {
      auto* word = reinterpret_cast<std::uint64_t*>(target);
      op.atomic_result = *word;
      *word = *word + static_cast<std::uint64_t>(op.atomic_delta);
      break;
    }
    case Opcode::kCompareSwap: {
      auto* word = reinterpret_cast<std::uint64_t*>(target);
      op.atomic_result = *word;
      if (*word == op.atomic_expected) *word = op.atomic_desired;
      break;
    }
    case Opcode::kSend:
      DeliverSend(op);
      break;
    case Opcode::kRecv:
      HAECHI_UNREACHABLE("RECV has no responder execution");
  }
}

void Fabric::DeliverSend(OpState& op) {
  QueuePair& dst = *op.dst;
  if (dst.recv_queue_.empty()) {
    // No RECV posted yet: park the payload (infinite RNR retry).
    HAECHI_LOG_DEBUG("QP %u: SEND parked, no RECV posted", dst.id());
    dst.parked_sends_.push_back(op.staging);
    return;
  }
  QueuePair::PostedRecv recv = dst.recv_queue_.front();
  dst.recv_queue_.pop_front();
  const std::size_t n = std::min(recv.buffer.size(), op.staging.size());
  std::copy_n(op.staging.begin(), n, recv.buffer.begin());
  WorkCompletion wc;
  wc.wr_id = recv.wr_id;
  wc.opcode = Opcode::kRecv;
  wc.status = WcStatus::kSuccess;
  wc.byte_len = static_cast<std::uint32_t>(n);
  wc.timestamp = sim_.Now();
  dst.recv_cq_.Push(wc);
}

void Fabric::CompleteToInitiator(std::shared_ptr<OpState> op,
                                 WcStatus status) {
  sim_.ScheduleAfter(params_.link_latency, [this, op = std::move(op), status] {
    QueuePair& src = *op->src;
    if (status == WcStatus::kSuccess && op->opcode == Opcode::kRead &&
        !op->staging.empty()) {
      std::memcpy(op->local, op->staging.data(), op->len);
    }
    WorkCompletion wc;
    wc.wr_id = op->wr_id;
    wc.opcode = op->opcode;
    wc.status = status;
    wc.byte_len = op->len;
    wc.atomic_result = op->atomic_result;
    wc.timestamp = sim_.Now();
    HAECHI_ASSERT(src.in_flight_ > 0);
    --src.in_flight_;
    src.send_cq_.Push(wc);
  });
}

}  // namespace haechi::rdma
