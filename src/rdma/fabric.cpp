#include "rdma/fabric.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace haechi::rdma {

Node::Node(sim::Simulator& sim, Fabric& fabric, NodeId id, NodeRole role,
           std::string name, const net::ModelParams& params,
           std::uint64_t seed)
    : sim_(sim),
      fabric_(fabric),
      id_(id),
      role_(role),
      name_(std::move(name)),
      out_nic_(sim, name_ + "/out-nic", params.service_jitter, seed,
               net::Discipline::kRoundRobin),
      in_nic_(sim, name_ + "/in-nic", params.service_jitter, seed + 1,
              params.responder_discipline),
      cpu_(sim, name_ + "/cpu", params.service_jitter, seed + 2,
           params.responder_discipline) {}

CompletionQueue& Node::CreateCq() { return cqs_.emplace_back(); }

QueuePair& Node::CreateQp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                          std::size_t send_queue_depth) {
  return qps_.emplace_back(fabric_, *this, fabric_.next_qp_id_++, send_cq,
                           recv_cq, send_queue_depth);
}

Fabric::Fabric(sim::Simulator& sim, net::ModelParams params,
               std::uint64_t seed)
    : sim_(sim), params_(params), seed_rng_(seed) {}

Node& Fabric::AddNode(std::string name, NodeRole role) {
  const auto id = MakeNodeId(static_cast<std::uint32_t>(nodes_.size()));
  return nodes_.emplace_back(sim_, *this, id, role, std::move(name), params_,
                             seed_rng_());
}

SimDuration Fabric::NicService(const Node& node, std::uint32_t bytes) const {
  return node.role() == NodeRole::kData ? params_.ServerNicService(bytes)
                                        : params_.ClientNicService(bytes);
}

void Fabric::Connect(QueuePair& a, QueuePair& b) {
  HAECHI_EXPECTS(a.remote_ == nullptr && b.remote_ == nullptr);
  HAECHI_EXPECTS(&a != &b);
  a.remote_ = &b;
  b.remote_ = &a;
}

SimDuration Fabric::InitiatorService(const OpState& op) const {
  const Node& src = op.src->node();
  switch (op.opcode) {
    case Opcode::kSend:
      if (op.service_class == ServiceClass::kRpcRequest) {
        return params_.ScaledService(params_.client_rpc_service);
      }
      return NicService(src, op.len);
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap:
      // Atomics are tiny on the wire; initiator charges the packet floor
      // (a message-rate cost — unaffected by capacity_scale).
      return params_.min_op_service;
    case Opcode::kRead:
    case Opcode::kWrite:
      return NicService(src, op.len);
    case Opcode::kRecv:
      break;
  }
  HAECHI_UNREACHABLE("RECV is never initiated through the fabric");
}

SimDuration Fabric::ResponderService(const OpState& op) const {
  const Node& dst = op.dst->node();
  switch (op.opcode) {
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap:
      // Atomic execution cost is a NIC message-rate property, not data
      // bandwidth: it stays fixed under capacity_scale.
      return params_.atomic_service;
    case Opcode::kRead:
    case Opcode::kWrite:
    case Opcode::kSend:
      return NicService(dst, op.len);
    case Opcode::kRecv:
      break;
  }
  HAECHI_UNREACHABLE("RECV is never serviced through the fabric");
}

void Fabric::Initiate(std::shared_ptr<OpState> op) {
  HAECHI_ASSERT(op->src != nullptr && op->dst != nullptr);
  Node& src_node = op->src->node();
  const SimDuration service = InitiatorService(*op);
  const net::FlowId flow = op->src->id();
  src_node.out_nic().Submit(flow, service, [this, op = std::move(op)]() mutable {
    Node& src = op->src->node();
    if (src.crashed_) {
      // The process died while the WR sat in the send queue.
      AbandonOp(*op);
      return;
    }
    HAECHI_TRACE_DETAIL(obs::ActorKind::kFabric, Raw(src.id()),
                        obs::EventType::kRdmaIssue, 0,
                        static_cast<std::int64_t>(op->opcode),
                        static_cast<std::int64_t>(op->wr_id),
                        static_cast<std::int64_t>(op->len));
    FaultInjector::Decision decision;
    if (injector_ != nullptr) {
      decision = injector_->Decide(src.id(), op->dst->node().id(), op->opcode,
                                   op->src->id(), sim_.Now());
    }
    if (decision.drop) {
      // The request packet is lost; RC retransmits blindly until the
      // transport gives up and reports a retry-exceeded completion. The
      // responder never sees the op.
      ++fault_stats_.ops_dropped;
      HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(src.id()),
                         obs::EventType::kOpDropped, 0,
                         static_cast<std::int64_t>(op->opcode),
                         static_cast<std::int64_t>(op->wr_id));
      sim_.ScheduleAfter(params_.retry_timeout,
                         [this, op = std::move(op)]() mutable {
                           FinishCompletion(std::move(op),
                                            WcStatus::kRetryExceeded);
                         });
      return;
    }
    const SimDuration latency = params_.link_latency + decision.extra_delay;
    if (decision.extra_delay > 0) {
      ++fault_stats_.ops_delayed;
      HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(src.id()),
                         obs::EventType::kOpDelayed, 0,
                         static_cast<std::int64_t>(op->opcode),
                         static_cast<std::int64_t>(op->wr_id),
                         decision.extra_delay);
    }
    if (src.paused_) {
      // Outbound side of the partition: the op cannot leave the node (nor
      // can a duplicate of it); it resumes its journey when the partition
      // heals.
      DeferOnNode(src.id(), {std::move(op), DeferredOp::Stage::kArrive,
                             /*duplicate=*/false, WcStatus::kSuccess});
      return;
    }
    if (decision.duplicate) {
      // The wire delivers the request twice; the copy trails the original
      // by a packet slot so per-QP arrival order stays deterministic.
      ++fault_stats_.ops_duplicated;
      HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(src.id()),
                         obs::EventType::kOpDuplicated, 0,
                         static_cast<std::int64_t>(op->opcode),
                         static_cast<std::int64_t>(op->wr_id));
      sim_.ScheduleAfter(latency + params_.min_op_service, [this, op] {
        ArriveAtResponder(op, /*duplicate=*/true);
      });
    }
    sim_.ScheduleAfter(latency, [this, op = std::move(op)]() mutable {
      ArriveAtResponder(std::move(op));
    });
  });
}

void Fabric::ArriveAtResponder(std::shared_ptr<OpState> op, bool duplicate) {
  Node& dst_node = op->dst->node();
  if (dst_node.crashed_) {
    // A dead responder never ACKs: the initiator's RNIC retries until its
    // transport timer expires. The duplicate copy just evaporates.
    if (duplicate) return;
    ++fault_stats_.dead_target_naks;
    sim_.ScheduleAfter(params_.retry_timeout,
                       [this, op = std::move(op)]() mutable {
                         FinishCompletion(std::move(op),
                                          WcStatus::kRetryExceeded);
                       });
    return;
  }
  if (dst_node.paused_) {
    DeferOnNode(dst_node.id(), {std::move(op), DeferredOp::Stage::kArrive,
                                duplicate, WcStatus::kSuccess});
    return;
  }
  if (!duplicate) ++ops_delivered_;
  if (op->dst->state() == QpState::kError) {
    // The remote QP is dead (its node may have crashed and restarted): the
    // responder NAKs and the initiator's retries can never succeed.
    if (duplicate) return;
    CompleteToInitiator(std::move(op), WcStatus::kRetryExceeded);
    return;
  }
  const WcStatus verdict = ValidateRemote(*op);
  if (verdict != WcStatus::kSuccess) {
    // NAK path: no responder service time is consumed.
    if (duplicate) return;
    CompleteToInitiator(std::move(op), verdict);
    return;
  }
  const SimDuration service = ResponderService(*op);
  const net::FlowId flow = op->src->id();
  // Atomics and sub-64-byte transfers ride the responder's fast path: an
  // RNIC executes small packets in its pipeline immediately; only bulk DMA
  // queues for bandwidth.
  const net::Priority priority =
      (op->opcode == Opcode::kFetchAdd || op->opcode == Opcode::kCompareSwap ||
       op->len <= kAlwaysCopyBytes)
          ? net::Priority::kControl
          : net::Priority::kBulk;
  dst_node.in_nic().Submit(flow, service,
                           [this, op = std::move(op), duplicate]() mutable {
    if (op->dst->node().crashed_) {
      // The responder died while the op was queued at its NIC: no memory
      // effect, no ACK — the initiator times out.
      if (duplicate) return;
      sim_.ScheduleAfter(params_.retry_timeout,
                         [this, op = std::move(op)]() mutable {
                           FinishCompletion(std::move(op),
                                            WcStatus::kRetryExceeded);
                         });
      return;
    }
    ExecuteAtResponder(*op, duplicate);
    if (!duplicate) CompleteToInitiator(std::move(op), WcStatus::kSuccess);
  }, priority);
}

WcStatus Fabric::ValidateRemote(const OpState& op) const {
  if (op.opcode == Opcode::kSend) return WcStatus::kSuccess;
  const ProtectionDomain& pd = op.dst->node().pd();
  const MemoryRegion* mr = pd.FindByRkey(op.rkey);
  if (mr == nullptr) return WcStatus::kRemoteInvalidRkey;
  if (!mr->Covers(op.remote, op.len)) return WcStatus::kRemoteOutOfRange;
  AccessFlags required = 0;
  switch (op.opcode) {
    case Opcode::kRead: required = access::kRemoteRead; break;
    case Opcode::kWrite: required = access::kRemoteWrite; break;
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap: required = access::kRemoteAtomic; break;
    case Opcode::kSend:
    case Opcode::kRecv: break;
  }
  if (!mr->Allows(required)) return WcStatus::kRemoteAccessError;
  if ((op.opcode == Opcode::kFetchAdd || op.opcode == Opcode::kCompareSwap) &&
      op.remote % alignof(std::uint64_t) != 0) {
    return WcStatus::kRemoteMisaligned;
  }
  return WcStatus::kSuccess;
}

void Fabric::ExecuteAtResponder(OpState& op, bool duplicate) {
  // The memory effect happens *now*, at the responder's service instant —
  // this ordering is what makes the simulated atomics and seqlock reads
  // behave like hardware DMA.
  //
  // A duplicated request re-executes only the idempotent WRITE DMA: the RC
  // transport deduplicates by PSN, so atomics never apply twice (a
  // double-drained token pool would violate exactly-once FAA semantics),
  // SENDs never consume a second RECV, and a duplicate READ's snapshot is
  // discarded with the duplicate itself. What a duplicate always costs is
  // responder service time — charged by our caller either way.
  if (duplicate && op.opcode != Opcode::kWrite) return;
  auto* target = reinterpret_cast<std::byte*>(op.remote);
  switch (op.opcode) {
    case Opcode::kRead:
      if (copy_payloads_ || op.len <= kAlwaysCopyBytes) {
        op.staging.assign(target, target + op.len);
      }
      break;
    case Opcode::kWrite:
      if (!op.staging.empty()) {
        std::memcpy(target, op.staging.data(), op.len);
      }
      break;
    case Opcode::kFetchAdd: {
      auto* word = reinterpret_cast<std::uint64_t*>(target);
      op.atomic_result = *word;
      *word = *word + static_cast<std::uint64_t>(op.atomic_delta);
      break;
    }
    case Opcode::kCompareSwap: {
      auto* word = reinterpret_cast<std::uint64_t*>(target);
      op.atomic_result = *word;
      if (*word == op.atomic_expected) *word = op.atomic_desired;
      break;
    }
    case Opcode::kSend:
      DeliverSend(op);
      break;
    case Opcode::kRecv:
      HAECHI_UNREACHABLE("RECV has no responder execution");
  }
}

void Fabric::DeliverSend(OpState& op) {
  QueuePair& dst = *op.dst;
  if (dst.recv_queue_.empty()) {
    // No RECV posted yet: park the payload (infinite RNR retry).
    HAECHI_LOG_DEBUG("QP %u: SEND parked, no RECV posted", dst.id());
    dst.parked_sends_.push_back(op.staging);
    return;
  }
  QueuePair::PostedRecv recv = dst.recv_queue_.front();
  dst.recv_queue_.pop_front();
  const std::size_t n = std::min(recv.buffer.size(), op.staging.size());
  std::copy_n(op.staging.begin(), n, recv.buffer.begin());
  WorkCompletion wc;
  wc.wr_id = recv.wr_id;
  wc.opcode = Opcode::kRecv;
  wc.status = WcStatus::kSuccess;
  wc.byte_len = static_cast<std::uint32_t>(n);
  wc.timestamp = sim_.Now();
  dst.recv_cq_.Push(wc);
}

void Fabric::CompleteToInitiator(std::shared_ptr<OpState> op,
                                 WcStatus status) {
  sim_.ScheduleAfter(params_.link_latency,
                     [this, op = std::move(op), status]() mutable {
                       FinishCompletion(std::move(op), status);
                     });
}

void Fabric::FinishCompletion(std::shared_ptr<OpState> op, WcStatus status) {
  QueuePair& src = *op->src;
  Node& src_node = src.node();
  if (src_node.crashed_) {
    // Nobody is home to poll the CQ; the completion dies with the process.
    ++fault_stats_.dropped_completions;
    AbandonOp(*op);
    return;
  }
  if (src_node.paused_) {
    DeferOnNode(src_node.id(), {std::move(op), DeferredOp::Stage::kComplete,
                                /*duplicate=*/false, status});
    return;
  }
  if (src.state_ == QpState::kError && status == WcStatus::kSuccess) {
    // The QP erred while the op was in flight: hardware flushes it. Remote
    // NAK statuses earned before the transition are reported as-is.
    status = WcStatus::kFlushError;
    ++fault_stats_.flushed_completions;
  }
  if (status == WcStatus::kSuccess && op->opcode == Opcode::kRead &&
      !op->staging.empty()) {
    std::memcpy(op->local, op->staging.data(), op->len);
  }
  WorkCompletion wc;
  wc.wr_id = op->wr_id;
  wc.opcode = op->opcode;
  wc.status = status;
  wc.byte_len = op->len;
  wc.atomic_result = op->atomic_result;
  wc.timestamp = sim_.Now();
  HAECHI_TRACE_DETAIL(obs::ActorKind::kFabric, Raw(src_node.id()),
                      obs::EventType::kRdmaComplete, 0,
                      static_cast<std::int64_t>(wc.opcode),
                      static_cast<std::int64_t>(wc.wr_id),
                      static_cast<std::int64_t>(wc.status));
  HAECHI_ASSERT(src.in_flight_ > 0);
  --src.in_flight_;
  src.send_cq_.Push(wc);
}

void Fabric::AbandonOp(const OpState& op) {
  QueuePair& src = *op.src;
  HAECHI_ASSERT(src.in_flight_ > 0);
  --src.in_flight_;
}

void Fabric::InstallFaultPlan(const FaultPlan& plan) {
  HAECHI_EXPECTS(injector_ == nullptr);
  injector_ = std::make_unique<FaultInjector>(plan);
  for (const NodeEvent& event : plan.node_events) {
    sim_.ScheduleAt(event.at, [this, event] { ApplyNodeEvent(event); });
  }
  for (const QpFailure& failure : plan.qp_failures) {
    sim_.ScheduleAt(failure.at, [this, id = failure.qp] {
      QueuePair* qp = FindQp(id);
      HAECHI_ASSERT(qp != nullptr);
      HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(qp->node().id()),
                         obs::EventType::kQpError, 0,
                         static_cast<std::int64_t>(id));
      qp->SetError();
    });
  }
}

void Fabric::ApplyNodeEvent(const NodeEvent& event) {
  switch (event.kind) {
    case NodeEvent::Kind::kCrash: CrashNode(event.node); break;
    case NodeEvent::Kind::kRestart: RestartNode(event.node); break;
    case NodeEvent::Kind::kPause: PauseNode(event.node); break;
    case NodeEvent::Kind::kResume: ResumeNode(event.node); break;
  }
}

QueuePair* Fabric::FindQp(QpId id) {
  for (Node& node : nodes_) {
    for (QueuePair& qp : node.qps_) {
      if (qp.id() == id) return &qp;
    }
  }
  return nullptr;
}

void Fabric::CrashNode(NodeId node) {
  Node& n = NodeRef(node);
  if (n.crashed_) return;
  n.crashed_ = true;
  n.paused_ = false;
  for (QueuePair& qp : n.qps_) qp.SetError();
  // Anything the node had on hold dies with it: held arrivals addressed to
  // it time out at their initiators; held outbound ops and completions
  // belonged to the dead process.
  auto held = deferred_.extract(Raw(node));
  if (!held.empty()) {
    for (DeferredOp& deferred : held.mapped()) {
      const bool inbound = deferred.stage == DeferredOp::Stage::kArrive &&
                           &deferred.op->dst->node() == &n;
      if (inbound) {
        if (deferred.duplicate) continue;
        ++fault_stats_.dead_target_naks;
        sim_.ScheduleAfter(params_.retry_timeout,
                           [this, op = std::move(deferred.op)]() mutable {
                             FinishCompletion(std::move(op),
                                              WcStatus::kRetryExceeded);
                           });
      } else {
        ++fault_stats_.dropped_completions;
        AbandonOp(*deferred.op);
      }
    }
  }
  HAECHI_LOG_DEBUG("fabric: node %u (%s) crashed", Raw(node),
                   n.name().c_str());
  HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(node),
                     obs::EventType::kNodeCrash, 0);
  if (fault_hook_) fault_hook_(node, NodeFault::kCrash);
}

void Fabric::RestartNode(NodeId node) {
  Node& n = NodeRef(node);
  if (!n.crashed_) return;
  n.crashed_ = false;
  ++n.incarnation_;
  HAECHI_LOG_DEBUG("fabric: node %u (%s) restarted (incarnation %u)",
                   Raw(node), n.name().c_str(), n.incarnation_);
  HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(node),
                     obs::EventType::kNodeRestart, 0,
                     static_cast<std::int64_t>(n.incarnation_));
  if (fault_hook_) fault_hook_(node, NodeFault::kRestart);
}

void Fabric::PauseNode(NodeId node) {
  Node& n = NodeRef(node);
  if (n.crashed_ || n.paused_) return;
  n.paused_ = true;
  HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(node),
                     obs::EventType::kNodePause, 0);
  if (fault_hook_) fault_hook_(node, NodeFault::kPause);
}

void Fabric::ResumeNode(NodeId node) {
  Node& n = NodeRef(node);
  if (!n.paused_) return;
  n.paused_ = false;
  auto held = deferred_.extract(Raw(node));
  if (!held.empty()) {
    for (DeferredOp& deferred : held.mapped()) {
      if (deferred.stage == DeferredOp::Stage::kArrive) {
        ArriveAtResponder(std::move(deferred.op), deferred.duplicate);
      } else {
        FinishCompletion(std::move(deferred.op), deferred.status);
      }
    }
  }
  HAECHI_TRACE_EVENT(obs::ActorKind::kFabric, Raw(node),
                     obs::EventType::kNodeResume, 0);
  if (fault_hook_) fault_hook_(node, NodeFault::kResume);
}

bool Fabric::IsCrashed(NodeId node) const {
  return nodes_.at(Raw(node)).crashed_;
}

bool Fabric::IsPaused(NodeId node) const {
  return nodes_.at(Raw(node)).paused_;
}

void Fabric::DeferOnNode(NodeId node, DeferredOp deferred) {
  ++fault_stats_.deferred_ops;
  deferred_[Raw(node)].push_back(std::move(deferred));
}

}  // namespace haechi::rdma
