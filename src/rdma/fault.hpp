// Deterministic fault injection for the simulated RDMA fabric.
//
// A FaultPlan is a declarative, copyable schedule of transport faults
// (per-op drop / delay / duplicate rules) and whole-node events (crash,
// restart, pause, resume) plus targeted QP failures. Installed on a Fabric
// it perturbs the verbs pipeline exactly where real RNICs fail:
//
//   drop       the request packet is lost; RC retransmission gives up after
//              ModelParams::retry_timeout and the op completes with
//              kRetryExceeded. No responder memory effect.
//   delay      extra wire latency before the op reaches the responder.
//   duplicate  the request is delivered twice. PSN-based transport dedup
//              shields atomics and SENDs (exactly-once), so the duplicate
//              only re-applies idempotent WRITE DMA and burns responder
//              service time — matching RC semantics on the wire.
//   crash      the node's QPs enter the error state, inbound requests time
//              out at their initiators (kRetryExceeded) and completions
//              addressed to the node are discarded (the process is gone).
//   pause      a symmetric partition: arrivals at and completions for the
//              node are held and replayed in order on resume.
//
// Determinism contract (DESIGN.md §8): the simulator is single-threaded and
// every probabilistic rule draws from one injector-owned xoshiro stream in
// op-interception order, which is itself a pure function of the simulation.
// Identical (plan, seed, workload) therefore yields a bit-identical
// completion trace; rules with probability >= 1 consume no randomness, so
// adding a deterministic rule never perturbs the draws of others.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "rdma/verbs.hpp"

namespace haechi::rdma {

/// What a matched FaultRule does to a verbs op in flight.
enum class FaultAction : std::uint8_t { kDrop, kDelay, kDuplicate };

/// One transport-fault rule. Every unset matcher is a wildcard.
struct FaultRule {
  FaultAction action = FaultAction::kDrop;
  /// Probability in [0, 1] that a matching op triggers the rule. Values
  /// >= 1 trigger unconditionally and consume no randomness.
  double probability = 1.0;
  /// Extra wire latency applied by kDelay (ignored otherwise).
  SimDuration delay = 0;
  std::optional<NodeId> initiator;
  std::optional<NodeId> responder;
  std::optional<Opcode> opcode;
  std::optional<QpId> qp;  // initiating QP
  /// Active window [from, until) in simulated time.
  SimTime from = 0;
  SimTime until = kSimTimeMax;
  /// The rule disarms after this many triggers.
  std::uint64_t max_triggers = std::numeric_limits<std::uint64_t>::max();
};

/// A scheduled whole-node lifecycle event.
struct NodeEvent {
  enum class Kind : std::uint8_t { kCrash, kRestart, kPause, kResume };
  Kind kind = Kind::kCrash;
  NodeId node = MakeNodeId(0);
  SimTime at = 0;
};

/// A scheduled transition of one QP into the error state.
struct QpFailure {
  QpId qp = 0;
  SimTime at = 0;
};

/// Declarative fault schedule; copyable so experiment configs can embed it.
struct FaultPlan {
  /// Seeds the injector's random stream (probabilistic rules only).
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  std::vector<NodeEvent> node_events;
  std::vector<QpFailure> qp_failures;

  [[nodiscard]] bool Empty() const {
    return rules.empty() && node_events.empty() && qp_failures.empty();
  }

  // Fluent builders for test/experiment setup.
  FaultPlan& Add(FaultRule rule);
  FaultPlan& CrashAt(NodeId node, SimTime at);
  FaultPlan& RestartAt(NodeId node, SimTime at);
  FaultPlan& PauseAt(NodeId node, SimTime at);
  FaultPlan& ResumeAt(NodeId node, SimTime at);
  FaultPlan& FailQpAt(QpId qp, SimTime at);
};

/// Runtime evaluator owned by the Fabric once a plan is installed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The combined verdict for one op: a drop wins over everything else,
  /// delays from multiple matching rules accumulate, and a duplicate flag
  /// composes with a delay (the copy travels with the same total latency).
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    SimDuration extra_delay = 0;
  };

  /// Evaluates every armed rule, in plan order, against one op about to
  /// leave the initiator's NIC. Probabilistic rules draw from the injector
  /// stream whether or not an earlier rule already triggered, keeping the
  /// stream aligned across runs.
  Decision Decide(NodeId initiator, NodeId responder, Opcode opcode, QpId qp,
                  SimTime now);

  struct Stats {
    std::uint64_t evaluated = 0;  // ops inspected
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::vector<std::uint64_t> triggers_;  // per-rule trigger counts
  Rng rng_;
  Stats stats_;
};

}  // namespace haechi::rdma
