#include "rdma/fault.hpp"

#include <utility>

namespace haechi::rdma {

FaultPlan& FaultPlan::Add(FaultRule rule) {
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::CrashAt(NodeId node, SimTime at) {
  node_events.push_back({NodeEvent::Kind::kCrash, node, at});
  return *this;
}

FaultPlan& FaultPlan::RestartAt(NodeId node, SimTime at) {
  node_events.push_back({NodeEvent::Kind::kRestart, node, at});
  return *this;
}

FaultPlan& FaultPlan::PauseAt(NodeId node, SimTime at) {
  node_events.push_back({NodeEvent::Kind::kPause, node, at});
  return *this;
}

FaultPlan& FaultPlan::ResumeAt(NodeId node, SimTime at) {
  node_events.push_back({NodeEvent::Kind::kResume, node, at});
  return *this;
}

FaultPlan& FaultPlan::FailQpAt(QpId qp, SimTime at) {
  qp_failures.push_back({qp, at});
  return *this;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      triggers_(plan_.rules.size(), 0),
      rng_(plan_.seed) {}

FaultInjector::Decision FaultInjector::Decide(NodeId initiator,
                                              NodeId responder, Opcode opcode,
                                              QpId qp, SimTime now) {
  ++stats_.evaluated;
  Decision decision;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (now < rule.from || now >= rule.until) continue;
    if (triggers_[i] >= rule.max_triggers) continue;
    if (rule.initiator && *rule.initiator != initiator) continue;
    if (rule.responder && *rule.responder != responder) continue;
    if (rule.opcode && *rule.opcode != opcode) continue;
    if (rule.qp && *rule.qp != qp) continue;
    if (rule.probability < 1.0 && rng_.NextDouble() >= rule.probability) {
      continue;
    }
    ++triggers_[i];
    switch (rule.action) {
      case FaultAction::kDrop:
        if (!decision.drop) ++stats_.drops;
        decision.drop = true;
        break;
      case FaultAction::kDelay:
        ++stats_.delays;
        decision.extra_delay += rule.delay;
        break;
      case FaultAction::kDuplicate:
        if (!decision.duplicate) ++stats_.duplicates;
        decision.duplicate = true;
        break;
    }
  }
  return decision;
}

}  // namespace haechi::rdma
