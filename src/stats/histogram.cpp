#include "stats/histogram.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace haechi::stats {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(std::int64_t{1} << sub_bucket_bits),
      min_(std::numeric_limits<std::int64_t>::max()) {
  HAECHI_EXPECTS(sub_bucket_bits >= 0 && sub_bucket_bits <= 16);
  // 64 power-of-two ranges is enough for any int64 value.
  buckets_.resize(static_cast<std::size_t>(64 - sub_bucket_bits) *
                  static_cast<std::size_t>(sub_bucket_count_));
}

std::size_t Histogram::BucketIndex(std::int64_t value) const {
  const auto v = static_cast<std::uint64_t>(value);
  // Values below sub_bucket_count land in the first linear range exactly.
  if (v < static_cast<std::uint64_t>(sub_bucket_count_)) {
    return static_cast<std::size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int range = msb - sub_bucket_bits_ + 1;  // >= 1
  const std::uint64_t sub =
      (v >> range) & (static_cast<std::uint64_t>(sub_bucket_count_) - 1);
  // Range r occupies half its sub-buckets (the top half), like HdrHistogram:
  // index = range * sub_bucket_count/2 + ... ; we use a simpler full-width
  // layout: each range gets sub_bucket_count slots.
  return static_cast<std::size_t>(range) *
             static_cast<std::size_t>(sub_bucket_count_) +
         static_cast<std::size_t>(sub);
}

void Histogram::Record(std::int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(std::int64_t value, std::uint64_t count) {
  HAECHI_EXPECTS(value >= 0);
  if (count == 0) return;
  buckets_[BucketIndex(value)] += count;
  count_ += count;
  sum_ += static_cast<long double>(value) * static_cast<long double>(count);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::int64_t Histogram::Min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_ / static_cast<long double>(
                                                      count_));
}

std::int64_t Histogram::ValueAtQuantile(double q) const {
  HAECHI_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target && buckets_[i] > 0) {
      // Invert BucketIndex: reconstruct the lower edge of bucket i.
      const auto sbc = static_cast<std::size_t>(sub_bucket_count_);
      const std::size_t range = i / sbc;
      const std::size_t sub = i % sbc;
      if (range == 0) return static_cast<std::int64_t>(sub);
      const int shift = static_cast<int>(range);
      // Values v in this bucket satisfy msb(v) == shift + sub_bucket_bits - 1
      // and (v >> shift) & (sbc-1) == sub. Lower edge:
      const std::uint64_t msb_bit = 1ULL
                                    << (shift + sub_bucket_bits_ - 1);
      const std::uint64_t lower =
          msb_bit | (static_cast<std::uint64_t>(sub) << shift);
      const std::uint64_t width = 1ULL << shift;
      return static_cast<std::int64_t>(lower + width / 2);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  HAECHI_EXPECTS(sub_bucket_bits_ == other.sub_bucket_bits_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
}

std::string Histogram::Summary(bool as_micros) const {
  const double scale = as_micros ? 1e-3 : 1.0;
  const char* unit = as_micros ? "us" : "ns";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f%s p50=%.2f%s p99=%.2f%s p99.9=%.2f%s "
                "max=%.2f%s",
                static_cast<unsigned long long>(count_), Mean() * scale, unit,
                static_cast<double>(ValueAtQuantile(0.50)) * scale, unit,
                static_cast<double>(ValueAtQuantile(0.99)) * scale, unit,
                static_cast<double>(ValueAtQuantile(0.999)) * scale, unit,
                static_cast<double>(max_) * scale, unit);
  return buf;
}

}  // namespace haechi::stats
