#include "stats/table.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace haechi::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HAECHI_EXPECTS(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  HAECHI_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    // Trim trailing spaces for diff-friendliness.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace haechi::stats
