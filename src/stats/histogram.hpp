// Log-bucketed latency histogram in the HdrHistogram style.
//
// Values are bucketed with a bounded relative error (default < 1/64 ≈ 1.6 %),
// which is ample for the paper's avg / p99 / p99.9 latency reporting
// (Fig 15) while keeping Record() allocation-free and O(1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace haechi::stats {

class Histogram {
 public:
  /// `sub_bucket_bits` controls precision: each power-of-two range is split
  /// into 2^sub_bucket_bits linear sub-buckets.
  explicit Histogram(int sub_bucket_bits = 6);

  /// Records one non-negative value (e.g. a latency in nanoseconds).
  void Record(std::int64_t value);

  /// Records `count` occurrences of the value.
  void RecordMany(std::int64_t value, std::uint64_t count);

  [[nodiscard]] std::uint64_t Count() const { return count_; }
  [[nodiscard]] std::int64_t Min() const;
  [[nodiscard]] std::int64_t Max() const { return max_; }
  [[nodiscard]] double Mean() const;

  /// Value at quantile q in [0, 1]; returns the representative value of the
  /// bucket containing the q-th sample. Zero when empty.
  [[nodiscard]] std::int64_t ValueAtQuantile(double q) const;

  [[nodiscard]] std::int64_t Percentile(double p) const {
    return ValueAtQuantile(p / 100.0);
  }

  /// Merges another histogram (same sub_bucket_bits) into this one.
  void Merge(const Histogram& other);

  void Reset();

  /// One-line summary: count, mean, p50/p99/p99.9, max (values in µs when
  /// `as_micros`, matching the paper's latency plots).
  [[nodiscard]] std::string Summary(bool as_micros = true) const;

 private:
  [[nodiscard]] std::size_t BucketIndex(std::int64_t value) const;

  int sub_bucket_bits_;
  std::int64_t sub_bucket_count_;  // 2^sub_bucket_bits
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  long double sum_ = 0;  // exact enough for means over billions of samples
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace haechi::stats
