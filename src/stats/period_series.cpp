#include "stats/period_series.hpp"

#include <numeric>

namespace haechi::stats {

void PeriodSeries::BeginPeriod() {
  matrix_.emplace_back(clients_, 0);
}

void PeriodSeries::Add(ClientId client, std::int64_t ios) {
  HAECHI_EXPECTS(!matrix_.empty());
  HAECHI_EXPECTS(Raw(client) < clients_);
  matrix_.back()[Raw(client)] += ios;
}

std::int64_t PeriodSeries::At(std::size_t p, ClientId client) const {
  HAECHI_EXPECTS(p < matrix_.size());
  HAECHI_EXPECTS(Raw(client) < clients_);
  return matrix_[p][Raw(client)];
}

std::int64_t PeriodSeries::ClientTotal(ClientId client) const {
  HAECHI_EXPECTS(Raw(client) < clients_);
  std::int64_t total = 0;
  for (const auto& row : matrix_) total += row[Raw(client)];
  return total;
}

std::int64_t PeriodSeries::PeriodTotal(std::size_t p) const {
  HAECHI_EXPECTS(p < matrix_.size());
  const auto& row = matrix_[p];
  return std::accumulate(row.begin(), row.end(), std::int64_t{0});
}

std::int64_t PeriodSeries::Total() const {
  std::int64_t total = 0;
  for (std::size_t p = 0; p < matrix_.size(); ++p) total += PeriodTotal(p);
  return total;
}

std::int64_t PeriodSeries::ClientMinPerPeriod(ClientId client) const {
  HAECHI_EXPECTS(Raw(client) < clients_);
  if (matrix_.empty()) return 0;
  std::int64_t min = matrix_[0][Raw(client)];
  for (const auto& row : matrix_) {
    min = std::min(min, row[Raw(client)]);
  }
  return min;
}

}  // namespace haechi::stats
