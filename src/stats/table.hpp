// Plain-text table printer used by the bench harnesses so every figure
// reproduction prints aligned, diff-friendly rows.
#pragma once

#include <string>
#include <vector>

namespace haechi::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Formats a double with fixed precision — the bench binaries' one true
  /// number formatter, so outputs are stable across runs.
  static std::string Num(double v, int precision = 1);
  static std::string Int(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace haechi::stats
