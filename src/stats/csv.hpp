// CSV export for experiment results, so figure data can be re-plotted
// outside the bench binaries (gnuplot, pandas, ...).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "stats/histogram.hpp"
#include "stats/period_series.hpp"

namespace haechi::stats {

/// Streams rows into an in-memory CSV document; WriteFile persists it.
/// Values are escaped per RFC 4180 (quotes doubled, fields with commas,
/// quotes or newlines quoted).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  [[nodiscard]] std::string Render() const;

  /// Writes the document to `path` (truncating).
  Status WriteFile(const std::string& path) const;

  [[nodiscard]] std::size_t Rows() const { return rows_.size(); }

  static std::string Escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One row per (period, client) with completed I/Os — the long format the
/// paper's bar/series figures are drawn from.
CsvWriter SeriesToCsv(const PeriodSeries& series);

/// Percentile table of a histogram (quantile, value) rows.
CsvWriter HistogramToCsv(const Histogram& histogram,
                         const std::vector<double>& quantiles = {
                             0.5, 0.9, 0.99, 0.999, 1.0});

}  // namespace haechi::stats
