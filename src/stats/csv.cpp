#include "stats/csv.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace haechi::stats {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  HAECHI_EXPECTS(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  HAECHI_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::Render() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += Escape(row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return ErrInvalidArgument("cannot open " + path + " for writing");
  }
  const std::string document = Render();
  const std::size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  std::fclose(file);
  if (written != document.size()) {
    return ErrInternal("short write to " + path);
  }
  return Status::Ok();
}

CsvWriter SeriesToCsv(const PeriodSeries& series) {
  CsvWriter csv({"period", "client", "completed_ios"});
  for (std::size_t p = 0; p < series.Periods(); ++p) {
    for (std::uint32_t c = 0; c < series.Clients(); ++c) {
      csv.AddRow({std::to_string(p), std::to_string(c),
                  std::to_string(series.At(p, MakeClientId(c)))});
    }
  }
  return csv;
}

CsvWriter HistogramToCsv(const Histogram& histogram,
                         const std::vector<double>& quantiles) {
  CsvWriter csv({"quantile", "value_ns"});
  for (const double q : quantiles) {
    csv.AddRow({std::to_string(q),
                std::to_string(histogram.ValueAtQuantile(q))});
  }
  return csv;
}

}  // namespace haechi::stats
