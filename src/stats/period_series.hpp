// Per-QoS-period, per-client accounting.
//
// Every figure in the paper is either (a) a bar of completed I/Os per client
// summed over 30 QoS periods, or (b) a time series of per-period values —
// so this recorder keeps the full (period x client) matrix plus helpers
// that slice it the way the figures do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace haechi::stats {

class PeriodSeries {
 public:
  explicit PeriodSeries(std::size_t clients) : clients_(clients) {
    HAECHI_EXPECTS(clients > 0);
  }

  /// Starts a new period; subsequent Add() calls accumulate into it.
  void BeginPeriod();

  /// Adds completed I/Os for a client in the current period.
  void Add(ClientId client, std::int64_t ios);

  [[nodiscard]] std::size_t Periods() const { return matrix_.size(); }
  [[nodiscard]] std::size_t Clients() const { return clients_; }

  /// Completed I/Os for `client` in period `p` (0-based).
  [[nodiscard]] std::int64_t At(std::size_t p, ClientId client) const;

  /// Sum over all recorded periods for one client (a Fig-9-style bar).
  [[nodiscard]] std::int64_t ClientTotal(ClientId client) const;

  /// Sum over all clients in one period (a Fig-16-style series point).
  [[nodiscard]] std::int64_t PeriodTotal(std::size_t p) const;

  /// Grand total across the matrix.
  [[nodiscard]] std::int64_t Total() const;

  /// Per-period throughput of one client in KIOPS given the period length.
  [[nodiscard]] double ClientKiops(std::size_t p, ClientId client,
                                   SimDuration period) const {
    return ToKiops(At(p, client), period);
  }

  /// Smallest per-period completion count for a client (used to check the
  /// "meets reservation in *each* QoS period" guarantee).
  [[nodiscard]] std::int64_t ClientMinPerPeriod(ClientId client) const;

 private:
  std::size_t clients_;
  std::vector<std::vector<std::int64_t>> matrix_;  // [period][client]
};

}  // namespace haechi::stats
