// Calibrated timing constants for the simulated fabric.
//
// These replace the paper's Table I hardware (Chameleon nodes, ConnectX-3
// InfiniBand). Each constant is chosen so the *measured* behaviour of the
// simulated cluster matches the paper's Section III-B profiling:
//
//   - one-sided:  C_L ≈ 400 KIOPS per client, C_G ≈ 1570 KIOPS aggregate,
//                 linear scaling up to 4 clients (Fig 6, Fig 7);
//   - two-sided:  ≈ 327 KIOPS per client, ≈ 430 KIOPS aggregate, saturating
//                 at 2 clients (Fig 6, Fig 7);
//   - saturated capacity divides equally among backlogged clients (Exp 1C).
//
// The values are derived, not arbitrary: a 4 KB read at 1570 KIOPS is
// 6.4 GB/s, i.e. FDR InfiniBand line rate — the server-side limit is NIC
// bandwidth; the 400 KIOPS client limit (1.6 GB/s) models the per-QP DMA /
// PCIe budget of the client adapter; 430 KIOPS of two-sided RPCs models the
// data node's dispatch-thread message rate.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "net/station.hpp"

namespace haechi::net {

struct ModelParams {
  /// Bulk service order at the data node's stations (see net::Discipline).
  /// kRoundRobin (default): per-QP arbitration with per-QP backpressure —
  /// how a real RNIC responder behaves under congestion; it also keeps
  /// unmanaged background QPs able to claim their share against deep
  /// Haechi queues (Experiment Set 4). kFifo (strict wire-arrival order)
  /// is kept as an ablation. Control ops are always fast-pathed regardless
  /// of this setting.
  Discipline responder_discipline = Discipline::kRoundRobin;

  // --- one-sided path -----------------------------------------------------
  /// Per-client adapter bandwidth for one-sided ops (bytes/s). 4 KB at
  /// 1.638 GB/s -> 2.5 us/op -> C_L = 400 KIOPS.
  double client_nic_bw_bytes_per_sec = 1.6384e9;

  /// Data-node adapter bandwidth serving one-sided ops (bytes/s). 4 KB at
  /// 6.43 GB/s -> 0.637 us/op -> C_G ≈ 1570 KIOPS.
  double server_nic_bw_bytes_per_sec = 6.4307e9;

  /// Floor on any NIC op's service time (packet-rate limit), ns.
  SimDuration min_op_service = 50;

  /// Service time of a remote atomic (FETCH_ADD / CMP_SWAP) at the server
  /// NIC, ns. ConnectX-3 atomics are packet-rate-limited, not bandwidth-
  /// limited; Haechi amortises them with B=1000 batching so the value only
  /// matters for the bench_overhead ablation.
  SimDuration atomic_service = 333;

  // --- two-sided path -----------------------------------------------------
  /// Per-client cost of a two-sided request (send + completion handling),
  /// ns. 3058 ns -> ≈ 327 KIOPS single-client (Fig 6).
  SimDuration client_rpc_service = 3058;

  /// Data-node CPU cost of serving one RPC, ns. 2326 ns -> ≈ 430 KIOPS
  /// aggregate (Fig 7).
  SimDuration server_rpc_service = 2326;

  // --- fabric -------------------------------------------------------------
  /// One-way propagation + switching latency, ns.
  SimDuration link_latency = 1500;

  /// RC transport give-up time, ns: how long the initiating RNIC retries a
  /// request that gets no response (lost packet, crashed responder) before
  /// completing it with WcStatus::kRetryExceeded. Real RC timeouts are
  /// configurable per QP (ibv_modify_qp timeout/retry_cnt); a few RTTs is
  /// representative for an in-rack fabric and keeps fault tests fast.
  SimDuration retry_timeout = 12'000;

  /// Multiplicative service-time jitter: each service time is scaled by a
  /// uniform factor in [1-jitter, 1+jitter]. Nonzero jitter gives the
  /// capacity-profiling distribution a real sigma (Algorithm 1's lower
  /// bound is Omega_prof - 3 sigma).
  double service_jitter = 0.02;

  /// Uniform scale factor on all capacities; 1.0 reproduces the paper's
  /// absolute KIOPS. Benches may scale down to trade fidelity for runtime
  /// (shapes are scale-invariant; see DESIGN.md).
  double capacity_scale = 1.0;

  /// Service time for `bytes` moved through the client NIC (one-sided), ns.
  [[nodiscard]] SimDuration ClientNicService(std::uint32_t bytes) const;

  /// Service time for `bytes` served by the data-node NIC (one-sided), ns.
  [[nodiscard]] SimDuration ServerNicService(std::uint32_t bytes) const;

  /// Scaled service time for an explicitly-costed op (e.g. RPC handling).
  [[nodiscard]] SimDuration ScaledService(SimDuration base) const;

  /// Effective single-client one-sided 4 KB capacity (C_L), IOPS.
  [[nodiscard]] double LocalCapacityIops() const;

  /// Effective aggregate one-sided 4 KB capacity (C_G), IOPS.
  [[nodiscard]] double GlobalCapacityIops() const;

  /// Two-sided aggregate capacity, IOPS.
  [[nodiscard]] double TwoSidedCapacityIops() const;
};

/// Payload size the paper evaluates with (YCSB 4 KB records).
inline constexpr std::uint32_t kRecordBytes = 4096;

}  // namespace haechi::net
