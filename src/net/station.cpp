#include "net/station.hpp"

#include <utility>

#include "common/assert.hpp"

namespace haechi::net {

namespace detail {

SimDuration ApplyJitter(SimDuration service, double jitter, Rng& rng) {
  if (jitter <= 0.0) return service;
  const double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
  auto out = static_cast<SimDuration>(
      static_cast<double>(service) * factor);
  return out < 1 ? 1 : out;
}

}  // namespace detail

SerialStation::SerialStation(sim::Simulator& sim, std::string name,
                             double jitter, std::uint64_t seed)
    : sim_(sim), name_(std::move(name)), jitter_(jitter), rng_(seed) {}

void SerialStation::Submit(SimDuration service_time, ServiceDoneFn done) {
  HAECHI_EXPECTS(service_time > 0);
  HAECHI_EXPECTS(done != nullptr);
  queue_.push_back(Item{service_time, std::move(done)});
  if (!busy_) StartNext();
}

void SerialStation::StartNext() {
  HAECHI_ASSERT(!busy_);
  if (queue_.empty()) return;
  busy_ = true;
  Item item = std::move(queue_.front());
  queue_.pop_front();
  const SimDuration service =
      detail::ApplyJitter(item.service, jitter_, rng_);
  busy_time_ += service;
  sim_.ScheduleAfter(service, [this, done = std::move(item.done)]() mutable {
    busy_ = false;
    ++served_;
    // Start the next item before running the callback: if the callback
    // submits new work it should queue behind already-waiting items.
    StartNext();
    done();
  });
}

FairShareStation::FairShareStation(sim::Simulator& sim, std::string name,
                                   double jitter, std::uint64_t seed,
                                   Discipline discipline)
    : sim_(sim),
      name_(std::move(name)),
      jitter_(jitter),
      rng_(seed),
      discipline_(discipline) {}

void FairShareStation::Submit(FlowId flow, SimDuration service_time,
                              ServiceDoneFn done, Priority priority) {
  HAECHI_EXPECTS(service_time > 0);
  HAECHI_EXPECTS(done != nullptr);
  if (priority == Priority::kControl) {
    control_.push_back(Item{service_time, std::move(done), flow});
  } else if (discipline_ == Discipline::kFifo) {
    if (flow >= fifo_depths_.size()) fifo_depths_.resize(flow + 1);
    ++fifo_depths_[flow];
    fifo_.push_back(Item{service_time, std::move(done), flow});
  } else {
    if (flow >= flows_.size()) flows_.resize(flow + 1);
    flows_[flow].push_back(Item{service_time, std::move(done), flow});
  }
  ++queued_;
  if (!busy_) StartNext();
}

std::size_t FairShareStation::QueueDepth(FlowId flow) const {
  if (discipline_ == Discipline::kFifo) {
    return flow < fifo_depths_.size() ? fifo_depths_[flow] : 0;
  }
  return flow < flows_.size() ? flows_[flow].size() : 0;
}

std::size_t FairShareStation::FindNextActive() const {
  const std::size_t n = flows_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (cursor_ + step) % n;
    if (!flows_[idx].empty()) return idx;
  }
  return n;
}

void FairShareStation::StartNext() {
  HAECHI_ASSERT(!busy_);
  if (queued_ == 0) return;
  busy_ = true;
  Item item;
  if (!control_.empty()) {
    item = std::move(control_.front());
    control_.pop_front();
  } else if (discipline_ == Discipline::kFifo) {
    item = std::move(fifo_.front());
    fifo_.pop_front();
    HAECHI_ASSERT(fifo_depths_[item.flow] > 0);
    --fifo_depths_[item.flow];
  } else {
    const std::size_t idx = FindNextActive();
    HAECHI_ASSERT(idx < flows_.size());
    item = std::move(flows_[idx].front());
    flows_[idx].pop_front();
    cursor_ = (idx + 1) % flows_.size();  // next search starts past this one
  }
  --queued_;
  const SimDuration service =
      detail::ApplyJitter(item.service, jitter_, rng_);
  busy_time_ += service;
  sim_.ScheduleAfter(service, [this, done = std::move(item.done)]() mutable {
    busy_ = false;
    ++served_;
    StartNext();
    done();
  });
}

}  // namespace haechi::net
