// Queueing stations: the timing substrate beneath the simulated RDMA fabric.
//
// A station serves work items one at a time from its queue(s); each item
// carries its own service time (computed by the NIC model from the op size)
// and a completion callback. Two disciplines are provided:
//
//  * SerialStation — single FIFO. Models a client adapter's DMA pipeline.
//  * FairShareStation — multi-flow station for the data-node adapter (and
//    the RPC dispatch CPU), serving either in strict arrival order (kFifo,
//    the RNIC responder behaviour) or round-robin per flow (ablation).
//    Either way, saturated capacity divides equally among closed-loop
//    backlogged clients, as the paper observes in Experiment 1C.
//
// Optional multiplicative jitter perturbs each service time so profiled
// capacity has a genuine variance (used by Algorithm 1's sigma).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace haechi::net {

/// Distinguishes traffic sources at a FairShareStation. Flows are small
/// dense integers (client index or background-job index).
using FlowId = std::uint32_t;

/// Invoked when the station finishes serving an item.
using ServiceDoneFn = std::function<void()>;

namespace detail {

/// Shared jitter helper: scales `service` by U[1-jitter, 1+jitter].
SimDuration ApplyJitter(SimDuration service, double jitter, Rng& rng);

}  // namespace detail

/// Single-queue, single-server FIFO station.
class SerialStation {
 public:
  SerialStation(sim::Simulator& sim, std::string name, double jitter,
                std::uint64_t seed);

  SerialStation(const SerialStation&) = delete;
  SerialStation& operator=(const SerialStation&) = delete;

  /// Enqueues an item needing `service_time` ns of service; `done` runs at
  /// the simulated instant service completes.
  void Submit(SimDuration service_time, ServiceDoneFn done);

  [[nodiscard]] std::size_t QueueDepth() const { return queue_.size(); }
  [[nodiscard]] bool Busy() const { return busy_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total items served since construction.
  [[nodiscard]] std::uint64_t Served() const { return served_; }

  /// Cumulative busy time, for utilisation accounting.
  [[nodiscard]] SimDuration BusyTime() const { return busy_time_; }

 private:
  struct Item {
    SimDuration service;
    ServiceDoneFn done;
  };

  void StartNext();

  sim::Simulator& sim_;
  std::string name_;
  double jitter_;
  Rng rng_;
  std::deque<Item> queue_;
  bool busy_ = false;
  std::uint64_t served_ = 0;
  SimDuration busy_time_ = 0;
};

/// How a multi-flow station orders bulk service.
///
/// kRoundRobin (default for the data-node NIC): per-flow FIFOs served
/// round-robin — an RNIC responder arbitrating across QPs with per-QP
/// credit backpressure. Saturated capacity divides equally among
/// backlogged flows (Experiment 1C), and an unmanaged flow (Set 4's
/// background jobs) always gets its arbitration share no matter how deep
/// another flow's queue is.
///
/// kFifo: one strict wire-arrival-order queue (ablation — it lets a deep
/// early-posted queue monopolise service positions).
///
/// Either way, *small* control ops (atomics, sub-64-byte writes/sends) are
/// submitted at kControl priority and served from a fast-path lane ahead
/// of bulk data: a real responder executes an 8-byte packet in its NIC
/// pipeline immediately; only bulk DMA bandwidth queues.
enum class Discipline : std::uint8_t { kFifo, kRoundRobin };

/// Service priority at a station. kControl models the RNIC fast path for
/// small ops; kBulk is bandwidth-bound data.
enum class Priority : std::uint8_t { kBulk, kControl };

/// Multi-flow station with a selectable service discipline.
class FairShareStation {
 public:
  FairShareStation(sim::Simulator& sim, std::string name, double jitter,
                   std::uint64_t seed,
                   Discipline discipline = Discipline::kRoundRobin);

  FairShareStation(const FairShareStation&) = delete;
  FairShareStation& operator=(const FairShareStation&) = delete;

  /// Enqueues an item for `flow`. Flows are created on first use.
  /// kControl items are served before any queued kBulk item.
  void Submit(FlowId flow, SimDuration service_time, ServiceDoneFn done,
              Priority priority = Priority::kBulk);

  [[nodiscard]] std::size_t QueueDepth() const { return queued_; }
  [[nodiscard]] std::size_t QueueDepth(FlowId flow) const;
  [[nodiscard]] bool Busy() const { return busy_; }
  [[nodiscard]] std::uint64_t Served() const { return served_; }
  [[nodiscard]] SimDuration BusyTime() const { return busy_time_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Item {
    SimDuration service = 0;
    ServiceDoneFn done;
    FlowId flow = 0;
  };

  void StartNext();
  /// Index of the next non-empty flow, or flows_.size() if none.
  [[nodiscard]] std::size_t FindNextActive() const;

  sim::Simulator& sim_;
  std::string name_;
  double jitter_;
  Rng rng_;
  Discipline discipline_;
  std::deque<Item> control_;             // fast-path lane (both disciplines)
  std::deque<Item> fifo_;                // kFifo: one arrival-ordered queue
  std::vector<std::deque<Item>> flows_;  // kRoundRobin: per-flow queues
  std::vector<std::size_t> fifo_depths_; // kFifo: per-flow depth accounting
  std::size_t cursor_ = 0;               // round-robin position (flow index)
  std::size_t queued_ = 0;
  bool busy_ = false;
  std::uint64_t served_ = 0;
  SimDuration busy_time_ = 0;
};

}  // namespace haechi::net
