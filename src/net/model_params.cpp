#include "net/model_params.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace haechi::net {

namespace {

SimDuration ScaleService(SimDuration base, double capacity_scale) {
  HAECHI_EXPECTS(capacity_scale > 0.0);
  return static_cast<SimDuration>(
      std::llround(static_cast<double>(base) / capacity_scale));
}

}  // namespace

SimDuration ModelParams::ClientNicService(std::uint32_t bytes) const {
  const auto by_bw = static_cast<SimDuration>(std::llround(
      static_cast<double>(bytes) / client_nic_bw_bytes_per_sec * 1e9));
  // capacity_scale shrinks *data* capacity (bandwidth term) only; the
  // per-packet floor is a message-rate property of the adapter and stays
  // fixed, so control-plane op costs are scale-invariant.
  return std::max(ScaleService(by_bw, capacity_scale), min_op_service);
}

SimDuration ModelParams::ServerNicService(std::uint32_t bytes) const {
  const auto by_bw = static_cast<SimDuration>(std::llround(
      static_cast<double>(bytes) / server_nic_bw_bytes_per_sec * 1e9));
  return std::max(ScaleService(by_bw, capacity_scale), min_op_service);
}

SimDuration ModelParams::ScaledService(SimDuration base) const {
  return ScaleService(base, capacity_scale);
}

double ModelParams::LocalCapacityIops() const {
  return 1e9 / static_cast<double>(ClientNicService(kRecordBytes));
}

double ModelParams::GlobalCapacityIops() const {
  return 1e9 / static_cast<double>(ServerNicService(kRecordBytes));
}

double ModelParams::TwoSidedCapacityIops() const {
  return 1e9 /
         static_cast<double>(ScaleService(server_rpc_service, capacity_scale));
}

}  // namespace haechi::net
