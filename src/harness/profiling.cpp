#include "harness/profiling.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "harness/experiment.hpp"

namespace haechi::harness {

ProfileResult ProfileCapacity(const net::ModelParams& params,
                              std::size_t clients, std::size_t reps,
                              std::uint64_t seed, SimDuration period) {
  HAECHI_EXPECTS(clients > 0);
  HAECHI_EXPECTS(reps > 0);
  ProfileResult result;
  result.samples_iops.reserve(reps);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    ExperimentConfig config;
    config.mode = Mode::kBare;
    config.io_path = IoPath::kOneSided;
    config.net = params;
    config.qos.period = period;
    // Demand far beyond capacity keeps every client backlogged for the
    // whole period ("continuous back-to-back 4 KB one-sided I/Os").
    const auto saturating = static_cast<std::int64_t>(
        params.GlobalCapacityIops() * ToSeconds(period) * 2.0);
    config.clients = UniformClients(clients, 0, saturating,
                                    workload::RequestPattern::kBurst);
    config.warmup = period / 10;  // pipeline fill
    config.measure_periods = 1;
    config.seed = seed + rep * 7717;
    ExperimentResult r = Experiment(std::move(config)).Run();
    result.samples_iops.push_back(r.total_kiops * 1e3);
  }

  double sum = 0.0;
  for (const double s : result.samples_iops) sum += s;
  result.mean_iops = sum / static_cast<double>(reps);
  double var = 0.0;
  for (const double s : result.samples_iops) {
    var += (s - result.mean_iops) * (s - result.mean_iops);
  }
  result.sigma_iops =
      reps > 1 ? std::sqrt(var / static_cast<double>(reps - 1)) : 0.0;
  return result;
}

}  // namespace haechi::harness
