// Multi-data-node experiment assembly for the ClusterCoordinator extension
// (the paper's §V future work): D data nodes, each with its own KV store
// and QoS monitor; every client runs one QoS engine per node, all tied to
// a single cluster-wide reservation managed by the coordinator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/engine.hpp"
#include "core/monitor.hpp"
#include "kvstore/client.hpp"
#include "kvstore/server.hpp"
#include "net/model_params.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"
#include "stats/period_series.hpp"
#include "workload/generator.hpp"

namespace haechi::harness {

struct MultiClientSpec {
  /// Cluster-wide reservation (I/Os per period, summed over nodes).
  std::int64_t reservation = 0;
  std::int64_t limit = 0;  // per node; 0 = unlimited
  /// Demand per period directed at each data node.
  std::vector<std::int64_t> demand_per_node;
  workload::RequestPattern pattern = workload::RequestPattern::kOpenLoop;
};

struct MultiExperimentConfig {
  std::size_t data_nodes = 2;
  std::vector<MultiClientSpec> clients;

  net::ModelParams net;
  core::QosConfig qos;
  core::ClusterCoordinator::Config cluster;

  std::uint64_t records = 4096;
  SimDuration warmup = Seconds(2);
  std::size_t measure_periods = 8;
  std::uint64_t seed = 42;

  /// Optional demand shift: at `shift_at` (absolute sim time) every
  /// client's per-node demand switches to `shifted_demand[client][node]`.
  SimTime shift_at = -1;
  std::vector<std::vector<std::int64_t>> shifted_demand;
};

struct MultiExperimentResult {
  /// Completed I/Os per measured period per client, one series per node.
  std::vector<stats::PeriodSeries> node_series;
  /// Final per-node reservation split of every client.
  std::vector<std::vector<std::int64_t>> final_split;
  /// Engine stats indexed [client][node].
  std::vector<std::vector<core::ClientQosEngine::Stats>> engine_stats;
  core::ClusterCoordinator::Stats cluster_stats;
  double total_kiops = 0.0;
};

class MultiExperiment {
 public:
  explicit MultiExperiment(MultiExperimentConfig config);
  ~MultiExperiment();

  MultiExperiment(const MultiExperiment&) = delete;
  MultiExperiment& operator=(const MultiExperiment&) = delete;

  MultiExperimentResult Run();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] core::ClusterCoordinator& coordinator() {
    return *coordinator_;
  }
  [[nodiscard]] core::QosMonitor& monitor(std::size_t node) {
    return *monitors_.at(node);
  }

 private:
  void Build();

  MultiExperimentConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<std::unique_ptr<kvstore::KvServer>> servers_;
  std::vector<std::unique_ptr<core::QosMonitor>> monitors_;
  std::unique_ptr<core::ClusterCoordinator> coordinator_;
  // Indexed [client][node].
  std::vector<std::vector<std::unique_ptr<kvstore::KvClient>>> kv_clients_;
  std::vector<std::vector<std::unique_ptr<core::ClientQosEngine>>> engines_;
  std::vector<std::vector<std::unique_ptr<workload::DemandGenerator>>>
      generators_;
  std::unique_ptr<MultiExperimentResult> result_;
  std::unique_ptr<sim::PeriodicTimer> measure_timer_;
  std::size_t measured_periods_ = 0;
  bool measuring_ = false;
};

}  // namespace haechi::harness
