// Capacity profiling (paper §II-E): saturate the data node with
// back-to-back one-sided 4 KB reads from N clients for one QoS period,
// repeat, and take the mean and standard deviation of the achieved
// throughput. The result seeds Algorithm 1 (Omega_prof, sigma) and
// admission control (C_G); the same procedure with one client yields C_L.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/model_params.hpp"

namespace haechi::harness {

struct ProfileResult {
  double mean_iops = 0.0;
  double sigma_iops = 0.0;
  std::vector<double> samples_iops;
};

/// Runs `reps` independent one-period saturation runs with `clients`
/// concurrent clients (paper: 10 clients, 1000 reps) and aggregates.
ProfileResult ProfileCapacity(const net::ModelParams& params,
                              std::size_t clients, std::size_t reps,
                              std::uint64_t seed,
                              SimDuration period = kSecond);

}  // namespace haechi::harness
