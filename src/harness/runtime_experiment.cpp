#include "harness/runtime_experiment.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/export.hpp"
#include "runtime/shared_region.hpp"

namespace haechi::harness {

namespace {
using obs::ActorKind;
using obs::EventType;

// xorshift64*: a self-contained per-worker key stream (the threaded run is
// wall-clock scheduled, so nothing downstream depends on the exact keys).
std::uint64_t NextKey(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}
}  // namespace

ThreadedExperiment::ThreadedExperiment(ExperimentConfig config)
    : config_(std::move(config)) {
  HAECHI_EXPECTS(!config_.clients.empty());
  HAECHI_EXPECTS(config_.clients.size() <= runtime::SharedRegion::kMaxClients);
  HAECHI_EXPECTS(config_.mode != Mode::kBare);
  HAECHI_EXPECTS(config_.io_path == IoPath::kOneSided);
  HAECHI_EXPECTS(config_.faults.Empty());
  // Crash-only client faults are supported; restarts (re-admission under
  // fresh QPs) remain a simulator feature.
  for (const auto& fault : config_.client_faults) {
    HAECHI_EXPECTS(fault.client < config_.clients.size());
    HAECHI_EXPECTS(fault.restart_at == kSimTimeMax);
  }
  HAECHI_EXPECTS(config_.background_demand == 0);
  HAECHI_EXPECTS(config_.qos.period > 0);
  HAECHI_EXPECTS(config_.qos.pool_shards >= 1 &&
                 config_.qos.pool_shards <=
                     static_cast<std::int64_t>(
                         runtime::SharedRegion::kMaxShards));
  HAECHI_EXPECTS(config_.qos.fetch_batch >= 1);
  warmup_periods_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max<SimDuration>(config_.warmup, 0) /
                                  config_.qos.period));
  worker_count_ = config_.runtime_workers == 0
                      ? config_.clients.size()
                      : std::min(config_.runtime_workers,
                                 config_.clients.size());
  crash_at_.assign(config_.clients.size(), kSimTimeMax);
  for (const auto& fault : config_.client_faults) {
    crash_at_[fault.client] = std::min(crash_at_[fault.client], fault.crash_at);
  }
}

ThreadedExperiment::~ThreadedExperiment() {
  // Run() joins everything before returning; this only covers a Run() that
  // never happened or threw through HAECHI_EXPECTS.
  for (auto& engine : engines_) {
    if (engine) engine->Stop();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (monitor_) monitor_->Stop();
}

void ThreadedExperiment::WorkerLoop(std::size_t worker) {
  using Grant = runtime::ThreadedEngine::Grant;
  ThreadedExperimentResult::WorkerStats& wstats = worker_stats_[worker];
  // One token-acquisition chain per TryAcquireBatch call: long enough to
  // amortise the two engine-mutex acquisitions (acquire + completion) over
  // a run of 4 KB reads, short enough that one client cannot monopolise
  // its worker while siblings wait.
  constexpr std::int64_t kChain = 64;

  struct ClientState {
    std::size_t index = 0;
    std::uint32_t period = 0;     // period being worked; 0 = not started
    std::int64_t remaining = 0;   // demand left in `period`
    bool active = true;
    std::uint64_t key_state = 0;
  };
  std::vector<ClientState> owned;
  for (std::size_t i = worker; i < config_.clients.size();
       i += worker_count_) {
    ClientState st;
    st.index = i;
    st.key_state = config_.seed * 0x9E3779B97F4A7C15ULL +
                   0xD1B54A32D192ED03ULL * (i + 1);
    owned.push_back(st);
  }
  const auto demand_of = [&](std::size_t i) {
    return config_.clients[i].demand > 0
               ? config_.clients[i].demand
               : std::numeric_limits<std::int64_t>::max();
  };
  std::array<std::byte, runtime::SharedRegion::kRecordBytes> buf{};

  std::size_t active_count = owned.size();
  while (active_count > 0) {
    bool progress = false;
    for (ClientState& st : owned) {
      if (!st.active) continue;
      runtime::ThreadedEngine& engine = *engines_[st.index];
      const auto deactivate = [&] {
        st.active = false;
        --active_count;
      };
      if (crash_at_[st.index] != kSimTimeMax &&
          clock_.Now() >= crash_at_[st.index]) {
        // Scripted crash: the engine dies silently mid-period (no final
        // report); the monitor's lease reclaims its residual claim.
        if (recorder_ != nullptr) {
          recorder_->EmitAt(clock_.Now(), ActorKind::kHarness,
                            static_cast<std::uint32_t>(st.index),
                            EventType::kClientCrash, 0);
        }
        engine.Stop();
        deactivate();
        progress = true;
        continue;
      }
      const auto advance_period = [&]() {
        if (engine.Stopped()) {
          deactivate();
          return;
        }
        const std::uint32_t p = engine.CurrentPeriod();
        if (p != 0 && p != st.period) {
          st.period = p;
          st.remaining = demand_of(st.index);
          progress = true;
        }
      };
      if (st.period == 0 || st.remaining <= 0) {
        // Not started yet, or this period's demand is satisfied: check for
        // the next period without parking (the pool serves other clients).
        advance_period();
        continue;
      }
      const runtime::ThreadedEngine::Batch batch = engine.TryAcquireBatch(
          st.period, std::min<std::int64_t>(st.remaining, kChain));
      switch (batch.status) {
        case Grant::kStopped:
          deactivate();
          break;
        case Grant::kPeriodOver:
          advance_period();
          break;
        case Grant::kNotReady:
          break;  // throttled / empty pool / end guard: service siblings
        case Grant::kToken: {
          ++wstats.batches;
          wstats.ios += static_cast<std::uint64_t>(batch.count);
          for (std::int64_t k = 0; k < batch.count; ++k) {
            fabric_->PostRecordRead(ports_[st.index],
                                    NextKey(st.key_state) % config_.records,
                                    std::span<std::byte>(buf));
          }
          engine.OnIoCompleted(batch.count);
          std::vector<std::int64_t>& completed = completions_[st.index];
          if (st.period < completed.size()) {
            completed[st.period] += batch.count;
          }
          st.remaining -= batch.count;
          progress = true;
          break;
        }
      }
    }
    if (!progress && active_count > 0) {
      // Every owned client is parked (pre-start, throttled, or awaiting
      // the next period): yield the CPU briefly instead of spinning.
      ++wstats.idle_sleeps;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

ThreadedExperimentResult ThreadedExperiment::Run() {
  const std::size_t n = config_.clients.size();
  ThreadedExperimentResult result{stats::PeriodSeries(n)};
  const SimTime run_start = clock_.Now();

#if HAECHI_WATCHDOG_ENABLED
  // Arming the watchdog forces a recorder (it taps the event stream); an
  // armed controller in turn forces the watchdog (it feeds on its alerts).
  const bool want_watchdog = config_.watchdog.enabled ||
                             !config_.watchdog.alerts_out.empty() ||
                             config_.watchdog.status_interval > 0 ||
                             config_.control.armed();
#else
  const bool want_watchdog = false;
#endif
  if (config_.trace.enabled || want_watchdog) {
    obs::Recorder::Options options;
    options.ring_capacity = config_.trace.ring_capacity;
    options.detail = config_.trace.detail;
    options.preallocate_actors = runtime::SharedRegion::kMaxClients;
    recorder_ = std::make_unique<obs::Recorder>(
        obs::Recorder::ClockFn([this] { return clock_.Now(); }), options);
  }
#if HAECHI_WATCHDOG_ENABLED
  if (want_watchdog) {
    obs::WatchdogOptions wd_options;
    wd_options.guarantee_fraction = config_.watchdog.guarantee_fraction;
    watchdog_ = std::make_unique<obs::SloWatchdog>(wd_options);
    alerts_sink_ =
        std::make_unique<obs::JsonlAlertSink>(config_.watchdog.alerts_out);
    watchdog_->AddSink(alerts_sink_.get());
    if (config_.watchdog.status_interval > 0) {
      auto status_fn = config_.watchdog.status_fn;
      if (!status_fn) {
        status_fn = [](const obs::PeriodStatus& status) {
          std::fprintf(stderr, "%s\n", obs::FormatStatusLine(status).c_str());
        };
      }
      watchdog_->SetStatusFn(std::move(status_fn),
                             config_.watchdog.status_interval);
    }
    if (config_.control.armed()) {
      controller_ = std::make_unique<core::control::QosController>(
          config_.control.ToControllerConfig());
      // The controller's OnAlert only ever fires while the watchdog
      // processes monitor-emitted events, and PlanBoundary runs on the
      // monitor thread too — its state is effectively monitor-thread-local.
      watchdog_->AddSink(controller_.get());
      std::stable_sort(config_.control.api.begin(), config_.control.api.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
    }
    // Installed before the first harness event below, and serialised: the
    // monitor's two timer threads and every worker-owned engine emit
    // concurrently, while the watchdog is single-threaded by contract.
    recorder_->SetTap([this](const obs::TraceEvent& event) {
      std::lock_guard lk(watchdog_mu_);
      watchdog_->OnEvent(event);
    });
    recorder_->SetDropNotify([this] {
      std::lock_guard lk(watchdog_mu_);
      watchdog_->NotifyTruncation(clock_.Now());
    });
  }
#endif
  const auto emit = [this](EventType type, std::uint32_t actor, std::int64_t a,
                           std::int64_t b, std::int64_t c) {
    if (recorder_ != nullptr) {
      recorder_->EmitAt(clock_.Now(), ActorKind::kHarness, actor, type, 0, a,
                        b, c);
    }
  };
  emit(EventType::kRunConfig, 0, config_.qos.period, config_.qos.token_batch,
       static_cast<std::int64_t>(config_.measure_periods));
  for (std::size_t i = 0; i < n; ++i) {
    const ClientSpec& spec = config_.clients[i];
    emit(EventType::kClientSpec, static_cast<std::uint32_t>(i),
         spec.reservation, spec.limit, spec.demand);
  }

  core::QosConfig qos = config_.qos;
  qos.token_conversion = config_.mode == Mode::kHaechi;
  // The threaded fabric has no analytic capacity model, so profiled values
  // are required (the sim uses them too when provided, which is how the
  // differential test pins both runtimes to one capacity).
  HAECHI_EXPECTS(config_.profiled_global_iops > 0);
  HAECHI_EXPECTS(config_.profiled_local_iops > 0);

  fabric_ = std::make_unique<runtime::ThreadedFabric>(
      clock_, config_.records, static_cast<std::size_t>(qos.pool_shards));
  monitor_ = std::make_unique<runtime::ThreadedMonitor>(
      clock_, recorder_.get(), qos, *fabric_, config_.profiled_global_iops,
      config_.profiled_local_iops);

  completions_.assign(
      n, std::vector<std::int64_t>(
             warmup_periods_ + config_.measure_periods + 8, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const ClientSpec& spec = config_.clients[i];
    const ClientId id = MakeClientId(static_cast<std::uint32_t>(i));
    auto wiring = monitor_->AdmitClient(id, spec.reservation, spec.limit);
    HAECHI_EXPECTS(wiring.ok());
    ports_.push_back(wiring.value().slot);
    engines_.push_back(std::make_unique<runtime::ThreadedEngine>(
        clock_, recorder_.get(), id, qos, *fabric_, wiring.value().slot,
        wiring.value().slot));
    const Status bound = monitor_->BindEngine(id, engines_.back().get());
    HAECHI_EXPECTS(bound.ok());
    result.reservations.push_back(spec.reservation);
  }

  if (controller_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const ClientSpec& spec = config_.clients[i];
      controller_->SetClientSpec(static_cast<std::uint32_t>(i),
                                 spec.reservation, spec.limit, spec.demand);
      const auto cls = config_.control.classes.find(i);
      if (cls != config_.control.classes.end()) {
        controller_->SetClientClass(static_cast<std::uint32_t>(i),
                                    cls->second);
      }
    }
    // No readmit callback: threaded clients never depart through a lease
    // (no fault plans here), so kReadmit actions stay unapplied.
    monitor_->SetController(controller_.get(), nullptr);
    emit(EventType::kControllerConfig, 0,
         static_cast<std::int64_t>(controller_->policy()),
         static_cast<std::int64_t>(controller_->config().rules),
         static_cast<std::int64_t>(controller_->config().quiet_periods));
  }

  // Completion latch: the monitor's period hook fires with the period that
  // just ended (the boundary starting the next one). The measurement
  // markers are stamped half a period away from that boundary — start at
  // mid-warmup-period, end half a period past the last measured boundary —
  // so the audit's window test ([start, start+T] inside the markers, with
  // boundary stamps captured under the monitor lock) selects exactly the
  // periods the harvested series rows cover, with no edge races.
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  const std::uint32_t last_measured = static_cast<std::uint32_t>(
      warmup_periods_ + config_.measure_periods);
  monitor_->SetPeriodHook([&, this](std::uint32_t period,
                                    std::int64_t completions,
                                    std::int64_t estimate) {
    // Scripted control-api swaps: the hook runs on the monitor thread, the
    // same thread that calls PlanBoundary, so SetPolicy needs no lock and
    // the same boundary already sees the new policy.
    while (control_api_next_ < config_.control.api.size() &&
           config_.control.api[control_api_next_].first <= period) {
      const auto swap = config_.control.api[control_api_next_++];
      if (controller_ != nullptr) {
        controller_->SetPolicy(swap.second);
        emit(EventType::kControllerConfig, 0,
             static_cast<std::int64_t>(swap.second),
             static_cast<std::int64_t>(controller_->config().rules),
             static_cast<std::int64_t>(controller_->config().quiet_periods));
      }
    }
    result.capacity_trace.push_back({period, completions, estimate});
    metrics_.Add("monitor.completions", completions);
    metrics_.Set("monitor.capacity_estimate", static_cast<double>(estimate));
    metrics_.SnapshotPeriod(period);
    if (period == static_cast<std::uint32_t>(warmup_periods_) &&
        recorder_ != nullptr) {
      recorder_->EmitAt(clock_.Now() - config_.qos.period / 2,
                        ActorKind::kHarness, 0, EventType::kMeasureStart, 0);
    }
    if (period == last_measured) {
      if (recorder_ != nullptr) {
        recorder_->EmitAt(clock_.Now() + config_.qos.period / 2,
                          ActorKind::kHarness, 0, EventType::kMeasureEnd, 0);
      }
      std::lock_guard lk(done_mu);
      done = true;
      done_cv.notify_all();
    }
  });

  worker_stats_.assign(worker_count_, {});
  for (std::size_t w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  monitor_->Start();

  // Generous deadline: the run should take (warmup + measure + 1) periods;
  // give it 4x plus a constant so a wedged run fails loudly instead of
  // hanging the test binary forever.
  const auto deadline =
      std::chrono::nanoseconds((static_cast<SimDuration>(warmup_periods_) +
                                static_cast<SimDuration>(
                                    config_.measure_periods) +
                                2) *
                                   config_.qos.period * 4 +
                               Seconds(10));
  {
    std::unique_lock lk(done_mu);
    const bool finished = done_cv.wait_for(lk, deadline, [&] { return done; });
    HAECHI_EXPECTS(finished);
  }

  monitor_->Stop();
  for (auto& engine : engines_) engine->Stop();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  // Harvest. Rows are QoS periods warmup+1 .. warmup+measure, in order.
  for (std::size_t p = warmup_periods_ + 1;
       p <= warmup_periods_ + config_.measure_periods; ++p) {
    result.series.BeginPeriod();
    for (std::size_t i = 0; i < n; ++i) {
      result.series.Add(MakeClientId(static_cast<std::uint32_t>(i)),
                        completions_[i][p]);
    }
  }
  result.total_kiops = ToKiops(
      result.series.Total(),
      static_cast<SimDuration>(config_.measure_periods) * config_.qos.period);
  result.monitor_stats = monitor_->StatsSnapshot();
  result.monitor_runtime_stats = monitor_->RuntimeStatsSnapshot();
  result.ledger = monitor_->LedgerSnapshot();
  for (auto& engine : engines_) {
    result.engine_stats.push_back(engine->StatsSnapshot());
    result.engine_runtime_stats.push_back(engine->RuntimeStatsSnapshot());
  }
  result.worker_stats = worker_stats_;
  for (const std::size_t slot : ports_) {
    result.report_write_retries += fabric_->SlotWriteRetries(slot);
  }
  result.wall_time = clock_.Now() - run_start;

  // Runtime-layer rollups: the "dark" counters the trace cannot carry at
  // full rate — shard FAA outcome mix, seqlock writer contention, worker
  // pool occupancy.
  metrics_.Set("run.total_kiops", result.total_kiops);
  for (const auto& rt : result.engine_runtime_stats) {
    metrics_.Add("runtime.faa_home_hits",
                 static_cast<std::int64_t>(rt.faa_home_hits));
    metrics_.Add("runtime.faa_steals",
                 static_cast<std::int64_t>(rt.faa_steals));
    metrics_.Add("runtime.faa_dry_probes",
                 static_cast<std::int64_t>(rt.faa_dry_probes));
    metrics_.Add("runtime.span_ios",
                 static_cast<std::int64_t>(rt.span_ios));
  }
  metrics_.Add("runtime.convert_cas_retries",
               static_cast<std::int64_t>(
                   result.monitor_runtime_stats.convert_cas_retries));
  metrics_.Add("runtime.shard_samples",
               static_cast<std::int64_t>(
                   result.monitor_runtime_stats.shard_samples));
  metrics_.Add("runtime.report_write_retries",
               static_cast<std::int64_t>(result.report_write_retries));
  metrics_.Add("runtime.rebalances",
               static_cast<std::int64_t>(result.monitor_stats.rebalances));
  metrics_.Add("runtime.rebalanced_tokens", result.monitor_stats.rebalanced_tokens);
  for (std::size_t w = 0; w < result.worker_stats.size(); ++w) {
    const std::string prefix = "worker." + std::to_string(w) + ".";
    const auto& ws = result.worker_stats[w];
    metrics_.Add(prefix + "batches", static_cast<std::int64_t>(ws.batches));
    metrics_.Add(prefix + "ios", static_cast<std::int64_t>(ws.ios));
    metrics_.Add(prefix + "idle_sleeps",
                 static_cast<std::int64_t>(ws.idle_sleeps));
  }
  if (recorder_ != nullptr) {
    metrics_.Add("trace.emitted_events",
                 static_cast<std::int64_t>(recorder_->TotalEmitted()));
    metrics_.Add("trace.dropped_events",
                 static_cast<std::int64_t>(recorder_->TotalDropped()));
  }
#if HAECHI_WATCHDOG_ENABLED
  if (watchdog_ != nullptr) {
    // Every emitter thread is joined; no lock needed past this point.
    const Status flushed = watchdog_->Finish();
    if (!flushed.ok()) {
      HAECHI_LOG_WARN("threaded experiment: alert sink flush failed: %s",
                      flushed.ToString().c_str());
    }
    metrics_.Add("watchdog.alerts",
                 static_cast<std::int64_t>(watchdog_->alerts().size()));
    metrics_.Add("watchdog.critical",
                 static_cast<std::int64_t>(
                     watchdog_->CountAtLeast(obs::AlertSeverity::kCritical)));
    metrics_.Add("watchdog.periods_evaluated",
                 static_cast<std::int64_t>(watchdog_->periods_evaluated()));
  }
  if (controller_ != nullptr) {
    const auto& cs = controller_->stats();
    metrics_.Add("controller.alerts", static_cast<std::int64_t>(cs.alerts));
    metrics_.Add("controller.resizes", static_cast<std::int64_t>(cs.resizes));
    metrics_.Add("controller.eta_scalings",
                 static_cast<std::int64_t>(cs.eta_scalings));
    metrics_.Add("controller.forced_conversions",
                 static_cast<std::int64_t>(cs.forced_conversions));
    metrics_.Add("controller.readmits",
                 static_cast<std::int64_t>(cs.readmits));
    metrics_.Add("controller.recoveries",
                 static_cast<std::int64_t>(cs.recoveries));
  }
#endif

  if (recorder_ != nullptr && !config_.trace.out_path.empty()) {
    const Status status =
        obs::ExportTraceFile(*recorder_, config_.trace.out_path);
    if (!status.ok()) {
      HAECHI_LOG_WARN("threaded experiment: trace export failed: %s",
                      status.ToString().c_str());
    }
  }
  if (!config_.trace.metrics_out.empty()) {
    const Status written =
        metrics_.ToCsv().WriteFile(config_.trace.metrics_out);
    if (!written.ok()) {
      HAECHI_LOG_WARN("threaded experiment: metrics export failed: %s",
                      written.ToString().c_str());
    }
  }
  if (!config_.trace.prom_out.empty()) {
    const std::string exposition = metrics_.ToPrometheus();
    std::FILE* file = std::fopen(config_.trace.prom_out.c_str(), "wb");
    if (file == nullptr) {
      HAECHI_LOG_WARN("threaded experiment: cannot open prom file: %s",
                      config_.trace.prom_out.c_str());
    } else {
      const std::size_t written =
          std::fwrite(exposition.data(), 1, exposition.size(), file);
      const int closed = std::fclose(file);
      if (written != exposition.size() || closed != 0) {
        HAECHI_LOG_WARN("threaded experiment: short write to prom file: %s",
                        config_.trace.prom_out.c_str());
      }
    }
  }
  return result;
}

}  // namespace haechi::harness
