#include "harness/runtime_experiment.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <span>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/export.hpp"
#include "runtime/shared_region.hpp"

namespace haechi::harness {

namespace {
using obs::ActorKind;
using obs::EventType;

// xorshift64*: a self-contained per-worker key stream (the threaded run is
// wall-clock scheduled, so nothing downstream depends on the exact keys).
std::uint64_t NextKey(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}
}  // namespace

ThreadedExperiment::ThreadedExperiment(ExperimentConfig config)
    : config_(std::move(config)) {
  HAECHI_EXPECTS(!config_.clients.empty());
  HAECHI_EXPECTS(config_.clients.size() <= runtime::SharedRegion::kMaxClients);
  HAECHI_EXPECTS(config_.mode != Mode::kBare);
  HAECHI_EXPECTS(config_.io_path == IoPath::kOneSided);
  HAECHI_EXPECTS(config_.faults.Empty());
  HAECHI_EXPECTS(config_.client_faults.empty());
  HAECHI_EXPECTS(config_.background_demand == 0);
  HAECHI_EXPECTS(!config_.watchdog.enabled &&
                 config_.watchdog.alerts_out.empty() &&
                 config_.watchdog.status_interval == 0);
  HAECHI_EXPECTS(config_.qos.period > 0);
  warmup_periods_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max<SimDuration>(config_.warmup, 0) /
                                  config_.qos.period));
}

ThreadedExperiment::~ThreadedExperiment() {
  // Run() joins everything before returning; this only covers a Run() that
  // never happened or threw through HAECHI_EXPECTS.
  for (auto& engine : engines_) {
    if (engine) engine->Stop();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (monitor_) monitor_->Stop();
}

void ThreadedExperiment::WorkerLoop(std::size_t index) {
  runtime::ThreadedEngine& engine = *engines_[index];
  const ClientSpec& spec = config_.clients[index];
  const std::size_t port = ports_[index];
  std::vector<std::int64_t>& completed = completions_[index];
  std::uint64_t key_state =
      config_.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL * (index + 1);
  std::array<std::byte, runtime::SharedRegion::kRecordBytes> buf{};

  std::uint32_t p = engine.AwaitPeriodAfter(0);
  while (p != 0) {
    // demand <= 0 means pure closed loop: read until the period rolls over.
    std::int64_t remaining =
        spec.demand > 0 ? spec.demand : std::numeric_limits<std::int64_t>::max();
    while (remaining > 0) {
      const runtime::ThreadedEngine::Grant grant = engine.AcquireToken(p);
      if (grant == runtime::ThreadedEngine::Grant::kStopped) return;
      if (grant == runtime::ThreadedEngine::Grant::kPeriodOver) break;
      fabric_->PostRecordRead(port, NextKey(key_state) % config_.records,
                              std::span<std::byte>(buf));
      engine.OnIoCompleted();
      if (p < completed.size()) ++completed[p];
      --remaining;
    }
    p = engine.AwaitPeriodAfter(p);
  }
}

ThreadedExperimentResult ThreadedExperiment::Run() {
  const std::size_t n = config_.clients.size();
  ThreadedExperimentResult result{stats::PeriodSeries(n)};
  const SimTime run_start = clock_.Now();

  if (config_.trace.enabled) {
    obs::Recorder::Options options;
    options.ring_capacity = config_.trace.ring_capacity;
    options.detail = config_.trace.detail;
    options.preallocate_actors = runtime::SharedRegion::kMaxClients;
    recorder_ = std::make_unique<obs::Recorder>(
        obs::Recorder::ClockFn([this] { return clock_.Now(); }), options);
  }
  const auto emit = [this](EventType type, std::uint32_t actor, std::int64_t a,
                           std::int64_t b, std::int64_t c) {
    if (recorder_ != nullptr) {
      recorder_->EmitAt(clock_.Now(), ActorKind::kHarness, actor, type, 0, a,
                        b, c);
    }
  };
  emit(EventType::kRunConfig, 0, config_.qos.period, config_.qos.token_batch,
       static_cast<std::int64_t>(config_.measure_periods));
  for (std::size_t i = 0; i < n; ++i) {
    const ClientSpec& spec = config_.clients[i];
    emit(EventType::kClientSpec, static_cast<std::uint32_t>(i),
         spec.reservation, spec.limit, spec.demand);
  }

  core::QosConfig qos = config_.qos;
  qos.token_conversion = config_.mode == Mode::kHaechi;
  // The threaded fabric has no analytic capacity model, so profiled values
  // are required (the sim uses them too when provided, which is how the
  // differential test pins both runtimes to one capacity).
  HAECHI_EXPECTS(config_.profiled_global_iops > 0);
  HAECHI_EXPECTS(config_.profiled_local_iops > 0);

  fabric_ = std::make_unique<runtime::ThreadedFabric>(clock_, config_.records);
  monitor_ = std::make_unique<runtime::ThreadedMonitor>(
      clock_, recorder_.get(), qos, *fabric_, config_.profiled_global_iops,
      config_.profiled_local_iops);

  completions_.assign(
      n, std::vector<std::int64_t>(
             warmup_periods_ + config_.measure_periods + 8, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const ClientSpec& spec = config_.clients[i];
    const ClientId id = MakeClientId(static_cast<std::uint32_t>(i));
    auto wiring = monitor_->AdmitClient(id, spec.reservation, spec.limit);
    HAECHI_EXPECTS(wiring.ok());
    ports_.push_back(wiring.value().slot);
    engines_.push_back(std::make_unique<runtime::ThreadedEngine>(
        clock_, recorder_.get(), id, qos, *fabric_, wiring.value().slot,
        wiring.value().slot));
    const Status bound = monitor_->BindEngine(id, engines_.back().get());
    HAECHI_EXPECTS(bound.ok());
    result.reservations.push_back(spec.reservation);
  }

  // Completion latch: the monitor's period hook fires with the period that
  // just ended (the boundary starting the next one). The measurement
  // markers are stamped half a period away from that boundary — start at
  // mid-warmup-period, end half a period past the last measured boundary —
  // so the audit's window test ([start, start+T] inside the markers, with
  // boundary stamps captured under the monitor lock) selects exactly the
  // periods the harvested series rows cover, with no edge races.
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  const std::uint32_t last_measured = static_cast<std::uint32_t>(
      warmup_periods_ + config_.measure_periods);
  monitor_->SetPeriodHook([&, this](std::uint32_t period,
                                    std::int64_t completions,
                                    std::int64_t estimate) {
    result.capacity_trace.push_back({period, completions, estimate});
    if (period == static_cast<std::uint32_t>(warmup_periods_) &&
        recorder_ != nullptr) {
      recorder_->EmitAt(clock_.Now() - config_.qos.period / 2,
                        ActorKind::kHarness, 0, EventType::kMeasureStart, 0);
    }
    if (period == last_measured) {
      if (recorder_ != nullptr) {
        recorder_->EmitAt(clock_.Now() + config_.qos.period / 2,
                          ActorKind::kHarness, 0, EventType::kMeasureEnd, 0);
      }
      std::lock_guard lk(done_mu);
      done = true;
      done_cv.notify_all();
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  monitor_->Start();

  // Generous deadline: the run should take (warmup + measure + 1) periods;
  // give it 4x plus a constant so a wedged run fails loudly instead of
  // hanging the test binary forever.
  const auto deadline =
      std::chrono::nanoseconds((static_cast<SimDuration>(warmup_periods_) +
                                static_cast<SimDuration>(
                                    config_.measure_periods) +
                                2) *
                                   config_.qos.period * 4 +
                               Seconds(10));
  {
    std::unique_lock lk(done_mu);
    const bool finished = done_cv.wait_for(lk, deadline, [&] { return done; });
    HAECHI_EXPECTS(finished);
  }

  monitor_->Stop();
  for (auto& engine : engines_) engine->Stop();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  // Harvest. Rows are QoS periods warmup+1 .. warmup+measure, in order.
  for (std::size_t p = warmup_periods_ + 1;
       p <= warmup_periods_ + config_.measure_periods; ++p) {
    result.series.BeginPeriod();
    for (std::size_t i = 0; i < n; ++i) {
      result.series.Add(MakeClientId(static_cast<std::uint32_t>(i)),
                        completions_[i][p]);
    }
  }
  result.total_kiops = ToKiops(
      result.series.Total(),
      static_cast<SimDuration>(config_.measure_periods) * config_.qos.period);
  result.monitor_stats = monitor_->StatsSnapshot();
  result.ledger = monitor_->LedgerSnapshot();
  for (auto& engine : engines_) {
    result.engine_stats.push_back(engine->StatsSnapshot());
  }
  result.wall_time = clock_.Now() - run_start;

  if (recorder_ != nullptr && !config_.trace.out_path.empty()) {
    const Status status =
        obs::ExportTraceFile(*recorder_, config_.trace.out_path);
    if (!status.ok()) {
      HAECHI_LOG_WARN("threaded experiment: trace export failed: %s",
                      status.ToString().c_str());
    }
  }
  return result;
}

}  // namespace haechi::harness
