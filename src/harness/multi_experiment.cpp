#include "harness/multi_experiment.hpp"

#include <string>

#include "common/assert.hpp"

namespace haechi::harness {

MultiExperiment::MultiExperiment(MultiExperimentConfig config)
    : config_(std::move(config)) {
  HAECHI_EXPECTS(config_.data_nodes >= 1);
  HAECHI_EXPECTS(!config_.clients.empty());
  for (const auto& spec : config_.clients) {
    HAECHI_EXPECTS(spec.demand_per_node.size() == config_.data_nodes);
  }
  if (config_.shift_at >= 0) {
    HAECHI_EXPECTS(config_.shifted_demand.size() == config_.clients.size());
  }
}

MultiExperiment::~MultiExperiment() = default;

void MultiExperiment::Build() {
  fabric_ = std::make_unique<rdma::Fabric>(sim_, config_.net, config_.seed);
  fabric_->set_copy_payloads(false);

  // Data nodes: KV store + monitor each.
  std::vector<core::QosMonitor*> monitor_ptrs;
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    rdma::Node& node = fabric_->AddNode("data-" + std::to_string(d),
                                        rdma::NodeRole::kData);
    kvstore::KvServer::Config store;
    store.record_count = config_.records;
    servers_.push_back(std::make_unique<kvstore::KvServer>(node, store));
    monitors_.push_back(std::make_unique<core::QosMonitor>(
        sim_, config_.qos, node, config_.net.GlobalCapacityIops(),
        config_.net.LocalCapacityIops()));
    monitor_ptrs.push_back(monitors_.back().get());
  }
  core::ClusterCoordinator::Config cluster = config_.cluster;
  cluster.interval = config_.qos.period;
  coordinator_ = std::make_unique<core::ClusterCoordinator>(sim_, cluster,
                                                            monitor_ptrs);

  kv_clients_.resize(config_.clients.size());
  engines_.resize(config_.clients.size());
  generators_.resize(config_.clients.size());

  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    const MultiClientSpec& spec = config_.clients[i];
    const auto client_id = MakeClientId(static_cast<std::uint32_t>(i));
    rdma::Node& client_node =
        fabric_->AddNode("client-" + std::to_string(i + 1));

    // Control QPs first: admission returns the per-node wirings.
    std::vector<rdma::QueuePair*> ctrl_srv_qps;
    std::vector<rdma::QueuePair*> ctrl_qps;
    for (std::size_t d = 0; d < config_.data_nodes; ++d) {
      rdma::Node& data_node = fabric_->node(d);
      auto& ctrl_cq = client_node.CreateCq();
      auto& ctrl_recv_cq = client_node.CreateCq();
      auto& ctrl_srv_cq = data_node.CreateCq();
      auto& ctrl_qp = client_node.CreateQp(ctrl_cq, ctrl_recv_cq);
      auto& ctrl_srv_qp = data_node.CreateQp(ctrl_srv_cq, ctrl_srv_cq);
      fabric_->Connect(ctrl_qp, ctrl_srv_qp);
      ctrl_qps.push_back(&ctrl_qp);
      ctrl_srv_qps.push_back(&ctrl_srv_qp);
    }
    auto wirings = coordinator_->AdmitClient(client_id, spec.reservation,
                                             spec.limit, ctrl_srv_qps);
    HAECHI_ASSERT(wirings.ok());

    for (std::size_t d = 0; d < config_.data_nodes; ++d) {
      rdma::Node& data_node = fabric_->node(d);

      auto& data_cq = client_node.CreateCq();
      auto& data_srv_cq = data_node.CreateCq();
      auto& data_qp = client_node.CreateQp(data_cq, data_cq, 1u << 22);
      auto& data_srv_qp = data_node.CreateQp(data_srv_cq, data_srv_cq);
      fabric_->Connect(data_qp, data_srv_qp);
      kv_clients_[i].push_back(std::make_unique<kvstore::KvClient>(
          client_node, data_qp, servers_[d]->view(),
          kvstore::KvClient::Config{}));

      auto& qos_cq = client_node.CreateCq();
      auto& qos_srv_cq = data_node.CreateCq();
      auto& qos_qp = client_node.CreateQp(qos_cq, qos_cq);
      auto& qos_srv_qp = data_node.CreateQp(qos_srv_cq, qos_srv_cq);
      fabric_->Connect(qos_qp, qos_srv_qp);

      auto engine = std::make_unique<core::ClientQosEngine>(
          sim_, client_id, config_.qos, client_node, qos_qp, *ctrl_qps[d],
          wirings.value()[d]);
      kvstore::KvClient* kv = kv_clients_[i][d].get();
      engine->SetIoBackend(
          [kv](std::uint64_t key, bool /*is_write*/,
               core::ClientQosEngine::CompleteFn done) {
            return kv->GetOneSided(
                key, [done = std::move(done)](
                         const kvstore::KvClient::Completion&) { done(); });
          });

      workload::DemandGenerator::Config gen;
      gen.pattern = spec.pattern;
      gen.period = config_.qos.period;
      gen.demand_per_period = spec.demand_per_node[d];
      Rng rng(config_.seed * 31 + i * 1009 + d * 7 + 3);
      workload::KeyChooser chooser(
          workload::KeyChooser::Kind::kUniformRandom, config_.records, 0.0,
          rng);
      core::ClientQosEngine* eng = engine.get();
      generators_[i].push_back(std::make_unique<workload::DemandGenerator>(
          sim_, gen, std::move(chooser),
          [this, eng, client_id, d](
              std::uint64_t key, bool /*is_write*/,
              workload::DemandGenerator::CompleteFn cb) {
            auto counted = [this, client_id, d, cb](bool measured) {
              if (measured && measuring_) {
                result_->node_series[d].Add(client_id, 1);
              }
              cb();
            };
            const Status s =
                eng->Submit(key, [counted]() mutable { counted(true); });
            if (!s.ok()) counted(false);  // shed on engine backpressure
          }));
      engines_[i].push_back(std::move(engine));
    }
  }
}

MultiExperimentResult MultiExperiment::Run() {
  result_ = std::make_unique<MultiExperimentResult>();
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    result_->node_series.emplace_back(config_.clients.size());
  }
  Build();

  for (auto& monitor : monitors_) monitor->Start(0);
  coordinator_->Start(0);
  for (auto& per_client : generators_) {
    for (auto& generator : per_client) generator->Start(0);
  }
  if (config_.shift_at >= 0) {
    sim_.ScheduleAt(config_.shift_at, [this] {
      for (std::size_t i = 0; i < generators_.size(); ++i) {
        for (std::size_t d = 0; d < generators_[i].size(); ++d) {
          generators_[i][d]->set_demand(config_.shifted_demand[i][d]);
        }
      }
    });
  }

  sim_.ScheduleAt(config_.warmup, [this] {
    measuring_ = true;
    for (auto& series : result_->node_series) series.BeginPeriod();
    measured_periods_ = 1;
    measure_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.qos.period, [this] {
          if (measured_periods_ >= config_.measure_periods) {
            measuring_ = false;
            measure_timer_->Stop();
            return;
          }
          for (auto& series : result_->node_series) series.BeginPeriod();
          ++measured_periods_;
        });
    measure_timer_->Start();
  });

  const SimTime end =
      config_.warmup +
      static_cast<SimTime>(config_.measure_periods) * config_.qos.period;
  sim_.RunUntil(end);

  std::int64_t total = 0;
  for (const auto& series : result_->node_series) total += series.Total();
  result_->total_kiops = ToKiops(
      total,
      static_cast<SimDuration>(config_.measure_periods) * config_.qos.period);
  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    auto split = coordinator_->SplitOf(
        MakeClientId(static_cast<std::uint32_t>(i)));
    HAECHI_ASSERT(split.ok());
    result_->final_split.push_back(split.value());
  }
  result_->cluster_stats = coordinator_->stats();
  for (const auto& per_client : engines_) {
    auto& row = result_->engine_stats.emplace_back();
    for (const auto& engine : per_client) row.push_back(engine->stats());
  }

  coordinator_->Stop();
  for (auto& monitor : monitors_) monitor->Stop();
  for (auto& per_client : generators_) {
    for (auto& generator : per_client) generator->Stop();
  }
  return std::move(*result_);
}

}  // namespace haechi::harness
