#include "harness/cluster_experiment.hpp"

#include <cstdio>
#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/export.hpp"

namespace haechi::harness {

ClusterExperiment::ClusterExperiment(ClusterExperimentConfig config)
    : config_(std::move(config)) {
  HAECHI_EXPECTS(config_.data_nodes >= 1);
  HAECHI_EXPECTS(!config_.tenants.empty());
  HAECHI_EXPECTS(!config_.clients.empty());
  HAECHI_EXPECTS(config_.measure_periods > 0);
  for (const auto& spec : config_.clients) {
    HAECHI_EXPECTS(spec.tenant < config_.tenants.size());
    HAECHI_EXPECTS(spec.demand_per_node.size() == config_.data_nodes);
  }
  if (config_.shift_at >= 0) {
    HAECHI_EXPECTS(config_.shifted_demand.size() == config_.clients.size());
  }
  for (const auto& crash : config_.client_crashes) {
    HAECHI_EXPECTS(crash.client < config_.clients.size());
  }
}

ClusterExperiment::~ClusterExperiment() = default;

void ClusterExperiment::Build() {
  fabric_ = std::make_unique<rdma::Fabric>(sim_, config_.net, config_.seed);
  fabric_->set_copy_payloads(false);

  // Data nodes: KV store + monitor each. The coordinator assigns monitor d
  // the trace actor d, so emit the capacity events after it exists.
  std::vector<core::QosMonitor*> monitor_ptrs;
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    rdma::Node& node = fabric_->AddNode("data-" + std::to_string(d),
                                        rdma::NodeRole::kData);
    kvstore::KvServer::Config store;
    store.record_count = config_.records;
    servers_.push_back(std::make_unique<kvstore::KvServer>(node, store));
    // Each shard profiles its 1/D share of the cluster's capacity: token
    // minting (conversion) and admission are bounded per node, so a hot
    // node genuinely runs out of tokens instead of self-minting the whole
    // cluster's worth — that scarcity is what rebalancing and borrowing
    // exist to fix. The per-client local bound C_L stays whole: one
    // client's data path does not shrink because the cluster sharded.
    monitors_.push_back(std::make_unique<core::QosMonitor>(
        sim_, config_.qos, node,
        config_.net.GlobalCapacityIops() /
            static_cast<double>(config_.data_nodes),
        config_.net.LocalCapacityIops()));
    monitor_ptrs.push_back(monitors_.back().get());
  }
  cluster::ClusterCoordinator::Config cluster = config_.cluster;
  cluster.interval = config_.qos.period;
  coordinator_ = std::make_unique<cluster::ClusterCoordinator>(
      sim_, cluster, monitor_ptrs);

  // Per-node metrics rollup, one registry snapshot per cluster period. The
  // monitors run period boundaries in node order (they were started
  // 0..D-1 at the same alignment), so snapshotting from the last node's
  // hook captures every node's counters for that period plus the
  // coordinator's borrow/rebalance flow.
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    core::QosMonitor* monitor = monitors_[d].get();
    const std::string prefix = "node." + std::to_string(d) + ".";
    monitor->SetPeriodHook([this, d, monitor, prefix](
                               std::uint32_t period, std::int64_t completions,
                               std::int64_t estimate) {
      if (d == 0) {
        // Scripted control-api swaps land on node 0's boundary callback, so
        // the same boundary's PlanBoundary already sees the new policy.
        while (control_api_next_ < config_.control.api.size() &&
               config_.control.api[control_api_next_].first <= period) {
          const auto swap = config_.control.api[control_api_next_++];
          if (controller_ != nullptr) {
            controller_->SetPolicy(swap.second);
            HAECHI_TRACE_EVENT(
                obs::ActorKind::kHarness, 0,
                obs::EventType::kControllerConfig, period,
                static_cast<std::int64_t>(swap.second),
                static_cast<std::int64_t>(controller_->config().rules),
                static_cast<std::int64_t>(
                    controller_->config().quiet_periods));
          }
        }
      }
      metrics_.Add(prefix + "completions", completions);
      metrics_.Set(prefix + "capacity_estimate",
                   static_cast<double>(estimate));
      metrics_.Set(prefix + "initial_pool",
                   static_cast<double>(monitor->InitialPool()));
      metrics_.Set(prefix + "reclaimed_tokens",
                   static_cast<double>(monitor->stats().reclaimed_tokens));
      if (d + 1 == config_.data_nodes) {
        const auto& cstats = coordinator_->stats();
        const auto& ledger = coordinator_->borrow_ledger();
        metrics_.Set("cluster.borrow_granted",
                     static_cast<double>(ledger.TotalGranted()));
        metrics_.Set("cluster.borrow_repaid",
                     static_cast<double>(ledger.TotalRepaid()));
        metrics_.Set("cluster.borrow_outstanding",
                     static_cast<double>(ledger.TotalOutstanding()));
        metrics_.Set("cluster.borrow_requests",
                     static_cast<double>(cstats.borrow_requests));
        metrics_.Set("cluster.stale_reports",
                     static_cast<double>(cstats.stale_reports));
        metrics_.Set("cluster.rebalances",
                     static_cast<double>(cstats.rebalances));
        metrics_.Set("cluster.tokens_moved",
                     static_cast<double>(cstats.tokens_moved));
        metrics_.SnapshotPeriod(period);
      }
    });
  }
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    [[maybe_unused]] const auto& admission = monitors_[d]->admission();
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                       static_cast<std::uint32_t>(d),
                       obs::EventType::kNodeCapacity, 0,
                       static_cast<std::uint64_t>(d),
                       admission.AggregateCapacity(),
                       admission.LocalCapacity());
  }

  if (controller_ != nullptr) {
    for (std::size_t i = 0; i < config_.clients.size(); ++i) {
      const ClusterClientSpec& spec = config_.clients[i];
      std::int64_t demand = 0;
      for (const auto per_node : spec.demand_per_node) demand += per_node;
      controller_->SetClientSpec(static_cast<std::uint32_t>(i),
                                 spec.reservation, spec.limit, demand);
      const auto cls = config_.control.classes.find(i);
      if (cls != config_.control.classes.end()) {
        controller_->SetClientClass(static_cast<std::uint32_t>(i),
                                    cls->second);
      }
    }
    // Node 0 hosts the control boundary (the watchdog follows node 0's
    // pool in cluster mode); no readmit path — the coordinator's purge
    // machinery owns cluster-wide client death.
    monitors_[0]->SetController(controller_.get(), nullptr);
  }

  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    const ClusterTenantSpec& tenant = config_.tenants[t];
    const Status added =
        coordinator_->AddTenant(static_cast<cluster::TenantId>(t),
                                tenant.reservation, tenant.limit);
    HAECHI_ASSERT(added.ok());
    std::uint64_t members = 0;
    for (const auto& spec : config_.clients) {
      if (spec.tenant == t) ++members;
    }
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                       static_cast<std::uint32_t>(t),
                       obs::EventType::kTenantSpec, 0, tenant.reservation,
                       tenant.limit, members);
  }

  kv_clients_.resize(config_.clients.size());
  engines_.resize(config_.clients.size());
  generators_.resize(config_.clients.size());

  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    const ClusterClientSpec& spec = config_.clients[i];
    const auto client_id = MakeClientId(static_cast<std::uint32_t>(i));
    rdma::Node& client_node =
        fabric_->AddNode("client-" + std::to_string(i + 1));
    client_nodes_.push_back(&client_node);

    // Control QPs first: admission returns the per-node wirings.
    std::vector<rdma::QueuePair*> ctrl_srv_qps;
    std::vector<rdma::QueuePair*> ctrl_qps;
    for (std::size_t d = 0; d < config_.data_nodes; ++d) {
      rdma::Node& data_node = fabric_->node(d);
      auto& ctrl_cq = client_node.CreateCq();
      auto& ctrl_recv_cq = client_node.CreateCq();
      auto& ctrl_srv_cq = data_node.CreateCq();
      auto& ctrl_qp = client_node.CreateQp(ctrl_cq, ctrl_recv_cq);
      auto& ctrl_srv_qp = data_node.CreateQp(ctrl_srv_cq, ctrl_srv_cq);
      fabric_->Connect(ctrl_qp, ctrl_srv_qp);
      ctrl_qps.push_back(&ctrl_qp);
      ctrl_srv_qps.push_back(&ctrl_srv_qp);
    }
    auto wirings = coordinator_->AdmitClient(
        static_cast<cluster::TenantId>(spec.tenant), client_id,
        spec.reservation, spec.limit, ctrl_srv_qps);
    HAECHI_ASSERT(wirings.ok());

    for (std::size_t d = 0; d < config_.data_nodes; ++d) {
      rdma::Node& data_node = fabric_->node(d);

      auto& data_cq = client_node.CreateCq();
      auto& data_srv_cq = data_node.CreateCq();
      auto& data_qp = client_node.CreateQp(data_cq, data_cq, 1u << 22);
      auto& data_srv_qp = data_node.CreateQp(data_srv_cq, data_srv_cq);
      fabric_->Connect(data_qp, data_srv_qp);
      kv_clients_[i].push_back(std::make_unique<kvstore::KvClient>(
          client_node, data_qp, servers_[d]->view(),
          kvstore::KvClient::Config{}));

      auto& qos_cq = client_node.CreateCq();
      auto& qos_srv_cq = data_node.CreateCq();
      auto& qos_qp = client_node.CreateQp(qos_cq, qos_cq);
      auto& qos_srv_qp = data_node.CreateQp(qos_srv_cq, qos_srv_cq);
      fabric_->Connect(qos_qp, qos_srv_qp);

      auto engine = std::make_unique<core::ClientQosEngine>(
          sim_, client_id, config_.qos, client_node, qos_qp, *ctrl_qps[d],
          wirings.value()[d]);
      // D engines share the client id; give each its own trace actor (and
      // publish the binding) so the per-actor seq streams stay dense.
      const auto engine_actor =
          static_cast<std::uint32_t>(i * config_.data_nodes + d);
      engine->SetTraceActor(engine_actor);
      HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, engine_actor,
                         obs::EventType::kEngineBinding, 0,
                         static_cast<std::uint64_t>(i),
                         static_cast<std::uint64_t>(d),
                         static_cast<std::uint64_t>(spec.tenant));
      kvstore::KvClient* kv = kv_clients_[i][d].get();
      engine->SetIoBackend(
          [kv](std::uint64_t key, bool /*is_write*/,
               core::ClientQosEngine::CompleteFn done) {
            return kv->GetOneSided(
                key, [done = std::move(done)](
                         const kvstore::KvClient::Completion&) { done(); });
          });

      workload::DemandGenerator::Config gen;
      gen.pattern = spec.pattern;
      gen.period = config_.qos.period;
      gen.demand_per_period = spec.demand_per_node[d];
      Rng rng(config_.seed * 31 + i * 1009 + d * 7 + 3);
      workload::KeyChooser chooser(
          workload::KeyChooser::Kind::kUniformRandom, config_.records, 0.0,
          rng);
      core::ClientQosEngine* eng = engine.get();
      generators_[i].push_back(std::make_unique<workload::DemandGenerator>(
          sim_, gen, std::move(chooser),
          [this, eng, client_id, d](
              std::uint64_t key, bool /*is_write*/,
              workload::DemandGenerator::CompleteFn cb) {
            auto counted = [this, client_id, d, cb](bool measured) {
              if (measured && measuring_) {
                result_->node_series[d].Add(client_id, 1);
              }
              cb();
            };
            const Status s =
                eng->Submit(key, [counted]() mutable { counted(true); });
            if (!s.ok()) counted(false);  // shed on engine backpressure
          }));
      engines_[i].push_back(std::move(engine));
    }
  }
}

void ClusterExperiment::CrashClient(std::size_t index) {
  HAECHI_LOG_INFO("cluster experiment: crashing client %zu at t=%lld ns",
                  index, static_cast<long long>(sim_.Now()));
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                     static_cast<std::uint32_t>(index),
                     obs::EventType::kClientCrash, 0);
  fabric_->CrashNode(client_nodes_.at(index)->id());
  // Quiesce the software above the errored QPs. No monitor is told: each
  // node's report lease must discover the silence on its own, and the
  // first to fire triggers the coordinator's cluster-wide purge.
  for (auto& engine : engines_.at(index)) engine->Stop();
  for (auto& generator : generators_.at(index)) generator->Stop();
}

ClusterExperimentResult ClusterExperiment::Run() {
  result_ = std::make_unique<ClusterExperimentResult>();
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    result_->node_series.emplace_back(config_.clients.size());
  }

  bool want_recorder =
      config_.trace.enabled || !config_.trace.out_path.empty();
#if HAECHI_WATCHDOG_ENABLED
  const bool want_watchdog = config_.watchdog.enabled ||
                             !config_.watchdog.alerts_out.empty() ||
                             config_.watchdog.status_interval > 0 ||
                             config_.control.armed();
  want_recorder = want_recorder || want_watchdog;
#endif
  if (want_recorder) {
    obs::Recorder::Options trace_options;
    trace_options.ring_capacity = config_.trace.ring_capacity;
    trace_options.detail = config_.trace.detail;
    recorder_ = std::make_unique<obs::Recorder>(sim_, trace_options);
  }
#if HAECHI_WATCHDOG_ENABLED
  if (want_watchdog) {
    obs::WatchdogOptions wd_options;
    wd_options.guarantee_fraction = config_.watchdog.guarantee_fraction;
    watchdog_ = std::make_unique<obs::SloWatchdog>(wd_options);
    alerts_sink_ =
        std::make_unique<obs::JsonlAlertSink>(config_.watchdog.alerts_out);
    watchdog_->AddSink(alerts_sink_.get());
    if (config_.watchdog.status_interval > 0) {
      auto status_fn = config_.watchdog.status_fn;
      if (!status_fn) {
        status_fn = [](const obs::PeriodStatus& status) {
          std::fprintf(stderr, "%s\n",
                       obs::FormatStatusLine(status).c_str());
        };
      }
      watchdog_->SetStatusFn(std::move(status_fn),
                             config_.watchdog.status_interval);
    }
    if (config_.control.armed()) {
      controller_ = std::make_unique<core::control::QosController>(
          config_.control.ToControllerConfig());
      watchdog_->AddSink(controller_.get());
      std::stable_sort(config_.control.api.begin(), config_.control.api.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
    }
    recorder_->SetTap(
        [this](const obs::TraceEvent& event) { watchdog_->OnEvent(event); });
  }
#endif
  if (recorder_ != nullptr) {
    // Same truncation contract as the single-node harness: the first ring
    // overwrite raises one watchdog alert (or a log line) and the dropped
    // total is harvested into trace.dropped_events below.
    recorder_->SetDropNotify([this] {
#if HAECHI_WATCHDOG_ENABLED
      if (watchdog_ != nullptr) {
        watchdog_->NotifyTruncation(sim_.Now());
        return;
      }
#endif
      HAECHI_LOG_WARN(
          "cluster experiment: trace ring wrapped; any export of this run "
          "is truncated");
    });
  }
  obs::ScopedRecorder trace_scope(recorder_.get());
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0, obs::EventType::kRunConfig,
                     0, config_.qos.period, config_.qos.token_batch,
                     static_cast<std::int64_t>(config_.measure_periods));
  // The cluster-shape header must precede every monitor/cluster event: the
  // audit and watchdog switch into cluster mode when they see it.
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0,
                     obs::EventType::kClusterConfig, 0,
                     static_cast<std::uint64_t>(config_.data_nodes),
                     static_cast<std::uint64_t>(config_.tenants.size()),
                     static_cast<std::uint64_t>(config_.cluster.borrow.policy));
  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    [[maybe_unused]] const ClusterClientSpec& spec = config_.clients[i];
    [[maybe_unused]] std::int64_t demand = 0;
    for (const auto per_node : spec.demand_per_node) demand += per_node;
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                       static_cast<std::uint32_t>(i),
                       obs::EventType::kClientSpec, 0, spec.reservation,
                       spec.limit, demand);
  }
  if (controller_ != nullptr) {
    HAECHI_TRACE_EVENT(
        obs::ActorKind::kHarness, 0, obs::EventType::kControllerConfig, 0,
        static_cast<std::int64_t>(controller_->policy()),
        static_cast<std::int64_t>(controller_->config().rules),
        static_cast<std::int64_t>(controller_->config().quiet_periods));
  }

  Build();

  for (auto& monitor : monitors_) monitor->Start(0);
  coordinator_->Start(0);
  for (auto& per_client : generators_) {
    for (auto& generator : per_client) generator->Start(0);
  }
  if (config_.shift_at >= 0) {
    sim_.ScheduleAt(config_.shift_at, [this] {
      for (std::size_t i = 0; i < generators_.size(); ++i) {
        for (std::size_t d = 0; d < generators_[i].size(); ++d) {
          generators_[i][d]->set_demand(config_.shifted_demand[i][d]);
        }
      }
    });
  }
  for (const auto& crash : config_.client_crashes) {
    sim_.ScheduleAt(crash.crash_at,
                    [this, crash] { CrashClient(crash.client); });
  }

  sim_.ScheduleAt(config_.warmup, [this] {
    measuring_ = true;
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0,
                       obs::EventType::kMeasureStart, 0);
    for (auto& series : result_->node_series) series.BeginPeriod();
    measured_periods_ = 1;
    measure_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.qos.period, [this] {
          if (measured_periods_ >= config_.measure_periods) {
            measuring_ = false;
            measure_timer_->Stop();
            return;
          }
          for (auto& series : result_->node_series) series.BeginPeriod();
          ++measured_periods_;
        });
    measure_timer_->Start();
  });

  const SimTime end =
      config_.warmup +
      static_cast<SimTime>(config_.measure_periods) * config_.qos.period;
  sim_.RunUntil(end);
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0,
                     obs::EventType::kMeasureEnd, 0);

  std::int64_t total = 0;
  for (const auto& series : result_->node_series) total += series.Total();
  result_->total_kiops = ToKiops(
      total,
      static_cast<SimDuration>(config_.measure_periods) * config_.qos.period);
  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    auto split = coordinator_->SplitOf(
        MakeClientId(static_cast<std::uint32_t>(i)));
    // A crashed client was purged from the coordinator; record no split.
    result_->final_split.push_back(
        split.ok() ? split.value() : std::vector<std::int64_t>{});
  }
  result_->cluster_stats = coordinator_->stats();
  const auto& ledger = coordinator_->borrow_ledger();
  result_->borrow_granted = ledger.TotalGranted();
  result_->borrow_repaid = ledger.TotalRepaid();
  result_->borrow_outstanding = ledger.TotalOutstanding();
  for (const auto& monitor : monitors_) {
    result_->monitor_stats.push_back(monitor->stats());
  }
  for (const auto& per_client : engines_) {
    auto& row = result_->engine_stats.emplace_back();
    for (const auto& engine : per_client) row.push_back(engine->stats());
  }

  // End-of-run registry rollups: how well each node's share of the final
  // reservation split was actually used, the cluster borrow flow, and the
  // recorder's loss accounting.
  metrics_.Set("run.total_kiops", result_->total_kiops);
  for (std::size_t d = 0; d < config_.data_nodes; ++d) {
    std::int64_t split_sum = 0;
    for (const auto& split : result_->final_split) {
      if (d < split.size()) split_sum += split[d];
    }
    const std::int64_t completed = result_->node_series[d].Total();
    const std::string prefix = "node." + std::to_string(d) + ".";
    metrics_.Set(prefix + "split_reservation",
                 static_cast<double>(split_sum));
    metrics_.Add(prefix + "completed_total", completed);
    const double reserved_total =
        static_cast<double>(split_sum) *
        static_cast<double>(config_.measure_periods);
    metrics_.Set(prefix + "split_utilization",
                 reserved_total > 0.0
                     ? static_cast<double>(completed) / reserved_total
                     : 0.0);
  }
  metrics_.Add("cluster.borrowed_tokens_total", result_->borrow_granted);
  metrics_.Add("cluster.repaid_tokens_total", result_->borrow_repaid);
  metrics_.Add("cluster.stale_reports_total",
               static_cast<std::int64_t>(result_->cluster_stats.stale_reports));
  metrics_.Add("cluster.dead_clients",
               static_cast<std::int64_t>(result_->cluster_stats.dead_clients));
  if (recorder_ != nullptr) {
    metrics_.Add("trace.emitted_events",
                 static_cast<std::int64_t>(recorder_->TotalEmitted()));
    metrics_.Add("trace.dropped_events",
                 static_cast<std::int64_t>(recorder_->TotalDropped()));
  }

  if (recorder_ != nullptr && !config_.trace.out_path.empty()) {
    const Status exported =
        obs::ExportTraceFile(*recorder_, config_.trace.out_path);
    if (exported.ok()) {
      HAECHI_LOG_INFO("cluster experiment: exported %llu trace events to %s",
                      static_cast<unsigned long long>(
                          recorder_->TotalEmitted()),
                      config_.trace.out_path.c_str());
    } else {
      HAECHI_LOG_WARN("cluster experiment: trace export failed: %s",
                      exported.ToString().c_str());
    }
  }
#if HAECHI_WATCHDOG_ENABLED
  if (watchdog_ != nullptr) {
    const Status flushed = watchdog_->Finish();
    if (!flushed.ok()) {
      HAECHI_LOG_WARN("cluster experiment: alert sink flush failed: %s",
                      flushed.ToString().c_str());
    }
    metrics_.Add("watchdog.alerts",
                 static_cast<std::int64_t>(watchdog_->alerts().size()));
    metrics_.Add("watchdog.critical",
                 static_cast<std::int64_t>(
                     watchdog_->CountAtLeast(obs::AlertSeverity::kCritical)));
  }
#endif
  if (!config_.trace.metrics_out.empty()) {
    const Status written =
        metrics_.ToCsv().WriteFile(config_.trace.metrics_out);
    if (!written.ok()) {
      HAECHI_LOG_WARN("cluster experiment: metrics export failed: %s",
                      written.ToString().c_str());
    }
  }
  if (!config_.trace.prom_out.empty()) {
    const std::string exposition = metrics_.ToPrometheus();
    std::FILE* file = std::fopen(config_.trace.prom_out.c_str(), "wb");
    if (file == nullptr) {
      HAECHI_LOG_WARN("cluster experiment: cannot open prom file: %s",
                      config_.trace.prom_out.c_str());
    } else {
      const std::size_t written =
          std::fwrite(exposition.data(), 1, exposition.size(), file);
      const int closed = std::fclose(file);
      if (written != exposition.size() || closed != 0) {
        HAECHI_LOG_WARN("cluster experiment: short write to prom file: %s",
                        config_.trace.prom_out.c_str());
      }
    }
  }

  coordinator_->Stop();
  for (auto& monitor : monitors_) monitor->Stop();
  for (auto& per_client : generators_) {
    for (auto& generator : per_client) generator->Stop();
  }
  return std::move(*result_);
}

}  // namespace haechi::harness
