// Concurrent-runtime experiment assembly: the threaded twin of Experiment.
//
// Maps the same ExperimentConfig onto src/runtime/ — a ThreadedFabric
// (process-shared memory region, pool sharded per qos.pool_shards), a
// ThreadedMonitor on wall-clock timers, and a pool of N worker threads
// (config.runtime_workers; 0 = one per client) multiplexing the clients'
// 4 KB record-read loops through their ThreadedEngines via the
// non-blocking TryAcquireBatch event loop. Used by `haechi_sim
// --runtime=threads` and the runtime differential tests.
//
// Scope: the threaded backend runs the QoS protocol proper. Scripted
// *crash-only* client faults are supported (the engine stops silently at
// crash_at; the monitor's report lease reclaims the residual), and so are
// the SLO watchdog and the closed-loop controller — the recorder tap
// serialises multi-threaded emitters through a mutex before the
// single-threaded watchdog. Features that belong to the simulated cluster
// — fabric fault plans, client restarts, background traffic, the
// two-sided I/O path, bare mode — are rejected up front (HAECHI_EXPECTS)
// rather than half-supported.
//
// Determinism caveat: results are statistically, not bitwise, reproducible.
// The same config and seed produce the same admitted reservations and the
// same conservation identities (checked by the audit), but per-period
// completion counts vary with scheduling. Compare distributions and
// invariants across runtimes, not event streams.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "runtime/threaded_engine.hpp"
#include "runtime/threaded_fabric.hpp"
#include "runtime/threaded_monitor.hpp"
#include "stats/period_series.hpp"

namespace haechi::harness {

struct ThreadedExperimentResult {
  /// Completed I/Os per measured period per client (same shape as the sim
  /// result's series; rows are QoS periods warmup+1 .. warmup+measure).
  stats::PeriodSeries series;
  std::vector<std::int64_t> reservations;
  double total_kiops = 0.0;
  /// (period, reported completions, next estimate) per monitor period.
  std::vector<ExperimentResult::CapacityPoint> capacity_trace;
  runtime::ThreadedMonitor::Stats monitor_stats;
  std::vector<runtime::ThreadedEngine::Stats> engine_stats;
  /// The monitor's per-period token conservation ledger.
  std::vector<runtime::ThreadedMonitor::PeriodLedger> ledger;
  /// Wall-clock duration of the run (ns, Clock epoch-relative).
  SimDuration wall_time = 0;

  /// One worker thread's occupancy over the run (single-writer rows, read
  /// after the join): how often the pool's threads did useful work vs.
  /// parked with every owned client blocked.
  struct WorkerStats {
    std::uint64_t batches = 0;      // kToken grants serviced
    std::uint64_t ios = 0;          // record reads issued
    std::uint64_t idle_sleeps = 0;  // no-progress 100 us parks
  };
  std::vector<WorkerStats> worker_stats;
  /// Shard-contention telemetry (threaded runtime only).
  runtime::ThreadedMonitor::RuntimeStats monitor_runtime_stats;
  std::vector<runtime::ThreadedEngine::RuntimeStats> engine_runtime_stats;
  /// Report-slot seqlock writer CAS retries summed over all slots.
  std::uint64_t report_write_retries = 0;
};

class ThreadedExperiment {
 public:
  explicit ThreadedExperiment(ExperimentConfig config);
  ~ThreadedExperiment();

  ThreadedExperiment(const ThreadedExperiment&) = delete;
  ThreadedExperiment& operator=(const ThreadedExperiment&) = delete;

  /// Builds the threaded cluster, runs warm-up plus the measurement
  /// window in real time, joins every thread, and returns the results.
  ThreadedExperimentResult Run();

  // --- introspection for tests (valid after Run(); all threads joined) ----
  [[nodiscard]] runtime::ThreadedMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] runtime::ThreadedEngine& engine(std::size_t i) {
    return *engines_.at(i);
  }
  [[nodiscard]] runtime::ThreadedFabric& fabric() { return *fabric_; }
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }
  /// Per-period snapshots plus the runtime-layer rollups (shard FAA mix,
  /// seqlock retries, worker occupancy) — what trace.metrics_out/prom_out
  /// persist for the threaded backend.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  /// The online watchdog (null unless config.watchdog or an armed
  /// controller wired one; always null when HAECHI_WATCHDOG=OFF).
  [[nodiscard]] obs::SloWatchdog* watchdog() { return watchdog_.get(); }
  [[nodiscard]] core::control::QosController* controller() {
    return controller_.get();
  }
  /// The watchdog's buffered JSONL alert document ("" when not armed).
  [[nodiscard]] const std::string& alerts_jsonl() const {
    static const std::string kEmpty;
    return alerts_sink_ != nullptr ? alerts_sink_->buffer() : kEmpty;
  }

 private:
  void WorkerLoop(std::size_t worker);

  ExperimentConfig config_;
  std::size_t warmup_periods_ = 0;
  /// Worker threads in the pool; clients are owned round-robin
  /// (client i belongs to worker i % worker_count_), which keeps each
  /// completions_ row single-writer.
  std::size_t worker_count_ = 0;
  runtime::Clock clock_;
  std::unique_ptr<obs::Recorder> recorder_;
  /// Serialises the recorder tap: the monitor's timer threads and every
  /// worker-owned engine emit concurrently, and the watchdog is
  /// single-threaded by contract.
  std::mutex watchdog_mu_;
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  std::unique_ptr<obs::JsonlAlertSink> alerts_sink_;
  std::unique_ptr<core::control::QosController> controller_;
  std::size_t control_api_next_ = 0;
  std::unique_ptr<runtime::ThreadedFabric> fabric_;
  std::unique_ptr<runtime::ThreadedMonitor> monitor_;
  std::vector<std::unique_ptr<runtime::ThreadedEngine>> engines_;
  std::vector<std::size_t> ports_;
  /// Scripted crash time per client (kSimTimeMax = none).
  std::vector<SimTime> crash_at_;
  /// completions_[client][period] — written only by that client's owning
  /// worker thread, read by Run() after the join.
  std::vector<std::vector<std::int64_t>> completions_;
  /// worker_stats_[worker] — written only by that worker, read after join.
  std::vector<ThreadedExperimentResult::WorkerStats> worker_stats_;
  /// Written by the monitor thread (period hook) during the run and by
  /// Run() after the join — never concurrently.
  obs::MetricsRegistry metrics_;
  std::vector<std::thread> workers_;
};

}  // namespace haechi::harness
