// Concurrent-runtime experiment assembly: the threaded twin of Experiment.
//
// Maps the same ExperimentConfig onto src/runtime/ — a ThreadedFabric
// (process-shared memory region), a ThreadedMonitor on wall-clock timers,
// and one worker thread per client driving a closed-loop 4 KB record-read
// workload through its ThreadedEngine. Used by `haechi_sim
// --runtime=threads` and the runtime differential tests.
//
// Scope: the threaded backend runs the QoS protocol proper. Features that
// belong to the simulated cluster — fault plans, scripted client crashes,
// background traffic, the two-sided I/O path, bare mode, the SLO watchdog
// tap — are rejected up front (HAECHI_EXPECTS) rather than half-supported.
//
// Determinism caveat: results are statistically, not bitwise, reproducible.
// The same config and seed produce the same admitted reservations and the
// same conservation identities (checked by the audit), but per-period
// completion counts vary with scheduling. Compare distributions and
// invariants across runtimes, not event streams.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "harness/experiment.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "runtime/threaded_engine.hpp"
#include "runtime/threaded_fabric.hpp"
#include "runtime/threaded_monitor.hpp"
#include "stats/period_series.hpp"

namespace haechi::harness {

struct ThreadedExperimentResult {
  /// Completed I/Os per measured period per client (same shape as the sim
  /// result's series; rows are QoS periods warmup+1 .. warmup+measure).
  stats::PeriodSeries series;
  std::vector<std::int64_t> reservations;
  double total_kiops = 0.0;
  /// (period, reported completions, next estimate) per monitor period.
  std::vector<ExperimentResult::CapacityPoint> capacity_trace;
  runtime::ThreadedMonitor::Stats monitor_stats;
  std::vector<runtime::ThreadedEngine::Stats> engine_stats;
  /// The monitor's per-period token conservation ledger.
  std::vector<runtime::ThreadedMonitor::PeriodLedger> ledger;
  /// Wall-clock duration of the run (ns, Clock epoch-relative).
  SimDuration wall_time = 0;
};

class ThreadedExperiment {
 public:
  explicit ThreadedExperiment(ExperimentConfig config);
  ~ThreadedExperiment();

  ThreadedExperiment(const ThreadedExperiment&) = delete;
  ThreadedExperiment& operator=(const ThreadedExperiment&) = delete;

  /// Builds the threaded cluster, runs warm-up plus the measurement
  /// window in real time, joins every thread, and returns the results.
  ThreadedExperimentResult Run();

  // --- introspection for tests (valid after Run(); all threads joined) ----
  [[nodiscard]] runtime::ThreadedMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] runtime::ThreadedEngine& engine(std::size_t i) {
    return *engines_.at(i);
  }
  [[nodiscard]] runtime::ThreadedFabric& fabric() { return *fabric_; }
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }

 private:
  void WorkerLoop(std::size_t index);

  ExperimentConfig config_;
  std::size_t warmup_periods_ = 0;
  runtime::Clock clock_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<runtime::ThreadedFabric> fabric_;
  std::unique_ptr<runtime::ThreadedMonitor> monitor_;
  std::vector<std::unique_ptr<runtime::ThreadedEngine>> engines_;
  std::vector<std::size_t> ports_;
  /// completions_[client][period] — written only by that client's worker
  /// thread, read by Run() after the join.
  std::vector<std::vector<std::int64_t>> completions_;
  std::vector<std::thread> workers_;
};

}  // namespace haechi::harness
