// Experiment assembly: builds the simulated cluster (1 data node + N client
// nodes), wires the chosen QoS mode, drives the workload, and collects the
// per-period/per-client measurements every figure of the paper is made of.
//
// This is the single entry point used by all bench binaries, the examples,
// and the integration tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/control/controller.hpp"
#include "core/engine.hpp"
#include "core/monitor.hpp"
#include "kvstore/client.hpp"
#include "kvstore/server.hpp"
#include "net/model_params.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rdma/fabric.hpp"
#include "rdma/fault.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/period_series.hpp"
#include "workload/generator.hpp"

namespace haechi::harness {

/// Which QoS mechanism runs on the cluster.
enum class Mode {
  kBare,         // no QoS: the paper's baseline
  kHaechi,       // full protocol
  kBasicHaechi,  // Haechi without token conversion (Fig 10/11 ablation)
};

/// Which I/O path clients use.
enum class IoPath { kOneSided, kTwoSided };

/// Per-client experiment parameters (all rates in I/Os per QoS period).
struct ClientSpec {
  std::int64_t reservation = 0;
  std::int64_t limit = 0;  // 0 = unlimited
  std::int64_t demand = 0;
  workload::RequestPattern pattern = workload::RequestPattern::kBurst;
  /// YCSB-style write mix (0.0 = the paper's read-only workload C).
  double write_fraction = 0.0;
};

struct ExperimentConfig {
  Mode mode = Mode::kHaechi;
  IoPath io_path = IoPath::kOneSided;
  std::vector<ClientSpec> clients;

  net::ModelParams net;
  core::QosConfig qos;

  /// Profiled capacities fed to admission control and Algorithm 1; 0 means
  /// "use the fabric model's analytic value" (the calibrated C_G / C_L).
  double profiled_global_iops = 0.0;
  double profiled_local_iops = 0.0;

  std::uint64_t records = 16384;
  bool copy_payloads = false;  // true: READs move real bytes (slower)
  std::size_t outstanding = 64;

  SimDuration warmup = Seconds(3);
  std::size_t measure_periods = 30;
  std::uint64_t seed = 42;

  /// Threaded runtime only: worker threads multiplexing the client I/O
  /// loops (clients are assigned round-robin). 0 = one worker per client.
  /// The simulator ignores this.
  std::size_t runtime_workers = 0;

  workload::KeyChooser::Kind key_kind =
      workload::KeyChooser::Kind::kUniformRandom;
  double key_theta = 0.99;

  /// Background one-sided traffic per client node (I/Os per period),
  /// active in [background_on, background_off) — the Set-4 congestion
  /// injection. 0 disables.
  std::int64_t background_demand = 0;
  SimTime background_on = 0;
  SimTime background_off = kSimTimeMax;

  /// Deterministic fabric fault schedule (drops/delays/duplicates/QP
  /// errors/node events), installed before the run starts. Empty = none.
  rdma::FaultPlan faults;

  /// Scripted whole-client failure: at crash_at the client's node crashes
  /// (engine and generators stop mid-flight; the monitor's report lease
  /// later reclaims its reservation). At restart_at — if not kSimTimeMax —
  /// the node restarts with fresh QPs and the client re-admits under its
  /// old id (the re-admission handshake) and resumes its workload.
  struct ClientFault {
    std::size_t client = 0;
    SimTime crash_at = 0;
    SimTime restart_at = kSimTimeMax;
  };
  std::vector<ClientFault> client_faults;

  /// Flight-recorder tracing (src/obs). `enabled` installs a Recorder for
  /// the whole run (cluster build through teardown); `out_path` also
  /// exports the merged stream when the run ends (".json" => Perfetto
  /// trace-event JSON, anything else => CSV — the audit tool's input).
  /// `metrics_out` writes the per-period metrics snapshots as CSV;
  /// `prom_out` writes the same snapshots as Prometheus text exposition
  /// (one sample per row, the period as a label). When tracing is compiled
  /// out (HAECHI_TRACE=OFF) a recorder is still installed but records only
  /// the harness's own bookkeeping events.
  struct TraceConfig {
    bool enabled = false;
    bool detail = false;  // also record per-I/O kRdma*/kKv* events
    std::size_t ring_capacity = 1u << 16;
    std::string out_path;
    std::string metrics_out;
    std::string prom_out;
  };
  TraceConfig trace;

  /// Online SLO watchdog (src/obs/slo). Any of `enabled`, a nonempty
  /// `alerts_out`, or a nonzero `status_interval` arms it; arming forces a
  /// flight recorder (the watchdog taps its event stream). `alerts_out`
  /// writes one JSON line per alert when the run ends; `status_interval=N`
  /// invokes `status_fn` (default: a stderr status line) after every Nth
  /// evaluated period. Inert when HAECHI_WATCHDOG=OFF — the wiring
  /// compiles out and haechi_sim behaves as before.
  struct WatchdogConfig {
    bool enabled = false;
    double guarantee_fraction = 0.95;
    std::string alerts_out;
    std::uint32_t status_interval = 0;
    std::function<void(const obs::PeriodStatus&)> status_fn;
  };
  WatchdogConfig watchdog;

  /// Closed-loop QoS control plane (src/core/control, DESIGN.md §14). A
  /// non-kOff policy (or a scripted swap below) arms the controller, which
  /// force-arms the watchdog — the controller feeds on its alert stream.
  /// Inert when HAECHI_WATCHDOG=OFF, like the watchdog itself.
  struct ControlConfig {
    core::control::Policy policy = core::control::Policy::kOff;
    std::uint32_t rules = core::control::kAllRules;
    std::uint32_t quiet_periods = 1;
    std::uint32_t oscillation_quiet = 6;
    std::uint32_t eta_recover_after = 16;
    std::int64_t min_reservation = 0;
    /// Service classes by client index; missing = permissive default.
    std::map<std::size_t, core::control::ClientClass> classes;
    /// Scripted runtime policy swaps (the --control-api surface): applied
    /// at the first boundary whose period counter is >= `first`.
    std::vector<std::pair<std::uint32_t, core::control::Policy>> api;

    [[nodiscard]] bool armed() const {
      return policy != core::control::Policy::kOff || !api.empty();
    }
    [[nodiscard]] core::control::ControllerConfig ToControllerConfig() const {
      core::control::ControllerConfig out;
      out.policy = policy;
      out.rules = rules;
      out.quiet_periods = quiet_periods;
      out.oscillation_quiet = oscillation_quiet;
      out.eta_recover_after = eta_recover_after;
      out.min_reservation = min_reservation;
      return out;
    }
  };
  ControlConfig control;
};

struct ExperimentResult {
  /// Completed I/Os per measured period per client.
  stats::PeriodSeries series;
  /// The reservation vector actually admitted (tokens per period).
  std::vector<std::int64_t> reservations;
  /// Submit-to-completion latency over the measurement window (ns).
  stats::Histogram latency;
  /// Aggregate throughput over the measurement window.
  double total_kiops = 0.0;
  /// (period index, reported completions, next-period capacity estimate)
  /// — one entry per monitor period, QoS modes only.
  struct CapacityPoint {
    std::uint32_t period;
    std::int64_t completions;
    std::int64_t estimate;
  };
  std::vector<CapacityPoint> capacity_trace;
  core::QosMonitor::Stats monitor_stats;
  /// One entry per client (the *current* engine after any restarts).
  std::vector<core::ClientQosEngine::Stats> engine_stats;
  std::uint64_t events_run = 0;
  /// Fabric fault-injection counters (zero when no plan was installed).
  rdma::Fabric::FaultStats fault_stats;
  /// Per-I/O spans assembled from the detail trace (empty unless
  /// trace.detail was on and tracing is compiled in), sorted by
  /// (engine, io_id) — the profiler's input.
  std::vector<obs::IoSpan> spans;
  obs::SpanAssemblyStats span_stats;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Builds the cluster, runs warm-up plus the measurement window, and
  /// returns the collected results.
  ExperimentResult Run();

  // --- introspection for integration tests (valid after Run()) -----------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] rdma::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] core::QosMonitor* monitor() { return monitor_.get(); }
  /// The client's *current* engine (the newest incarnation after restarts).
  [[nodiscard]] core::ClientQosEngine& engine(std::size_t i) {
    return *rigs_.at(i).engine;
  }
  [[nodiscard]] kvstore::KvServer& server() { return *server_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  /// The run's flight recorder (null unless config.trace asked for one).
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }
  /// Per-period metrics snapshots (populated for QoS modes during Run).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// The online watchdog (null unless config.watchdog armed one — always
  /// null when HAECHI_WATCHDOG=OFF).
  [[nodiscard]] obs::SloWatchdog* watchdog() { return watchdog_.get(); }
  /// The closed-loop controller (null unless config.control armed one —
  /// always null when HAECHI_WATCHDOG=OFF).
  [[nodiscard]] core::control::QosController* controller() {
    return controller_.get();
  }
  /// The watchdog's buffered JSONL alert document ("" when not armed) —
  /// the same bytes `alerts_out` persists.
  [[nodiscard]] const std::string& alerts_jsonl() const {
    static const std::string kEmpty;
    return alerts_sink_ != nullptr ? alerts_sink_->buffer() : kEmpty;
  }

 private:
  /// The live machinery of one client. Pointers move to new incarnations
  /// on restart; retired objects stay owned by the pools below (in-flight
  /// simulator callbacks may still reach them).
  struct ClientRig {
    rdma::Node* node = nullptr;
    kvstore::KvClient* kv = nullptr;
    core::ClientQosEngine* engine = nullptr;  // null in bare mode
    workload::DemandGenerator* generator = nullptr;
  };

  void BuildCluster();
  void BuildClient(std::size_t index);
  /// (Re-)creates the client's QPs, KV client, engine and generator on its
  /// existing node; used at build time and again after a node restart.
  void WireClient(std::size_t index);
  void CrashClient(std::size_t index);
  void RestartClient(std::size_t index);
  /// Controller kReadmit action: stop the client's current incarnation and
  /// re-wire it under its old id (deferred to the next sim event).
  void ReadmitClient(std::size_t index);
  void BuildBackground(std::size_t index);
  /// Record-sized dummy payload shared by all PUTs (its bytes only matter
  /// when payload copying is on).
  [[nodiscard]] std::span<const std::byte> WriteValue();

  ExperimentConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<kvstore::KvServer> server_;
  std::unique_ptr<core::QosMonitor> monitor_;
  // Ownership pools; entries are never destroyed mid-run (restart retires
  // the old incarnation here — its CQ callbacks and timers must stay
  // valid) — rigs_ points at the live ones.
  std::vector<std::unique_ptr<kvstore::KvClient>> kv_clients_;
  std::vector<std::unique_ptr<core::ClientQosEngine>> engines_;
  std::vector<std::unique_ptr<workload::DemandGenerator>> generators_;
  std::vector<ClientRig> rigs_;
  std::vector<std::unique_ptr<kvstore::KvClient>> background_clients_;
  std::vector<std::unique_ptr<workload::DemandGenerator>> background_gens_;
  std::unique_ptr<ExperimentResult> result_;
  std::unique_ptr<obs::Recorder> recorder_;
  // Null unless config_.watchdog arms them (never armed when
  // HAECHI_WATCHDOG=OFF).
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  std::unique_ptr<obs::JsonlAlertSink> alerts_sink_;
  std::unique_ptr<core::control::QosController> controller_;
  /// Scripted policy swaps not yet applied (drained by the period hook).
  std::size_t control_api_next_ = 0;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<sim::PeriodicTimer> measure_timer_;
  std::size_t measured_periods_ = 0;
  bool measuring_ = false;
  std::vector<std::byte> write_value_;
};

/// Convenience: N identical clients.
std::vector<ClientSpec> UniformClients(std::size_t n, std::int64_t reservation,
                                       std::int64_t demand,
                                       workload::RequestPattern pattern);

}  // namespace haechi::harness
