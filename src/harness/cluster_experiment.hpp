// Cluster experiment assembly: D data nodes (KV store + QoS monitor each)
// behind a cluster::ClusterCoordinator, clients striped across every node
// with one QoS engine per (client, node) pair, tenants enveloping the
// clients' cluster-wide reservations, and optional cross-server token
// borrowing.
//
// This is the cluster-mode counterpart of harness::Experiment and the
// entry point for `haechi_sim --cluster`, the cluster benches and the
// cluster tests. Tracing emits the cluster-shape events (kClusterConfig,
// kTenantSpec, kEngineBinding, kNodeCapacity) the audit needs to replay a
// multi-node run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/coordinator.hpp"
#include "core/engine.hpp"
#include "core/monitor.hpp"
#include "harness/experiment.hpp"
#include "kvstore/client.hpp"
#include "kvstore/server.hpp"
#include "net/model_params.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"
#include "stats/period_series.hpp"
#include "workload/generator.hpp"

namespace haechi::harness {

/// A tenant's cluster-wide QoS envelope.
struct ClusterTenantSpec {
  std::int64_t reservation = 0;  // R_t (I/Os per period, cluster-wide)
  std::int64_t limit = 0;        // L_t; 0 = unlimited
};

struct ClusterClientSpec {
  /// Index into ClusterExperimentConfig::tenants.
  std::size_t tenant = 0;
  /// Cluster-wide reservation (I/Os per period, summed over nodes).
  std::int64_t reservation = 0;
  std::int64_t limit = 0;  // per node; 0 = unlimited
  /// Demand per period directed at each data node.
  std::vector<std::int64_t> demand_per_node;
  workload::RequestPattern pattern = workload::RequestPattern::kOpenLoop;
};

struct ClusterExperimentConfig {
  std::size_t data_nodes = 2;
  std::vector<ClusterTenantSpec> tenants;
  std::vector<ClusterClientSpec> clients;

  net::ModelParams net;
  core::QosConfig qos;
  cluster::ClusterCoordinator::Config cluster;

  std::uint64_t records = 4096;
  SimDuration warmup = Seconds(2);
  std::size_t measure_periods = 8;
  std::uint64_t seed = 42;

  /// Optional demand shift: at `shift_at` (absolute sim time) every
  /// client's per-node demand switches to `shifted_demand[client][node]`.
  SimTime shift_at = -1;
  std::vector<std::vector<std::int64_t>> shifted_demand;

  /// Scripted whole-client crash: at crash_at the client's node fails and
  /// its engines/generators stop mid-flight. Every monitor's report lease
  /// independently discovers the silence; the first one to fire triggers
  /// the coordinator's cluster-wide purge.
  struct ClientCrash {
    std::size_t client = 0;
    SimTime crash_at = 0;
  };
  std::vector<ClientCrash> client_crashes;

  /// Same knobs (and semantics) as the single-node experiment.
  ExperimentConfig::TraceConfig trace;
  ExperimentConfig::WatchdogConfig watchdog;
  /// Closed-loop controller, attached to node 0's monitor (the watchdog
  /// only follows node 0's pool in cluster mode). W1 resizing is inert —
  /// the cluster watchdog leaves reservation verdicts to the offline
  /// audit — so the cluster controller acts on W5/W6/lease rules.
  ExperimentConfig::ControlConfig control;
};

struct ClusterExperimentResult {
  /// Completed I/Os per measured period per client, one series per node.
  std::vector<stats::PeriodSeries> node_series;
  /// Final per-node reservation split of every client (empty vector for a
  /// client that died during the run).
  std::vector<std::vector<std::int64_t>> final_split;
  /// Engine stats indexed [client][node].
  std::vector<std::vector<core::ClientQosEngine::Stats>> engine_stats;
  /// Monitor stats indexed [node].
  std::vector<core::QosMonitor::Stats> monitor_stats;
  cluster::ClusterCoordinator::Stats cluster_stats;
  /// Borrow-ledger totals at the end of the run.
  std::int64_t borrow_granted = 0;
  std::int64_t borrow_repaid = 0;
  std::int64_t borrow_outstanding = 0;
  double total_kiops = 0.0;
};

class ClusterExperiment {
 public:
  explicit ClusterExperiment(ClusterExperimentConfig config);
  ~ClusterExperiment();

  ClusterExperiment(const ClusterExperiment&) = delete;
  ClusterExperiment& operator=(const ClusterExperiment&) = delete;

  ClusterExperimentResult Run();

  // --- introspection for tests (valid after Run()) ------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] cluster::ClusterCoordinator& coordinator() {
    return *coordinator_;
  }
  [[nodiscard]] core::QosMonitor& monitor(std::size_t node) {
    return *monitors_.at(node);
  }
  [[nodiscard]] const ClusterExperimentConfig& config() const {
    return config_;
  }
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }
  /// Cluster-wide metrics view: per-node completions/capacity/pool plus the
  /// coordinator's borrow and rebalance flow, snapshotted once per QoS
  /// period (after the last node's period boundary) — what `--metrics-out`
  /// and `--prom-out` persist in cluster mode.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] obs::SloWatchdog* watchdog() { return watchdog_.get(); }
  [[nodiscard]] core::control::QosController* controller() {
    return controller_.get();
  }
  [[nodiscard]] const std::string& alerts_jsonl() const {
    static const std::string kEmpty;
    return alerts_sink_ != nullptr ? alerts_sink_->buffer() : kEmpty;
  }

 private:
  void Build();
  void CrashClient(std::size_t index);

  ClusterExperimentConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<std::unique_ptr<kvstore::KvServer>> servers_;
  std::vector<std::unique_ptr<core::QosMonitor>> monitors_;
  std::unique_ptr<cluster::ClusterCoordinator> coordinator_;
  std::vector<rdma::Node*> client_nodes_;
  // Indexed [client][node].
  std::vector<std::vector<std::unique_ptr<kvstore::KvClient>>> kv_clients_;
  std::vector<std::vector<std::unique_ptr<core::ClientQosEngine>>> engines_;
  std::vector<std::vector<std::unique_ptr<workload::DemandGenerator>>>
      generators_;
  std::unique_ptr<ClusterExperimentResult> result_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<obs::SloWatchdog> watchdog_;
  std::unique_ptr<obs::JsonlAlertSink> alerts_sink_;
  std::unique_ptr<core::control::QosController> controller_;
  std::size_t control_api_next_ = 0;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<sim::PeriodicTimer> measure_timer_;
  std::size_t measured_periods_ = 0;
  bool measuring_ = false;
};

}  // namespace haechi::harness
