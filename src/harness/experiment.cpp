#include "harness/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/export.hpp"

namespace haechi::harness {

std::vector<ClientSpec> UniformClients(std::size_t n, std::int64_t reservation,
                                       std::int64_t demand,
                                       workload::RequestPattern pattern) {
  std::vector<ClientSpec> specs(n);
  for (auto& spec : specs) {
    spec.reservation = reservation;
    spec.demand = demand;
    spec.pattern = pattern;
  }
  return specs;
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)) {
  HAECHI_EXPECTS(!config_.clients.empty());
  HAECHI_EXPECTS(config_.measure_periods > 0);
  if (config_.io_path == IoPath::kTwoSided) {
    // The paper's two-sided runs are baseline-only; Haechi regulates the
    // one-sided path.
    HAECHI_EXPECTS(config_.mode == Mode::kBare);
  }
}

Experiment::~Experiment() = default;

std::span<const std::byte> Experiment::WriteValue() {
  if (write_value_.empty()) {
    write_value_.assign(server_->config().payload_bytes, std::byte{0xD0});
  }
  return write_value_;
}

void Experiment::BuildCluster() {
  fabric_ = std::make_unique<rdma::Fabric>(sim_, config_.net, config_.seed);
  fabric_->set_copy_payloads(config_.copy_payloads);

  rdma::Node& data_node =
      fabric_->AddNode("data-node", rdma::NodeRole::kData);
  kvstore::KvServer::Config store_config;
  store_config.record_count = config_.records;
  server_ = std::make_unique<kvstore::KvServer>(data_node, store_config);
  if (config_.copy_payloads) server_->PopulateDeterministic();

  if (config_.mode != Mode::kBare) {
    core::QosConfig qos = config_.qos;
    qos.token_conversion = config_.mode == Mode::kHaechi;
    const double global_iops = config_.profiled_global_iops > 0
                                   ? config_.profiled_global_iops
                                   : config_.net.GlobalCapacityIops();
    const double local_iops = config_.profiled_local_iops > 0
                                  ? config_.profiled_local_iops
                                  : config_.net.LocalCapacityIops();
    monitor_ = std::make_unique<core::QosMonitor>(sim_, qos, data_node,
                                                  global_iops, local_iops);
    monitor_->SetPeriodHook([this](std::uint32_t period,
                                   std::int64_t completions,
                                   std::int64_t estimate) {
      // Scripted control-api swaps land on the boundary callback, so the
      // same boundary's PlanBoundary already sees the new policy.
      while (control_api_next_ < config_.control.api.size() &&
             config_.control.api[control_api_next_].first <= period) {
        const auto swap = config_.control.api[control_api_next_++];
        if (controller_ != nullptr) {
          controller_->SetPolicy(swap.second);
          HAECHI_TRACE_EVENT(
              obs::ActorKind::kHarness, 0, obs::EventType::kControllerConfig,
              period, static_cast<std::int64_t>(swap.second),
              static_cast<std::int64_t>(controller_->config().rules),
              static_cast<std::int64_t>(controller_->config().quiet_periods));
        }
      }
      result_->capacity_trace.push_back({period, completions, estimate});
      // One metrics snapshot per QoS period: the registry's long-format
      // CSV carries the same per-period trajectory the figures plot.
      metrics_.Add("monitor.completions", completions);
      metrics_.Set("monitor.capacity_estimate",
                   static_cast<double>(estimate));
      metrics_.Set("monitor.initial_pool",
                   static_cast<double>(monitor_->InitialPool()));
      metrics_.Set("monitor.reclaimed_tokens",
                   static_cast<double>(monitor_->stats().reclaimed_tokens));
      metrics_.Record("monitor.period_completions", completions);
      metrics_.SnapshotPeriod(period);
    });
    if (controller_ != nullptr) {
      for (std::size_t i = 0; i < config_.clients.size(); ++i) {
        const ClientSpec& spec = config_.clients[i];
        controller_->SetClientSpec(static_cast<std::uint32_t>(i),
                                   spec.reservation, spec.limit, spec.demand);
        const auto cls = config_.control.classes.find(i);
        if (cls != config_.control.classes.end()) {
          controller_->SetClientClass(static_cast<std::uint32_t>(i),
                                      cls->second);
        }
      }
      monitor_->SetController(controller_.get(), [this](ClientId client) {
        ReadmitClient(static_cast<std::size_t>(Raw(client)));
      });
    }
  }

  for (std::size_t i = 0; i < config_.clients.size(); ++i) BuildClient(i);
  if (config_.background_demand > 0) {
    for (std::size_t i = 0; i < config_.clients.size(); ++i) {
      BuildBackground(i);
    }
  }

  if (!config_.faults.Empty()) fabric_->InstallFaultPlan(config_.faults);
  for (const auto& fault : config_.client_faults) {
    HAECHI_EXPECTS(fault.client < rigs_.size());
    sim_.ScheduleAt(fault.crash_at,
                    [this, fault] { CrashClient(fault.client); });
    if (fault.restart_at != kSimTimeMax) {
      HAECHI_EXPECTS(fault.restart_at > fault.crash_at);
      sim_.ScheduleAt(fault.restart_at,
                      [this, fault] { RestartClient(fault.client); });
    }
  }
}

void Experiment::BuildClient(std::size_t index) {
  HAECHI_EXPECTS(rigs_.size() == index);
  rigs_.push_back(ClientRig{});
  rigs_.back().node =
      &fabric_->AddNode("client-" + std::to_string(index + 1));
  WireClient(index);
}

void Experiment::CrashClient(std::size_t index) {
  ClientRig& rig = rigs_.at(index);
  HAECHI_LOG_INFO("experiment: crashing client %zu at t=%lld ns", index,
                  static_cast<long long>(sim_.Now()));
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                     static_cast<std::uint32_t>(index),
                     obs::EventType::kClientCrash, 0);
  fabric_->CrashNode(rig.node->id());
  // The node's QPs are already in the error state; quiesce the software
  // above them. The monitor is NOT told — it must discover the death
  // through its report lease, exactly like a real silent crash.
  if (rig.engine != nullptr) rig.engine->Stop();
  rig.generator->Stop();
  if (index < background_gens_.size()) background_gens_[index]->Stop();
}

void Experiment::RestartClient(std::size_t index) {
  ClientRig& rig = rigs_.at(index);
  HAECHI_LOG_INFO("experiment: restarting client %zu at t=%lld ns", index,
                  static_cast<long long>(sim_.Now()));
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                     static_cast<std::uint32_t>(index),
                     obs::EventType::kClientRestart, 0);
  HAECHI_EXPECTS(fabric_->IsCrashed(rig.node->id()));
  fabric_->RestartNode(rig.node->id());
  // Fresh QPs, KV client, engine and generator on the surviving node; the
  // engine re-admits under its old client id (re-admission handshake).
  // The previous incarnation stays in the ownership pools untouched.
  WireClient(index);
  rigs_.at(index).generator->Start(sim_.Now());
}

void Experiment::ReadmitClient(std::size_t index) {
  if (index >= rigs_.size()) return;
  // Deferred off the monitor's boundary callback stack: re-wiring tears
  // down the engine whose lease expiry the monitor is still processing.
  sim_.ScheduleAt(sim_.Now(), [this, index] {
    ClientRig& rig = rigs_.at(index);
    if (fabric_->IsCrashed(rig.node->id())) return;  // restart path owns it
    HAECHI_LOG_INFO("experiment: controller re-admits client %zu at t=%lld",
                    index, static_cast<long long>(sim_.Now()));
    if (rig.engine != nullptr) rig.engine->Stop();
    rig.generator->Stop();
    WireClient(index);
    rigs_.at(index).generator->Start(sim_.Now());
  });
}

void Experiment::WireClient(std::size_t index) {
  const ClientSpec& spec = config_.clients[index];
  rdma::Node& data_node = fabric_->node(0);
  rdma::Node& client_node = *rigs_.at(index).node;
  const auto client_id = MakeClientId(static_cast<std::uint32_t>(index));

  // Data path: one-sided QP pair (or RPC channel for the two-sided runs).
  auto& client_data_cq = client_node.CreateCq();
  auto& server_data_cq = data_node.CreateCq();
  // The data QP gets a deep (software) send queue: the QoS engine posts
  // token-backed I/Os immediately, so queueing happens here and at the
  // client NIC rather than in the application.
  auto& client_data_qp =
      client_node.CreateQp(client_data_cq, client_data_cq, 1u << 22);
  auto& server_data_qp = data_node.CreateQp(server_data_cq, server_data_cq);
  fabric_->Connect(client_data_qp, server_data_qp);

  kvstore::KvClient::Config kv_config;
  kv_config.max_outstanding = 256;
  auto kv_client = std::make_unique<kvstore::KvClient>(
      client_node, client_data_qp, server_->view(), kv_config);

  if (config_.io_path == IoPath::kTwoSided) {
    auto& client_rpc_cq = client_node.CreateCq();
    auto& client_rpc_recv_cq = client_node.CreateCq();
    auto& server_rpc_cq = data_node.CreateCq();
    auto& server_rpc_recv_cq = data_node.CreateCq();
    auto& client_rpc_qp =
        client_node.CreateQp(client_rpc_cq, client_rpc_recv_cq);
    auto& server_rpc_qp =
        data_node.CreateQp(server_rpc_cq, server_rpc_recv_cq);
    fabric_->Connect(client_rpc_qp, server_rpc_qp);
    server_->BindRpcEndpoint(server_rpc_qp);
    kv_client->BindRpcQp(client_rpc_qp);
  }

  core::ClientQosEngine* engine = nullptr;
  if (config_.mode != Mode::kBare) {
    // QoS data plane (FAA + report writes) and control plane (monitor
    // SENDs) each get their own QP pair.
    auto& qos_cq = client_node.CreateCq();
    auto& qos_srv_cq = data_node.CreateCq();
    auto& qos_qp = client_node.CreateQp(qos_cq, qos_cq);
    auto& qos_srv_qp = data_node.CreateQp(qos_srv_cq, qos_srv_cq);
    fabric_->Connect(qos_qp, qos_srv_qp);

    auto& ctrl_cq = client_node.CreateCq();
    auto& ctrl_recv_cq = client_node.CreateCq();
    auto& ctrl_srv_cq = data_node.CreateCq();
    auto& ctrl_qp = client_node.CreateQp(ctrl_cq, ctrl_recv_cq);
    auto& ctrl_srv_qp = data_node.CreateQp(ctrl_srv_cq, ctrl_srv_cq);
    fabric_->Connect(ctrl_qp, ctrl_srv_qp);

    auto wiring = monitor_->AdmitClient(client_id, spec.reservation,
                                        spec.limit, ctrl_srv_qp);
    HAECHI_ASSERT(wiring.ok());

    auto qos_engine = std::make_unique<core::ClientQosEngine>(
        sim_, client_id, config_.qos, client_node, qos_qp, ctrl_qp,
        wiring.value());
    kvstore::KvClient* kv = kv_client.get();
    qos_engine->SetIoBackend(
        [kv, this, client_id](std::uint64_t key, bool is_write,
                              core::ClientQosEngine::CompleteFn done) {
          // Only I/Os the data node actually served count toward the
          // measured series: under fault injection a flushed or timed-out
          // op completes with an error and delivered no service.
          auto finish = [this, client_id, done = std::move(done)](
                            const kvstore::KvClient::Completion& completion) {
            if (completion.status.ok() && measuring_) {
              result_->series.Add(client_id, 1);
            }
            done();
          };
          if (is_write) {
            return kv->PutOneSided(key, WriteValue(), std::move(finish));
          }
          return kv->GetOneSided(key, std::move(finish));
        });
    engine = qos_engine.get();
    engines_.push_back(std::move(qos_engine));
  }

  // The workload generator: submits either through the engine (QoS modes)
  // or straight to the KV client (bare).
  workload::DemandGenerator::Config gen_config;
  gen_config.pattern = spec.pattern;
  gen_config.outstanding = config_.outstanding;
  gen_config.period = config_.qos.period;
  gen_config.demand_per_period = spec.demand;
  gen_config.write_fraction = spec.write_fraction;

  Rng gen_rng(config_.seed * 7919 + index * 104729 + 13);
  workload::KeyChooser chooser(config_.key_kind, config_.records,
                               config_.key_theta, gen_rng);

  kvstore::KvClient* kv = kv_client.get();
  const bool two_sided = config_.io_path == IoPath::kTwoSided;
  workload::DemandGenerator::SubmitFn submit;
  if (engine != nullptr) {
    core::ClientQosEngine* eng = engine;
    submit = [eng](std::uint64_t key, bool is_write,
                   workload::DemandGenerator::CompleteFn cb) {
      // Successful completions are counted in the engine's I/O backend;
      // here only the workload's in-flight accounting is closed.
      const Status s = eng->Submit(key, cb, is_write);
      if (!s.ok()) {
        // Engine queue bounded (isolation) — persistent over-demand is
        // shed; the I/O is simply not performed.
        cb();
      }
    };
  } else {
    submit = [this, kv, two_sided, client_id](
                 std::uint64_t key, bool is_write,
                 workload::DemandGenerator::CompleteFn cb) {
      auto done = [this, client_id, cb = std::move(cb)](
                      const kvstore::KvClient::Completion& completion) {
        if (completion.status.ok() && measuring_) {
          result_->series.Add(client_id, 1);
        }
        cb();
      };
      Status s;
      if (is_write) {
        s = kv->PutOneSided(key, WriteValue(), done);
      } else {
        s = two_sided ? kv->GetRpc(key, done) : kv->GetOneSided(key, done);
      }
      // Shed on backpressure or a faulted QP; accounting still closes.
      if (!s.ok()) done(kvstore::KvClient::Completion{s, {}, 0});
    };
  }

  auto generator = std::make_unique<workload::DemandGenerator>(
      sim_, gen_config, std::move(chooser), std::move(submit));
  generator->SetLatencySink(&result_->latency, config_.warmup);

  ClientRig& rig = rigs_.at(index);
  rig.kv = kv_client.get();
  rig.engine = engine;
  rig.generator = generator.get();
  kv_clients_.push_back(std::move(kv_client));
  generators_.push_back(std::move(generator));
}

void Experiment::BuildBackground(std::size_t index) {
  // The Set-4 congestion injection: an unmanaged job on each client node
  // that issues constant-rate one-sided reads to the data node through its
  // own QP (so the data-node NIC arbitrates it as a separate flow).
  rdma::Node& data_node = fabric_->node(0);
  rdma::Node& client_node = fabric_->node(1 + index);

  auto& bg_cq = client_node.CreateCq();
  auto& bg_srv_cq = data_node.CreateCq();
  auto& bg_qp = client_node.CreateQp(bg_cq, bg_cq);
  auto& bg_srv_qp = data_node.CreateQp(bg_srv_cq, bg_srv_cq);
  fabric_->Connect(bg_qp, bg_srv_qp);

  kvstore::KvClient::Config kv_config;
  kv_config.max_outstanding = 256;
  auto bg_client = std::make_unique<kvstore::KvClient>(
      client_node, bg_qp, server_->view(), kv_config);

  workload::DemandGenerator::Config gen_config;
  gen_config.pattern = workload::RequestPattern::kConstantRate;
  gen_config.period = config_.qos.period;
  gen_config.demand_per_period = config_.background_demand;

  Rng bg_rng(config_.seed * 31337 + index * 7 + 5);
  workload::KeyChooser chooser(workload::KeyChooser::Kind::kUniformRandom,
                               config_.records, 0.0, bg_rng);
  kvstore::KvClient* kv = bg_client.get();
  auto generator = std::make_unique<workload::DemandGenerator>(
      sim_, gen_config, std::move(chooser),
      [kv](std::uint64_t key, bool /*is_write*/,
           workload::DemandGenerator::CompleteFn cb) {
        auto done = std::make_shared<workload::DemandGenerator::CompleteFn>(
            std::move(cb));
        const Status s = kv->GetOneSided(
            key, [done](const kvstore::KvClient::Completion&) { (*done)(); });
        // Background jobs tolerate saturation: drop on backpressure.
        if (!s.ok()) (*done)();
      });

  workload::DemandGenerator* gen = generator.get();
  if (config_.background_on < config_.background_off) {
    sim_.ScheduleAt(config_.background_on, [gen] { gen->Start(0); });
    if (config_.background_off != kSimTimeMax) {
      sim_.ScheduleAt(config_.background_off, [gen] { gen->Stop(); });
    }
  }

  background_clients_.push_back(std::move(bg_client));
  background_gens_.push_back(std::move(generator));
}

ExperimentResult Experiment::Run() {
  result_ = std::make_unique<ExperimentResult>(ExperimentResult{
      stats::PeriodSeries(config_.clients.size()),
      {},
      stats::Histogram(),
      0.0,
      {},
      {},
      {},
      0,
      {},
      {},
      {}});

  // The flight recorder spans cluster build (admission events) through the
  // final period boundary; it is installed process-wide so instrumentation
  // deep in core/rdma/kvstore reaches it without plumbing.
  bool want_recorder =
      config_.trace.enabled || !config_.trace.out_path.empty();
#if HAECHI_WATCHDOG_ENABLED
  // Arming the watchdog forces a recorder: the watchdog is a tap on the
  // event stream, and sees nothing without one. An armed controller in
  // turn forces the watchdog — it feeds on the live alert stream.
  const bool want_watchdog = config_.watchdog.enabled ||
                             !config_.watchdog.alerts_out.empty() ||
                             config_.watchdog.status_interval > 0 ||
                             config_.control.armed();
  want_recorder = want_recorder || want_watchdog;
#endif
  if (want_recorder) {
    obs::Recorder::Options trace_options;
    trace_options.ring_capacity = config_.trace.ring_capacity;
    trace_options.detail = config_.trace.detail;
    recorder_ = std::make_unique<obs::Recorder>(sim_, trace_options);
  }
#if HAECHI_WATCHDOG_ENABLED
  if (want_watchdog) {
    obs::WatchdogOptions wd_options;
    wd_options.guarantee_fraction = config_.watchdog.guarantee_fraction;
    watchdog_ = std::make_unique<obs::SloWatchdog>(wd_options);
    // The JSONL sink always exists when armed (empty path = buffer only),
    // so tests can compare the byte-exact alert document without a file.
    alerts_sink_ =
        std::make_unique<obs::JsonlAlertSink>(config_.watchdog.alerts_out);
    watchdog_->AddSink(alerts_sink_.get());
    if (config_.watchdog.status_interval > 0) {
      auto status_fn = config_.watchdog.status_fn;
      if (!status_fn) {
        status_fn = [](const obs::PeriodStatus& status) {
          std::fprintf(stderr, "%s\n",
                       obs::FormatStatusLine(status).c_str());
        };
      }
      watchdog_->SetStatusFn(std::move(status_fn),
                             config_.watchdog.status_interval);
    }
    if (config_.control.armed()) {
      controller_ = std::make_unique<core::control::QosController>(
          config_.control.ToControllerConfig());
      watchdog_->AddSink(controller_.get());
      std::stable_sort(config_.control.api.begin(), config_.control.api.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
    }
    // Installed before the first harness event below: the watchdog's view
    // must start at kRunConfig or its period-length inference runs blind.
    recorder_->SetTap(
        [this](const obs::TraceEvent& event) { watchdog_->OnEvent(event); });
  }
#endif
  if (recorder_ != nullptr) {
    // Ring truncation is never silent: the first overwrite raises a one-shot
    // watchdog alert (when armed) or at least a log line; the cumulative
    // trace.dropped_events counter is harvested below either way.
    recorder_->SetDropNotify([this] {
#if HAECHI_WATCHDOG_ENABLED
      if (watchdog_ != nullptr) {
        watchdog_->NotifyTruncation(sim_.Now());
        return;
      }
#endif
      HAECHI_LOG_WARN(
          "experiment: trace ring wrapped; any export of this run is "
          "truncated");
    });
  }
  obs::ScopedRecorder trace_scope(recorder_.get());
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0, obs::EventType::kRunConfig,
                     0, config_.qos.period, config_.qos.token_batch,
                     static_cast<std::int64_t>(config_.measure_periods));
  for (std::size_t i = 0; i < config_.clients.size(); ++i) {
    [[maybe_unused]] const ClientSpec& spec = config_.clients[i];
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness,
                       static_cast<std::uint32_t>(i),
                       obs::EventType::kClientSpec, 0, spec.reservation,
                       spec.limit, spec.demand);
  }
  if (controller_ != nullptr) {
    HAECHI_TRACE_EVENT(
        obs::ActorKind::kHarness, 0, obs::EventType::kControllerConfig, 0,
        static_cast<std::int64_t>(controller_->policy()),
        static_cast<std::int64_t>(controller_->config().rules),
        static_cast<std::int64_t>(controller_->config().quiet_periods));
  }

  BuildCluster();

  for (const auto& spec : config_.clients) {
    result_->reservations.push_back(spec.reservation);
  }

  // Kick off the QoS monitor (period boundaries at multiples of T) and the
  // generators (same alignment; engines begin on their first PeriodStart).
  if (monitor_) monitor_->Start(0);
  for (auto& rig : rigs_) rig.generator->Start(0);

  // Measurement window bookkeeping: one PeriodSeries row per QoS period
  // after warm-up.
  sim_.ScheduleAt(config_.warmup, [this] {
    measuring_ = true;
    HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0,
                       obs::EventType::kMeasureStart, 0);
    result_->series.BeginPeriod();
    measured_periods_ = 1;
    measure_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.qos.period, [this] {
          if (measured_periods_ >= config_.measure_periods) {
            measuring_ = false;
            measure_timer_->Stop();
            return;
          }
          result_->series.BeginPeriod();
          ++measured_periods_;
        });
    measure_timer_->Start();
  });

  const SimTime end = config_.warmup + static_cast<SimTime>(
                                           config_.measure_periods) *
                                           config_.qos.period;
  sim_.RunUntil(end);
  HAECHI_TRACE_EVENT(obs::ActorKind::kHarness, 0,
                     obs::EventType::kMeasureEnd, 0);

  // Harvest.
  result_->total_kiops = ToKiops(
      result_->series.Total(),
      static_cast<SimDuration>(config_.measure_periods) * config_.qos.period);
  if (monitor_) result_->monitor_stats = monitor_->stats();
  for (const auto& rig : rigs_) {
    if (rig.engine != nullptr) {
      result_->engine_stats.push_back(rig.engine->stats());
    }
  }
  result_->events_run = sim_.EventsRun();
  result_->fault_stats = fabric_->fault_stats();

  // Run-level roll-ups into the metrics registry (cumulative counters; the
  // per-period trajectory lives in the snapshots above).
  metrics_.Set("run.total_kiops", result_->total_kiops);
  metrics_.Add("run.events", static_cast<std::int64_t>(result_->events_run));
  metrics_.Add("fabric.ops_dropped",
               static_cast<std::int64_t>(result_->fault_stats.ops_dropped));
  metrics_.Add("fabric.ops_delayed",
               static_cast<std::int64_t>(result_->fault_stats.ops_delayed));
  metrics_.Add(
      "fabric.ops_duplicated",
      static_cast<std::int64_t>(result_->fault_stats.ops_duplicated));
  for (const auto& engine_stats : result_->engine_stats) {
    metrics_.Add("engine.faa_ops",
                 static_cast<std::int64_t>(engine_stats.faa_ops));
    metrics_.Add("engine.report_writes",
                 static_cast<std::int64_t>(engine_stats.report_writes));
    metrics_.Add("engine.completed_total",
                 static_cast<std::int64_t>(engine_stats.completed_total));
  }
  if (recorder_ != nullptr) {
    metrics_.Add("trace.emitted_events",
                 static_cast<std::int64_t>(recorder_->TotalEmitted()));
    metrics_.Add("trace.dropped_events",
                 static_cast<std::int64_t>(recorder_->TotalDropped()));
  }

  // Cross-layer span profile: with detail tracing on, reassemble every I/O's
  // admit→fetch→wait→queue→service stages from the merged stream and replay
  // the per-period stage distributions into the registry (reset per period,
  // so each snapshot row is that period's distribution, not a cumulative
  // blur). Compiles to nothing under HAECHI_TRACE=OFF: the AssembleSpans
  // stub returns an empty vector.
  if (recorder_ != nullptr && recorder_->detail()) {
    obs::SpanAssemblyStats span_stats;
    result_->spans = obs::AssembleSpans(recorder_->Merged(), &span_stats);
    result_->span_stats = span_stats;
    metrics_.Add("span.count", static_cast<std::int64_t>(span_stats.spans));
    metrics_.Add("span.dropped_unissued",
                 static_cast<std::int64_t>(span_stats.dropped_unissued));
    metrics_.Add("span.dropped_uncompleted",
                 static_cast<std::int64_t>(span_stats.dropped_uncompleted));
    metrics_.Add("span.orphan_events",
                 static_cast<std::int64_t>(span_stats.orphan_events));
    if (!result_->spans.empty()) {
      static constexpr const char* kStageMetric[obs::kSpanStages] = {
          "span.stage.admit", "span.stage.token_fetch",
          "span.stage.convert_wait", "span.stage.queue",
          "span.stage.nic_service"};
      std::map<std::uint32_t, std::vector<const obs::IoSpan*>> by_period;
      for (const obs::IoSpan& span : result_->spans) {
        by_period[span.period].push_back(&span);
      }
      for (const auto& [period, spans] : by_period) {
        for (const char* name : kStageMetric) metrics_.Histogram(name).Reset();
        metrics_.Histogram("span.stage.total").Reset();
        for (const obs::IoSpan* span : spans) {
          for (std::size_t s = 0; s < obs::kSpanStages; ++s) {
            metrics_.Record(kStageMetric[s], span->stage_ns[s]);
          }
          metrics_.Record("span.stage.total", span->Total());
        }
        metrics_.SnapshotHistograms(period, "span.stage.");
      }
    }
  }

  if (recorder_ != nullptr && !config_.trace.out_path.empty()) {
    const Status exported =
        obs::ExportTraceFile(*recorder_, config_.trace.out_path);
    if (exported.ok()) {
      HAECHI_LOG_INFO("experiment: exported %llu trace events to %s",
                      static_cast<unsigned long long>(
                          recorder_->TotalEmitted()),
                      config_.trace.out_path.c_str());
    } else {
      HAECHI_LOG_WARN("experiment: trace export failed: %s",
                      exported.ToString().c_str());
    }
  }
#if HAECHI_WATCHDOG_ENABLED
  if (watchdog_ != nullptr) {
    const Status flushed = watchdog_->Finish();
    if (!flushed.ok()) {
      HAECHI_LOG_WARN("experiment: alert sink flush failed: %s",
                      flushed.ToString().c_str());
    }
    metrics_.Add("watchdog.alerts",
                 static_cast<std::int64_t>(watchdog_->alerts().size()));
    metrics_.Add("watchdog.critical",
                 static_cast<std::int64_t>(
                     watchdog_->CountAtLeast(obs::AlertSeverity::kCritical)));
    metrics_.Add("watchdog.periods_evaluated",
                 static_cast<std::int64_t>(watchdog_->periods_evaluated()));
  }
  if (controller_ != nullptr) {
    const auto& cs = controller_->stats();
    metrics_.Add("controller.alerts", static_cast<std::int64_t>(cs.alerts));
    metrics_.Add("controller.resizes", static_cast<std::int64_t>(cs.resizes));
    metrics_.Add("controller.eta_scalings",
                 static_cast<std::int64_t>(cs.eta_scalings));
    metrics_.Add("controller.forced_conversions",
                 static_cast<std::int64_t>(cs.forced_conversions));
    metrics_.Add("controller.readmits",
                 static_cast<std::int64_t>(cs.readmits));
    metrics_.Add("controller.recoveries",
                 static_cast<std::int64_t>(cs.recoveries));
  }
#endif
  if (!config_.trace.metrics_out.empty()) {
    const Status written =
        metrics_.ToCsv().WriteFile(config_.trace.metrics_out);
    if (!written.ok()) {
      HAECHI_LOG_WARN("experiment: metrics export failed: %s",
                      written.ToString().c_str());
    }
  }
  if (!config_.trace.prom_out.empty()) {
    const std::string exposition = metrics_.ToPrometheus();
    std::FILE* file = std::fopen(config_.trace.prom_out.c_str(), "wb");
    if (file == nullptr) {
      HAECHI_LOG_WARN("experiment: cannot open prom file: %s",
                      config_.trace.prom_out.c_str());
    } else {
      const std::size_t written =
          std::fwrite(exposition.data(), 1, exposition.size(), file);
      const int closed = std::fclose(file);
      if (written != exposition.size() || closed != 0) {
        HAECHI_LOG_WARN("experiment: short write to prom file: %s",
                        config_.trace.prom_out.c_str());
      }
    }
  }

  // Stop the machinery so a subsequent RunUntil in tests drains cleanly.
  if (monitor_) monitor_->Stop();
  for (auto& rig : rigs_) rig.generator->Stop();
  for (auto& generator : background_gens_) generator->Stop();

  return std::move(*result_);
}

}  // namespace haechi::harness
