// Wire formats shared by the client QoS engine and the data-node QoS
// monitor.
//
// Control traffic is two-sided (SENDs from the monitor); the data-plane
// QoS state is one-sided:
//   - the global token pool is a single signed 64-bit word clients FAA;
//   - each client owns a 64-bit report slot it overwrites with a silent
//     one-sided WRITE: {period:12 | seq:8 | residual:22 | completed:22}.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "rdma/verbs.hpp"

namespace haechi::core {

enum class CtrlType : std::uint32_t {
  kPeriodStart = 1,   // monitor -> engine: new period, fresh tokens
  kReportRequest = 2, // monitor -> engine: begin periodic reporting
  kOverReserveHint = 3, // monitor -> engine: reservation looks oversized
};

/// Monitor -> engine at each period boundary (paper step T1). Doubles as
/// the period-start synchronisation signal.
struct PeriodStartMsg {
  CtrlType type = CtrlType::kPeriodStart;
  std::uint32_t period = 0;
  /// Fresh reservation tokens R_i (replace any leftover tokens).
  std::int64_t reservation_tokens = 0;
  /// Per-period I/O limit L_i (<= 0 means unlimited).
  std::int64_t limit = 0;
};

/// Monitor -> engine when reservation-token overflow is detected (step S3).
struct ReportRequestMsg {
  CtrlType type = CtrlType::kReportRequest;
  std::uint32_t period = 0;
};

/// Monitor -> engine advisory after persistent reservation underuse.
struct OverReserveHintMsg {
  CtrlType type = CtrlType::kOverReserveHint;
  std::uint32_t consecutive_periods = 0;
};

/// Packs the client's silent report into the 64-bit slot value:
/// {period:12 | seq:8 | residual:22 | completed:22}.
///
/// The period tag lets the monitor discard writes that were in flight
/// across a period boundary (a stale report would otherwise overwrite the
/// fresh slot prime and corrupt token conversion); 12 bits only need to
/// distinguish neighbouring periods. The seq field increments on every
/// client write, which makes consecutive reports bitwise distinct even
/// when their payload is unchanged (an idle client reporting residual 0 /
/// completed 0 every interval) — the monitor's report lease detects
/// liveness as "the slot changed since my last check", so without seq an
/// idle-but-alive client would be indistinguishable from a dead one.
/// 22 bits comfortably hold per-period I/O counts (the paper's data node
/// peaks at ~1.6M I/Os per 1 s period; the cap is ~4.19M).
inline constexpr std::uint64_t kReportFieldMask = (1ULL << 22) - 1;
inline constexpr std::uint32_t kReportPeriodMask = (1U << 12) - 1;

constexpr std::uint64_t PackReport(std::uint32_t period,
                                   std::uint64_t residual_reservation,
                                   std::uint64_t completed,
                                   std::uint8_t seq = 0) {
  if (residual_reservation > kReportFieldMask) {
    residual_reservation = kReportFieldMask;
  }
  if (completed > kReportFieldMask) completed = kReportFieldMask;
  return (static_cast<std::uint64_t>(period & kReportPeriodMask) << 52) |
         (static_cast<std::uint64_t>(seq) << 44) |
         (residual_reservation << 22) | completed;
}

constexpr std::uint32_t ReportPeriod(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 52) & kReportPeriodMask;
}

constexpr std::uint8_t ReportSeq(std::uint64_t packed) {
  return static_cast<std::uint8_t>((packed >> 44) & 0xff);
}

constexpr std::uint32_t ReportResidual(std::uint64_t packed) {
  return static_cast<std::uint32_t>((packed >> 22) & kReportFieldMask);
}

constexpr std::uint32_t ReportCompleted(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & kReportFieldMask);
}

/// Addresses a client engine needs to run the one-sided QoS data plane,
/// handed over at admission (out-of-band control plane).
struct QosWiring {
  rdma::RemoteAddr global_pool_addr = 0;
  std::uint32_t global_pool_rkey = 0;
  rdma::RemoteAddr report_slot_addr = 0;
  std::uint32_t report_slot_rkey = 0;
};

}  // namespace haechi::core
