// Admission control (paper §II-C, Definition 2).
//
// A new client with reservation R is admitted iff
//   (aggregate)  sum of admitted reservations + R <= T * C_G
//   (local)      R <= T * C_L
// The local constraint exists because one-sided I/O needs several clients
// to saturate the data node: a single client can never exceed C_L, so a
// reservation above it is unsatisfiable no matter how idle the node is.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/status.hpp"
#include "common/types.hpp"

namespace haechi::core {

class AdmissionController {
 public:
  /// Capacities in tokens per QoS period (IOPS * T).
  AdmissionController(std::int64_t aggregate_capacity,
                      std::int64_t local_capacity);

  /// Admits `client` with reservation R (tokens/period) or explains why not.
  Status Admit(ClientId client, std::int64_t reservation);

  /// Releases a client's reservation (disconnect).
  Status Release(ClientId client);

  /// Adjusts an admitted client's reservation, enforcing both constraints.
  Status Update(ClientId client, std::int64_t new_reservation);

  [[nodiscard]] std::int64_t TotalReserved() const { return reserved_; }
  [[nodiscard]] std::int64_t AggregateCapacity() const { return aggregate_; }
  [[nodiscard]] std::int64_t LocalCapacity() const { return local_; }
  [[nodiscard]] std::size_t AdmittedCount() const { return clients_.size(); }
  [[nodiscard]] bool IsAdmitted(ClientId client) const {
    return clients_.contains(Raw(client));
  }

 private:
  std::int64_t aggregate_;
  std::int64_t local_;
  std::int64_t reserved_ = 0;
  std::unordered_map<std::uint32_t, std::int64_t> clients_;
};

}  // namespace haechi::core
