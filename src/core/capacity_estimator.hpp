// Algorithm 1: Adaptive Capacity Estimation.
//
// Tracks the data node's IOPS capacity (expressed in tokens per QoS
// period). Fully deterministic and side-effect free so it is unit-testable
// independent of the protocol:
//
//   if U == Omega_t            : Omega_{t+1} = Omega_t + eta   (all tokens
//                                consumed -> possible underestimate)
//   elif Omega_min <= U        : push min(U, Omega) into window W (size M);
//                                Omega_{t+1} = mean(W)
//   else                       : Omega_{t+1} = Omega_t         (low-demand
//                                period; don't poison the estimate)
//
// Omega_min = Omega_prof - 3 sigma. The equality test is exact, as in the
// paper: in a token-closed period, U == Omega happens only when every
// token was consumed *and* its I/O completed before the period ended
// (an idle tail — genuine underestimation); U > Omega can only mean a
// previous over-provisioned period spilled completions across the
// boundary, and window samples are clamped to Omega so such spill cannot
// inflate the history either.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>

#include "common/assert.hpp"

namespace haechi::core {

class CapacityEstimator {
 public:
  struct Params {
    std::int64_t profiled = 0;  // Omega_prof, tokens per period
    std::int64_t sigma = 0;     // std dev of the profiling distribution
    std::int64_t eta = 0;       // increment on full consumption
    std::size_t window = 8;     // history size M
  };

  /// Which branch of Algorithm 1 the last OnPeriodEnd took. Exposed so the
  /// monitor can stamp it into kCapacityEstimate trace events.
  enum class Decision : std::int8_t {
    kNone = 0,    // no period fed yet
    kGrow = 1,    // U == Omega: estimate += eta
    kWindow = 2,  // Omega_min <= U: windowed mean
    kHold = 3,    // low-demand period: estimate kept
  };

  explicit CapacityEstimator(const Params& params);

  /// Current estimate Omega_t (tokens for the next period).
  [[nodiscard]] std::int64_t Estimate() const { return estimate_; }

  [[nodiscard]] std::int64_t LowerBound() const { return lower_bound_; }

  /// Feeds one period's total completed I/Os U and advances the estimate.
  void OnPeriodEnd(std::int64_t total_completed);

  /// Scales the growth increment eta, in integer thousandths (1000 = the
  /// configured eta, 500 = half). The closed-loop controller damps the
  /// estimate step through this when the watchdog reports W5 oscillation;
  /// integer arithmetic keeps the damped estimate bit-reproducible.
  /// Clamped to [1, 1000]; a positive configured eta never damps to zero
  /// (the Grow branch must keep probing or the estimate can wedge).
  void SetEtaScaleMilli(std::int64_t milli) {
    eta_scale_milli_ = std::clamp<std::int64_t>(milli, 1, 1000);
  }

  [[nodiscard]] std::int64_t EtaScaleMilli() const { return eta_scale_milli_; }

  /// The growth increment OnPeriodEnd currently applies on the Grow branch.
  [[nodiscard]] std::int64_t EffectiveEta() const {
    if (params_.eta == 0) return 0;
    return std::max<std::int64_t>(params_.eta * eta_scale_milli_ / 1000, 1);
  }

  /// Number of samples currently in the history window.
  [[nodiscard]] std::size_t WindowFill() const { return window_.size(); }

  /// Periods in which the full-consumption branch fired (for tests).
  [[nodiscard]] std::uint64_t GrowthSteps() const { return growth_steps_; }

  [[nodiscard]] Decision LastDecision() const { return last_decision_; }

 private:
  Params params_;
  std::int64_t estimate_;
  std::int64_t lower_bound_;
  std::int64_t eta_scale_milli_ = 1000;
  std::deque<std::int64_t> window_;
  std::uint64_t growth_steps_ = 0;
  Decision last_decision_ = Decision::kNone;
};

}  // namespace haechi::core
