#include "core/admission.hpp"

#include <string>

#include "common/assert.hpp"

namespace haechi::core {

AdmissionController::AdmissionController(std::int64_t aggregate_capacity,
                                         std::int64_t local_capacity)
    : aggregate_(aggregate_capacity), local_(local_capacity) {
  HAECHI_EXPECTS(aggregate_capacity > 0);
  HAECHI_EXPECTS(local_capacity > 0);
}

Status AdmissionController::Admit(ClientId client, std::int64_t reservation) {
  if (reservation < 0) {
    return ErrInvalidArgument("reservation must be non-negative");
  }
  if (clients_.contains(Raw(client))) {
    return ErrFailedPrecondition("client " + std::to_string(Raw(client)) +
                                 " already admitted");
  }
  if (reservation > local_) {
    return ErrResourceExhausted(
        "local capacity violation: reservation " +
        std::to_string(reservation) + " > C_L*T = " + std::to_string(local_));
  }
  if (reserved_ + reservation > aggregate_) {
    return ErrResourceExhausted(
        "aggregate capacity violation: total " +
        std::to_string(reserved_ + reservation) +
        " > C_G*T = " + std::to_string(aggregate_));
  }
  clients_.emplace(Raw(client), reservation);
  reserved_ += reservation;
  return Status::Ok();
}

Status AdmissionController::Release(ClientId client) {
  const auto it = clients_.find(Raw(client));
  if (it == clients_.end()) {
    return ErrNotFound("client " + std::to_string(Raw(client)) +
                       " not admitted");
  }
  reserved_ -= it->second;
  clients_.erase(it);
  HAECHI_ENSURES(reserved_ >= 0);
  return Status::Ok();
}

Status AdmissionController::Update(ClientId client,
                                   std::int64_t new_reservation) {
  const auto it = clients_.find(Raw(client));
  if (it == clients_.end()) {
    return ErrNotFound("client " + std::to_string(Raw(client)) +
                       " not admitted");
  }
  if (new_reservation < 0) {
    return ErrInvalidArgument("reservation must be non-negative");
  }
  if (new_reservation > local_) {
    return ErrResourceExhausted("local capacity violation");
  }
  if (reserved_ - it->second + new_reservation > aggregate_) {
    return ErrResourceExhausted("aggregate capacity violation");
  }
  reserved_ += new_reservation - it->second;
  it->second = new_reservation;
  return Status::Ok();
}

}  // namespace haechi::core
