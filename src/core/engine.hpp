// The client-side QoS engine (paper §II-D).
//
// Every application I/O passes through Submit(). The engine:
//
//  * gates each I/O on a token — a reservation token (xi_reservation,
//    granted by the monitor each period) or a global token fetched from
//    the data node's pool with a remote FAA in batches of B (step T3);
//  * decays unused reservation tokens every delta = 1 ms toward the
//    backlog bound X = R_i - rho_i(t), returning slack to the system
//    (client token management);
//  * once signalled, silently reports {residual reservation, completed
//    I/Os} every 1 ms with a single 8-byte one-sided WRITE (client
//    reporting);
//  * enforces the client's per-period limit L_i by throttling;
//  * parks excess requests in a bounded queue — a runaway client cannot
//    push unbacked I/Os to the data node (isolation, §II-F).
//
// None of these paths involve the data-node CPU: control messages are the
// only two-sided traffic and they originate at the monitor.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/wire.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {

class ClientQosEngine {
 public:
  /// Completion callback for one application I/O.
  using CompleteFn = std::function<void()>;

  /// Issues one data I/O (GET or PUT); must call `done` exactly once at
  /// completion, or return a non-OK status synchronously. QoS accounting
  /// is op-agnostic: reads and writes consume tokens identically (both are
  /// record-sized one-sided ops).
  using IoBackendFn =
      std::function<Status(std::uint64_t key, bool is_write, CompleteFn done)>;

  struct Stats {
    std::uint64_t periods_started = 0;
    std::int64_t completed_this_period = 0;   // N_i
    std::int64_t issued_this_period = 0;
    std::int64_t completed_total = 0;
    std::uint64_t faa_ops = 0;
    std::uint64_t report_writes = 0;
    std::uint64_t rejected_submits = 0;
    std::uint64_t limit_throttle_events = 0;
    std::int64_t tokens_from_reservation = 0;
    std::int64_t tokens_from_pool = 0;
    std::uint64_t over_reserve_hints = 0;
    /// Token fetches that failed (post rejected or error completion).
    std::uint64_t faa_failures = 0;
    /// Backed-off re-attempts after failed fetches.
    std::uint64_t faa_retries = 0;
    /// Report writes that failed (post rejected or error completion).
    std::uint64_t report_failures = 0;
  };

  /// `qos_qp` is the engine's one-sided QP to the data node (FAA + report
  /// writes); `ctrl_qp` receives the monitor's two-sided control messages.
  /// `wiring` carries the pool/report-slot addresses from admission.
  ClientQosEngine(sim::Simulator& sim, ClientId id, const QosConfig& config,
                  rdma::Node& node, rdma::QueuePair& qos_qp,
                  rdma::QueuePair& ctrl_qp, const QosWiring& wiring);

  ClientQosEngine(const ClientQosEngine&) = delete;
  ClientQosEngine& operator=(const ClientQosEngine&) = delete;

  void SetIoBackend(IoBackendFn backend) { backend_ = std::move(backend); }

  /// Application entry point: queue one I/O for `key`. Rejected with
  /// kResourceExhausted when the engine queue is full and with
  /// kFailedPrecondition before the first period begins.
  Status Submit(std::uint64_t key, CompleteFn done, bool is_write = false);

  /// Quiesces the engine (client crash/teardown): timers stop, queued
  /// requests are dropped, new submits are rejected until the next
  /// PeriodStart. The object must outlive any in-flight completions —
  /// callbacks it registered still fire and must find it alive.
  void Stop();

  /// Cluster deployments: the actor id this engine stamps on its trace
  /// events. Defaults to the client id; a client striped across D nodes
  /// runs D engines, and each needs a distinct actor or their rings would
  /// interleave and break the per-actor seq streams the audit checks.
  void SetTraceActor(std::uint32_t actor) { trace_actor_ = actor; }
  [[nodiscard]] std::uint32_t trace_actor() const { return trace_actor_; }

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t ReservationTokens() const { return xi_reservation_; }
  [[nodiscard]] std::int64_t PoolTokens() const { return local_global_; }
  [[nodiscard]] double DecayBound() const { return decay_x_; }
  [[nodiscard]] std::size_t QueueDepth() const { return queue_.size(); }
  [[nodiscard]] std::uint32_t CurrentPeriod() const { return period_; }
  [[nodiscard]] bool Reporting() const {
    return report_timer_ && report_timer_->Running();
  }

 private:
  struct Pending {
    std::uint64_t key;
    bool is_write;
    /// Causal id threading one application I/O through the detail trace
    /// (kIoQueued -> kIoIssue -> kIoComplete); dense per engine from 0.
    std::uint64_t io_id;
    CompleteFn done;
  };

  void HandleCtrl(const rdma::WorkCompletion& wc);
  void OnPeriodStart(const PeriodStartMsg& msg);
  void OnReportRequest();
  void HandleQosCompletion(const rdma::WorkCompletion& wc);
  void TokenTick();
  void WriteReport();
  void TryIssue();
  /// Pops the queue head and hands it to the backend. `token_source` is the
  /// wire encoding for kIoIssue.b: 0 = reservation token, 1 = pool token.
  void IssueOne(std::int64_t token_source);
  void PostTokenFetch();
  void ArmFaaRetry();

  std::size_t backend_outstanding_ = 0;

  sim::Simulator& sim_;
  ClientId id_;
  std::uint32_t trace_actor_ = 0;
  QosConfig config_;
  rdma::Node& node_;
  rdma::QueuePair& qos_qp_;
  rdma::QueuePair& ctrl_qp_;
  QosWiring wiring_;
  IoBackendFn backend_;

  // Token state (paper's xi_reservation, X, and the local batch of global
  // tokens).
  std::int64_t xi_reservation_ = 0;
  double decay_x_ = 0.0;
  double decay_per_tick_ = 0.0;
  std::int64_t local_global_ = 0;
  std::int64_t limit_ = 0;  // <=0: unlimited
  std::uint32_t period_ = 0;
  bool started_ = false;
  SimTime period_started_at_ = 0;

  // FAA state.
  bool faa_in_flight_ = false;
  std::uint32_t faa_period_ = 0;
  bool pool_retry_armed_ = false;
  // Failure backoff: current delay (0 = healthy, next failure starts at
  // config_.faa_retry_backoff), doubling per consecutive failure.
  SimDuration faa_backoff_ = 0;
  bool faa_retry_armed_ = false;
  // kFaaExhausted already emitted this period (one saturation signal per
  // period, not one per probe).
  bool faa_exhausted_signalled_ = false;

  // Report sequence number; makes consecutive report words bitwise
  // distinct so the monitor's lease sees an idle client as alive.
  std::uint8_t report_seq_ = 0;

  std::deque<Pending> queue_;
  std::uint64_t next_io_id_ = 0;
  Stats stats_;

  // Control-plane receive buffers.
  std::vector<std::vector<std::byte>> ctrl_recv_buffers_;

  // 8-byte report payload lives in a registered MR.
  std::vector<std::byte> report_buffer_;
  const rdma::MemoryRegion* report_mr_ = nullptr;

  std::unique_ptr<sim::PeriodicTimer> token_timer_;
  std::unique_ptr<sim::PeriodicTimer> report_timer_;
  std::uint64_t next_wr_id_ = 1;
};

}  // namespace haechi::core
