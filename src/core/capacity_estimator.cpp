#include "core/capacity_estimator.hpp"

#include <algorithm>
#include <numeric>

namespace haechi::core {

CapacityEstimator::CapacityEstimator(const Params& params)
    : params_(params),
      estimate_(params.profiled),
      lower_bound_(params.profiled - 3 * params.sigma) {
  HAECHI_EXPECTS(params.profiled > 0);
  HAECHI_EXPECTS(params.sigma >= 0);
  HAECHI_EXPECTS(params.eta >= 0);
  HAECHI_EXPECTS(params.window > 0);
  if (lower_bound_ < 0) lower_bound_ = 0;
}

void CapacityEstimator::OnPeriodEnd(std::int64_t total_completed) {
  HAECHI_EXPECTS(total_completed >= 0);
  const std::int64_t u = total_completed;
  if (u == estimate_) {
    // Every allocated token was consumed and completed inside the period:
    // the node may be able to do more. Exact equality is the paper's
    // condition, and it matters: U < Omega means the node was capacity-
    // bound, while U > Omega means leftovers from an over-provisioned
    // previous period spilled across the boundary — in both cases growing
    // the estimate would compound the over-allocation.
    estimate_ += EffectiveEta();
    ++growth_steps_;
    last_decision_ = Decision::kGrow;
    return;
  }
  if (u >= lower_bound_) {
    window_.push_back(std::min(u, estimate_));
    if (window_.size() > params_.window) window_.pop_front();
    const std::int64_t sum = std::accumulate(window_.begin(), window_.end(),
                                             std::int64_t{0});
    estimate_ = sum / static_cast<std::int64_t>(window_.size());
    last_decision_ = Decision::kWindow;
    return;
  }
  // Low-demand period: keep the current estimate.
  last_decision_ = Decision::kHold;
}

}  // namespace haechi::core
