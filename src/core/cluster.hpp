// Multi-data-node Haechi — the paper's stated future work (§V): "extend
// Haechi to environments with multiple servers and distributed clients,
// similar to that for conventional distributed storage [bQueue, pShift,
// pTrans]".
//
// A client holds ONE cluster-wide reservation R_i while its demand spreads
// unevenly (and shifts) across D data nodes, each running an ordinary
// QosMonitor. The ClusterCoordinator splits R_i into per-node reservations
// {R_i,d} and re-balances the split at every period boundary toward the
// observed per-node usage (an EWMA of the monitors' reported completions),
// in the spirit of pShift's dynamic token allocation:
//
//   demand_ewma[i][d] <- a * completed[i][d] + (1-a) * demand_ewma[i][d]
//   R[i][*]           <- WeightedShare(R_i, demand_ewma[i][*]),
//                        with a min_share floor so a node a client goes
//                        quiet on can ramp back instantly
//
// Decreases are applied before increases so the per-node admission
// controller (which still enforces C_G and C_L per node) never sees a
// transient over-commitment. If an increase is rejected by a node, the
// tokens stay where they were — the cluster-wide sum Σ_d R_i,d = R_i is
// an invariant either way.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/monitor.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {

class ClusterCoordinator {
 public:
  struct Config {
    /// EWMA weight for fresh per-node usage observations.
    double ewma = 0.5;
    /// Fraction of R_i every node keeps as a floor (ramp headroom).
    double min_share = 0.05;
    /// Rebalancing cadence; normally the QoS period.
    SimDuration interval = kSecond;
    /// The rebalancer samples this long *before* each period boundary, so
    /// it sees the period's final usage reports rather than the freshly
    /// re-primed slots of the next period.
    SimDuration lead = kMillisecond;
  };

  /// The coordinator drives the given per-node monitors; they must outlive
  /// it. (In a real deployment this is a control-plane service talking to
  /// each data node's monitor; here it calls them directly, which is
  /// faithful — coordination is per-period, not per-I/O.)
  ClusterCoordinator(sim::Simulator& sim, const Config& config,
                     std::vector<QosMonitor*> monitors);

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Admits `client` with a cluster-wide reservation, initially split
  /// equally. `ctrl_qps[d]` is the monitor-side control QP on node d.
  /// Returns one QosWiring per node for the client's per-node engines.
  Result<std::vector<QosWiring>> AdmitClient(
      ClientId client, std::int64_t reservation, std::int64_t limit,
      const std::vector<rdma::QueuePair*>& ctrl_qps);

  /// Releases the client on every node.
  Status ReleaseClient(ClientId client);

  /// Starts periodic rebalancing at absolute time `at` + interval.
  void Start(SimTime at);
  void Stop();

  /// Forces one rebalancing pass (also called by the periodic timer).
  void Rebalance();

  /// Current per-node reservation split of a client.
  [[nodiscard]] Result<std::vector<std::int64_t>> SplitOf(
      ClientId client) const;

  [[nodiscard]] std::size_t NodeCount() const { return monitors_.size(); }

  struct Stats {
    std::uint64_t rebalances = 0;
    std::uint64_t tokens_moved = 0;   // total |delta| applied
    std::uint64_t rejected_moves = 0; // increases refused by admission
    /// Clients purged cluster-wide after a node's report lease expired.
    std::uint64_t dead_clients = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct ClientState {
    ClientId id;
    std::int64_t reservation;          // cluster-wide R_i
    std::vector<std::int64_t> split;   // per-node R_i,d
    std::vector<double> demand_ewma;   // per-node usage estimate
    std::vector<std::uint32_t> last_completed;  // last per-node reading
  };

  [[nodiscard]] const ClientState* Find(ClientId client) const;
  [[nodiscard]] ClientState* Find(ClientId client);
  void OnClientDead(ClientId client);

  sim::Simulator& sim_;
  Config config_;
  std::vector<QosMonitor*> monitors_;
  std::vector<ClientState> clients_;
  Stats stats_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
};

}  // namespace haechi::core
