// The data-node QoS monitor (paper §II-E).
//
// Responsibilities per QoS period:
//   T1  dispatch fresh reservation tokens to every admitted client over
//       two-sided RDMA and initialise the global pool word to
//       C - sum(R_i);
//   S1  wake every check interval and observe the global pool (local load,
//       or loopback RDMA CAS when configured);
//   S2/S3 on the first observed decrease, ask all clients to begin
//       periodic reporting;
//   T2  token conversion: xi_global <- max{C*(T-t)/T - L, 0}, where L is
//       the sum of last-reported residual reservations — reclaiming tokens
//       surrendered by low-demand clients while capping the pool to the
//       capacity remaining in the period;
//   T3  at the period boundary, feed the reported completion total into
//       Algorithm 1 (CapacityEstimator) and flag persistently under-using
//       clients.
//
// Admission control (AdmissionController) guards both capacity constraints
// before a client is wired in.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/capacity_estimator.hpp"
#include "core/config.hpp"
#include "core/control/controller.hpp"
#include "core/wire.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {

class QosMonitor {
 public:
  struct Stats {
    std::uint32_t periods = 0;
    std::uint64_t checks = 0;
    std::uint64_t conversions = 0;
    std::uint64_t report_signals = 0;
    std::uint64_t over_reserve_hints = 0;
    std::int64_t last_period_completions = 0;
    /// Clients declared dead by the report lease.
    std::uint64_t lease_expirations = 0;
    /// AdmitClient calls that replaced a still-admitted incarnation of the
    /// same client id (post-restart re-admission handshake).
    std::uint64_t readmissions = 0;
    /// Residual claims reclaimed from dead clients (tokens).
    std::int64_t reclaimed_tokens = 0;
    /// Half-lease ReportRequest retransmissions to silent clients.
    std::uint64_t report_request_resends = 0;
    /// Sharded-pool rebalance passes that moved tokens, and the tokens
    /// moved (threaded runtime only; always 0 with one shard / in the
    /// simulator, which models a single remote word).
    std::uint64_t rebalances = 0;
    std::int64_t rebalanced_tokens = 0;
    /// Cross-server borrowing (cluster deployments): tokens this monitor
    /// lent out of its pool and absorbed into it.
    std::int64_t lent_tokens = 0;
    std::int64_t absorbed_tokens = 0;
  };

  /// Per-period token ledger, one entry per started period. All fields are
  /// exact (the monitor reads the pool word from its own memory), so tests
  /// can assert conservation identities:
  ///   initial_pool + minted + absorbed - granted - lent == end_pool
  ///                                                        (always)
  ///   dispatched + initial_pool == capacity                (when
  ///                                        dispatched <= capacity)
  struct PeriodLedger {
    std::uint32_t period = 0;
    /// Capacity estimate the period was provisioned with (T * C_hat).
    std::int64_t capacity = 0;
    /// Reservation tokens dispatched at T1 (sum of R_i).
    std::int64_t dispatched = 0;
    std::int64_t initial_pool = 0;
    /// Net pool adjustment by token conversion: positive mints recycled
    /// tokens, negative expires them as the period drains.
    std::int64_t minted = 0;
    /// Pool tokens drawn by client FAAs (observed word decreases).
    std::int64_t granted = 0;
    /// Portion of `minted` attributable to dead-client reclamation.
    std::int64_t reclaimed = 0;
    /// Pool word at the period boundary (pre-re-initialisation).
    std::int64_t end_pool = 0;
    /// Cross-server borrow movements (cluster deployments): tokens this
    /// monitor lent to peers and absorbed from peers this period.
    std::int64_t lent = 0;
    std::int64_t absorbed = 0;
  };

  /// Capacities in IOPS, as profiled (Experiment Set 1). `node` is the
  /// data node; the control block MR lives in its protection domain.
  QosMonitor(sim::Simulator& sim, const QosConfig& config, rdma::Node& node,
             double profiled_global_iops, double profiled_local_iops);

  QosMonitor(const QosMonitor&) = delete;
  QosMonitor& operator=(const QosMonitor&) = delete;

  /// Admits a client (both capacity constraints enforced) and binds its
  /// control channel. `ctrl_qp` is the monitor-side QP connected to the
  /// engine's control QP. Reservation/limit in I/Os per period.
  /// Returns the wiring the engine needs for its one-sided QoS ops.
  Result<QosWiring> AdmitClient(ClientId client, std::int64_t reservation,
                                std::int64_t limit,
                                rdma::QueuePair& ctrl_qp);

  /// Removes a client and releases its reservation.
  Status ReleaseClient(ClientId client);

  /// Changes an admitted client's reservation, enforcing both capacity
  /// constraints. Takes effect at the next period boundary (tokens already
  /// dispatched are never clawed back mid-period). Used by the
  /// multi-data-node coordinator to shift reservation between nodes.
  Status UpdateReservation(ClientId client, std::int64_t reservation);

  /// The reservation currently configured for a client.
  [[nodiscard]] Result<std::int64_t> ReservationOf(ClientId client) const;

  /// Multi-monitor deployments: the actor id this monitor stamps on its
  /// trace events (the data-node index). Must be set before Start(), or
  /// several monitors would interleave one per-actor ring and corrupt the
  /// per-actor seq streams the audit relies on.
  void SetTraceActor(std::uint32_t actor) { trace_actor_ = actor; }
  [[nodiscard]] std::uint32_t trace_actor() const { return trace_actor_; }

  /// Cross-server borrowing (cluster coordinator only). LendTokens drains
  /// up to `want` tokens from the pool word — never below zero — and
  /// returns the amount actually removed; AbsorbTokens credits tokens
  /// borrowed from peer node `peer`. Both are exact ledger movements
  /// (`lent`/`absorbed`), and the running net credit feeds token
  /// conversion so a conversion pass neither re-mints lent tokens nor
  /// clobbers absorbed ones.
  [[nodiscard]] std::int64_t LendTokens(std::int64_t want,
                                        std::uint32_t peer);
  void AbsorbTokens(std::int64_t tokens, std::uint32_t peer);

  /// True when `client`'s report slot holds a report written this period
  /// (as opposed to the boundary prime or a stale cross-boundary write).
  /// The cluster coordinator uses this to skip rebalancing on nodes whose
  /// report went missing for the period.
  [[nodiscard]] bool HasFreshReport(ClientId client) const;

  /// Index of the current QoS period (0 before Start()).
  [[nodiscard]] std::uint32_t CurrentPeriod() const { return stats_.periods; }

  /// Starts period 1 at absolute time `at` and runs until Stop().
  void Start(SimTime at);
  void Stop();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] const CapacityEstimator& estimator() const {
    return *estimator_;
  }

  /// Current pool word (signed; negative after over-draining FAAs).
  [[nodiscard]] std::int64_t GlobalPoolValue() const;

  /// Tokens the pool started this period with.
  [[nodiscard]] std::int64_t InitialPool() const { return initial_pool_; }

  /// Capacity (tokens) allocated for the current period.
  [[nodiscard]] std::int64_t PeriodCapacity() const { return period_capacity_; }

  [[nodiscard]] bool ReportingActive() const { return reporting_active_; }

  /// Last values read from a client's report slot.
  [[nodiscard]] std::uint32_t LastResidual(ClientId client) const;
  [[nodiscard]] std::uint32_t LastCompleted(ClientId client) const;

  /// Per-period token ledger (one entry per started period, oldest first;
  /// the newest entry is still accumulating until its boundary).
  [[nodiscard]] const std::vector<PeriodLedger>& ledger() const {
    return ledger_;
  }

  /// Invoked when a client under-uses its reservation for
  /// `underuse_alert_periods` consecutive periods.
  void SetOverReserveCallback(std::function<void(ClientId)> fn) {
    over_reserve_cb_ = std::move(fn);
  }

  /// Invoked after the report lease declares a client dead and its
  /// reservation has been released (admission slot already freed).
  void SetClientDeadCallback(std::function<void(ClientId)> fn) {
    client_dead_cb_ = std::move(fn);
  }

  /// Per-period telemetry hook, fired at each boundary after calibration:
  /// (period index just ended, total reported completions, capacity
  /// estimate for the next period).
  using PeriodHook =
      std::function<void(std::uint32_t, std::int64_t, std::int64_t)>;
  void SetPeriodHook(PeriodHook fn) { period_hook_ = std::move(fn); }

  /// Wires the closed-loop controller (DESIGN.md §14). At every boundary —
  /// after the period-end emit settled the watchdog's verdicts, before the
  /// next period is provisioned — the monitor hands the controller a
  /// per-client view, applies the returned plan (reservation resizes, eta
  /// damping, forced conversion) and emits one kControlAction per applied
  /// action. `readmit` is invoked for kReadmit actions; the harness owns
  /// re-admission (it must defer actual re-wiring off this call stack).
  void SetController(control::QosController* controller,
                     std::function<void(ClientId)> readmit) {
    controller_ = controller;
    readmit_cb_ = std::move(readmit);
  }

 private:
  struct ClientEntry {
    ClientId id;
    std::int64_t reservation;
    std::int64_t limit;
    rdma::QueuePair* ctrl_qp;
    std::size_t slot;  // index into the report-slot array
    std::uint32_t underuse_streak = 0;
    // Report-lease state: raw slot bytes at the last check and the number
    // of consecutive checks they stayed identical (the report seq field
    // guarantees a live client changes them every report_interval).
    std::uint64_t last_slot_raw = 0;
    std::uint32_t lease_misses = 0;
    // Slot bytes as primed at the period boundary; a slot equal to its
    // prime has not received a real report this period.
    std::uint64_t primed_slot_raw = 0;
  };

  static constexpr std::size_t kMaxClients = 64;

  void StartPeriod();
  void CheckTick();
  void RunControlBoundary();
  void ActivateReporting(std::int64_t observed_pool);
  void CheckLeases();
  void DeclareDead(ClientId client);
  void ConvertTokens();
  void Calibrate();
  [[nodiscard]] std::size_t AllocateSlot();
  [[nodiscard]] std::int64_t ReadPoolWord() const;
  void WritePoolWord(std::int64_t value);
  [[nodiscard]] std::uint64_t ReadSlot(std::size_t slot) const;
  void WriteSlot(std::size_t slot, std::uint64_t value);
  void SendToClient(ClientEntry& entry, const void* msg, std::size_t len);
  [[nodiscard]] const ClientEntry* FindClient(ClientId client) const;

  sim::Simulator& sim_;
  QosConfig config_;
  rdma::Node& node_;
  AdmissionController admission_;
  std::unique_ptr<CapacityEstimator> estimator_;

  // Control block: word 0 = global pool, words 1..kMaxClients = report
  // slots. Lives in registered memory so clients reach it one-sided.
  std::vector<std::byte> control_block_;
  const rdma::MemoryRegion* control_mr_ = nullptr;

  std::vector<ClientEntry> clients_;
  std::size_t next_slot_ = 0;  // high-water mark of the slot array
  // Slots of released/dead clients are quarantined until the next period
  // boundary (any in-flight stale WRITE to them lands within the current
  // period) and only then become reusable — without reuse, kMaxClients
  // crash/restart cycles would exhaust the slot array for good.
  std::vector<std::size_t> retired_slots_;
  std::vector<std::size_t> free_slots_;
  Stats stats_;
  bool running_ = false;
  std::uint32_t trace_actor_ = 0;
  // Net cross-server borrow movement this period (absorbed - lent); token
  // conversion adds it to the pool target so borrowing survives the next
  // conversion overwrite. Reset at every period boundary.
  std::int64_t borrow_credit_ = 0;
  SimTime period_start_time_ = 0;
  std::int64_t period_capacity_ = 0;
  std::int64_t initial_pool_ = 0;
  bool reporting_active_ = false;
  // Grant tracking: the pool word only decreases between monitor writes
  // (client FAAs), so (last written - observed) measures tokens handed out.
  // Recent grants are not yet visible in client reports (reporting lag),
  // and token conversion must not re-mint them.
  std::int64_t last_written_pool_ = 0;
  std::deque<std::int64_t> recent_grants_;
  std::function<void(ClientId)> over_reserve_cb_;
  std::function<void(ClientId)> client_dead_cb_;
  PeriodHook period_hook_;
  control::QosController* controller_ = nullptr;
  std::function<void(ClientId)> readmit_cb_;
  // Latched by a kForceConversion action: every subsequent period starts
  // with reporting active instead of waiting for S2 (which can never fire
  // when the initial pool is zero — the W6 starvation deadlock).
  bool force_reporting_ = false;

  // Token ledger bookkeeping: ledger_last_pool_ is the raw pool word at
  // the monitor's last observation/write, so every decrease between
  // samples is attributed to client grants exactly.
  std::vector<PeriodLedger> ledger_;
  std::int64_t ledger_last_pool_ = 0;
  // Completion counts salvaged from clients that died mid-period; folded
  // into Calibrate's total so capacity estimation does not see a phantom
  // capacity drop.
  std::int64_t dead_completed_this_period_ = 0;

  // Loopback-CAS observation state (config_.loopback_cas).
  rdma::QueuePair* loop_qp_ = nullptr;
  rdma::QueuePair* loop_peer_qp_ = nullptr;
  bool loop_cas_in_flight_ = false;
  std::int64_t loop_observed_pool_ = 0;

  std::unique_ptr<sim::PeriodicTimer> period_timer_;
  std::unique_ptr<sim::PeriodicTimer> check_timer_;
  std::uint64_t next_wr_id_ = 1;
};

}  // namespace haechi::core
