#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "workload/distributions.hpp"

namespace haechi::core {

ClusterCoordinator::ClusterCoordinator(sim::Simulator& sim,
                                       const Config& config,
                                       std::vector<QosMonitor*> monitors)
    : sim_(sim), config_(config), monitors_(std::move(monitors)) {
  HAECHI_EXPECTS(!monitors_.empty());
  HAECHI_EXPECTS(config.ewma > 0.0 && config.ewma <= 1.0);
  HAECHI_EXPECTS(config.min_share >= 0.0 &&
                 config.min_share * static_cast<double>(monitors_.size()) <
                     1.0);
  HAECHI_EXPECTS(config.interval > config.lead);
  timer_ = std::make_unique<sim::PeriodicTimer>(sim_, config_.interval,
                                                [this] { Rebalance(); });
  // One node's report lease declaring a client dead purges it cluster-wide:
  // its reservation shards on the other nodes are unreachable capacity the
  // moment the client is gone.
  for (QosMonitor* monitor : monitors_) {
    monitor->SetClientDeadCallback(
        [this](ClientId client) { OnClientDead(client); });
  }
}

void ClusterCoordinator::OnClientDead(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  if (it == clients_.end()) return;  // unknown or already purged
  for (QosMonitor* monitor : monitors_) {
    // The detecting node already released the client; other nodes may have
    // raced their own lease expiry. Both make NotFound expected here.
    const Status s = monitor->ReleaseClient(client);
    HAECHI_ASSERT(s.ok() || s.code() == StatusCode::kNotFound);
  }
  clients_.erase(it);
  ++stats_.dead_clients;
  HAECHI_LOG_WARN("cluster: purged dead client %u from %zu nodes",
                  Raw(client), monitors_.size());
}

Result<std::vector<QosWiring>> ClusterCoordinator::AdmitClient(
    ClientId client, std::int64_t reservation, std::int64_t limit,
    const std::vector<rdma::QueuePair*>& ctrl_qps) {
  if (ctrl_qps.size() != monitors_.size()) {
    return ErrInvalidArgument("need one control QP per data node");
  }
  if (Find(client) != nullptr) {
    return ErrFailedPrecondition("client already admitted to the cluster");
  }
  const auto nodes = monitors_.size();
  const auto split = workload::UniformShare(reservation, nodes);

  std::vector<QosWiring> wirings;
  wirings.reserve(nodes);
  for (std::size_t d = 0; d < nodes; ++d) {
    auto wiring =
        monitors_[d]->AdmitClient(client, split[d], limit, *ctrl_qps[d]);
    if (!wiring.ok()) {
      // Roll back the nodes already admitted.
      for (std::size_t undone = 0; undone < d; ++undone) {
        const Status s = monitors_[undone]->ReleaseClient(client);
        HAECHI_ASSERT(s.ok());
      }
      return wiring.status();
    }
    wirings.push_back(wiring.value());
  }

  ClientState state;
  state.id = client;
  state.reservation = reservation;
  state.split.assign(split.begin(), split.end());
  state.demand_ewma.assign(nodes, 1.0);  // neutral prior: equal split
  state.last_completed.assign(nodes, 0);
  clients_.push_back(std::move(state));
  return wirings;
}

Status ClusterCoordinator::ReleaseClient(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  for (QosMonitor* monitor : monitors_) {
    const Status s = monitor->ReleaseClient(client);
    HAECHI_ASSERT(s.ok());
  }
  clients_.erase(it);
  return Status::Ok();
}

void ClusterCoordinator::Start(SimTime at) {
  sim_.ScheduleAt(at, [this] {
    // First sample lands just before the next period boundary.
    if (!timer_->Running()) timer_->Start(config_.interval - config_.lead);
  });
}

void ClusterCoordinator::Stop() { timer_->Stop(); }

void ClusterCoordinator::Rebalance() {
  ++stats_.rebalances;
  const auto nodes = monitors_.size();
  for (ClientState& client : clients_) {
    // 1. Refresh per-node usage estimates from the monitors' report slots.
    //    LastCompleted is cumulative within the current period; reading it
    //    once per interval approximates the per-period usage.
    for (std::size_t d = 0; d < nodes; ++d) {
      const std::uint32_t completed = monitors_[d]->LastCompleted(client.id);
      client.last_completed[d] = completed;
      client.demand_ewma[d] =
          config_.ewma * static_cast<double>(completed) +
          (1.0 - config_.ewma) * client.demand_ewma[d];
    }

    // 2. Target split: usage-proportional with a min_share floor.
    std::vector<double> weights(nodes);
    const double floor_weight =
        config_.min_share *
        std::max(1.0, *std::max_element(client.demand_ewma.begin(),
                                        client.demand_ewma.end()));
    for (std::size_t d = 0; d < nodes; ++d) {
      weights[d] = client.demand_ewma[d] + floor_weight;
    }
    const auto target = workload::WeightedShare(client.reservation, weights);

    // 3. Apply decreases first (freeing per-node headroom), then increases.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t d = 0; d < nodes; ++d) {
        const bool decrease = target[d] < client.split[d];
        if (pass == 0 ? !decrease : decrease) continue;
        if (target[d] == client.split[d]) continue;
        const Status s =
            monitors_[d]->UpdateReservation(client.id, target[d]);
        if (s.ok()) {
          stats_.tokens_moved += static_cast<std::uint64_t>(
              std::llabs(target[d] - client.split[d]));
          client.split[d] = target[d];
        } else {
          ++stats_.rejected_moves;
          HAECHI_LOG_DEBUG("cluster: move rejected on node %zu: %s", d,
                           s.ToString().c_str());
        }
      }
    }

    // 4. If an increase was refused (the target node had no admission
    //    headroom), the freed tokens must not evaporate: park them on any
    //    node that will take them so Σ_d R_i,d == R_i stays invariant.
    std::int64_t placed = 0;
    for (const auto share : client.split) placed += share;
    std::int64_t shortfall = client.reservation - placed;
    HAECHI_ASSERT(shortfall >= 0);
    for (std::size_t d = 0; d < nodes && shortfall > 0; ++d) {
      const auto& admission = monitors_[d]->admission();
      const std::int64_t headroom = std::min(
          admission.AggregateCapacity() - admission.TotalReserved(),
          admission.LocalCapacity() - client.split[d]);
      const std::int64_t add = std::min(shortfall, headroom);
      if (add <= 0) continue;
      const Status s = monitors_[d]->UpdateReservation(
          client.id, client.split[d] + add);
      if (s.ok()) {
        client.split[d] += add;
        shortfall -= add;
      }
    }
    // The pre-rebalance placement fit, and decreases only freed capacity,
    // so the shortfall always finds a home.
    HAECHI_ASSERT(shortfall == 0);
  }
}

Result<std::vector<std::int64_t>> ClusterCoordinator::SplitOf(
    ClientId client) const {
  const ClientState* state = Find(client);
  if (state == nullptr) return ErrNotFound("client not admitted");
  return state->split;
}

const ClusterCoordinator::ClientState* ClusterCoordinator::Find(
    ClientId client) const {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  return it == clients_.end() ? nullptr : &*it;
}

ClusterCoordinator::ClientState* ClusterCoordinator::Find(ClientId client) {
  return const_cast<ClientState*>(
      static_cast<const ClusterCoordinator*>(this)->Find(client));
}

}  // namespace haechi::core
