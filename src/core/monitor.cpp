#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace haechi::core {

namespace {

std::int64_t IopsToTokens(double iops, SimDuration period) {
  return static_cast<std::int64_t>(std::llround(iops * ToSeconds(period)));
}

}  // namespace

QosMonitor::QosMonitor(sim::Simulator& sim, const QosConfig& config,
                       rdma::Node& node, double profiled_global_iops,
                       double profiled_local_iops)
    : sim_(sim),
      config_(config),
      node_(node),
      admission_(IopsToTokens(profiled_global_iops, config.period),
                 IopsToTokens(profiled_local_iops, config.period)) {
  const std::int64_t profiled_tokens =
      IopsToTokens(profiled_global_iops, config.period);
  CapacityEstimator::Params params;
  params.profiled = profiled_tokens;
  params.sigma =
      config.sigma > 0
          ? config.sigma
          : static_cast<std::int64_t>(std::llround(
                static_cast<double>(profiled_tokens) * config.sigma_fraction));
  params.eta = config.eta > 0
                   ? config.eta
                   : static_cast<std::int64_t>(std::llround(
                         static_cast<double>(profiled_tokens) *
                         config.eta_fraction));
  params.window = config.history_window;
  estimator_ = std::make_unique<CapacityEstimator>(params);

  control_block_.resize((1 + kMaxClients) * sizeof(std::uint64_t));
  control_mr_ = &node_.pd().Register(
      std::span<std::byte>(control_block_),
      rdma::access::kLocalRead | rdma::access::kLocalWrite |
          rdma::access::kRemoteRead | rdma::access::kRemoteWrite |
          rdma::access::kRemoteAtomic);

  if (config_.loopback_cas) {
    // The monitor observes the pool word through the NIC, as the paper
    // describes: a loopback RC connection on the data node itself.
    auto& cq_a = node_.CreateCq();
    auto& cq_b = node_.CreateCq();
    loop_qp_ = &node_.CreateQp(cq_a, cq_a);
    loop_peer_qp_ = &node_.CreateQp(cq_b, cq_b);
    node_.fabric().Connect(*loop_qp_, *loop_peer_qp_);
    cq_a.SetNotify([this](const rdma::WorkCompletion& wc) {
      loop_cas_in_flight_ = false;
      if (wc.ok()) {
        loop_observed_pool_ = static_cast<std::int64_t>(wc.atomic_result);
      }
    });
  }

  period_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.period, [this] { StartPeriod(); });
  check_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.check_interval, [this] { CheckTick(); });
}

std::int64_t QosMonitor::ReadPoolWord() const {
  std::uint64_t raw;
  std::memcpy(&raw, control_block_.data(), sizeof(raw));
  return static_cast<std::int64_t>(raw);
}

void QosMonitor::WritePoolWord(std::int64_t value) {
  const auto raw = static_cast<std::uint64_t>(value);
  std::memcpy(control_block_.data(), &raw, sizeof(raw));
}

std::uint64_t QosMonitor::ReadSlot(std::size_t slot) const {
  std::uint64_t raw;
  std::memcpy(&raw, control_block_.data() + (1 + slot) * sizeof(raw),
              sizeof(raw));
  return raw;
}

void QosMonitor::WriteSlot(std::size_t slot, std::uint64_t value) {
  std::memcpy(control_block_.data() + (1 + slot) * sizeof(value), &value,
              sizeof(value));
}

std::int64_t QosMonitor::GlobalPoolValue() const { return ReadPoolWord(); }

Result<QosWiring> QosMonitor::AdmitClient(ClientId client,
                                          std::int64_t reservation,
                                          std::int64_t limit,
                                          rdma::QueuePair& ctrl_qp) {
  [[maybe_unused]] bool readmission = false;
  if (FindClient(client) != nullptr) {
    // Re-admission handshake: a restarted client admits under its old id
    // before the report lease caught its previous incarnation. Retire the
    // stale entry first so neither its admission slot nor its report slot
    // leaks.
    const Status released = ReleaseClient(client);
    HAECHI_ASSERT(released.ok());
    ++stats_.readmissions;
    readmission = true;
  }
  if (clients_.size() >= kMaxClients) {
    return ErrResourceExhausted("monitor is at its client capacity");
  }
  if (limit > 0 && limit < reservation) {
    return ErrInvalidArgument("limit below reservation");
  }
  if (free_slots_.empty() && next_slot_ >= kMaxClients) {
    return ErrResourceExhausted("all report slots consumed");
  }
  if (auto s = admission_.Admit(client, reservation); !s.ok()) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                       obs::EventType::kAdmitReject, stats_.periods,
                       static_cast<std::int64_t>(Raw(client)), reservation);
    return s;
  }
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     readmission ? obs::EventType::kReadmit
                                 : obs::EventType::kAdmit,
                     stats_.periods, static_cast<std::int64_t>(Raw(client)),
                     reservation, limit);

  ClientEntry entry;
  entry.id = client;
  entry.reservation = reservation;
  entry.limit = limit;
  entry.ctrl_qp = &ctrl_qp;
  entry.slot = AllocateSlot();
  // Prime the (possibly recycled) slot with a stale-tagged conservative
  // report so leftover bytes from a previous occupant cannot be read as
  // this client's data, then baseline the lease on those bytes.
  WriteSlot(entry.slot,
            PackReport(stats_.periods - 1,
                       static_cast<std::uint64_t>(
                           std::max<std::int64_t>(reservation, 0)),
                       0));
  entry.last_slot_raw = ReadSlot(entry.slot);
  entry.primed_slot_raw = entry.last_slot_raw;
  entry.lease_misses = 0;
  clients_.push_back(entry);
  ctrl_qp.send_cq().SetNotify([](const rdma::WorkCompletion&) {});
  if (reporting_active_) {
    // The period's ReportRequest broadcast predates this client; ask it
    // directly, or its silent slot would trip the report lease.
    ReportRequestMsg msg;
    msg.period = stats_.periods;
    SendToClient(clients_.back(), &msg, sizeof(msg));
  }

  QosWiring wiring;
  wiring.global_pool_addr = control_mr_->remote_addr();
  wiring.global_pool_rkey = control_mr_->rkey();
  wiring.report_slot_addr =
      control_mr_->remote_addr() + (1 + entry.slot) * sizeof(std::uint64_t);
  wiring.report_slot_rkey = control_mr_->rkey();
  return wiring;
}

Status QosMonitor::ReleaseClient(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  // Quarantine the slot until the next period boundary: a report WRITE the
  // departing client already has in flight must not land in a stranger's
  // recycled slot. Live slots are never compacted (address stability).
  retired_slots_.push_back(it->slot);
  clients_.erase(it);
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_, obs::EventType::kRelease,
                     stats_.periods, static_cast<std::int64_t>(Raw(client)));
  return admission_.Release(client);
}

std::size_t QosMonitor::AllocateSlot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return next_slot_++;
}

Status QosMonitor::UpdateReservation(ClientId client,
                                     std::int64_t reservation) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  if (it->limit > 0 && reservation > it->limit) {
    return ErrInvalidArgument("reservation above the client's limit");
  }
  if (auto s = admission_.Update(client, reservation); !s.ok()) return s;
  const std::int64_t previous = it->reservation;
  it->reservation = reservation;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kReservationUpdate, stats_.periods,
                     static_cast<std::int64_t>(Raw(client)), reservation,
                     previous);
  return Status::Ok();
}

std::int64_t QosMonitor::LendTokens(std::int64_t want, std::uint32_t peer) {
  if (want <= 0 || stats_.periods == 0) return 0;
  const std::int64_t raw = ReadPoolWord();
  const std::int64_t lent =
      std::min(want, std::max<std::int64_t>(raw, 0));
  if (lent <= 0) return 0;
  const std::int64_t after = raw - lent;
  if (!ledger_.empty()) {
    // Movement since the last ledger sample is client grants; the lend
    // itself is a separate ledger line, not a grant.
    PeriodLedger& cur = ledger_.back();
    cur.granted += ledger_last_pool_ - raw;
    cur.lent += lent;
    ledger_last_pool_ = after;
  }
  WritePoolWord(after);
  last_written_pool_ = after;
  loop_observed_pool_ = after;
  borrow_credit_ -= lent;
  stats_.lent_tokens += lent;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kPoolBorrowOut, stats_.periods, raw,
                     after, static_cast<std::int64_t>(peer));
  return lent;
}

void QosMonitor::AbsorbTokens(std::int64_t tokens, std::uint32_t peer) {
  if (tokens <= 0 || stats_.periods == 0) return;
  const std::int64_t raw = ReadPoolWord();
  const std::int64_t after = raw + tokens;
  if (!ledger_.empty()) {
    PeriodLedger& cur = ledger_.back();
    cur.granted += ledger_last_pool_ - raw;
    cur.absorbed += tokens;
    ledger_last_pool_ = after;
  }
  WritePoolWord(after);
  last_written_pool_ = after;
  loop_observed_pool_ = after;
  borrow_credit_ += tokens;
  stats_.absorbed_tokens += tokens;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kPoolBorrowIn, stats_.periods, raw,
                     after, static_cast<std::int64_t>(peer));
}

bool QosMonitor::HasFreshReport(ClientId client) const {
  const ClientEntry* entry = FindClient(client);
  if (entry == nullptr) return false;
  const std::uint64_t raw = ReadSlot(entry->slot);
  return ReportPeriod(raw) == (stats_.periods & kReportPeriodMask) &&
         raw != entry->primed_slot_raw;
}

Result<std::int64_t> QosMonitor::ReservationOf(ClientId client) const {
  const ClientEntry* entry = FindClient(client);
  if (entry == nullptr) return ErrNotFound("client not admitted");
  return entry->reservation;
}

void QosMonitor::Start(SimTime at) {
  HAECHI_EXPECTS(!running_);
  running_ = true;
  sim_.ScheduleAt(at, [this] {
    if (!running_) return;
    StartPeriod();
    period_timer_->Start();
    check_timer_->Start();
  });
}

void QosMonitor::Stop() {
  running_ = false;
  period_timer_->Stop();
  check_timer_->Stop();
}

void QosMonitor::SendToClient(ClientEntry& entry, const void* msg,
                              std::size_t len) {
  const Status s = entry.ctrl_qp->PostSend(
      next_wr_id_++,
      std::span<const std::byte>(static_cast<const std::byte*>(msg), len));
  if (!s.ok()) {
    HAECHI_LOG_WARN("monitor: ctrl send to client %u failed: %s",
                    Raw(entry.id), s.ToString().c_str());
  }
}

void QosMonitor::StartPeriod() {
  if (!running_) return;
  if (stats_.periods > 0) Calibrate();
  dead_completed_this_period_ = 0;

  // Close the ledger of the period that just ended: attribute the final
  // pool movement to grants and snapshot the boundary value.
  if (!ledger_.empty()) {
    PeriodLedger& prev = ledger_.back();
    const std::int64_t raw = ReadPoolWord();
    prev.granted += ledger_last_pool_ - raw;
    prev.end_pool = raw;
    HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                       obs::EventType::kMonitorPeriodEnd, stats_.periods, raw,
                       stats_.last_period_completions, prev.granted);
  }

  // Closed-loop control boundary: the period-end emit above just ran the
  // recorder tap, so the watchdog's verdicts for the ended period are
  // settled; apply the controller's plan before the next period reads the
  // reservations (resizes take effect immediately, and they are
  // sum-neutral so the pool provisioning below is unaffected).
  if (controller_ != nullptr && stats_.periods > 0) RunControlBoundary();

  // Slots retired last period sat out a full boundary; any stale in-flight
  // WRITE to them has long landed, so they are safe to recycle.
  free_slots_.insert(free_slots_.end(), retired_slots_.begin(),
                     retired_slots_.end());
  retired_slots_.clear();

  ++stats_.periods;
  period_start_time_ = sim_.Now();
  reporting_active_ = false;
  borrow_credit_ = 0;

  period_capacity_ = estimator_->Estimate();
  std::int64_t total_reserved = 0;
  for (const auto& entry : clients_) total_reserved += entry.reservation;
  initial_pool_ = std::max<std::int64_t>(period_capacity_ - total_reserved, 0);
  WritePoolWord(initial_pool_);
  loop_observed_pool_ = initial_pool_;
  last_written_pool_ = initial_pool_;
  recent_grants_.clear();

  PeriodLedger ledger;
  ledger.period = stats_.periods;
  ledger.capacity = period_capacity_;
  ledger.dispatched = total_reserved;
  ledger.initial_pool = initial_pool_;
  ledger.end_pool = initial_pool_;
  ledger_.push_back(ledger);
  ledger_last_pool_ = initial_pool_;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kMonitorPeriodStart, stats_.periods,
                     period_capacity_, total_reserved, initial_pool_);
  // Bound memory on endless runs; tests look at recent periods only.
  if (ledger_.size() > 4096) ledger_.erase(ledger_.begin());

  // Step T1: push fresh reservation tokens; the message is also the
  // period-start signal. Report slots are primed with the full residual so
  // token conversion is conservative until the first real report lands.
  for (auto& entry : clients_) {
    WriteSlot(entry.slot,
              PackReport(stats_.periods,
                         static_cast<std::uint64_t>(
                             std::max<std::int64_t>(entry.reservation, 0)),
                         0));
    // The prime re-baselines the lease: every client gets a fresh k-check
    // allowance each period.
    entry.last_slot_raw = ReadSlot(entry.slot);
    entry.primed_slot_raw = entry.last_slot_raw;
    entry.lease_misses = 0;
    PeriodStartMsg msg;
    msg.period = stats_.periods;
    msg.reservation_tokens = entry.reservation;
    msg.limit = entry.limit;
    SendToClient(entry, &msg, sizeof(msg));
  }

  // Forced early conversion (controller kForceConversion): activate
  // reporting at the period start instead of waiting for S2 — with a zero
  // initial pool the word can never be observed to decrease, so S2 alone
  // would leave conversion off and pool-dependent clients starved (W6).
  if (force_reporting_ && !reporting_active_) {
    ActivateReporting(ReadPoolWord());
  }
}

void QosMonitor::ActivateReporting(std::int64_t observed_pool) {
  reporting_active_ = true;
  ++stats_.report_signals;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kReportSignal, stats_.periods,
                     observed_pool, initial_pool_);
  ReportRequestMsg msg;
  msg.period = stats_.periods;
  for (auto& entry : clients_) SendToClient(entry, &msg, sizeof(msg));
}

void QosMonitor::RunControlBoundary() {
  // The view: reservations as configured, completions as reported for the
  // period that just ended (slots still hold the final reports here — they
  // are re-primed only when the next period starts below).
  std::vector<control::QosController::ClientView> view;
  view.reserve(clients_.size());
  for (const auto& entry : clients_) {
    std::int64_t completed = 0;
    const std::uint64_t slot = ReadSlot(entry.slot);
    if (ReportPeriod(slot) == (stats_.periods & kReportPeriodMask)) {
      completed = static_cast<std::int64_t>(ReportCompleted(slot));
    }
    // The admissible region caps the planning limit: a receiver can never
    // be grown past the per-client local capacity, so every planned resize
    // passes admission_.Update and the emitted deltas stay sum-neutral.
    const std::int64_t local = admission_.LocalCapacity();
    const std::int64_t plan_limit =
        entry.limit > 0 ? std::min(entry.limit, local) : local;
    view.push_back({Raw(entry.id), entry.reservation, plan_limit, completed});
  }
  std::sort(view.begin(), view.end(),
            [](const control::QosController::ClientView& x,
               const control::QosController::ClientView& y) {
              return x.client < y.client;
            });

  const control::QosController::Boundary plan =
      controller_->PlanBoundary(stats_.periods, view);
  for (const auto& r : plan.recovered) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kController, trace_actor_,
                       obs::EventType::kControlRecovered, stats_.periods,
                       static_cast<std::int64_t>(r.rule), r.client,
                       static_cast<std::int64_t>(r.periods));
  }
  for (const auto& action : plan.actions) {
    bool applied = false;
    std::int64_t payload = action.value;
    switch (action.kind) {
      case control::ActionKind::kResize: {
        const Status s = UpdateReservation(
            MakeClientId(static_cast<std::uint32_t>(action.client)),
            action.value);
        if (!s.ok()) {
          HAECHI_LOG_WARN("controller: resize of client %lld failed: %s",
                          static_cast<long long>(action.client),
                          s.ToString().c_str());
        }
        applied = s.ok();
        payload = action.delta;
        break;
      }
      case control::ActionKind::kScaleEta:
        estimator_->SetEtaScaleMilli(action.value);
        applied = true;
        break;
      case control::ActionKind::kForceConversion:
        force_reporting_ = true;
        applied = true;
        break;
      case control::ActionKind::kReadmit:
        if (readmit_cb_) {
          readmit_cb_(MakeClientId(static_cast<std::uint32_t>(action.client)));
          applied = true;
        }
        break;
    }
    if (applied) {
      HAECHI_TRACE_EVENT(obs::ActorKind::kController, trace_actor_,
                         obs::EventType::kControlAction, stats_.periods,
                         static_cast<std::int64_t>(action.kind), action.client,
                         payload);
    }
  }
}

void QosMonitor::CheckTick() {
  if (!running_ || stats_.periods == 0) return;
  ++stats_.checks;

  // Ledger grant sampling reads the word directly (it is local memory, so
  // this is exact even when the QoS observation path is loopback CAS).
  if (!ledger_.empty()) {
    const std::int64_t raw = ReadPoolWord();
    ledger_.back().granted += ledger_last_pool_ - raw;
    ledger_last_pool_ = raw;
    HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                       obs::EventType::kPoolSample, stats_.periods, raw);
  }

  std::int64_t observed_now;
  if (config_.loopback_cas) {
    observed_now = loop_observed_pool_;
    if (!loop_cas_in_flight_) {
      // CAS(0, 0): reads the word through the NIC without disturbing it
      // (a compare that can only "succeed" by writing the value it found).
      const Status s = loop_qp_->PostCompareSwap(
          next_wr_id_++, control_mr_->remote_addr(), control_mr_->rkey(),
          /*expected=*/0, /*desired=*/0);
      loop_cas_in_flight_ = s.ok();
    }
  } else {
    observed_now = ReadPoolWord();
  }

  // Tokens granted since the last check: the word only moves down between
  // monitor writes, and a draw against an empty pool grants nothing.
  const std::int64_t grants =
      std::max<std::int64_t>(last_written_pool_, 0) -
      std::max<std::int64_t>(observed_now, 0);
  recent_grants_.push_back(std::max<std::int64_t>(grants, 0));
  // Lag window: a report in flight can be ~report_interval + transit old;
  // keep enough intervals to cover it (+1 for safety).
  const std::size_t lag_checks =
      static_cast<std::size_t>(config_.report_interval /
                               std::max<SimDuration>(config_.check_interval,
                                                     1)) +
      2;
  while (recent_grants_.size() > lag_checks) recent_grants_.pop_front();
  last_written_pool_ = observed_now;

  // Step S2: reservation-token overflow — someone is drawing on the pool.
  if (!reporting_active_ && observed_now < initial_pool_) {
    ActivateReporting(observed_now);
  }

  // Report lease: only meaningful once clients were asked to report.
  if (reporting_active_ && config_.report_lease_intervals > 0) CheckLeases();

  // Step T2: token conversion.
  if (reporting_active_ && config_.token_conversion) ConvertTokens();
}

void QosMonitor::CheckLeases() {
  // Two-phase: collect expirations first, then declare — DeclareDead
  // erases from clients_ and must not run under this iteration.
  std::vector<ClientId> dead;
  for (ClientEntry& entry : clients_) {
    const std::uint64_t raw = ReadSlot(entry.slot);
    if (raw != entry.last_slot_raw) {
      entry.last_slot_raw = raw;
      entry.lease_misses = 0;
      continue;
    }
    ++entry.lease_misses;
    if (entry.lease_misses ==
        std::max<std::uint32_t>(config_.report_lease_intervals / 2, 1)) {
      // Half-lease nudge: the ReportRequest SEND itself may have been
      // lost; a live client answers this within one report interval.
      ++stats_.report_request_resends;
      HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                         obs::EventType::kReportResend, stats_.periods,
                         static_cast<std::int64_t>(Raw(entry.id)));
      ReportRequestMsg msg;
      msg.period = stats_.periods;
      SendToClient(entry, &msg, sizeof(msg));
    }
    if (entry.lease_misses >= config_.report_lease_intervals) {
      dead.push_back(entry.id);
    }
  }
  for (const ClientId id : dead) DeclareDead(id);
}

void QosMonitor::DeclareDead(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  if (it == clients_.end()) return;
  // Unreported residual: the client's own last word if it reported this
  // period, else the full reservation it was dispatched.
  const std::uint64_t slot = ReadSlot(it->slot);
  std::int64_t residual;
  std::int64_t salvaged = 0;
  if (ReportPeriod(slot) == (stats_.periods & kReportPeriodMask)) {
    residual = static_cast<std::int64_t>(ReportResidual(slot));
    salvaged = static_cast<std::int64_t>(ReportCompleted(slot));
    dead_completed_this_period_ += salvaged;
  } else {
    residual = std::max<std::int64_t>(it->reservation, 0);
  }
  HAECHI_LOG_WARN(
      "monitor: client %u report lease expired after %u checks; reclaiming "
      "%lld residual tokens",
      Raw(client), it->lease_misses, static_cast<long long>(residual));
  ++stats_.lease_expirations;
  HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                     obs::EventType::kLeaseExpire, stats_.periods,
                     static_cast<std::int64_t>(Raw(client)), residual,
                     salvaged);
  stats_.reclaimed_tokens += residual;
  if (!ledger_.empty()) ledger_.back().reclaimed += residual;
  retired_slots_.push_back(it->slot);
  clients_.erase(it);
  const Status released = admission_.Release(client);
  HAECHI_ASSERT(released.ok());
  // Work conservation: realise the reclaimed residual in the pool now —
  // the dead client no longer contributes to L, so conversion re-mints
  // its surrendered claims for everyone else.
  if (config_.token_conversion && reporting_active_) ConvertTokens();
  if (client_dead_cb_) client_dead_cb_(client);
}

void QosMonitor::ConvertTokens() {
  std::int64_t outstanding_reservation = 0;  // the paper's L
  // Dead clients' salvaged completions still count against this period's
  // completion budget.
  std::int64_t completed_so_far = dead_completed_this_period_;
  for (const auto& entry : clients_) {
    const std::uint64_t slot = ReadSlot(entry.slot);
    if (ReportPeriod(slot) == (stats_.periods & kReportPeriodMask)) {
      outstanding_reservation += ReportResidual(slot);
      completed_so_far += ReportCompleted(slot);
    } else {
      // Stale (in-flight across the boundary) or missing report: assume
      // the full reservation is still outstanding — conservative, like the
      // slot prime it replaced.
      outstanding_reservation += entry.reservation;
    }
  }
  const SimDuration elapsed = sim_.Now() - period_start_time_;
  const SimDuration left =
      std::max<SimDuration>(config_.period - elapsed, 0);
  // Remaining capacity is the smaller of the paper's time-based budget
  // C*(T-t)/T and the completion-based budget C - U(t). The time budget
  // throttles the pool when the node under-delivers (over-estimated
  // capacity, Fig 16); the completion budget makes conversion strictly
  // token-conserving — it can recycle surrendered reservations but never
  // mint tokens beyond the period's capacity estimate, which preserves the
  // exact U == Omega underestimation signal Algorithm 1's recovery rests
  // on (Fig 18). (128-bit intermediate: tokens * ns overflows 64 bits.)
  const auto time_budget = static_cast<std::int64_t>(
      static_cast<__int128>(period_capacity_) * left / config_.period);
  const std::int64_t completion_budget =
      period_capacity_ - completed_so_far;
  const std::int64_t remaining_capacity =
      std::min(time_budget, completion_budget);
  // Grants from the last few checks are invisible in the (lagged) reports;
  // without this correction the conversion would re-mint them every check.
  std::int64_t unreported_grants = 0;
  for (const std::int64_t g : recent_grants_) unreported_grants += g;
  // borrow_credit_ (absorbed - lent this period) shifts the target so a
  // conversion pass neither clobbers tokens a peer transferred in nor
  // re-mints tokens this node lent out.
  const std::int64_t new_pool = std::max<std::int64_t>(
      remaining_capacity - outstanding_reservation - unreported_grants +
          borrow_credit_,
      0);
  if (!ledger_.empty()) {
    // Attribute pool movement since the last ledger sample to grants, and
    // the overwrite itself to minting (negative when conversion shrinks
    // the pool as the period drains).
    PeriodLedger& cur = ledger_.back();
    const std::int64_t raw_before = ReadPoolWord();
    cur.granted += ledger_last_pool_ - raw_before;
    cur.minted += new_pool - raw_before;
    ledger_last_pool_ = new_pool;
    HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                       obs::EventType::kTokenConvert, stats_.periods,
                       raw_before, new_pool, outstanding_reservation);
  }
  WritePoolWord(new_pool);
  last_written_pool_ = new_pool;
  ++stats_.conversions;
}

void QosMonitor::Calibrate() {
  // Step T3: feed Algorithm 1 with the reported completion total. Without
  // any reports this period (pool untouched), there is no signal — skip.
  // Clients that died mid-period still did their reported work; start the
  // total from their salvaged counts so Algorithm 1 does not read a crash
  // as a capacity drop.
  std::int64_t total_completed = dead_completed_this_period_;
  for (const auto& entry : clients_) {
    const std::uint64_t slot = ReadSlot(entry.slot);
    if (ReportPeriod(slot) == (stats_.periods & kReportPeriodMask)) {
      total_completed += ReportCompleted(slot);
      HAECHI_TRACE_EVENT(
          obs::ActorKind::kMonitor, trace_actor_,
          obs::EventType::kClientPeriodReport,
          stats_.periods, static_cast<std::int64_t>(Raw(entry.id)),
          static_cast<std::int64_t>(ReportCompleted(slot)),
          static_cast<std::int64_t>(ReportResidual(slot)));
    }
  }
  stats_.last_period_completions = total_completed;
  if (reporting_active_) {
    estimator_->OnPeriodEnd(total_completed);
    HAECHI_TRACE_EVENT(obs::ActorKind::kMonitor, trace_actor_,
                       obs::EventType::kCapacityEstimate, stats_.periods,
                       total_completed, estimator_->Estimate(),
                       static_cast<std::int64_t>(estimator_->LastDecision()));

    for (auto& entry : clients_) {
      const std::uint64_t slot = ReadSlot(entry.slot);
      if (ReportPeriod(slot) != (stats_.periods & kReportPeriodMask)) continue;
      const auto completed =
          static_cast<std::int64_t>(ReportCompleted(slot));
      if (completed < entry.reservation) {
        ++entry.underuse_streak;
        if (entry.underuse_streak >= config_.underuse_alert_periods) {
          ++stats_.over_reserve_hints;
          if (over_reserve_cb_) over_reserve_cb_(entry.id);
          OverReserveHintMsg msg;
          msg.consecutive_periods = entry.underuse_streak;
          SendToClient(entry, &msg, sizeof(msg));
          entry.underuse_streak = 0;
        }
      } else {
        entry.underuse_streak = 0;
      }
    }
  }
  if (period_hook_) {
    period_hook_(stats_.periods, total_completed, estimator_->Estimate());
  }
}

const QosMonitor::ClientEntry* QosMonitor::FindClient(ClientId client) const {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  return it == clients_.end() ? nullptr : &*it;
}

std::uint32_t QosMonitor::LastResidual(ClientId client) const {
  const ClientEntry* entry = FindClient(client);
  HAECHI_EXPECTS(entry != nullptr);
  return ReportResidual(ReadSlot(entry->slot));
}

std::uint32_t QosMonitor::LastCompleted(ClientId client) const {
  const ClientEntry* entry = FindClient(client);
  HAECHI_EXPECTS(entry != nullptr);
  return ReportCompleted(ReadSlot(entry->slot));
}

}  // namespace haechi::core
