// Tunables of the Haechi QoS protocol, with the paper's defaults.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace haechi::core {

struct QosConfig {
  /// QoS period T (paper: 1 s).
  SimDuration period = kSecond;

  /// Client token-management tick delta (paper: 1 ms) — the cadence at
  /// which unused reservation tokens decay back toward rho_i(t).
  SimDuration token_tick = kMillisecond;

  /// Client reporting interval once signalled (paper: 1 ms).
  SimDuration report_interval = kMillisecond;

  /// Monitor check interval (paper: 1 ms).
  SimDuration check_interval = kMillisecond;

  /// Global tokens fetched per remote FAA (paper: B = 1000).
  std::int64_t token_batch = 1000;

  /// When a client finds the pool empty, it retries the FAA at this
  /// cadence (waiting for the monitor's token conversion or the next
  /// period; the paper's step T4).
  SimDuration pool_retry_interval = kMillisecond;

  /// The engine posts no new token fetch within this window of the
  /// expected period end: a batch acquired while the monitor rolls the
  /// period over would be discarded (tokens are not carried across
  /// periods), silently wasting up to B tokens per client per period and
  /// breaking Algorithm 1's full-consumption (U == Omega) signal.
  SimDuration faa_end_guard = Millis(2);

  /// Number of shards the global token pool is split across (threaded
  /// runtime only; the simulator models one remote word). Each client FAAs
  /// its home shard (slot % pool_shards) and probes the others only when
  /// the home shard runs dry; the monitor provisions, converts and samples
  /// per shard and rebalances surplus between shards on its check tick.
  /// All ledger identities hold on the shard *sum*. 1 = the paper's single
  /// contended word.
  std::int64_t pool_shards = 1;

  /// Token-fetch chain length: one remote FAA draws
  /// token_batch * fetch_batch tokens, amortising the atomic (and, on a
  /// real NIC, the doorbell) over a chain of requests. 1 = the paper's
  /// per-batch FAA. Threaded runtime only; the simulator ignores it.
  std::int64_t fetch_batch = 1;

  /// Capacity-estimation increment eta (tokens/period). 0 = derive as
  /// eta_fraction of the profiled capacity.
  std::int64_t eta = 0;
  double eta_fraction = 0.03;

  /// Capacity-estimation history window M.
  std::size_t history_window = 4;

  /// sigma of the profiled capacity (tokens/period). 0 = derive as
  /// sigma_fraction of the profiled capacity. The estimator's floor is
  /// Omega_prof - 3 sigma.
  std::int64_t sigma = 0;
  double sigma_fraction = 0.08;

  /// Consecutive underuse periods before the monitor flags a client as
  /// having over-reserved (Algorithm 1's counter).
  std::uint32_t underuse_alert_periods = 5;

  /// Report lease k: once reporting is active, a client whose report slot
  /// has not changed for k consecutive check intervals is declared dead —
  /// its reservation is released through admission control and its
  /// unreported residual converted into global tokens (work conservation
  /// under client failure). 0 disables liveness tracking (graceful
  /// disconnects only). Reports flow every report_interval, so k must
  /// comfortably exceed report_interval / check_interval; k >= 4 leaves
  /// room for one lost report WRITE.
  std::uint32_t report_lease_intervals = 0;

  /// First retry delay after a *failed* token-fetch completion (NAK, retry
  /// timeout, flush). Doubles on every consecutive failure up to
  /// faa_retry_backoff_max and resets on success or a new period — the
  /// engine keeps probing a flaky fabric without hammering it. (An *empty*
  /// pool is not a failure; that path keeps the paper's fixed
  /// pool_retry_interval cadence.)
  SimDuration faa_retry_backoff = kMillisecond;
  SimDuration faa_retry_backoff_max = Millis(32);

  /// Disables token conversion (step T2): the paper's Basic Haechi
  /// ablation, which wastes unused reservation tokens.
  bool token_conversion = true;

  /// Monitor observes the global-token word through a loopback RDMA CAS
  /// (as described in the paper) instead of a local load. Identical
  /// values, small extra NIC traffic; kept for fidelity tests.
  bool loopback_cas = false;

  /// Upper bound on requests parked in a client engine waiting for
  /// tokens; beyond it Submit() rejects (runaway-client isolation).
  std::size_t max_engine_queue = 1u << 20;

  /// I/Os the engine keeps outstanding at its backend at most. The engine
  /// posts token-backed I/Os immediately (the paper's data-access flow
  /// performs the one-sided I/O as soon as a request has a token); a
  /// software send queue in front of the QP absorbs deep bursts, so the
  /// default is effectively unbounded. Lower it to emulate a hard SQ-depth
  /// cap; it must not exceed the backend's capacity (KvClient slots) when
  /// payload copying is on.
  std::size_t max_backend_outstanding = 1u << 20;
};

}  // namespace haechi::core
