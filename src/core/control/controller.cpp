#include "core/control/controller.hpp"

#include <algorithm>
#include <limits>

namespace haechi::core::control {

namespace {

constexpr std::string_view kPolicyNames[] = {"off", "conservative",
                                             "aggressive"};

/// Per-policy knobs derived from Policy; kept out of ControllerConfig so a
/// runtime SetPolicy retunes everything at once.
struct Tuning {
  std::int64_t shed_milli = 0;     // fraction of a W1 gap shed per boundary
  std::int64_t eta_damp_milli = 0; // eta scale multiplier per W5 alert
  std::int64_t readmit_after = 0;  // lease expiries before re-admission
};

Tuning Tuned(Policy policy) {
  switch (policy) {
    case Policy::kConservative:
      return {500, 500, 2};
    case Policy::kAggressive:
      return {1000, 250, 1};
    case Policy::kOff:
      break;
  }
  return {0, 0, 0};
}

constexpr std::int64_t kEtaScaleFloorMilli = 125;

std::uint8_t KindKey(obs::AlertKind kind) {
  return static_cast<std::uint8_t>(kind);
}

}  // namespace

std::string_view ToString(Policy policy) {
  const auto index = static_cast<std::size_t>(policy);
  return index < std::size(kPolicyNames) ? kPolicyNames[index] : "unknown";
}

bool PolicyFromName(std::string_view name, Policy& out) {
  for (std::size_t i = 0; i < std::size(kPolicyNames); ++i) {
    if (kPolicyNames[i] == name) {
      out = static_cast<Policy>(i);
      return true;
    }
  }
  return false;
}

Result<std::uint32_t> ParseRuleMask(std::string_view csv) {
  if (csv == "all") return std::uint32_t{kAllRules};
  if (csv == "none") return std::uint32_t{0};
  std::uint32_t mask = 0;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    const std::string_view token = csv.substr(0, comma);
    if (token == "w1") {
      mask |= kRuleShortfall;
    } else if (token == "w5") {
      mask |= kRuleOscillation;
    } else if (token == "w6") {
      mask |= kRuleStarvation;
    } else if (token == "lease") {
      mask |= kRuleLease;
    } else {
      return ErrInvalidArgument("unknown control rule (want w1,w5,w6,lease)");
    }
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  return mask;
}

QosController::QosController(const ControllerConfig& config)
    : config_(config) {}

void QosController::SetClientSpec(std::uint32_t client,
                                  std::int64_t reservation, std::int64_t limit,
                                  std::int64_t demand) {
  specs_[client] = {reservation, limit, demand};
}

void QosController::SetClientClass(std::uint32_t client, ClientClass cls) {
  classes_[client] = cls;
}

void QosController::OnAlert(const obs::Alert& alert) {
  switch (alert.kind) {
    case obs::AlertKind::kReservationShortfall:
    case obs::AlertKind::kCapacityOscillation:
    case obs::AlertKind::kFaaStarvation:
    case obs::AlertKind::kLeaseChurn:
      ++stats_.alerts;
      pending_.push_back(alert);
      break;
    default:  // not a rule this controller acts on (incl. its own recovered)
      break;
  }
}

std::uint32_t QosController::QuietFor(obs::AlertKind kind) const {
  return kind == obs::AlertKind::kCapacityOscillation
             ? config_.oscillation_quiet
             : config_.quiet_periods;
}

QosController::Boundary QosController::PlanBoundary(
    std::uint32_t period, const std::vector<ClientView>& view) {
  Boundary out;
  if (!enabled()) {
    pending_.clear();
    return out;
  }
  const Tuning tuning = Tuned(config_.policy);

  // ---- fold the alerts recorded since the last boundary ------------------
  const auto rule_on = [&](std::uint32_t bit) {
    return (config_.rules & bit) != 0;
  };
  for (const obs::Alert& alert : pending_) {
    bool track = false;
    switch (alert.kind) {
      case obs::AlertKind::kReservationShortfall:
        track = rule_on(kRuleShortfall);
        break;
      case obs::AlertKind::kCapacityOscillation:
        track = rule_on(kRuleOscillation);
        if (track) last_osc_period_ = alert.period;
        break;
      case obs::AlertKind::kFaaStarvation:
        track = rule_on(kRuleStarvation);
        break;
      case obs::AlertKind::kLeaseChurn:
        track = rule_on(kRuleLease);
        if (track) {
          auto& seen = churn_seen_[alert.client];
          seen = std::max(seen, alert.observed);
        }
        break;
      default:
        break;
    }
    if (!track) continue;
    auto [it, inserted] = violations_.try_emplace(
        {KindKey(alert.kind), alert.client},
        Violation{alert.period, alert.period, alert.expected, alert.observed});
    if (!inserted) {
      it->second.last_period = std::max(it->second.last_period, alert.period);
      it->second.expected = alert.expected;
      it->second.observed = alert.observed;
    }
  }
  pending_.clear();

  // ---- recovery scan: violations that stayed quiet -----------------------
  for (auto it = violations_.begin(); it != violations_.end();) {
    const auto kind = static_cast<obs::AlertKind>(it->first.first);
    const Violation& v = it->second;
    if (period >= v.last_period + QuietFor(kind)) {
      out.recovered.push_back(
          {kind, it->first.second, (v.last_period + 1) - v.first_period});
      ++stats_.recoveries;
      it = violations_.erase(it);
    } else {
      ++it;
    }
  }

  // ---- W5: damp the estimate step, relax it after quiet ------------------
  bool osc_fresh = false;
  for (const auto& [key, v] : violations_) {
    if (key.first == KindKey(obs::AlertKind::kCapacityOscillation) &&
        v.last_period == period) {
      osc_fresh = true;
    }
  }
  if (osc_fresh) {
    const std::int64_t damped =
        std::max(eta_scale_milli_ * tuning.eta_damp_milli / 1000,
                 kEtaScaleFloorMilli);
    if (damped != eta_scale_milli_) {
      eta_scale_milli_ = damped;
      ++stats_.eta_scalings;
      out.actions.push_back(
          {ActionKind::kScaleEta, -1, eta_scale_milli_, 0});
    }
  } else if (eta_scale_milli_ < 1000 && last_osc_period_ > 0 &&
             period >= last_osc_period_ + config_.eta_recover_after) {
    eta_scale_milli_ = std::min<std::int64_t>(eta_scale_milli_ * 2, 1000);
    last_osc_period_ = period;  // relax one doubling per quiet window
    ++stats_.eta_scalings;
    out.actions.push_back({ActionKind::kScaleEta, -1, eta_scale_milli_, 0});
  }

  // ---- W6: latch forced early conversion ---------------------------------
  for (const auto& [key, v] : violations_) {
    if (key.first != KindKey(obs::AlertKind::kFaaStarvation)) continue;
    if (v.last_period != period || force_active_) continue;
    force_active_ = true;
    ++stats_.forced_conversions;
    out.actions.push_back({ActionKind::kForceConversion, -1, 0, 0});
    break;
  }

  // ---- lease churn: re-admit once the policy's threshold is met ----------
  for (const auto& [client, count] : churn_seen_) {
    if (count < tuning.readmit_after) continue;
    auto& readmitted = churn_readmits_[client];
    if (count <= readmitted) continue;  // one re-admission per new expiry
    readmitted = count;
    ++stats_.readmits;
    out.actions.push_back({ActionKind::kReadmit, client, 0, 0});
  }

  // ---- W1: sum-neutral reservation reallocation --------------------------
  PlanShortfalls(period, view, out);
  return out;
}

void QosController::PlanShortfalls(std::uint32_t period,
                                   const std::vector<ClientView>& view,
                                   Boundary& out) {
  if ((config_.rules & kRuleShortfall) == 0) return;
  const Tuning tuning = Tuned(config_.policy);
  if (tuning.shed_milli == 0) return;

  // Working reservation map so several victims in one boundary see each
  // other's moves; also marks fresh victims (never receivers this round).
  std::map<std::uint32_t, std::int64_t> res;
  for (const ClientView& cv : view) res[cv.client] = cv.reservation;
  std::map<std::uint32_t, const ClientView*> by_id;
  for (const ClientView& cv : view) by_id[cv.client] = &cv;

  std::vector<std::pair<std::int64_t, const Violation*>> victims;
  for (const auto& [key, v] : violations_) {
    if (key.first != KindKey(obs::AlertKind::kReservationShortfall)) continue;
    if (v.last_period != period) continue;  // only freshly violated clients
    victims.emplace_back(key.second, &v);
  }
  std::sort(victims.begin(), victims.end());

  for (const auto& [victim_id, v] : victims) {
    if (victim_id < 0) continue;
    const auto victim = static_cast<std::uint32_t>(victim_id);
    const auto vit = by_id.find(victim);
    if (vit == by_id.end()) continue;  // departed since the alert

    // The violation payload carries floor_target (expected) and the
    // reported completions (observed): `observed` is the demonstrated
    // sustainable rate, so shrink the reservation toward it and the W1
    // target min(R, demand) follows it down.
    const std::int64_t sustainable =
        std::max(v->observed, config_.min_reservation);
    const std::int64_t current = res[victim];
    if (current <= sustainable) continue;
    std::int64_t shed =
        (current - sustainable) * tuning.shed_milli / 1000;
    if (shed <= 0) continue;

    // Receiver ranking: demand-capped clients first (their W1 target is
    // min(R, demand) = demand already, so extra reservation is free),
    // then higher priority, then client id for determinism.
    struct Ranked {
      int demand_capped;
      int priority;
      std::uint32_t client;
    };
    std::vector<Ranked> receivers;
    for (const ClientView& cv : view) {
      if (cv.client == victim) continue;
      bool fresh_victim = false;
      for (const auto& [id, unused] : victims) {
        if (id == cv.client) fresh_victim = true;
      }
      if (fresh_victim) continue;
      const auto spec = specs_.find(cv.client);
      const bool capped = spec != specs_.end() && spec->second.demand > 0 &&
                          res[cv.client] >= spec->second.demand;
      const auto cls = classes_.find(cv.client);
      const int priority =
          cls != classes_.end() ? cls->second.priority : ClientClass{}.priority;
      receivers.push_back({capped ? 0 : 1, -priority, cv.client});
    }
    std::sort(receivers.begin(), receivers.end(),
              [](const Ranked& x, const Ranked& y) {
                return std::tie(x.demand_capped, x.priority, x.client) <
                       std::tie(y.demand_capped, y.priority, y.client);
              });

    std::vector<std::pair<std::uint32_t, std::int64_t>> placements;
    std::int64_t placed = 0;
    for (const Ranked& r : receivers) {
      if (shed <= placed) break;
      const ClientView& cv = *by_id[r.client];
      std::int64_t cap = cv.limit > 0
                             ? cv.limit
                             : std::numeric_limits<std::int64_t>::max() / 4;
      const auto cls = classes_.find(r.client);
      const bool burst =
          cls != classes_.end() ? cls->second.burst : ClientClass{}.burst;
      if (!burst) {
        const auto spec = specs_.find(r.client);
        if (spec != specs_.end()) cap = std::min(cap, spec->second.reservation);
      }
      const std::int64_t room = cap - res[r.client];
      if (room <= 0) continue;
      const std::int64_t take = std::min(room, shed - placed);
      placements.emplace_back(r.client, take);
      res[r.client] += take;
      placed += take;
    }
    if (placed == 0) continue;  // nowhere to park: stay sum-neutral, no move

    // Shrink first so admission feasibility holds while the grows land.
    res[victim] -= placed;
    out.actions.push_back(
        {ActionKind::kResize, victim_id, res[victim], -placed});
    for (const auto& [receiver, take] : placements) {
      out.actions.push_back({ActionKind::kResize,
                             static_cast<std::int64_t>(receiver),
                             res[receiver], take});
    }
    stats_.resizes += 1 + placements.size();
  }
}

}  // namespace haechi::core::control
