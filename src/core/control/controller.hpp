// Closed-loop QoS control plane (DESIGN.md §14).
//
// The SloWatchdog (src/obs/slo) only *reports* W1-W7 conformance verdicts;
// this controller closes the loop. It is a policy engine fed by the live
// alert stream — it registers as an obs::AlertSink on the watchdog, which
// itself rides the Recorder::SetTap path — and turns violations into
// corrective actions applied at the next period boundary:
//
//   W1 reservation shortfall  ->  reservation resizing: shed the victim's
//                                 unservable reservation to a receiver with
//                                 headroom, sum-neutral on the token ledger
//                                 (the guarantee target min(R, demand)
//                                 falls to a sustainable level)
//   W5 capacity oscillation   ->  damp Algorithm 1's estimate step eta
//                                 (CapacityEstimator::SetEtaScaleMilli)
//   W6 FAA starvation         ->  force early token conversion: activate
//                                 reporting at the next period start instead
//                                 of waiting for S2, which can never fire on
//                                 a zero-initial pool
//   lease churn               ->  drive runtime re-admission of recovered
//                                 clients through the harness
//
// Contract split: OnAlert runs inside the recorder tap and therefore only
// records (the AlertSink contract forbids emitting events or mutating sim
// state from a tap). PlanBoundary is called by the QoS monitor at each
// period boundary — after the watchdog settled the period's verdicts and
// before the next period is provisioned — and returns the actions to apply
// plus the violations that went quiet. The monitor applies the actions and
// emits one kControlAction trace event per applied action and one
// kControlRecovered per recovery, so haechi_audit can replay the
// controller's behaviour (A10: resize deltas sum to zero per period) and
// ReplayTrace reproduces the `recovered` alerts offline.
//
// Everything here is pure bookkeeping over (alerts, client view): identical
// inputs produce identical plans, so controller runs are deterministic
// under fixed seeds on the simulator and statistically reproducible on the
// threaded runtime.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "obs/alerts.hpp"

namespace haechi::core::control {

/// How hard the controller leans on a violation. kOff keeps the controller
/// inert (alerts are drained and discarded); kConservative sheds half of a
/// measured gap per boundary and waits for repeated lease churn before
/// re-admitting; kAggressive closes the whole gap at once.
enum class Policy : std::uint8_t { kOff = 0, kConservative = 1, kAggressive = 2 };

[[nodiscard]] std::string_view ToString(Policy policy);
[[nodiscard]] bool PolicyFromName(std::string_view name, Policy& out);

/// Per-rule enables, a bit mask (the `rules` config field).
enum RuleBit : std::uint32_t {
  kRuleShortfall = 1u << 0,    // react to W1 reservation shortfall
  kRuleOscillation = 1u << 1,  // react to W5 capacity oscillation
  kRuleStarvation = 1u << 2,   // react to W6 FAA starvation
  kRuleLease = 1u << 3,        // react to lease churn (re-admission)
  kAllRules = (1u << 4) - 1,
};

/// Parses "w1,w5,w6,lease" (any subset), "all" or "none" into a rule mask.
[[nodiscard]] Result<std::uint32_t> ParseRuleMask(std::string_view csv);

/// What one controller action does; stamped into kControlAction.a.
enum class ActionKind : std::uint8_t {
  kResize = 0,           // change a client's reservation (sum-neutral pair)
  kScaleEta = 1,         // set the estimator's eta scale (milli)
  kForceConversion = 2,  // activate reporting/conversion at period start
  kReadmit = 3,          // re-admit a lease-expired client via the harness
};

/// Priority/burst service classes layered on top of reserve+limit. They
/// shape W1 reallocation only: receivers are ranked by priority (higher
/// first), and a non-burst client never grows beyond its admitted spec
/// reservation while a burst client may absorb shed capacity up to its
/// limit. The default class is permissive so the controller works without
/// per-client setup.
struct ClientClass {
  std::uint8_t priority = 1;
  bool burst = true;
};

struct ControllerConfig {
  Policy policy = Policy::kOff;
  std::uint32_t rules = kAllRules;
  /// Clean evaluated periods before a W1/W6/lease violation counts as
  /// recovered (these rules re-alert every violating period).
  std::uint32_t quiet_periods = 1;
  /// Clean periods before W5 counts as recovered. W5 only alerts every
  /// `oscillation_flips` periods while oscillating, so this must exceed
  /// the watchdog's flip window to avoid declaring recovery mid-cycle.
  std::uint32_t oscillation_quiet = 6;
  /// Quiet periods after the last W5 alert before the eta damping is
  /// relaxed again (doubling back toward 1000 milli).
  std::uint32_t eta_recover_after = 16;
  /// Floor a W1 resize may shrink a reservation to.
  std::int64_t min_reservation = 0;
};

class QosController : public obs::AlertSink {
 public:
  explicit QosController(const ControllerConfig& config);

  /// Admission-time facts the policy needs: the spec reservation caps
  /// non-burst receivers and spec demand identifies demand-capped clients
  /// (safe receivers — extra reservation cannot raise their W1 target).
  void SetClientSpec(std::uint32_t client, std::int64_t reservation,
                     std::int64_t limit, std::int64_t demand);
  void SetClientClass(std::uint32_t client, ClientClass cls);

  /// Runtime policy swap (the haechi_sim --control-api path). Takes effect
  /// at the next boundary; violation bookkeeping is kept so a controller
  /// switched on mid-run reacts to an ongoing violation immediately.
  void SetPolicy(Policy policy) { config_.policy = policy; }
  void EnableRule(std::uint32_t bit, bool on) {
    if (on) {
      config_.rules |= bit;
    } else {
      config_.rules &= ~bit;
    }
  }

  [[nodiscard]] Policy policy() const { return config_.policy; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.policy != Policy::kOff; }

  /// AlertSink intake. Runs inside the recorder tap: records the alert and
  /// nothing else (no event emission, no sim-state mutation).
  void OnAlert(const obs::Alert& alert) override;

  /// One admitted client as the monitor sees it at the boundary.
  struct ClientView {
    std::uint32_t client = 0;
    std::int64_t reservation = 0;
    std::int64_t limit = 0;      // 0 = unlimited
    std::int64_t completed = 0;  // reported completions, evaluated period
  };

  struct Action {
    ActionKind kind{};
    std::int64_t client = -1;  // -1: monitor-wide
    /// kResize: the new absolute reservation; kScaleEta: scale in milli.
    std::int64_t value = 0;
    /// kResize: signed reservation change — the kControlAction.c payload
    /// the audit sums to prove boundary-local neutrality.
    std::int64_t delta = 0;
  };

  struct Recovery {
    obs::AlertKind rule{};
    std::int64_t client = -1;
    std::uint32_t periods = 0;  // first violation -> first clean period
  };

  struct Boundary {
    std::vector<Action> actions;
    std::vector<Recovery> recovered;
  };

  /// Turns the alerts recorded since the last boundary into a plan.
  /// `period` is the period whose verdicts just settled; `view` must be
  /// sorted by client id (the monitor guarantees it). Resize actions are
  /// ordered shrink-before-grow and their deltas sum to zero.
  Boundary PlanBoundary(std::uint32_t period,
                        const std::vector<ClientView>& view);

  struct Stats {
    std::uint64_t alerts = 0;
    std::uint64_t resizes = 0;
    std::uint64_t eta_scalings = 0;
    std::uint64_t forced_conversions = 0;
    std::uint64_t readmits = 0;
    std::uint64_t recoveries = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Current eta damping (1000 = undamped) and whether forced conversion
  /// is latched (it stays on once W6 fired: the zero-pool deadlock it
  /// breaks would re-form the moment forcing stops).
  [[nodiscard]] std::int64_t eta_scale_milli() const { return eta_scale_milli_; }
  [[nodiscard]] bool force_conversion_active() const { return force_active_; }

 private:
  struct Spec {
    std::int64_t reservation = 0;
    std::int64_t limit = 0;
    std::int64_t demand = 0;
  };

  struct Violation {
    std::uint32_t first_period = 0;
    std::uint32_t last_period = 0;
    std::int64_t expected = 0;  // latest alert payload
    std::int64_t observed = 0;
  };

  [[nodiscard]] std::uint32_t QuietFor(obs::AlertKind kind) const;
  void PlanShortfalls(std::uint32_t period,
                      const std::vector<ClientView>& view, Boundary& out);

  ControllerConfig config_;
  std::map<std::uint32_t, Spec> specs_;
  std::map<std::uint32_t, ClientClass> classes_;
  std::vector<obs::Alert> pending_;
  // (rule, client) -> violation in progress. client -1 for monitor-wide.
  std::map<std::pair<std::uint8_t, std::int64_t>, Violation> violations_;
  std::map<std::int64_t, std::int64_t> churn_seen_;      // client -> count
  std::map<std::int64_t, std::int64_t> churn_readmits_;  // client -> count
  std::int64_t eta_scale_milli_ = 1000;
  std::uint32_t last_osc_period_ = 0;
  bool force_active_ = false;
  Stats stats_;
};

}  // namespace haechi::core::control
