#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace haechi::core {

namespace {

// wr_id tag bits distinguish the engine's own QoS ops on its send CQ.
constexpr std::uint64_t kWrTagFaa = 1ULL << 62;
constexpr std::uint64_t kWrTagReport = 1ULL << 63;

}  // namespace

ClientQosEngine::ClientQosEngine(sim::Simulator& sim, ClientId id,
                                 const QosConfig& config, rdma::Node& node,
                                 rdma::QueuePair& qos_qp,
                                 rdma::QueuePair& ctrl_qp,
                                 const QosWiring& wiring)
    : sim_(sim),
      id_(id),
      trace_actor_(Raw(id)),
      config_(config),
      node_(node),
      qos_qp_(qos_qp),
      ctrl_qp_(ctrl_qp),
      wiring_(wiring) {
  // Control messages are small; a shallow ring of receive buffers suffices
  // (the monitor sends at most a couple per check interval).
  ctrl_recv_buffers_.resize(16);
  for (std::size_t i = 0; i < ctrl_recv_buffers_.size(); ++i) {
    ctrl_recv_buffers_[i].resize(64);
    const Status s =
        ctrl_qp_.PostRecv(i, std::span<std::byte>(ctrl_recv_buffers_[i]));
    HAECHI_ASSERT(s.ok());
  }
  ctrl_qp_.recv_cq().SetNotify(
      [this](const rdma::WorkCompletion& wc) { HandleCtrl(wc); });
  ctrl_qp_.send_cq().SetNotify([](const rdma::WorkCompletion&) {});

  report_buffer_.resize(sizeof(std::uint64_t));
  report_mr_ = &node_.pd().Register(
      std::span<std::byte>(report_buffer_),
      rdma::access::kLocalRead | rdma::access::kLocalWrite);
  qos_qp_.send_cq().SetNotify(
      [this](const rdma::WorkCompletion& wc) { HandleQosCompletion(wc); });

  token_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.token_tick, [this] { TokenTick(); });
  report_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.report_interval, [this] { WriteReport(); });
}

Status ClientQosEngine::Submit(std::uint64_t key, CompleteFn done,
                               bool is_write) {
  HAECHI_EXPECTS(done != nullptr);
  if (backend_ == nullptr) {
    return ErrFailedPrecondition("no I/O backend configured");
  }
  if (queue_.size() >= config_.max_engine_queue) {
    ++stats_.rejected_submits;
    return ErrResourceExhausted("engine queue full");
  }
  const std::uint64_t io_id = next_io_id_++;
  queue_.push_back(Pending{key, is_write, io_id, std::move(done)});
  HAECHI_TRACE_DETAIL(obs::ActorKind::kEngine, trace_actor_,
                      obs::EventType::kIoQueued, period_,
                      static_cast<std::int64_t>(io_id),
                      static_cast<std::int64_t>(queue_.size()));
  TryIssue();
  return Status::Ok();
}

void ClientQosEngine::HandleCtrl(const rdma::WorkCompletion& wc) {
  HAECHI_ASSERT(wc.opcode == rdma::Opcode::kRecv);
  auto& buffer = ctrl_recv_buffers_[wc.wr_id];
  CtrlType type;
  HAECHI_ASSERT(wc.byte_len >= sizeof(type));
  std::memcpy(&type, buffer.data(), sizeof(type));
  switch (type) {
    case CtrlType::kPeriodStart: {
      PeriodStartMsg msg;
      std::memcpy(&msg, buffer.data(), sizeof(msg));
      OnPeriodStart(msg);
      break;
    }
    case CtrlType::kReportRequest:
      OnReportRequest();
      break;
    case CtrlType::kOverReserveHint:
      ++stats_.over_reserve_hints;
      break;
  }
  const Status s =
      ctrl_qp_.PostRecv(wc.wr_id, std::span<std::byte>(buffer));
  HAECHI_ASSERT(s.ok());
}

void ClientQosEngine::OnPeriodStart(const PeriodStartMsg& msg) {
  ++stats_.periods_started;
  period_ = msg.period;
  HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                     obs::EventType::kEnginePeriodStart, period_,
                     msg.reservation_tokens, msg.limit);
  // Fresh reservation tokens *replace* leftovers (reservation and global).
  xi_reservation_ = msg.reservation_tokens;
  decay_x_ = static_cast<double>(msg.reservation_tokens);
  decay_per_tick_ = static_cast<double>(msg.reservation_tokens) *
                    static_cast<double>(config_.token_tick) /
                    static_cast<double>(config_.period);
  local_global_ = 0;
  limit_ = msg.limit;
  stats_.completed_this_period = 0;
  stats_.issued_this_period = 0;
  pool_retry_armed_ = false;
  faa_backoff_ = 0;  // a fresh period forgives past fetch failures
  faa_exhausted_signalled_ = false;
  started_ = true;
  period_started_at_ = sim_.Now();
  // Reporting stops until the monitor asks again this period.
  report_timer_->Stop();
  if (!token_timer_->Running()) token_timer_->Start();
  TryIssue();
}

void ClientQosEngine::OnReportRequest() {
  // Duplicate requests (the monitor's half-lease retransmission) are
  // idempotent: an already-reporting engine just keeps its cadence.
  if (!report_timer_->Running()) {
    // First report goes out immediately; the cadence continues from now.
    WriteReport();
    report_timer_->Start();
  }
}

void ClientQosEngine::Stop() {
  if (started_) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kEngineStop, period_);
  }
  started_ = false;
  token_timer_->Stop();
  report_timer_->Stop();
  queue_.clear();
}

void ClientQosEngine::TokenTick() {
  if (!started_) return;
  decay_x_ = std::max(0.0, decay_x_ - decay_per_tick_);
  const auto bound = static_cast<std::int64_t>(std::floor(decay_x_));
  // Insufficient demand: surrender reservation tokens above the backlog
  // bound X. (They are reclaimed by the monitor's token conversion once
  // the client reports.)
  if (xi_reservation_ > bound) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kTokenDecay, period_,
                       xi_reservation_ - bound, bound);
    xi_reservation_ = bound;
  }
}

void ClientQosEngine::WriteReport() {
  // The reported residual is the client's outstanding *claim* on the rest
  // of the period: unconsumed reservation tokens (decay-adjusted for
  // insufficient demand), plus locally-held global tokens, plus I/Os
  // already issued but not yet completed. Reporting claims — rather than
  // just xi_reservation — keeps the monitor's token conversion from
  // re-granting capacity that in-flight I/Os will consume (the paper's L,
  // "the maximum number of outstanding reservation I/Os", generalised to
  // all token-backed claims; see DESIGN.md §6).
  const std::int64_t claims =
      xi_reservation_ + local_global_ +
      static_cast<std::int64_t>(backend_outstanding_);
  const std::uint64_t packed = PackReport(
      period_, static_cast<std::uint64_t>(std::max<std::int64_t>(claims, 0)),
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(stats_.completed_this_period, 0)),
      report_seq_++);
  std::memcpy(report_buffer_.data(), &packed, sizeof(packed));
  const Status s = qos_qp_.PostWrite(
      kWrTagReport | next_wr_id_++,
      std::span<const std::byte>(report_buffer_), wiring_.report_slot_addr,
      wiring_.report_slot_rkey);
  if (s.ok()) {
    ++stats_.report_writes;
    HAECHI_TRACE_EVENT(
        obs::ActorKind::kEngine, trace_actor_, obs::EventType::kReportWrite,
        period_,
        static_cast<std::int64_t>(ReportResidual(packed)),
        static_cast<std::int64_t>(ReportCompleted(packed)),
        static_cast<std::int64_t>(stats_.report_writes));
  } else {
    ++stats_.report_failures;
    HAECHI_LOG_WARN("engine %u: report write failed: %s", Raw(id_),
                    s.ToString().c_str());
  }
}

void ClientQosEngine::PostTokenFetch() {
  HAECHI_ASSERT(!faa_in_flight_);
  const Status s = qos_qp_.PostFetchAdd(kWrTagFaa | next_wr_id_++,
                                        wiring_.global_pool_addr,
                                        wiring_.global_pool_rkey,
                                        -config_.token_batch);
  if (!s.ok()) {
    ++stats_.faa_failures;
    HAECHI_LOG_WARN("engine %u: FAA post failed: %s", Raw(id_),
                    s.ToString().c_str());
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kTokenFetchFail, period_,
                       faa_backoff_);
    ArmFaaRetry();
    return;
  }
  faa_in_flight_ = true;
  faa_period_ = period_;
  ++stats_.faa_ops;
  HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                     obs::EventType::kTokenFetch, period_,
                     config_.token_batch);
}

void ClientQosEngine::ArmFaaRetry() {
  // Exponential backoff: transient fabric faults (dropped FAA, NAK burst)
  // resolve in a retry or two; a dead data node stops costing more than
  // one probe per faa_retry_backoff_max.
  if (faa_retry_armed_) return;
  faa_backoff_ = faa_backoff_ == 0
                     ? config_.faa_retry_backoff
                     : std::min<SimDuration>(faa_backoff_ * 2,
                                             config_.faa_retry_backoff_max);
  if (faa_backoff_ >= config_.faa_retry_backoff_max &&
      !faa_exhausted_signalled_) {
    // The backoff ladder is pinned at its ceiling: every further fetch this
    // period is a once-per-backoff_max probe. Signalled once per period so
    // the watchdog sees saturation, not each probe.
    faa_exhausted_signalled_ = true;
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kFaaExhausted, period_, faa_backoff_);
  }
  faa_retry_armed_ = true;
  const std::uint32_t at_period = period_;
  sim_.ScheduleAfter(faa_backoff_, [this, at_period] {
    faa_retry_armed_ = false;
    if (!started_ || period_ != at_period) return;
    ++stats_.faa_retries;
    TryIssue();
  });
}

void ClientQosEngine::HandleQosCompletion(const rdma::WorkCompletion& wc) {
  if ((wc.wr_id & kWrTagReport) != 0) {  // report write acks
    if (!wc.ok()) ++stats_.report_failures;
    return;
  }
  if ((wc.wr_id & kWrTagFaa) == 0) return;
  faa_in_flight_ = false;
  if (!wc.ok()) {
    ++stats_.faa_failures;
    HAECHI_LOG_WARN("engine %u: FAA failed: %s", Raw(id_),
                    std::string(rdma::ToString(wc.status)).c_str());
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kTokenFetchFail, period_,
                       faa_backoff_);
    ArmFaaRetry();
    return;
  }
  faa_backoff_ = 0;  // a successful fetch resets the backoff ladder
  if (faa_period_ != period_) {
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kTokenDiscard, faa_period_,
                       static_cast<std::int64_t>(wc.atomic_result));
    // The pool was re-initialised for a new period while this fetch was in
    // flight; its tokens belong to the dead period and are discarded. The
    // demand that prompted it is still queued — fetch again against the
    // current period's pool.
    TryIssue();
    return;
  }
  const auto available = static_cast<std::int64_t>(wc.atomic_result);
  const std::int64_t acquired =
      std::clamp<std::int64_t>(available, 0, config_.token_batch);
  local_global_ += acquired;
  HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                     obs::EventType::kTokenFetchDone, period_, available,
                     acquired);
  if (acquired == 0 && !queue_.empty() && !pool_retry_armed_) {
    // Step T4: wait for token conversion or the next period, polling the
    // pool at the retry cadence.
    pool_retry_armed_ = true;
    HAECHI_TRACE_EVENT(obs::ActorKind::kEngine, trace_actor_,
                       obs::EventType::kPoolEmpty, period_, available);
    const std::uint32_t at_period = period_;
    sim_.ScheduleAfter(config_.pool_retry_interval, [this, at_period] {
      pool_retry_armed_ = false;
      if (period_ == at_period) TryIssue();
    });
    return;
  }
  TryIssue();
}

void ClientQosEngine::TryIssue() {
  if (!started_) return;
  while (!queue_.empty()) {
    if (limit_ > 0 && stats_.issued_this_period >= limit_) {
      ++stats_.limit_throttle_events;
      return;  // throttled until the next period
    }
    if (backend_outstanding_ >= config_.max_backend_outstanding) {
      return;  // resumes when a completion frees a slot
    }
    if (xi_reservation_ > 0) {
      --xi_reservation_;
      ++stats_.tokens_from_reservation;
      IssueOne(/*token_source=*/0);
      continue;
    }
    if (local_global_ > 0) {
      --local_global_;
      ++stats_.tokens_from_pool;
      IssueOne(/*token_source=*/1);
      continue;
    }
    // No fetch near the period end: a batch still in flight at the
    // rollover would be discarded (see QosConfig::faa_end_guard).
    const bool near_end = sim_.Now() - period_started_at_ >=
                          config_.period - config_.faa_end_guard;
    if (!faa_in_flight_ && !pool_retry_armed_ && !near_end) PostTokenFetch();
    return;
  }
}

void ClientQosEngine::IssueOne(std::int64_t token_source) {
  Pending request = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.issued_this_period;
  ++backend_outstanding_;
  HAECHI_TRACE_DETAIL(obs::ActorKind::kEngine, trace_actor_,
                      obs::EventType::kIoIssue, period_,
                      static_cast<std::int64_t>(request.io_id), token_source,
                      static_cast<std::int64_t>(queue_.size()));
  const Status s = backend_(
      request.key, request.is_write,
      [this, io_id = request.io_id, done = std::move(request.done)] {
        --backend_outstanding_;
        ++stats_.completed_this_period;
        ++stats_.completed_total;
        HAECHI_TRACE_DETAIL(obs::ActorKind::kEngine, trace_actor_,
                            obs::EventType::kIoComplete, period_,
                            static_cast<std::int64_t>(io_id),
                            static_cast<std::int64_t>(backend_outstanding_));
        done();
        // A completion frees backend capacity; anything parked for that
        // reason gets another chance.
        TryIssue();
      });
  // The outstanding cap above guarantees the backend has room; a failure
  // here is a wiring bug (mismatched capacities), not a runtime condition.
  HAECHI_ASSERT(s.ok());
}

}  // namespace haechi::core
