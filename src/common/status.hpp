// Minimal Status / Result<T> vocabulary for recoverable errors.
//
// C++20 has no std::expected, and exceptions are the wrong tool for errors
// that are part of a protocol's normal vocabulary (an RDMA completion with a
// protection fault is data, not a panic). Result<T> keeps those paths
// explicit and testable.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace haechi {

/// Coarse error taxonomy; mirrors the classes of failure that surface from
/// the verbs layer and the QoS protocol.
enum class StatusCode {
  kOk,
  kInvalidArgument,   // caller bug observable from the public API
  kNotFound,          // lookup misses (keys, client ids)
  kPermissionDenied,  // rkey / access-flag violations
  kOutOfRange,        // MR bounds violations
  kResourceExhausted, // admission rejected, queue full
  kFailedPrecondition,// operation in wrong state (disconnected QP, ...)
  kAborted,           // retriable conflict (seqlock torn read)
  kUnavailable,       // transient: no tokens / would block
  kInternal,          // invariant violation escaped as an error
};

/// Human-readable tag for a StatusCode (stable, for logs and test output).
constexpr std::string_view ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// An error code plus a context message. The empty (kOk) status is cheap to
/// construct and copy.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    std::string out{haechi::ToString(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status ErrInvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status ErrNotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status ErrPermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status ErrOutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status ErrResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status ErrFailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status ErrAborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
inline Status ErrUnavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status ErrInternal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Either a value or a Status explaining its absence.
/// Accessors enforce the "checked before use" contract with assertions.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    HAECHI_EXPECTS(!std::get<Status>(rep_).ok());
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] const T& value() const& {
    HAECHI_EXPECTS(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    HAECHI_EXPECTS(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    HAECHI_EXPECTS(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  /// Returns the contained value or `fallback` when holding an error.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace haechi
