// Tiny command-line flag parsing for bench and example binaries.
//
// Supports `--name=value` and `--name value`; unknown flags are an error so
// typos in experiment sweeps fail loudly rather than silently running the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace haechi {

/// Parsed view of argv. Parse() consumes `--key[=value]` pairs; remaining
/// positional arguments are kept in order.
class Flags {
 public:
  /// Parses argv (skipping argv[0]). `allowed` lists every recognised flag
  /// name; an argument `--x` with `x` not in the list yields an error.
  static Result<Flags> Parse(int argc, const char* const* argv,
                             const std::vector<std::string>& allowed);

  [[nodiscard]] bool Has(std::string_view name) const;

  /// Typed getters returning `fallback` when the flag is absent.
  /// Malformed values abort: a bench invoked with --periods=abc is a usage
  /// bug that must not produce a silently-default run.
  [[nodiscard]] std::int64_t GetInt(std::string_view name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(std::string_view name, double fallback) const;
  [[nodiscard]] std::string GetString(std::string_view name,
                                      std::string fallback) const;
  [[nodiscard]] bool GetBool(std::string_view name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace haechi
