#include "common/flags.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "common/assert.hpp"

namespace haechi {

Result<Flags> Flags::Parse(int argc, const char* const* argv,
                           const std::vector<std::string>& allowed) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // `--flag value` form, unless the next token is another flag or absent
      // (then it is treated as a boolean `true`).
      if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      return ErrInvalidArgument("unknown flag --" + name);
    }
    flags.values_[name] = value;
  }
  return flags;
}

bool Flags::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::int64_t Flags::GetInt(std::string_view name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    std::fprintf(stderr, "flag --%s: '%s' is not an integer\n",
                 it->first.c_str(), text.c_str());
    std::abort();
  }
  return out;
}

double Flags::GetDouble(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "flag --%s: '%s' is not a number\n",
                 it->first.c_str(), it->second.c_str());
    std::abort();
  }
  return out;
}

std::string Flags::GetString(std::string_view name, std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::GetBool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  std::fprintf(stderr, "flag --%s: '%s' is not a boolean\n", it->first.c_str(),
               v.c_str());
  std::abort();
}

}  // namespace haechi
