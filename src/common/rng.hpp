// Deterministic random number generation for simulations and workloads.
//
// Every stochastic component takes an explicit Rng (seeded from the
// experiment config) so that runs are reproducible bit-for-bit; nothing in
// the repository reads entropy from the environment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace haechi {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  /// Re-initialises the state from `seed` via SplitMix64, which guarantees a
  /// well-mixed nonzero state even for small consecutive seeds.
  void Reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method (unbiased, no modulo).
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  /// Normally distributed double (Box–Muller; consumes two uniforms).
  double NextGaussian(double mean, double stddev);

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream so adding a component does not perturb others.
  Rng Fork();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^theta — the zipfian key
/// popularity used by YCSB. Precomputes the CDF once; sampling is a binary
/// search (O(log n)).
///
/// Also usable as the paper's "Zipf reservation distribution": Weight(k)
/// exposes the unnormalised weights applied to the 5 client groups.
class ZipfianSampler {
 public:
  ZipfianSampler(std::uint64_t n, double theta);

  /// Draws one rank in [0, n).
  std::uint64_t Sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

  /// Unnormalised weight of rank k: 1/(k+1)^theta.
  [[nodiscard]] double Weight(std::uint64_t k) const;

  /// Normalised probability of rank k.
  [[nodiscard]] double Probability(std::uint64_t k) const;

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

/// YCSB's "scrambled zipfian": zipfian rank popularity spread across the key
/// space by a hash, so popular keys are not clustered at low key values.
class ScrambledZipfianSampler {
 public:
  ScrambledZipfianSampler(std::uint64_t n, double theta)
      : inner_(n, theta), n_(n) {}

  std::uint64_t Sample(Rng& rng) const;

 private:
  static std::uint64_t Fnv1aHash(std::uint64_t v);

  ZipfianSampler inner_;
  std::uint64_t n_;
};

}  // namespace haechi
