// Leveled logging with printf-style formatting.
//
// The simulator is single-threaded, so the logger keeps no locks; benches
// run at level kWarn by default so the hot path is one branch per call.
#pragma once

#include <cstdarg>
#include <string_view>

namespace haechi {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold. Messages below the threshold are dropped.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Emits one formatted line to stderr, prefixed with level tag.
  /// Never throws; formatting errors degrade to a warning line.
  static void Log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(threshold());
  }
};

/// Parses "trace|debug|info|warn|error|off"; defaults to kWarn on no match.
LogLevel ParseLogLevel(std::string_view text);

}  // namespace haechi

#define HAECHI_LOG(level, ...)                                   \
  do {                                                           \
    if (::haechi::Logger::Enabled(level)) {                      \
      ::haechi::Logger::Log(level, __VA_ARGS__);                 \
    }                                                            \
  } while (0)

#define HAECHI_LOG_TRACE(...) HAECHI_LOG(::haechi::LogLevel::kTrace, __VA_ARGS__)
#define HAECHI_LOG_DEBUG(...) HAECHI_LOG(::haechi::LogLevel::kDebug, __VA_ARGS__)
#define HAECHI_LOG_INFO(...) HAECHI_LOG(::haechi::LogLevel::kInfo, __VA_ARGS__)
#define HAECHI_LOG_WARN(...) HAECHI_LOG(::haechi::LogLevel::kWarn, __VA_ARGS__)
#define HAECHI_LOG_ERROR(...) HAECHI_LOG(::haechi::LogLevel::kError, __VA_ARGS__)
