// Precondition / postcondition / invariant checks, following the Core
// Guidelines' Expects()/Ensures() style (I.5–I.8). Violations abort with a
// source location: in a deterministic simulation an invariant violation is
// always a programming error, never an environmental condition, so aborting
// (rather than throwing) is the honest response and keeps the checks usable
// inside noexcept paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace haechi::detail {

[[noreturn]] inline void AssertFail(const char* kind, const char* expr,
                                    const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace haechi::detail

#define HAECHI_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::haechi::detail::AssertFail("Precondition", #cond, __FILE__,   \
                                         __LINE__))

#define HAECHI_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::haechi::detail::AssertFail("Postcondition", #cond, __FILE__,  \
                                         __LINE__))

#define HAECHI_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::haechi::detail::AssertFail("Invariant", #cond, __FILE__,      \
                                         __LINE__))

#define HAECHI_UNREACHABLE(msg)                                             \
  ::haechi::detail::AssertFail("Unreachable", msg, __FILE__, __LINE__)
