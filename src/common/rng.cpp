#include "common/rng.hpp"

#include <cmath>

namespace haechi {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = SplitMix64(x);
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  HAECHI_EXPECTS(bound > 0);
  // Lemire's method: map a 64-bit draw into [0, bound) via the high half of
  // a 128-bit product, rejecting the small biased region.
  while (true) {
    const std::uint64_t x = (*this)();
    const auto m = static_cast<unsigned __int128>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  HAECHI_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextExponential(double mean) {
  HAECHI_EXPECTS(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  HAECHI_EXPECTS(stddev >= 0.0);
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng((*this)() ^ 0xa02b'dbf7'bb3c'0a7ULL); }

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta), cdf_(n) {
  HAECHI_EXPECTS(n > 0);
  HAECHI_EXPECTS(theta >= 0.0);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += Weight(k);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

double ZipfianSampler::Weight(std::uint64_t k) const {
  return 1.0 / std::pow(static_cast<double>(k + 1), theta_);
}

double ZipfianSampler::Probability(std::uint64_t k) const {
  HAECHI_EXPECTS(k < n_);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::uint64_t ZipfianSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First rank whose CDF covers u.
  std::uint64_t lo = 0;
  std::uint64_t hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t ScrambledZipfianSampler::Fnv1aHash(std::uint64_t v) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t ScrambledZipfianSampler::Sample(Rng& rng) const {
  return Fnv1aHash(inner_.Sample(rng)) % n_;
}

}  // namespace haechi
