// Core value types shared by every Haechi module.
//
// All simulated time is kept in integer nanoseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible; conversion helpers keep
// call sites free of raw unit arithmetic.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace haechi {

/// Simulated time in nanoseconds since the start of the run.
/// A plain signed integer (rather than std::chrono) keeps the event queue's
/// comparisons trivial and makes "time arithmetic bugs" visible in tests.
using SimTime = std::int64_t;

/// Duration in nanoseconds. Same representation as SimTime; separate alias
/// purely for reader intent.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration Micros(std::int64_t us) { return us * kMicrosecond; }
constexpr SimDuration Millis(std::int64_t ms) { return ms * kMillisecond; }
constexpr SimDuration Seconds(std::int64_t s) { return s * kSecond; }

/// Converts a duration to (floating) seconds — for reporting only, never for
/// simulation arithmetic.
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts an operation count over a duration into KIOPS (thousands of I/O
/// operations per second), the unit the paper reports throughput in.
constexpr double ToKiops(std::int64_t ops, SimDuration over) {
  if (over <= 0) return 0.0;
  return static_cast<double>(ops) / ToSeconds(over) / 1e3;
}

/// Identifies a node (machine) in the simulated cluster. Node 0 is by
/// convention the data node; clients are 1..N.
enum class NodeId : std::uint32_t {};

constexpr NodeId MakeNodeId(std::uint32_t v) { return NodeId{v}; }
constexpr std::uint32_t Raw(NodeId id) { return static_cast<std::uint32_t>(id); }

/// Identifies a QoS client (tenant) admitted to the data node. Distinct from
/// NodeId: several logical clients could share a node, and background flows
/// have node identity but no client identity.
enum class ClientId : std::uint32_t {};

constexpr ClientId MakeClientId(std::uint32_t v) { return ClientId{v}; }
constexpr std::uint32_t Raw(ClientId id) { return static_cast<std::uint32_t>(id); }

constexpr bool operator==(ClientId a, ClientId b) { return Raw(a) == Raw(b); }
constexpr auto operator<=>(ClientId a, ClientId b) { return Raw(a) <=> Raw(b); }
constexpr bool operator==(NodeId a, NodeId b) { return Raw(a) == Raw(b); }
constexpr auto operator<=>(NodeId a, NodeId b) { return Raw(a) <=> Raw(b); }

}  // namespace haechi
