#include "common/logging.hpp"

#include <cstdio>

namespace haechi {

namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel Logger::threshold() { return g_threshold; }
void Logger::set_threshold(LogLevel level) { g_threshold = level; }

void Logger::Log(LogLevel level, const char* fmt, ...) {
  if (!Enabled(level)) return;
  std::fprintf(stderr, "[%s] ", LevelTag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

LogLevel ParseLogLevel(std::string_view text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace haechi
