// Spatial distributions of demand / reservation across clients.
//
// The paper evaluates three: Uniform (equal share), Spike (a few hot
// clients), and Zipf (10 clients in 5 groups of 2, zipfian with exponent
// 0.6 across groups). These helpers produce per-client I/O budgets that sum
// to a requested total, with deterministic rounding so totals are exact.
#pragma once

#include <cstdint>
#include <vector>

namespace haechi::workload {

/// Splits `total` evenly; remainders go to the lowest-indexed clients so
/// the vector always sums to exactly `total`.
std::vector<std::int64_t> UniformShare(std::int64_t total,
                                       std::size_t clients);

/// Splits `total` proportionally to `weights` (exact sum via largest-
/// remainder rounding).
std::vector<std::int64_t> WeightedShare(std::int64_t total,
                                        const std::vector<double>& weights);

/// The paper's Zipf reservation distribution: `clients` are divided into
/// `groups` equal-size groups; group g (0-based) has weight 1/(g+1)^theta;
/// both clients of a group get the same share. clients must be divisible
/// by groups.
std::vector<std::int64_t> ZipfGroupShare(std::int64_t total,
                                         std::size_t clients,
                                         std::size_t groups, double theta);

/// The paper's Spike distribution: the first `hot_count` clients share
/// `hot_each` a piece; the remaining clients get `cold_each`.
std::vector<std::int64_t> SpikeShare(std::size_t clients,
                                     std::size_t hot_count,
                                     std::int64_t hot_each,
                                     std::int64_t cold_each);

/// Named selector used by bench/example flags.
enum class ShareKind { kUniform, kZipf, kSpike };

}  // namespace haechi::workload
