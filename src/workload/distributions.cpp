#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace haechi::workload {

std::vector<std::int64_t> UniformShare(std::int64_t total,
                                       std::size_t clients) {
  HAECHI_EXPECTS(clients > 0);
  HAECHI_EXPECTS(total >= 0);
  const std::int64_t base = total / static_cast<std::int64_t>(clients);
  std::int64_t remainder = total % static_cast<std::int64_t>(clients);
  std::vector<std::int64_t> shares(clients, base);
  for (std::size_t i = 0; remainder > 0; ++i, --remainder) shares[i] += 1;
  return shares;
}

std::vector<std::int64_t> WeightedShare(std::int64_t total,
                                        const std::vector<double>& weights) {
  HAECHI_EXPECTS(!weights.empty());
  HAECHI_EXPECTS(total >= 0);
  double sum = 0.0;
  for (const double w : weights) {
    HAECHI_EXPECTS(w >= 0.0);
    sum += w;
  }
  HAECHI_EXPECTS(sum > 0.0);

  // Largest-remainder method: floor everything, then distribute the
  // leftover units to the largest fractional parts (ties by index).
  std::vector<std::int64_t> shares(weights.size());
  std::vector<std::pair<double, std::size_t>> fractions(weights.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / sum;
    shares[i] = static_cast<std::int64_t>(std::floor(exact));
    assigned += shares[i];
    fractions[i] = {exact - std::floor(exact), i};
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::int64_t leftover = total - assigned;
  for (std::size_t i = 0; leftover > 0; ++i, --leftover) {
    shares[fractions[i % fractions.size()].second] += 1;
  }
  HAECHI_ENSURES(std::accumulate(shares.begin(), shares.end(),
                                 std::int64_t{0}) == total);
  return shares;
}

std::vector<std::int64_t> ZipfGroupShare(std::int64_t total,
                                         std::size_t clients,
                                         std::size_t groups, double theta) {
  HAECHI_EXPECTS(groups > 0 && clients % groups == 0);
  const std::size_t per_group = clients / groups;
  std::vector<double> weights(clients);
  for (std::size_t g = 0; g < groups; ++g) {
    const double w = 1.0 / std::pow(static_cast<double>(g + 1), theta);
    for (std::size_t j = 0; j < per_group; ++j) {
      weights[g * per_group + j] = w;
    }
  }
  return WeightedShare(total, weights);
}

std::vector<std::int64_t> SpikeShare(std::size_t clients,
                                     std::size_t hot_count,
                                     std::int64_t hot_each,
                                     std::int64_t cold_each) {
  HAECHI_EXPECTS(hot_count <= clients);
  std::vector<std::int64_t> shares(clients, cold_each);
  std::fill_n(shares.begin(), hot_count, hot_each);
  return shares;
}

}  // namespace haechi::workload
