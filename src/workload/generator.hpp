// YCSB-style request generation.
//
// A DemandGenerator replays a client's demand: a target number of I/Os per
// QoS period, issued under one of the paper's two temporal patterns:
//
//  * kBurst        — keep `outstanding` (64) requests in flight at all
//                    times until the period's target is met (Exp 1A's
//                    "burst requests");
//  * kConstantRate — spread the target evenly across the period
//                    (Exp 1C's "constant-rate requests");
//  * kOpenLoop     — submit the whole period target at once (the
//                    continuously-backlogged regime of Definition 1 used
//                    by Experiment Set 2).
//
// Keys are chosen by a pluggable KeyChooser (uniform / zipfian / latest-
// style sequential). The generator is transport-agnostic: it hands each
// request to a SubmitFn (the bare KV client or the Haechi QoS engine) and
// learns of completion through a callback, which is also where latency is
// recorded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"

namespace haechi::workload {

enum class RequestPattern {
  /// Keep `outstanding` (64) requests in flight until the period target is
  /// met — Experiment 1A's closed-loop "burst requests".
  kBurst,
  /// Spread the target evenly across the period (Exp 1C). When the system
  /// cannot keep up, ticks are skipped once `outstanding` requests are in
  /// flight — the standard load-generator backlog bound, which keeps
  /// latency measurements free of unbounded queue build-up when the target
  /// rate is slightly infeasible.
  kConstantRate,
  /// Submit the entire period target at the period boundary. This is the
  /// demand-sufficiency regime of Definition 1 (D_i(t) >= rho_i(t) for all
  /// t), which the paper's Experiment Set 2 clients require; the QoS
  /// engine's software send queue absorbs the burst.
  kOpenLoop,
};

/// Chooses the key for each GET.
class KeyChooser {
 public:
  enum class Kind { kUniformRandom, kZipfian, kSequential };

  KeyChooser(Kind kind, std::uint64_t record_count, double theta, Rng rng);

  std::uint64_t Next();

 private:
  Kind kind_;
  std::uint64_t record_count_;
  Rng rng_;
  std::uint64_t cursor_ = 0;
  std::optional<ScrambledZipfianSampler> zipf_;
};

class DemandGenerator {
 public:
  struct Config {
    RequestPattern pattern = RequestPattern::kBurst;
    /// Burst window: app-level outstanding requests (paper: 64).
    std::size_t outstanding = 64;
    SimDuration period = kSecond;
    /// Target I/Os per period. May be changed between periods.
    std::int64_t demand_per_period = 0;
    /// Fraction of requests that are writes (YCSB-A: 0.5, B: 0.05,
    /// C: 0.0 — the paper evaluates C).
    double write_fraction = 0.0;
  };

  using CompleteFn = std::function<void()>;
  /// Issues one I/O for `key`; must invoke the callback exactly once at the
  /// simulated completion instant.
  using SubmitFn =
      std::function<void(std::uint64_t key, bool is_write, CompleteFn)>;

  DemandGenerator(sim::Simulator& sim, const Config& config,
                  KeyChooser chooser, SubmitFn submit);

  /// Writes issued so far (when write_fraction > 0).
  [[nodiscard]] std::int64_t WritesSubmitted() const {
    return writes_submitted_;
  }

  DemandGenerator(const DemandGenerator&) = delete;
  DemandGenerator& operator=(const DemandGenerator&) = delete;

  /// Begins generating at absolute time `at`, with period boundaries every
  /// `config.period` thereafter.
  void Start(SimTime at);

  /// Stops at the next event boundary; in-flight requests still complete.
  void Stop();

  /// Changes the per-period target; takes effect at the next period start.
  void set_demand(std::int64_t demand) { pending_demand_ = demand; }

  /// Optional latency sink: submit→completion times (ns) are recorded from
  /// `after` onwards (lets benches exclude warm-up).
  void SetLatencySink(stats::Histogram* sink, SimTime after = 0) {
    latency_sink_ = sink;
    latency_after_ = after;
  }

  [[nodiscard]] std::int64_t SubmittedTotal() const { return submitted_total_; }
  [[nodiscard]] std::int64_t CompletedTotal() const { return completed_total_; }
  [[nodiscard]] std::int64_t InFlight() const { return in_flight_; }

  /// Constant-rate ticks skipped because the backlog cap was hit.
  [[nodiscard]] std::int64_t Skipped() const { return skipped_total_; }

 private:
  void BeginPeriod();
  void FillBurstWindow();
  void SubmitOne();
  void OnComplete(SimTime submitted_at);

  sim::Simulator& sim_;
  Config config_;
  KeyChooser chooser_;
  SubmitFn submit_;
  Rng write_rng_{0x5eed};
  std::int64_t writes_submitted_ = 0;
  bool running_ = false;
  std::int64_t pending_demand_;
  std::int64_t submitted_this_period_ = 0;
  std::int64_t submitted_total_ = 0;
  std::int64_t completed_total_ = 0;
  std::int64_t in_flight_ = 0;
  std::int64_t skipped_total_ = 0;
  stats::Histogram* latency_sink_ = nullptr;
  SimTime latency_after_ = 0;
  std::unique_ptr<sim::PeriodicTimer> period_timer_;
  std::unique_ptr<sim::PeriodicTimer> rate_timer_;
};

}  // namespace haechi::workload
