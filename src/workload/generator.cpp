#include "workload/generator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace haechi::workload {

KeyChooser::KeyChooser(Kind kind, std::uint64_t record_count, double theta,
                       Rng rng)
    : kind_(kind), record_count_(record_count), rng_(rng) {
  HAECHI_EXPECTS(record_count > 0);
  if (kind_ == Kind::kZipfian) {
    zipf_.emplace(record_count, theta);
  }
}

std::uint64_t KeyChooser::Next() {
  switch (kind_) {
    case Kind::kUniformRandom:
      return rng_.NextBelow(record_count_);
    case Kind::kZipfian:
      return zipf_->Sample(rng_);
    case Kind::kSequential:
      return cursor_++ % record_count_;
  }
  HAECHI_UNREACHABLE("unknown key chooser kind");
}

DemandGenerator::DemandGenerator(sim::Simulator& sim, const Config& config,
                                 KeyChooser chooser, SubmitFn submit)
    : sim_(sim),
      config_(config),
      chooser_(std::move(chooser)),
      submit_(std::move(submit)),
      pending_demand_(config.demand_per_period) {
  HAECHI_EXPECTS(config.period > 0);
  HAECHI_EXPECTS(config.outstanding > 0);
  HAECHI_EXPECTS(submit_ != nullptr);
}

void DemandGenerator::Start(SimTime at) {
  HAECHI_EXPECTS(!running_);
  running_ = true;
  sim_.ScheduleAt(at, [this] {
    if (!running_) return;
    BeginPeriod();
    period_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.period, [this] { BeginPeriod(); });
    period_timer_->Start();
  });
}

void DemandGenerator::Stop() {
  running_ = false;
  if (period_timer_) period_timer_->Stop();
  if (rate_timer_) rate_timer_->Stop();
}

void DemandGenerator::BeginPeriod() {
  if (!running_) return;
  config_.demand_per_period = pending_demand_;
  submitted_this_period_ = 0;
  if (rate_timer_) {
    rate_timer_->Stop();
    rate_timer_.reset();
  }
  if (config_.demand_per_period <= 0) return;

  switch (config_.pattern) {
    case RequestPattern::kBurst:
      FillBurstWindow();
      break;
    case RequestPattern::kOpenLoop:
      while (submitted_this_period_ < config_.demand_per_period) {
        SubmitOne();
      }
      break;
    case RequestPattern::kConstantRate: {
      SimDuration interval =
          config_.period / config_.demand_per_period;
      if (interval < 1) interval = 1;
      rate_timer_ = std::make_unique<sim::PeriodicTimer>(
          sim_, interval, [this] {
            if (submitted_this_period_ >= config_.demand_per_period) {
              rate_timer_->Stop();
              return;
            }
            if (in_flight_ >=
                static_cast<std::int64_t>(config_.outstanding)) {
              // Backlog bound: shed this tick instead of queueing without
              // limit (the request still counts against the period target).
              ++submitted_this_period_;
              ++skipped_total_;
              return;
            }
            SubmitOne();
          });
      // First request right at the period boundary, like the paper's
      // equal-spacing pattern.
      SubmitOne();
      rate_timer_->Start();
      break;
    }
  }
}

void DemandGenerator::FillBurstWindow() {
  while (in_flight_ < static_cast<std::int64_t>(config_.outstanding) &&
         submitted_this_period_ < config_.demand_per_period) {
    SubmitOne();
  }
}

void DemandGenerator::SubmitOne() {
  ++submitted_this_period_;
  ++submitted_total_;
  ++in_flight_;
  const bool is_write = config_.write_fraction > 0.0 &&
                        write_rng_.NextDouble() < config_.write_fraction;
  if (is_write) ++writes_submitted_;
  const SimTime submitted_at = sim_.Now();
  submit_(chooser_.Next(), is_write,
          [this, submitted_at] { OnComplete(submitted_at); });
}

void DemandGenerator::OnComplete(SimTime submitted_at) {
  --in_flight_;
  ++completed_total_;
  if (latency_sink_ != nullptr && submitted_at >= latency_after_) {
    latency_sink_->Record(sim_.Now() - submitted_at);
  }
  if (running_ && config_.pattern == RequestPattern::kBurst) {
    FillBurstWindow();
  }
}

}  // namespace haechi::workload
