#include "obs/audit.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <set>

namespace haechi::obs {

namespace {

constexpr SimTime kTimeMax = std::numeric_limits<SimTime>::max();

std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// What the audit knows about one client, collected across subsystems.
struct ClientInfo {
  std::int64_t spec_reservation = -1;
  std::int64_t spec_demand = -1;
  // (time, reservation) of every admit/readmit the monitor recorded.
  std::vector<std::pair<SimTime, std::int64_t>> admits;
  // Lease expiries / releases (time only).
  std::vector<SimTime> departures;
  // Scripted whole-client crash windows [crash, restart) from the harness.
  std::vector<std::pair<SimTime, SimTime>> crash_windows;

  [[nodiscard]] std::int64_t ReservationAt(SimTime t) const {
    std::int64_t r = spec_reservation;
    for (const auto& [at, res] : admits) {
      if (at <= t) r = res;
    }
    return r;
  }

  [[nodiscard]] bool DepartedBy(SimTime t) const {
    SimTime last_departure = -1;
    for (const SimTime at : departures) {
      if (at <= t) last_departure = std::max(last_departure, at);
    }
    if (last_departure < 0) return false;
    for (const auto& [at, res] : admits) {
      if (at >= last_departure && at <= t) return false;  // readmitted
    }
    return true;
  }
};

/// Cluster striping map entry, from a harness kEngineBinding row.
struct EngineBinding {
  std::uint32_t client = 0;
  std::uint32_t node = 0;
  std::uint32_t tenant = 0;
};

/// A monitor kLeaseExpire captured with the walk-local context A8 needs:
/// which node fired it and what that node's split for the client was.
struct LeaseExpiry {
  TraceEvent event;
  std::uint32_t node = 0;
  std::int64_t node_reservation = -1;  // -1: client unknown to the node
};

/// Per-(engine, period) tallies from the engine's event stream.
struct EnginePeriod {
  std::int64_t reservation = -1;  // pushed at kEnginePeriodStart
  std::int64_t decay_surrendered = 0;
  std::int64_t faa_posted = 0;
  std::int64_t faa_done = 0;
  std::int64_t faa_discard = 0;
  /// Tokens posted by done fetches that tagged their delta (c > 0 on
  /// kTokenFetchDone — the threaded runtime's fetch-batched FAAs).
  std::int64_t tokens_done = 0;
  /// Done fetches with no per-event delta (sim traces): each drew the
  /// kRunConfig token batch.
  std::int64_t faa_done_untagged = 0;
  std::vector<std::int64_t> report_residuals;
};

}  // namespace

AuditReport AuditTrace(const std::vector<TraceEvent>& events,
                       const AuditOptions& options) {
  AuditReport report;
  const auto fail = [&](const char* check, std::string detail) {
    report.violations.push_back({check, std::move(detail)});
  };

  // ---- group into per-actor streams, sorted by sequence number ----------
  using StreamKey = std::pair<unsigned, std::uint32_t>;
  std::map<StreamKey, std::vector<TraceEvent>> streams;
  for (const TraceEvent& e : events) {
    streams[{static_cast<unsigned>(e.actor_kind), e.actor}].push_back(e);
  }

  // ---- A1: stream integrity ---------------------------------------------
  std::set<StreamKey> truncated;
  for (auto& [key, stream] : streams) {
    std::sort(stream.begin(), stream.end(),
              [](const TraceEvent& x, const TraceEvent& y) {
                return x.seq < y.seq;
              });
    ++report.checks_run;
    const auto kind = static_cast<ActorKind>(key.first);
    if (stream.front().seq != 0) {
      truncated.insert(key);
      if (!options.allow_truncated) {
        fail("A1", Fmt("%s/%u: stream starts at seq %llu (ring wrapped or "
                       "head of trace removed)",
                       std::string(ToString(kind)).c_str(), key.second,
                       static_cast<unsigned long long>(stream.front().seq)));
      }
    }
    for (std::size_t i = 1; i < stream.size(); ++i) {
      if (stream[i].seq != stream[i - 1].seq + 1) {
        truncated.insert(key);
        if (!options.allow_truncated) {
          fail("A1", Fmt("%s/%u: seq gap %llu -> %llu",
                         std::string(ToString(kind)).c_str(), key.second,
                         static_cast<unsigned long long>(stream[i - 1].seq),
                         static_cast<unsigned long long>(stream[i].seq)));
        }
      }
      if (stream[i].time < stream[i - 1].time) {
        fail("A1", Fmt("%s/%u: time goes backwards at seq %llu",
                       std::string(ToString(kind)).c_str(), key.second,
                       static_cast<unsigned long long>(stream[i].seq)));
      }
    }
  }

  // ---- run configuration (harness events, with inference fallbacks) -----
  SimDuration period_len = 0;
  std::int64_t token_batch = 0;
  SimTime measure_start = -1;
  SimTime measure_end = -1;
  std::map<std::uint32_t, ClientInfo> clients;
  bool have_harness = false;
  // Cluster deployment map (empty on single-node traces).
  std::map<std::uint32_t, EngineBinding> bindings;      // engine actor -> ...
  std::map<std::uint32_t, std::int64_t> tenant_res;     // tenant -> R_t
  // node -> (aggregate, local) admission capacities.
  std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>> node_caps;
  for (const auto& [key, stream] : streams) {
    if (static_cast<ActorKind>(key.first) != ActorKind::kHarness) continue;
    have_harness = true;
    for (const TraceEvent& e : stream) {
      switch (e.type) {
        case EventType::kRunConfig:
          period_len = e.a;
          token_batch = e.b;
          break;
        case EventType::kClusterConfig:
          report.cluster = true;
          report.data_nodes =
              static_cast<std::uint32_t>(std::max<std::int64_t>(e.a, 1));
          break;
        case EventType::kEngineBinding:
          bindings[e.actor] = {static_cast<std::uint32_t>(e.a),
                               static_cast<std::uint32_t>(e.b),
                               static_cast<std::uint32_t>(e.c)};
          break;
        case EventType::kTenantSpec:
          tenant_res[e.actor] = e.a;
          break;
        case EventType::kNodeCapacity:
          node_caps[static_cast<std::uint32_t>(e.a)] = {e.b, e.c};
          break;
        case EventType::kClientSpec:
          clients[e.actor].spec_reservation = e.a;
          clients[e.actor].spec_demand = e.c;
          break;
        case EventType::kMeasureStart:
          measure_start = e.time;
          break;
        case EventType::kMeasureEnd:
          measure_end = e.time;
          break;
        case EventType::kClientCrash:
          clients[e.actor].crash_windows.emplace_back(e.time, kTimeMax);
          break;
        case EventType::kClientRestart:
          if (!clients[e.actor].crash_windows.empty() &&
              clients[e.actor].crash_windows.back().second == kTimeMax) {
            clients[e.actor].crash_windows.back().second = e.time;
          }
          break;
        default:
          break;
      }
    }
  }

  // ---- the monitor walks: A2 (dispatch), A3 (monotone), A4 (conversion) --
  // One walk per monitor actor: single-node traces carry exactly one
  // stream at actor 0, cluster traces one per data node.
  // period -> client -> (completed, residual) from monitor calibration;
  // cluster traces sum each client's per-node reports into its
  // cluster-wide completion (one report per node per period).
  std::map<std::uint32_t, std::map<std::uint32_t,
                                   std::pair<std::int64_t, std::int64_t>>>
      period_reports;
  std::set<std::uint32_t> reporting_periods;
  std::vector<LeaseExpiry> lease_expiries;
  // node -> (tokens lent out, tokens absorbed) per the pool-word borrow
  // events; C2 reconciles these against the coordinator's ledger events.
  std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>> node_flow;
  SimTime last_pool_observation = -1;
  for (const auto& [mkey, mstream] : streams) {
    if (static_cast<ActorKind>(mkey.first) != ActorKind::kMonitor) continue;
    const std::uint32_t node = mkey.second;
    AuditPeriod* cur = nullptr;
    std::int64_t last_pool = 0;
    bool have_pool = false;
    // Infer the period length from consecutive boundaries if the trace has
    // no harness kRunConfig row.
    SimTime prev_start = -1;
    // Net cross-server borrow movement this period (absorbed - lent): the
    // monitor adds it to its conversion target so loans survive the
    // overwrite, and A4's budget must extend by the same credit.
    std::int64_t borrow_credit = 0;
    // client -> this node's live reservation split, for A8 context.
    std::map<std::uint32_t, std::int64_t> live_res;
    const auto observe = [&](const TraceEvent& e, std::int64_t value) {
      if (!have_pool || cur == nullptr) return;
      ++report.checks_run;
      const std::int64_t drop = last_pool - value;
      if (drop < 0) {
        fail("A3", Fmt("node %u period %u: pool rose %lld -> %lld at t=%lld "
                       "without a monitor write (%s)",
                       node, cur->period, static_cast<long long>(last_pool),
                       static_cast<long long>(value),
                       static_cast<long long>(e.time),
                       std::string(ToString(e.type)).c_str()));
      } else {
        cur->granted += drop;
      }
      last_pool = value;
      last_pool_observation = std::max(last_pool_observation, e.time);
    };
    for (const TraceEvent& e : mstream) {
      switch (e.type) {
        case EventType::kMonitorPeriodStart: {
          report.periods.emplace_back();
          cur = &report.periods.back();
          cur->node = node;
          cur->period = e.period;
          cur->start_time = e.time;
          cur->capacity = e.a;
          cur->dispatched = e.b;
          cur->initial_pool = e.c;
          borrow_credit = 0;
          ++report.checks_run;
          if (e.c != std::max<std::int64_t>(e.a - e.b, 0)) {
            fail("A2", Fmt("node %u period %u: initial_pool %lld != "
                           "max(capacity %lld - dispatched %lld, 0)",
                           node, e.period, static_cast<long long>(e.c),
                           static_cast<long long>(e.a),
                           static_cast<long long>(e.b)));
          }
          last_pool = e.c;
          have_pool = true;
          last_pool_observation = std::max(last_pool_observation, e.time);
          if (period_len == 0 && prev_start >= 0) {
            period_len = e.time - prev_start;
          }
          prev_start = e.time;
          break;
        }
        case EventType::kPoolSample:
          observe(e, e.a);
          break;
        case EventType::kPoolRebalance:
          // Sharded pool: the move is sum-neutral, so the tracked shard
          // sum it reports behaves exactly like a sample — any drop is
          // client grants the rebalance witnessed, and a rise would be a
          // real A3 violation (a monitor-side mint outside conversion).
          observe(e, e.a);
          break;
        case EventType::kPoolBorrowOut:
        case EventType::kPoolBorrowIn: {
          // a = raw pool before the coordinator-driven move, b = after.
          // The move itself is ledgered as lent/absorbed, not granted, so
          // it must not count as a grant (Out) or trip A3 (In).
          observe(e, e.a);
          borrow_credit += e.b - e.a;
          auto& flow = node_flow[node];
          if (e.type == EventType::kPoolBorrowOut) {
            flow.first += e.a - e.b;
          } else {
            flow.second += e.b - e.a;
          }
          last_pool = e.b;
          break;
        }
        case EventType::kTokenConvert: {
          observe(e, e.a);
          if (cur != nullptr) {
            cur->minted += e.b - e.a;
            last_pool = e.b;
            if (period_len > 0) {
              ++report.checks_run;
              const SimDuration left = std::max<SimDuration>(
                  period_len - (e.time - cur->start_time), 0);
              const auto budget = static_cast<std::int64_t>(
                  static_cast<__int128>(cur->capacity) * left / period_len);
              // Absorbed loans ride on top of the paper's time budget: the
              // conversion preserves them, so the bound extends by the
              // period's positive net borrow credit.
              const std::int64_t allowed =
                  std::max<std::int64_t>(budget, 0) +
                  std::max<std::int64_t>(borrow_credit, 0);
              if (e.b > allowed) {
                fail("A4", Fmt("node %u period %u: conversion wrote "
                               "pool=%lld above the time budget C*(T-t)/T "
                               "= %lld (+%lld borrow credit) at t=%lld",
                               node, cur->period, static_cast<long long>(e.b),
                               static_cast<long long>(
                                   std::max<std::int64_t>(budget, 0)),
                               static_cast<long long>(
                                   std::max<std::int64_t>(borrow_credit, 0)),
                               static_cast<long long>(e.time)));
              }
            }
          }
          break;
        }
        case EventType::kMonitorPeriodEnd:
          observe(e, e.a);
          if (cur != nullptr && cur->period == e.period) {
            cur->end_pool = e.a;
            cur->completed = e.b;
            cur->closed = true;
          }
          break;
        case EventType::kClientPeriodReport: {
          auto& slot = period_reports[e.period][static_cast<std::uint32_t>(
              e.a)];
          slot.first += e.b;
          slot.second += e.c;
          break;
        }
        case EventType::kReportSignal:
        case EventType::kCapacityEstimate:
          reporting_periods.insert(e.period);
          break;
        case EventType::kAdmit:
        case EventType::kReadmit:
          clients[static_cast<std::uint32_t>(e.a)].admits.emplace_back(e.time,
                                                                       e.b);
          live_res[static_cast<std::uint32_t>(e.a)] = e.b;
          break;
        case EventType::kReservationUpdate:
          // A controller resize re-baselines the reservation A9 judges
          // against, exactly like a re-admission.
          clients[static_cast<std::uint32_t>(e.a)].admits.emplace_back(e.time,
                                                                       e.b);
          live_res[static_cast<std::uint32_t>(e.a)] = e.b;
          break;
        case EventType::kRelease:
          clients[static_cast<std::uint32_t>(e.a)].departures.push_back(
              e.time);
          live_res.erase(static_cast<std::uint32_t>(e.a));
          break;
        case EventType::kLeaseExpire: {
          const auto client = static_cast<std::uint32_t>(e.a);
          clients[client].departures.push_back(e.time);
          const auto lr = live_res.find(client);
          lease_expiries.push_back(
              {e, node, lr != live_res.end() ? lr->second : -1});
          live_res.erase(client);
          break;
        }
        default:
          break;
      }
    }
  }

  // ---- engine walks: A6 (decay), A7 (report sanity) ----------------------
  // client -> period -> tallies.
  std::map<std::uint32_t, std::map<std::uint32_t, EnginePeriod>> engines;
  bool engine_truncated = false;
  for (const auto& [key, stream] : streams) {
    if (static_cast<ActorKind>(key.first) != ActorKind::kEngine) continue;
    if (truncated.contains(key)) {
      engine_truncated = true;
      continue;  // counts below would be wrong; A1 already flagged it
    }
    auto& periods = engines[key.second];
    std::int64_t last_report_seq = -1;
    std::int64_t last_completed = -1;
    std::uint32_t completed_period = 0;
    for (const TraceEvent& e : stream) {
      EnginePeriod& ep = periods[e.period];
      switch (e.type) {
        case EventType::kEnginePeriodStart:
          ep.reservation = e.a;
          break;
        case EventType::kTokenDecay:
          ep.decay_surrendered += e.a;
          break;
        case EventType::kTokenFetch:
          ++ep.faa_posted;
          if (token_batch == 0) token_batch = e.a;
          break;
        case EventType::kTokenFetchDone:
          ++ep.faa_done;
          if (e.c > 0) {
            ep.tokens_done += e.c;
          } else {
            ++ep.faa_done_untagged;
          }
          break;
        case EventType::kTokenDiscard:
          ++ep.faa_discard;
          break;
        case EventType::kReportWrite: {
          ep.report_residuals.push_back(e.a);
          ++report.checks_run;
          if (e.c <= last_report_seq) {
            fail("A7", Fmt("client %u: report seq %lld after %lld",
                           key.second, static_cast<long long>(e.c),
                           static_cast<long long>(last_report_seq)));
          }
          last_report_seq = e.c;
          if (e.period == completed_period && e.b < last_completed) {
            fail("A7", Fmt("client %u period %u: completed count fell "
                           "%lld -> %lld",
                           key.second, e.period,
                           static_cast<long long>(last_completed),
                           static_cast<long long>(e.b)));
          }
          completed_period = e.period;
          last_completed = e.b;
          break;
        }
        case EventType::kEngineStop:
          // A restarted client runs a fresh engine incarnation whose
          // report counters begin again at zero; A7's monotonicity is
          // per incarnation, so reset it at the stop boundary.
          last_report_seq = -1;
          last_completed = -1;
          break;
        default:
          break;
      }
    }
    for (const auto& [period, ep] : periods) {
      if (ep.reservation < 0) continue;  // period-start message lost
      ++report.checks_run;
      if (ep.decay_surrendered > ep.reservation) {
        fail("A6", Fmt("client %u period %u: surrendered %lld tokens to "
                       "decay, above the %lld reserved",
                       key.second, period,
                       static_cast<long long>(ep.decay_surrendered),
                       static_cast<long long>(ep.reservation)));
      }
    }
  }

  // ---- fault census: strict vs bounded mode for A5 -----------------------
  std::int64_t duplicated_ops = 0;
  for (const auto& [key, stream] : streams) {
    for (const TraceEvent& e : stream) {
      switch (e.type) {
        case EventType::kOpDropped:
        case EventType::kOpDelayed:
        case EventType::kNodeCrash:
        case EventType::kNodeRestart:
        case EventType::kNodePause:
        case EventType::kNodeResume:
        case EventType::kQpError:
        case EventType::kClientCrash:
          report.clean = false;
          break;
        case EventType::kOpDuplicated:
          report.clean = false;
          ++duplicated_ops;
          break;
        default:
          break;
      }
    }
  }

  // ---- A5: FAA conservation ---------------------------------------------
  bool monitor_truncated = false;
  for (const StreamKey& key : truncated) {
    if (static_cast<ActorKind>(key.first) == ActorKind::kMonitor) {
      monitor_truncated = true;
    }
  }
  // Which node an engine drains: its harness binding on cluster traces,
  // node 0 (the only monitor) otherwise.
  const auto engine_node = [&](std::uint32_t actor) {
    const auto b = bindings.find(actor);
    return b != bindings.end() ? b->second.node : 0u;
  };
  if (token_batch > 0 && !monitor_truncated && !engine_truncated) {
    if (report.clean) {
      // Fault-free: every posted fetch completes in its own period, so the
      // pool decrease each monitor observed must equal the sum of the
      // tokens the fetches against *that node* posted — each fetch's own
      // tagged delta (fetch-batched threaded runs) or B per untagged
      // fetch (sim).
      for (AuditPeriod& p : report.periods) {
        std::int64_t expected = 0;
        for (const auto& [actor, periods] : engines) {
          if (engine_node(actor) != p.node) continue;
          const auto it = periods.find(p.period);
          if (it != periods.end()) {
            p.faa_done += it->second.faa_done;
            expected += it->second.tokens_done +
                        token_batch * it->second.faa_done_untagged;
          }
        }
        if (!p.closed) continue;
        ++report.checks_run;
        if (p.granted != expected) {
          fail("A5", Fmt("node %u period %u: pool decreased by %lld but "
                         "clients completed %lld fetches posting %lld "
                         "tokens",
                         p.node, p.period, static_cast<long long>(p.granted),
                         static_cast<long long>(p.faa_done),
                         static_cast<long long>(expected)));
        }
      }
    } else {
      // Faulted: a fetch whose completion was dropped (or whose client
      // died) may or may not have reached the pool word, and a duplicated
      // op applies twice — so conservation holds as a band, over the run.
      std::int64_t granted = 0;
      for (const AuditPeriod& p : report.periods) granted += p.granted;
      std::int64_t done_before_close = 0;
      std::int64_t posted = 0;
      std::int64_t lower = 0;
      std::int64_t upper = 0;
      for (const auto& [key, stream] : streams) {
        if (static_cast<ActorKind>(key.first) != ActorKind::kEngine) continue;
        for (const TraceEvent& e : stream) {
          if (e.type == EventType::kTokenFetch) {
            ++posted;
            upper += e.a > 0 ? e.a : token_batch;
          }
          if ((e.type == EventType::kTokenFetchDone ||
               e.type == EventType::kTokenDiscard) &&
              e.time <= last_pool_observation) {
            ++done_before_close;
            lower += e.c > 0 ? e.c : token_batch;
          }
        }
      }
      upper += token_batch * duplicated_ops;
      ++report.checks_run;
      if (granted < lower || granted > upper) {
        fail("A5", Fmt("run: pool decreased by %lld, outside the "
                       "conservation band [%lld, %lld] "
                       "(B=%lld, done=%lld, posted=%lld, dups=%lld)",
                       static_cast<long long>(granted),
                       static_cast<long long>(lower),
                       static_cast<long long>(upper),
                       static_cast<long long>(token_batch),
                       static_cast<long long>(done_before_close),
                       static_cast<long long>(posted),
                       static_cast<long long>(duplicated_ops)));
      }
    }
  }

  // ---- A8: lease reclamation --------------------------------------------
  if (!engine_truncated) {
    for (const LeaseExpiry& le : lease_expiries) {
      const TraceEvent& e = le.event;
      const auto client = static_cast<std::uint32_t>(e.a);
      ++report.checks_run;
      // The node's live split for the client (tracks reservation updates,
      // so it is exact on cluster traces); fall back to the admit history
      // for traces predating the split bookkeeping.
      const std::int64_t reservation =
          le.node_reservation >= 0
              ? le.node_reservation
              : (clients.contains(client)
                     ? clients[client].ReservationAt(e.time)
                     : -1);
      bool consistent = e.b == reservation;
      for (const auto& [actor, periods] : engines) {
        if (consistent) break;
        // Only reports written by the engine serving (client, node) can
        // justify the reclaimed residual.
        const auto b = bindings.find(actor);
        const std::uint32_t eng_client =
            b != bindings.end() ? b->second.client : actor;
        if (eng_client != client || engine_node(actor) != le.node) continue;
        const auto pe = periods.find(e.period);
        if (pe == periods.end()) continue;
        const auto& residuals = pe->second.report_residuals;
        consistent = std::find(residuals.begin(), residuals.end(), e.b) !=
                     residuals.end();
      }
      if (!consistent) {
        fail("A8", Fmt("node %u period %u: lease expiry reclaimed %lld "
                       "tokens from client %u, matching neither its "
                       "reservation (%lld) nor any report it wrote this "
                       "period",
                       le.node, e.period, static_cast<long long>(e.b),
                       client, static_cast<long long>(reservation)));
      }
    }
  }

  // ---- A9: reservation guarantee ----------------------------------------
  // Cluster traces: one ledger entry per (node, period), but the guarantee
  // is cluster-wide — judge each period number once, against the client's
  // *spec* reservation (per-node admits carry only its split).
  std::set<std::uint32_t> a9_judged;
  for (AuditPeriod& p : report.periods) {
    p.reporting = reporting_periods.contains(p.period);
    if (!p.closed) continue;
    const SimTime p_end =
        period_len > 0 ? p.start_time + period_len : kTimeMax;
    p.measured = (measure_start < 0 || p.start_time >= measure_start) &&
                 (measure_end < 0 || (p_end != kTimeMax && p_end <= measure_end));
    if (!have_harness) p.measured = p.closed;
    if (!p.measured || !p.reporting) continue;
    if (report.cluster && !a9_judged.insert(p.period).second) continue;
    for (const auto& [client, info] : clients) {
      if (info.spec_demand <= 0) continue;  // closed-loop or unknown demand
      const std::int64_t reservation = report.cluster
                                           ? info.spec_reservation
                                           : info.ReservationAt(p.start_time);
      if (reservation <= 0) continue;
      // A client is only on the hook for periods it was alive and settled
      // in: scripted crash windows (padded by two periods for the restart
      // handshake and demand ramp) and lease departures are excluded.
      bool excluded = info.DepartedBy(p.start_time);
      for (const auto& [crash, restart] : info.crash_windows) {
        const SimTime padded_end =
            restart == kTimeMax || period_len == 0 ? kTimeMax
                                                   : restart + 2 * period_len;
        if (crash <= p_end && (padded_end == kTimeMax || padded_end >= p.start_time)) {
          excluded = true;
        }
      }
      if (excluded) continue;
      const std::int64_t target = std::min(reservation, info.spec_demand);
      const auto floor_target = static_cast<std::int64_t>(
          options.guarantee_fraction * static_cast<double>(target));
      std::int64_t completed = 0;
      const auto pr = period_reports.find(p.period);
      if (pr != period_reports.end()) {
        const auto cr = pr->second.find(client);
        if (cr != pr->second.end()) completed = cr->second.first;
      }
      ++report.checks_run;
      ++report.guarantee_checks;
      if (completed < floor_target) {
        fail("A9", Fmt("period %u: client %u completed %lld tokens, below "
                       "%.2f * min(reservation %lld, demand %lld) = %lld",
                       p.period, client, static_cast<long long>(completed),
                       options.guarantee_fraction,
                       static_cast<long long>(reservation),
                       static_cast<long long>(info.spec_demand),
                       static_cast<long long>(floor_target)));
      }
    }
  }

  // ---- A10: controller resize neutrality ---------------------------------
  // Every applied controller resize stamps its signed reservation delta in
  // kControlAction.c; the controller plans shrink-and-park pairs, so per
  // (node, period) the deltas must sum to zero — reservations move between
  // clients, capacity is never minted or destroyed.
  for (const auto& [ckey, cstream] : streams) {
    if (static_cast<ActorKind>(ckey.first) != ActorKind::kController) {
      continue;
    }
    if (truncated.contains(ckey)) continue;  // A1 already flagged it
    std::map<std::uint32_t, std::int64_t> resize_sum;
    for (const TraceEvent& e : cstream) {
      if (e.type != EventType::kControlAction) continue;
      if (e.a != 0) continue;  // 0 = control::ActionKind::kResize
      resize_sum[e.period] += e.c;
    }
    for (const auto& [period, sum] : resize_sum) {
      ++report.checks_run;
      ++report.control_checks;
      if (sum != 0) {
        fail("A10", Fmt("node %u period %u: controller resize deltas sum "
                        "to %lld, expected 0 (reservation moves must be "
                        "sum-neutral)",
                        ckey.second, period, static_cast<long long>(sum)));
      }
    }
  }

  // ---- C1..C3: cluster identities ---------------------------------------
  bool cluster_truncated = monitor_truncated;
  for (const StreamKey& key : truncated) {
    if (static_cast<ActorKind>(key.first) == ActorKind::kCluster) {
      cluster_truncated = true;
    }
  }
  if (report.cluster && !cluster_truncated) {
    // C1 (tenant nesting, static): member spec reservations fit the
    // tenant's envelope R_t. Membership comes from the engine bindings.
    std::map<std::uint32_t, std::uint32_t> tenant_of;  // client -> tenant
    for (const auto& [actor, b] : bindings) tenant_of[b.client] = b.tenant;
    std::map<std::uint32_t, std::int64_t> tenant_sum;
    for (const auto& [client, tenant] : tenant_of) {
      const auto ci = clients.find(client);
      if (ci != clients.end() && ci->second.spec_reservation > 0) {
        tenant_sum[tenant] += ci->second.spec_reservation;
      }
    }
    for (const auto& [tenant, sum] : tenant_sum) {
      const auto tr = tenant_res.find(tenant);
      if (tr == tenant_res.end()) continue;
      ++report.checks_run;
      if (sum > tr->second) {
        fail("C1", Fmt("tenant %u: member reservations sum to %lld, above "
                       "the tenant envelope R_t = %lld",
                       tenant, static_cast<long long>(sum),
                       static_cast<long long>(tr->second)));
      }
    }

    // Merged time-ordered replay for the split / borrow / commitment
    // identities. Ties break on (kind, actor, seq) so each monitor's
    // updates land before the coordinator event stamped at the same time.
    std::vector<const TraceEvent*> merged;
    merged.reserve(events.size());
    for (const auto& [key, stream] : streams) {
      for (const TraceEvent& e : stream) merged.push_back(&e);
    }
    std::sort(merged.begin(), merged.end(),
              [](const TraceEvent* x, const TraceEvent* y) {
                if (x->time != y->time) return x->time < y->time;
                if (x->actor_kind != y->actor_kind) {
                  return x->actor_kind < y->actor_kind;
                }
                if (x->actor != y->actor) return x->actor < y->actor;
                return x->seq < y->seq;
              });

    // node -> client -> live reservation split R_i,d.
    std::map<std::uint32_t, std::map<std::uint32_t, std::int64_t>> split;
    // (lender, borrower) -> (granted, repaid) per the coordinator ledger.
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::pair<std::int64_t, std::int64_t>>
        pair_flow;
    const auto check_node_commit = [&](std::uint32_t node,
                                       std::uint32_t client, SimTime at) {
      const auto caps = node_caps.find(node);
      if (caps == node_caps.end()) return;
      std::int64_t reserved = 0;
      for (const auto& [cli, res] : split[node]) reserved += res;
      ++report.checks_run;
      if (reserved > caps->second.first) {
        fail("C3", Fmt("node %u: reservations sum to %lld, above the "
                       "aggregate capacity %lld, after client %u moved at "
                       "t=%lld",
                       node, static_cast<long long>(reserved),
                       static_cast<long long>(caps->second.first), client,
                       static_cast<long long>(at)));
      }
      const std::int64_t mine = split[node][client];
      if (mine > caps->second.second) {
        fail("C3", Fmt("node %u: client %u's split %lld is above the local "
                       "capacity %lld at t=%lld",
                       node, client, static_cast<long long>(mine),
                       static_cast<long long>(caps->second.second),
                       static_cast<long long>(at)));
      }
    };
    for (const TraceEvent* pe : merged) {
      const TraceEvent& e = *pe;
      if (e.actor_kind == ActorKind::kMonitor) {
        const auto client = static_cast<std::uint32_t>(e.a);
        switch (e.type) {
          case EventType::kAdmit:
          case EventType::kReadmit:
          case EventType::kReservationUpdate:
            split[e.actor][client] = e.b;
            check_node_commit(e.actor, client, e.time);
            break;
          case EventType::kRelease:
          case EventType::kLeaseExpire:
            split[e.actor].erase(client);
            break;
          default:
            break;
        }
        continue;
      }
      if (e.actor_kind != ActorKind::kCluster) continue;
      switch (e.type) {
        case EventType::kClusterRebalance: {
          // After the coordinator finished moving a client's splits, they
          // must still sum to its cluster-wide reservation.
          const auto client = static_cast<std::uint32_t>(e.a);
          const auto ci = clients.find(client);
          if (ci == clients.end() || ci->second.spec_reservation < 0) break;
          std::int64_t sum = 0;
          for (const auto& [node, res] : split) {
            const auto it = res.find(client);
            if (it != res.end()) sum += it->second;
          }
          ++report.checks_run;
          if (sum != ci->second.spec_reservation) {
            fail("C1", Fmt("period %u: client %u's per-node splits sum to "
                           "%lld after a rebalance, not its cluster-wide "
                           "reservation %lld",
                           e.period, client, static_cast<long long>(sum),
                           static_cast<long long>(
                               ci->second.spec_reservation)));
          }
          break;
        }
        case EventType::kBorrowGrant:
          // a = lender, b = tokens, c = borrower.
          pair_flow[{static_cast<std::uint32_t>(e.a),
                     static_cast<std::uint32_t>(e.c)}]
              .first += e.b;
          break;
        case EventType::kBorrowRepay: {
          // a = borrower, b = tokens, c = lender.
          auto& flow = pair_flow[{static_cast<std::uint32_t>(e.c),
                                  static_cast<std::uint32_t>(e.a)}];
          flow.second += e.b;
          ++report.checks_run;
          if (flow.second > flow.first) {
            fail("C2", Fmt("period %u: node %u repaid node %u %lld tokens "
                           "in total, above the %lld it ever borrowed",
                           e.period, static_cast<std::uint32_t>(e.a),
                           static_cast<std::uint32_t>(e.c),
                           static_cast<long long>(flow.second),
                           static_cast<long long>(flow.first)));
          }
          break;
        }
        default:
          break;
      }
    }

    // C2 (flow matching): each node's pool-word borrow traffic must equal
    // what the coordinator ledger says moved through it.
    std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>> coord;
    for (const auto& [pair, flow] : pair_flow) {
      coord[pair.first].first += flow.first;    // lender sent the grant
      coord[pair.second].second += flow.first;  // borrower received it
      coord[pair.second].first += flow.second;  // borrower sent repayment
      coord[pair.first].second += flow.second;  // lender received it
    }
    for (std::uint32_t d = 0; d < report.data_nodes; ++d) {
      const auto monitor_flow = node_flow.find(d);
      const std::int64_t out =
          monitor_flow != node_flow.end() ? monitor_flow->second.first : 0;
      const std::int64_t in =
          monitor_flow != node_flow.end() ? monitor_flow->second.second : 0;
      const auto ledger_flow = coord.find(d);
      const std::int64_t ledger_out =
          ledger_flow != coord.end() ? ledger_flow->second.first : 0;
      const std::int64_t ledger_in =
          ledger_flow != coord.end() ? ledger_flow->second.second : 0;
      report.checks_run += 2;
      if (out != ledger_out) {
        fail("C2", Fmt("node %u: pool word lent %lld tokens but the "
                       "coordinator ledger accounts for %lld "
                       "(grants as lender + repayments as borrower)",
                       d, static_cast<long long>(out),
                       static_cast<long long>(ledger_out)));
      }
      if (in != ledger_in) {
        fail("C2", Fmt("node %u: pool word absorbed %lld tokens but the "
                       "coordinator ledger accounts for %lld "
                       "(grants as borrower + repayments as lender)",
                       d, static_cast<long long>(in),
                       static_cast<long long>(ledger_in)));
      }
    }
  }

  return report;
}

std::string AuditReport::Summary() const {
  std::string out;
  out += Fmt("audit: %zu periods, %d checks, %d guarantee checks, %s fabric\n",
             periods.size(), checks_run, guarantee_checks,
             clean ? "clean" : "faulted");
  for (const AuditPeriod& p : periods) {
    if (cluster) out += Fmt("  node %u", p.node);
    out += Fmt("  period %u: capacity=%lld dispatched=%lld initial=%lld "
               "granted=%lld minted=%lld end=%lld completed=%lld "
               "faa_done=%lld%s%s%s\n",
               p.period, static_cast<long long>(p.capacity),
               static_cast<long long>(p.dispatched),
               static_cast<long long>(p.initial_pool),
               static_cast<long long>(p.granted),
               static_cast<long long>(p.minted),
               static_cast<long long>(p.end_pool),
               static_cast<long long>(p.completed),
               static_cast<long long>(p.faa_done),
               p.closed ? "" : " (open)", p.measured ? " [measured]" : "",
               p.reporting ? "" : " [no-reporting]");
  }
  if (violations.empty()) {
    out += "PASS: all conservation and guarantee identities hold\n";
  } else {
    out += Fmt("FAIL: %zu violation(s)\n", violations.size());
    for (const AuditViolation& v : violations) {
      out += Fmt("  [%s] %s\n", v.check.c_str(), v.detail.c_str());
    }
  }
  return out;
}

int FirstFailedCheck(const AuditReport& report) {
  int first = 0;
  for (const AuditViolation& v : report.violations) {
    if (v.check.size() < 2 || (v.check[0] != 'A' && v.check[0] != 'C')) {
      continue;
    }
    int k = 0;
    for (std::size_t i = 1; i < v.check.size(); ++i) {
      const char c = v.check[i];
      if (c < '0' || c > '9') {
        k = 0;
        break;
      }
      k = k * 10 + (c - '0');
    }
    if (k == 0) continue;
    if (v.check[0] == 'C') k += 10;  // haechi_audit exits 20+k for Ck
    if (first == 0 || k < first) first = k;
  }
  return first;
}

}  // namespace haechi::obs
