#include "obs/export.hpp"

#include <charconv>
#include <cstdio>
#include <string_view>

#include "obs/span.hpp"

namespace haechi::obs {

namespace {

void AppendInt(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, ptr);
}

bool ParseInt(std::string_view field, std::int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

/// Splits one CSV line at commas. Trace CSV fields never contain commas,
/// quotes or newlines, so no RFC 4180 unescaping is needed here.
std::vector<std::string_view> SplitCsvLine(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

constexpr std::string_view kCsvHeader =
    "time_ns,kind,actor,seq,type,period,a,b,c";

}  // namespace

std::string ToCsvString(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 48 + 64);
  out.append(kCsvHeader);
  out.push_back('\n');
  for (const TraceEvent& e : events) {
    AppendInt(out, e.time);
    out.push_back(',');
    out.append(ToString(e.actor_kind));
    out.push_back(',');
    AppendInt(out, e.actor);
    out.push_back(',');
    AppendInt(out, static_cast<std::int64_t>(e.seq));
    out.push_back(',');
    out.append(ToString(e.type));
    out.push_back(',');
    AppendInt(out, e.period);
    out.push_back(',');
    AppendInt(out, e.a);
    out.push_back(',');
    AppendInt(out, e.b);
    out.push_back(',');
    AppendInt(out, e.c);
    out.push_back('\n');
  }
  return out;
}

std::string ToPerfettoString(const std::vector<TraceEvent>& events) {
  // Chrome trace-event format: pid = subsystem, tid = actor, ts in
  // microseconds (double; sim-time is ns so ts = ns / 1000 keeps 1 ns
  // resolution in the fraction).
  std::string out;
  out.reserve(events.size() * 120 + 1024);
  out.append("{\"traceEvents\":[\n");
  // Process-name metadata rows make the Perfetto track names readable.
  for (std::size_t kind = 0; kind < kActorKinds; ++kind) {
    out.append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
    AppendInt(out, static_cast<std::int64_t>(kind));
    out.append(",\"args\":{\"name\":\"");
    out.append(ToString(static_cast<ActorKind>(kind)));
    out.append("\"}},\n");
  }
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.append(",\n");
    first = false;
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%lld.%03lld",
                  static_cast<long long>(e.time / 1000),
                  static_cast<long long>(e.time % 1000));
    const auto pid = static_cast<std::int64_t>(e.actor_kind);
    // The token pool and capacity estimate render as counter tracks; all
    // other events render as instants on their actor's thread track.
    if (e.type == EventType::kPoolSample ||
        e.type == EventType::kTokenConvert) {
      const std::int64_t pool =
          e.type == EventType::kPoolSample ? e.a : e.b;
      out.append("{\"ph\":\"C\",\"name\":\"global_pool\",\"pid\":");
      AppendInt(out, pid);
      out.append(",\"ts\":");
      out.append(ts);
      out.append(",\"args\":{\"tokens\":");
      AppendInt(out, pool);
      out.append("}}");
      if (e.type == EventType::kPoolSample) continue;
      out.append(",\n");
    } else if (e.type == EventType::kCapacityEstimate) {
      out.append("{\"ph\":\"C\",\"name\":\"capacity_estimate\",\"pid\":");
      AppendInt(out, pid);
      out.append(",\"ts\":");
      out.append(ts);
      out.append(",\"args\":{\"tokens\":");
      AppendInt(out, e.b);
      out.append("}},\n");
    }
    out.append("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
    out.append(ToString(e.type));
    out.append("\",\"pid\":");
    AppendInt(out, pid);
    out.append(",\"tid\":");
    AppendInt(out, e.actor);
    out.append(",\"ts\":");
    out.append(ts);
    out.append(",\"args\":{\"period\":");
    AppendInt(out, e.period);
    out.append(",\"a\":");
    AppendInt(out, e.a);
    out.append(",\"b\":");
    AppendInt(out, e.b);
    out.append(",\"c\":");
    AppendInt(out, e.c);
    out.append("}}");
  }
  // Detail traces additionally render per-I/O duration spans (ph:"X") on
  // the engine tracks: one complete event per assembled span covering
  // queued->completed with the stage breakdown in args, plus a nested
  // nic_service slice for the exactly-known issue->completion interval.
  // AssembleSpans is a stub under HAECHI_TRACE=OFF, so this appends
  // nothing there and on traces without kIo* events.
  const std::vector<IoSpan> spans = AssembleSpans(events);
  for (const IoSpan& span : spans) {
    if (!first) out.append(",\n");
    first = false;
    char ts[48];
    char dur[48];
    const auto us = [](char (&buf)[48], SimTime ns) {
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(ns / 1000),
                    static_cast<long long>(ns % 1000));
    };
    us(ts, span.queued_at);
    us(dur, span.Total());
    out.append("{\"ph\":\"X\",\"name\":\"io_span\",\"pid\":");
    AppendInt(out, static_cast<std::int64_t>(ActorKind::kEngine));
    out.append(",\"tid\":");
    AppendInt(out, span.engine);
    out.append(",\"ts\":");
    out.append(ts);
    out.append(",\"dur\":");
    out.append(dur);
    out.append(",\"args\":{\"io_id\":");
    AppendInt(out, static_cast<std::int64_t>(span.io_id));
    out.append(",\"period\":");
    AppendInt(out, span.period);
    out.append(",\"token_source\":");
    AppendInt(out, span.token_source);
    out.append(",\"token_fetch_ns\":");
    AppendInt(out, span.stage_ns[static_cast<std::size_t>(
                       SpanStage::kTokenFetch)]);
    out.append(",\"convert_wait_ns\":");
    AppendInt(out, span.stage_ns[static_cast<std::size_t>(
                       SpanStage::kConvertWait)]);
    out.append(",\"queue_ns\":");
    AppendInt(out, span.stage_ns[static_cast<std::size_t>(
                       SpanStage::kQueue)]);
    out.append("}},\n");
    us(ts, span.issued_at);
    us(dur, span.completed_at - span.issued_at);
    out.append("{\"ph\":\"X\",\"name\":\"nic_service\",\"pid\":");
    AppendInt(out, static_cast<std::int64_t>(ActorKind::kEngine));
    out.append(",\"tid\":");
    AppendInt(out, span.engine);
    out.append(",\"ts\":");
    out.append(ts);
    out.append(",\"dur\":");
    out.append(dur);
    out.append(",\"args\":{\"io_id\":");
    AppendInt(out, static_cast<std::int64_t>(span.io_id));
    out.append("}}");
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

Result<std::vector<TraceEvent>> ParseCsvTrace(const std::string& text) {
  std::vector<TraceEvent> events;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCsvHeader) {
        return ErrInvalidArgument("trace CSV: bad header on line 1");
      }
      saw_header = true;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 9) {
      return ErrInvalidArgument("trace CSV: line " + std::to_string(line_no) +
                                " has " + std::to_string(fields.size()) +
                                " fields, want 9");
    }
    TraceEvent e;
    std::int64_t time = 0, actor = 0, seq = 0, period = 0;
    if (!ParseInt(fields[0], time) || !ParseInt(fields[2], actor) ||
        !ParseInt(fields[3], seq) || !ParseInt(fields[5], period) ||
        !ParseInt(fields[6], e.a) || !ParseInt(fields[7], e.b) ||
        !ParseInt(fields[8], e.c) || actor < 0 || seq < 0 || period < 0) {
      return ErrInvalidArgument("trace CSV: malformed number on line " +
                                std::to_string(line_no));
    }
    if (!ActorKindFromName(fields[1], e.actor_kind)) {
      return ErrInvalidArgument("trace CSV: unknown actor kind on line " +
                                std::to_string(line_no));
    }
    if (!EventTypeFromName(fields[4], e.type)) {
      return ErrInvalidArgument("trace CSV: unknown event type on line " +
                                std::to_string(line_no));
    }
    e.time = time;
    e.actor = static_cast<std::uint32_t>(actor);
    e.seq = static_cast<std::uint64_t>(seq);
    e.period = static_cast<std::uint32_t>(period);
    events.push_back(e);
  }
  if (!saw_header) return ErrInvalidArgument("trace CSV: empty file");
  return events;
}

Status ExportTraceFile(const Recorder& recorder, const std::string& path) {
  const std::vector<TraceEvent> events = recorder.Merged();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body =
      json ? ToPerfettoString(events) : ToCsvString(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return ErrInvalidArgument("cannot open trace file for writing: " + path);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    return ErrInternal("short write exporting trace to " + path);
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrNotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return ErrInternal("read error on " + path);
  return out;
}

}  // namespace haechi::obs
