// Span profile: per-client/per-stage latency distributions over assembled
// I/O spans, rendered as a deterministic text table.
//
// This is the human-facing half of the span pipeline (span.hpp is the
// assembler): each (engine, stage) pair gets a log-bucketed histogram, and
// Table() prints count/p50/p95/p99/p999/max per row — the per-stage tail
// breakdown the paper's Fig 15-style analysis needs. The table is fully
// deterministic (map-ordered rows, integer nanoseconds, no floats), so
// `haechi_audit --spans` output is byte-identical across same-seed runs —
// the profiler's own output is auditable.
//
// Like the assembler, the profile compiles out under HAECHI_TRACE=OFF:
// only this declaration-free stub surface remains.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "stats/histogram.hpp"

namespace haechi::obs {

#if HAECHI_TRACE_ENABLED

/// Aggregates IoSpans into per-(engine, stage) histograms plus an "all
/// engines" rollup and a total-latency distribution per engine.
class SpanProfile {
 public:
  void Add(const IoSpan& span);
  void AddAll(const std::vector<IoSpan>& spans);

  [[nodiscard]] std::uint64_t SpanCount() const { return spans_; }

  /// Histogram for one engine/stage (nullptr when nothing recorded).
  [[nodiscard]] const stats::Histogram* StageHistogram(
      std::uint32_t engine, SpanStage stage) const;

  /// Deterministic per-engine/per-stage percentile table (nanoseconds).
  /// Columns: engine stage count p50 p95 p99 p999 max. Rows are ordered by
  /// (engine, stage declaration order), engine 'all' rollup rows last.
  [[nodiscard]] std::string Table() const;

 private:
  struct Key {
    std::uint32_t engine;
    std::uint8_t stage;  // kSpanStages = whole-span total
    [[nodiscard]] bool operator<(const Key& other) const {
      if (engine != other.engine) return engine < other.engine;
      return stage < other.stage;
    }
  };

  void Record(std::uint32_t engine, std::uint8_t stage, std::int64_t ns);

  std::map<Key, stats::Histogram> histograms_;
  std::uint64_t spans_ = 0;
};

#endif  // HAECHI_TRACE_ENABLED

}  // namespace haechi::obs
