#include "obs/profile.hpp"

#if HAECHI_TRACE_ENABLED

#include <cinttypes>
#include <cstdio>

namespace haechi::obs {

namespace {

// Pseudo-engine id for the all-engines rollup. Sorts after every real
// engine, so rollup rows land at the bottom of the table.
constexpr std::uint32_t kAllEngines = 0xffffffffu;

// Stage index kSpanStages encodes the whole-span total.
constexpr std::uint8_t kTotalStage = static_cast<std::uint8_t>(kSpanStages);

std::string_view StageName(std::uint8_t stage) {
  return stage == kTotalStage ? std::string_view("total")
                              : ToString(static_cast<SpanStage>(stage));
}

}  // namespace

void SpanProfile::Record(std::uint32_t engine, std::uint8_t stage,
                         std::int64_t ns) {
  histograms_[Key{engine, stage}].Record(ns);
  histograms_[Key{kAllEngines, stage}].Record(ns);
}

void SpanProfile::Add(const IoSpan& span) {
  for (std::size_t s = 0; s < kSpanStages; ++s) {
    Record(span.engine, static_cast<std::uint8_t>(s), span.stage_ns[s]);
  }
  Record(span.engine, kTotalStage, span.Total());
  ++spans_;
}

void SpanProfile::AddAll(const std::vector<IoSpan>& spans) {
  for (const IoSpan& span : spans) Add(span);
}

const stats::Histogram* SpanProfile::StageHistogram(std::uint32_t engine,
                                                    SpanStage stage) const {
  const auto it =
      histograms_.find(Key{engine, static_cast<std::uint8_t>(stage)});
  return it != histograms_.end() ? &it->second : nullptr;
}

std::string SpanProfile::Table() const {
  // Integer nanoseconds only: quantiles of a log-bucketed histogram over
  // integer samples are integers, so the rendering has no float formatting
  // to drift between platforms — byte-identical across same-seed runs.
  std::string out =
      "engine stage            count        p50        p95        p99"
      "       p999        max\n";
  char line[160];
  for (const auto& [key, h] : histograms_) {
    char engine_col[16];
    if (key.engine == kAllEngines) {
      std::snprintf(engine_col, sizeof(engine_col), "%s", "all");
    } else {
      std::snprintf(engine_col, sizeof(engine_col), "%" PRIu32, key.engine);
    }
    std::snprintf(line, sizeof(line),
                  "%-6s %-12s %10" PRIu64 " %10" PRId64 " %10" PRId64
                  " %10" PRId64 " %10" PRId64 " %10" PRId64 "\n",
                  engine_col, std::string(StageName(key.stage)).c_str(),
                  h.Count(), h.ValueAtQuantile(0.50), h.ValueAtQuantile(0.95),
                  h.ValueAtQuantile(0.99), h.ValueAtQuantile(0.999), h.Max());
    out += line;
  }
  return out;
}

}  // namespace haechi::obs

#endif  // HAECHI_TRACE_ENABLED
