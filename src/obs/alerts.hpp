// Typed QoS conformance alerts and the sinks that carry them.
//
// An Alert is the watchdog's (src/obs/slo.hpp) verdict on one streaming
// check: which rule fired, how severe it is, which period and client it
// concerns, the expected-vs-observed token counts, and a suggested cause.
// Alerts are plain data derived purely from the trace-event stream, so two
// runs with the same seed produce byte-identical alert streams — the JSONL
// sink's output is a determinism witness the same way the CSV trace export
// is.
//
// Sinks are deliberately passive: OnAlert() must not mutate simulation
// state (a sink that scheduled events would make observability perturb the
// run it observes). The ring sink backs tests and the live status line; the
// JSONL sink backs `haechi_sim --alerts-out=`.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"

namespace haechi::obs {

/// Which streaming conformance rule fired (DESIGN.md §10).
enum class AlertKind : std::uint8_t {
  kReservationShortfall = 0,  // completed < f * min(R, demand), client alive
  kLimitOvershoot,            // completed above the admitted limit
  kPoolConservation,          // pool rose / dispatch identity / ledger drift
  kConversionStall,           // xi_global pinned at 0 under idle reservations
  kCapacityOscillation,       // Algorithm 1 estimate ping-ponging
  kFaaStarvation,             // FAA retry backoff exhausted within a period
  kBorrowStorm,               // cross-server borrow requests flooding a period
  kTraceTruncation,           // recorder ring wrapped / replay seq gap:
                              // the trace under audit is incomplete
  kLeaseChurn,                // a client's report lease expired (observed =
                              // cumulative expiries for the client) — fuel
                              // for the controller's re-admission rule
  kRecovered,                 // a previously violated rule went quiet: the
                              // closed-loop controller cleared it (expected
                              // = the AlertKind that recovered, observed =
                              // periods from first violation to recovery)
};

enum class AlertSeverity : std::uint8_t {
  kInfo = 0,     // expected under the run's injected faults; annotation only
  kWarning,      // degraded but not guarantee-breaking
  kCritical,     // a QoS identity the paper promises is violated
};

[[nodiscard]] std::string_view ToString(AlertKind kind);
[[nodiscard]] std::string_view ToString(AlertSeverity severity);

/// One watchdog verdict. POD-ish and fully ordered by emission, so alert
/// streams compare byte-for-byte across same-seed runs.
struct Alert {
  AlertKind kind{};
  AlertSeverity severity{};
  SimTime time = 0;          // sim time the rule fired (ns)
  std::uint32_t period = 0;  // QoS period the verdict concerns
  std::int64_t client = -1;  // client id, -1 for pool/monitor-wide alerts
  std::int64_t expected = 0;  // rule-specific bound (tokens, estimate, ...)
  std::int64_t observed = 0;  // what the stream actually showed
  std::string cause;          // suggested cause, human-readable
};

/// One line of minified JSON, stable field order — the JSONL wire format.
[[nodiscard]] std::string ToJsonl(const Alert& alert);

/// Pluggable alert destination. Implementations must be side-effect-free
/// with respect to the simulation (no scheduling, no engine pokes).
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void OnAlert(const Alert& alert) = 0;
  /// Called once after the run; file-backed sinks persist here.
  virtual Status Flush() { return Status::Ok(); }
};

/// Bounded in-memory ring — the test harness's sink. Keeps the most recent
/// `capacity` alerts (oldest dropped first) plus a total count.
class RingAlertSink : public AlertSink {
 public:
  explicit RingAlertSink(std::size_t capacity = 1024);

  void OnAlert(const Alert& alert) override;

  [[nodiscard]] const std::deque<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<Alert> alerts_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Buffers every alert as one JSON line and writes the whole file on
/// Flush() (`haechi_sim --alerts-out=`). Buffering keeps the hot path
/// allocation-only; the single write keeps partial files from torn runs
/// out of downstream tooling.
class JsonlAlertSink : public AlertSink {
 public:
  explicit JsonlAlertSink(std::string path);

  void OnAlert(const Alert& alert) override;
  Status Flush() override;

  /// The buffered JSONL document (what Flush writes) — lets tests assert
  /// byte-identity without touching the filesystem.
  [[nodiscard]] const std::string& buffer() const { return buffer_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::string path_;
  std::string buffer_;
  std::uint64_t count_ = 0;
};

}  // namespace haechi::obs
