// The Haechi flight recorder: typed QoS trace events in per-actor ring
// buffers.
//
// Every token-path decision the paper's QoS argument rests on — reservation
// decay, batched FAA fetches, token conversion xi_global, Algorithm 1's
// capacity updates, admission decisions, fault events — is emitted as one
// fixed-size TraceEvent stamped with sim-time and actor identity. Events
// land in a bounded ring per actor (the flight-recorder pattern: appends
// are O(1), old events are overwritten, nothing on the hot path allocates
// or locks; the layout is the standard single-writer ring). Per-actor
// sequence numbers make overwrites detectable: exporters carry them, and
// the audit tool refuses traces with gaps.
//
// Threading contract: each (kind, actor) ring has ONE writer at a time —
// the simulator thread in sim mode, or whichever thread holds that actor's
// lock in the threaded runtime (src/runtime/). Cross-actor emission is safe
// when Options::preallocate_actors covers every actor (no lazy per-kind
// vector growth) — the shared counters are atomic and the tap path is
// epoch-protected. Merged()/ActorEvents() still require quiescence (call
// after workers have been joined).
//
// Cost contract:
//   * HAECHI_TRACE=OFF (CMake option): every HAECHI_TRACE_EVENT expands to
//     `((void)0)` — the arguments are not evaluated, no branch remains.
//     bench_overhead's compile-time guard proves argument elision.
//   * HAECHI_TRACE=ON, no recorder installed: one pointer load + branch
//     per site (the arguments are only evaluated behind the branch).
//   * recorder installed: one bounds-masked store of 56 bytes.
//
// Per-I/O events (RDMA op issue/complete, KV ops) are additionally gated
// behind Recorder::detail() so a full-rate experiment can trace the token
// path without drowning in data-path events.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

#ifndef HAECHI_TRACE_ENABLED
#define HAECHI_TRACE_ENABLED 1
#endif

namespace haechi::sim {
class Simulator;
}  // namespace haechi::sim

namespace haechi::obs {

/// Subsystem a trace event originates from. Doubles as the Perfetto "pid".
enum class ActorKind : std::uint8_t {
  kMonitor = 0,  // data-node QoS monitor (actor = 0)
  kEngine = 1,   // client QoS engine (actor = client id)
  kFabric = 2,   // simulated RDMA fabric (actor = node id)
  kKv = 3,       // KV store client (actor = node id)
  kHarness = 4,  // experiment harness (actor = client index or 0)
  kCluster = 5,  // cluster coordinator (actor = 0)
  kController = 6,  // closed-loop QoS controller (actor = node, 0 off-cluster)
};
inline constexpr std::size_t kActorKinds = 7;

/// The event taxonomy (DESIGN.md §9). Payload fields a/b/c are typed per
/// event; the comments give the binding used by exporters and the audit.
enum class EventType : std::uint16_t {
  // --- monitor (data node) -------------------------------------------------
  kMonitorPeriodStart = 0,  // a=capacity b=dispatched(sum R_i) c=initial_pool
  kMonitorPeriodEnd,        // a=end_pool(raw) b=total_completed c=granted
  kPoolSample,              // a=raw pool word at a check tick
  kTokenConvert,            // a=pool_before(raw) b=new_pool c=outstanding L
  kCapacityEstimate,        // a=reported completions b=next estimate c=branch
  kClientPeriodReport,      // a=client b=completed c=residual (ended period)
  kReportSignal,            // S2 fired: pool decrease first observed
  kReportResend,            // a=client (half-lease nudge)
  kLeaseExpire,             // a=client b=reclaimed residual c=salvaged done
  kAdmit,                   // a=client b=reservation c=limit
  kAdmitReject,             // a=client b=reservation
  kReadmit,                 // a=client b=reservation (restart handshake)
  kRelease,                 // a=client
  kPoolRebalance,           // a=tracked shard-sum after move b=tokens moved
                            // c=(donor<<8)|receiver (sharded pool only)
  kReservationUpdate,       // a=client b=new reservation c=old reservation
  kPoolBorrowOut,           // a=pool_before(raw) b=pool_after c=peer node
  kPoolBorrowIn,            // a=pool_before(raw) b=pool_after c=peer node
  kShardSample,             // a=shard b=shard pool word at a check tick
                            // (sharded threaded runtime; one per shard)
  // --- engine (client) -----------------------------------------------------
  kEnginePeriodStart = 32,  // a=reservation tokens b=limit
  kTokenDecay,              // a=surrendered tokens b=new bound X
  kTokenFetch,              // a=tokens posted per FAA (B, or B*fetch_batch)
                            // b=shard (threaded runtime)
  kTokenFetchDone,          // a=pool value seen b=acquired c=tokens posted
                            // (c=0 on sim traces: fall back to kRunConfig.b)
  kTokenFetchFail,          // a=backoff ns (post or completion failure)
  kTokenDiscard,            // a=pool value seen b=would-be acquired (stale)
                            // c=tokens posted (0: fall back to kRunConfig.b)
  kPoolEmpty,               // FAA returned nothing; retry armed (step T4)
                            // b=shard (threaded runtime)
  kReportWrite,             // a=residual claims b=completed c=seq
  kEngineStop,              // engine quiesced (crash/teardown)
  kFaaExhausted,            // FAA retry backoff hit its configured maximum
  kIoQueued,                // detail: a=io_id b=queue depth after admit
  kIoIssue,                 // detail: a=io_id b=token source (0=reservation,
                            // 1=pool) c=queue depth after issue
  kIoComplete,              // detail: a=io_id b=outstanding after completion
  // --- fabric (RDMA) -------------------------------------------------------
  kNodeCrash = 64,          // node killed (actor = node)
  kNodeRestart,             // a=new incarnation
  kNodePause,
  kNodeResume,
  kQpError,                 // a=qp id (scripted QP failure)
  kOpDropped,               // a=opcode b=wr_id (transport fault)
  kOpDelayed,               // a=opcode b=wr_id c=extra delay ns
  kOpDuplicated,            // a=opcode b=wr_id
  kRdmaIssue,               // detail: a=opcode b=wr_id c=bytes
  kRdmaComplete,            // detail: a=opcode b=wr_id c=wc status
  // --- kvstore -------------------------------------------------------------
  kKvIssue = 96,            // detail: a=opcode(0 get/1 put) b=key
  kKvComplete,              // detail: a=opcode b=key c=status code
  // --- cluster coordinator -------------------------------------------------
  kBorrowRequest = 104,     // a=borrower node b=tokens wanted c=quota
  kBorrowGrant,             // a=lender node b=tokens moved c=borrower node
  kBorrowRepay,             // a=borrower node b=tokens repaid c=lender node
  kClusterStaleReport,      // a=node b=client c=periods stale
  kClusterRebalance,        // a=client b=tokens moved c=rejected moves
  // --- harness -------------------------------------------------------------
  kRunConfig = 112,         // a=period ns b=token batch c=measure periods
  kClientSpec,              // a=reservation b=limit c=demand (actor=client)
  kMeasureStart,
  kMeasureEnd,
  kClientCrash,             // scripted whole-client crash (actor=client)
  kClientRestart,
  kClusterConfig,           // a=data nodes D b=tenants T c=borrow policy
  kEngineBinding,           // actor=engine trace actor; a=client b=node
                            // c=tenant (cluster striping map)
  kNodeCapacity,            // a=node b=aggregate capacity c=local capacity
  kTenantSpec,              // actor=tenant; a=reservation b=limit c=clients
  // --- closed-loop controller (DESIGN.md §14) ------------------------------
  kControllerConfig = 128,  // a=policy (control::Policy) b=rule enable mask
                            // c=recovery window (periods)
  kControlAction,           // a=action kind (control::ActionKind) b=client
                            // (-1 monitor-wide) c=value: resize delta
                            // (signed tokens), eta scale milli, or 0
  kControlRecovered,        // a=AlertKind that went quiet b=client (-1)
                            // c=periods from first violation to recovery
};

/// Stable short name ("period_start", "faa_done", ...) used by the CSV and
/// Perfetto exporters; parseable back via EventTypeFromName.
[[nodiscard]] std::string_view ToString(EventType type);
[[nodiscard]] std::string_view ToString(ActorKind kind);
/// Returns false on an unknown name (corrupt trace).
bool EventTypeFromName(std::string_view name, EventType& out);
bool ActorKindFromName(std::string_view name, ActorKind& out);

/// One fixed-size trace record. POD so runs export byte-identically.
struct TraceEvent {
  SimTime time = 0;          // sim-time stamp (ns)
  std::uint64_t seq = 0;     // per-actor sequence, dense from 0
  EventType type{};
  ActorKind actor_kind{};
  std::uint8_t reserved = 0;
  std::uint32_t actor = 0;   // client id / node id / 0
  std::uint32_t period = 0;  // QoS period the event belongs to (0 = none)
  std::uint32_t reserved2 = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};
static_assert(sizeof(TraceEvent) == 56);

/// Per-actor bounded flight-recorder rings, stamped from the simulator
/// clock. Install as the process-active recorder with ScopedRecorder; the
/// instrumentation macros write to whatever recorder is active (nullptr =
/// tracing runtime-disabled).
class Recorder {
 public:
  struct Options {
    /// Events retained per actor; older events are overwritten (and the
    /// overwrite is visible to consumers through the seq gap).
    std::size_t ring_capacity = 1u << 16;
    /// Also record per-I/O data-path events (kRdma*/kKv*).
    bool detail = false;
    /// Rings created eagerly per actor kind. The simulator leaves this at 0
    /// (rings grow lazily); the threaded runtime sets it to the actor-count
    /// upper bound so Emit never resizes the per-kind vector while other
    /// threads append to sibling rings.
    std::size_t preallocate_actors = 0;
  };

  /// A time source for stamping events (the threaded runtime passes its
  /// wall Clock; the simulator constructors wire up sim.Now()).
  using ClockFn = std::function<SimTime()>;

  explicit Recorder(sim::Simulator& sim);
  Recorder(sim::Simulator& sim, Options options);
  Recorder(ClockFn clock, Options options);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
  ~Recorder();

  /// Appends one event, stamping time from the recorder's clock.
  void Emit(ActorKind kind, std::uint32_t actor, EventType type,
            std::uint32_t period, std::int64_t a = 0, std::int64_t b = 0,
            std::int64_t c = 0);

  /// Appends one event with an explicit timestamp. Threaded emitters use
  /// this so an event is stamped with the same `now` its payload was
  /// computed from (the audit recomputes time-dependent bounds like A4's
  /// conversion budget from event timestamps, so stamp-at-emit would make
  /// a correct conversion look like a violation). Caller contract: each
  /// (kind, actor) ring has one writer at a time, and that writer passes
  /// non-decreasing timestamps.
  void EmitAt(SimTime time, ActorKind kind, std::uint32_t actor,
              EventType type, std::uint32_t period, std::int64_t a = 0,
              std::int64_t b = 0, std::int64_t c = 0);

  [[nodiscard]] bool detail() const { return options_.detail; }

  /// Installs a streaming consumer invoked with every event right after it
  /// lands in its ring (the SLO watchdog's subscription point). The tap
  /// must not emit trace events or mutate simulation state. At most one
  /// tap; pass nullptr to remove.
  ///
  /// Thread-safe: installation/removal is epoch-protected against
  /// concurrent Emit calls. Emitters count themselves in/out of the tap
  /// critical section; SetTap swaps the tap pointer atomically, then spins
  /// until no emitter is inside before destroying the previous callable,
  /// so a tap is never destroyed under a caller and SetTap(nullptr) only
  /// returns once the old tap can no longer run. Costs one relaxed load
  /// per Emit when unset.
  void SetTap(std::function<void(const TraceEvent&)> tap);

  /// Events ever emitted (including ones already overwritten).
  [[nodiscard]] std::uint64_t TotalEmitted() const {
    return total_emitted_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap-around across all actors.
  [[nodiscard]] std::uint64_t TotalDropped() const {
    return total_dropped_.load(std::memory_order_relaxed);
  }

  /// One-shot wrap notification: `fn` runs exactly once, from the first
  /// emitter whose append overwrites a retained event (truncation is no
  /// longer silent — the harness wires this to a watchdog alert and the
  /// trace_dropped_events metric). Install before emitters start; like a
  /// tap, the callback must not emit trace events or mutate run state.
  void SetDropNotify(std::function<void()> fn) {
    drop_notify_ = std::move(fn);
  }

  /// All retained events merged into one deterministic stream, ordered by
  /// (time, actor_kind, actor, seq).
  [[nodiscard]] std::vector<TraceEvent> Merged() const;

  /// Retained events of one actor, oldest first.
  [[nodiscard]] std::vector<TraceEvent> ActorEvents(ActorKind kind,
                                                    std::uint32_t actor) const;

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  // grows to capacity, then wraps
    std::uint64_t appended = 0;   // total ever appended == next seq
  };

  using TapFn = std::function<void(const TraceEvent&)>;

  Ring& RingFor(ActorKind kind, std::uint32_t actor);
  void RunTap(const TraceEvent& event);

  sim::Simulator* sim_ = nullptr;  // stamps Emit when no clock_ is set
  ClockFn clock_;                  // external clock (threaded runtime)
  Options options_;
  // Actors are dense small integers per kind (clients 0..63, a handful of
  // nodes), so a vector per kind keeps Emit at two indexed loads. Each ring
  // has a single writer (the simulator thread, or the thread owning that
  // actor under the actor's lock); only the tap and the counters are shared
  // across emitters.
  std::vector<Ring> rings_[kActorKinds];
  std::atomic<TapFn*> tap_{nullptr};
  std::atomic<std::uint64_t> tap_entered_{0};
  std::atomic<std::uint64_t> tap_exited_{0};
  std::atomic<std::uint64_t> total_emitted_{0};
  std::atomic<std::uint64_t> total_dropped_{0};
  std::function<void()> drop_notify_;
  std::atomic<bool> drop_notified_{false};
};

/// The process-active recorder (nullptr when tracing is runtime-disabled).
/// The simulator is single-threaded; experiments install/uninstall
/// sequentially via ScopedRecorder.
[[nodiscard]] Recorder* ActiveRecorder();

/// RAII install of `recorder` as the active one; restores the previous
/// recorder (usually nullptr) on destruction.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

}  // namespace haechi::obs

// Instrumentation macros. Arguments are evaluated only when a recorder is
// active, and not at all when tracing is compiled out.
#if HAECHI_TRACE_ENABLED
#define HAECHI_TRACE_EVENT(kind, actor, type, period, ...)                  \
  do {                                                                      \
    if (::haechi::obs::Recorder* hte_r = ::haechi::obs::ActiveRecorder()) { \
      hte_r->Emit((kind), (actor), (type), (period), ##__VA_ARGS__);        \
    }                                                                       \
  } while (0)
// Data-path variant, additionally gated on the recorder's detail flag.
#define HAECHI_TRACE_DETAIL(kind, actor, type, period, ...)                 \
  do {                                                                      \
    ::haechi::obs::Recorder* hte_r = ::haechi::obs::ActiveRecorder();       \
    if (hte_r != nullptr && hte_r->detail()) {                              \
      hte_r->Emit((kind), (actor), (type), (period), ##__VA_ARGS__);        \
    }                                                                       \
  } while (0)
#else
#define HAECHI_TRACE_EVENT(...) ((void)0)
#define HAECHI_TRACE_DETAIL(...) ((void)0)
#endif
