// Trace exporters: the flight recorder's merged event stream as
//   * CSV (one row per event; the audit tool's input format), and
//   * Chrome/Perfetto trace-event JSON (open in ui.perfetto.dev or
//     chrome://tracing): instant events per subsystem plus counter tracks
//     for the global token pool and capacity estimate.
//
// Both renderings are deterministic functions of the event stream — two
// runs with identical seeds and fault plans export byte-identical files
// (the determinism test in tests/trace_test.cpp pins this).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace haechi::obs {

/// CSV rendering: header `time_ns,kind,actor,seq,type,period,a,b,c`.
[[nodiscard]] std::string ToCsvString(const std::vector<TraceEvent>& events);

/// Chrome trace-event JSON (the "traceEvents" array form Perfetto ingests).
[[nodiscard]] std::string ToPerfettoString(
    const std::vector<TraceEvent>& events);

/// Parses a CSV trace back into events. Fails (kInvalidArgument) on a
/// malformed header, row, or unknown type/kind name — a corrupted trace is
/// rejected, never silently skipped.
Result<std::vector<TraceEvent>> ParseCsvTrace(const std::string& text);

/// Writes the recorder's merged stream to `path`; the format follows the
/// extension (".json" => Perfetto, anything else => CSV).
Status ExportTraceFile(const Recorder& recorder, const std::string& path);

/// Reads a whole file (the audit tool's loader).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace haechi::obs
