#include "obs/span.hpp"

#if HAECHI_TRACE_ENABLED

#include <algorithm>

namespace haechi::obs {

void SpanAssembler::OnEvent(const TraceEvent& event) {
  if (event.actor_kind != ActorKind::kEngine) return;
  EngineState& st = engines_[event.actor];
  const SimTime t = event.time;
  switch (event.type) {
    // --- token-path state machine -----------------------------------------
    case EventType::kTokenFetch:
      // A posted FAA ends any convert wait (the engine is actively fetching
      // again) and opens a fetch interval.
      st.CloseWait(t);
      st.OpenFetch(t);
      break;
    case EventType::kTokenFetchDone:
    case EventType::kTokenDiscard:
      st.CloseFetch(t);
      break;
    case EventType::kTokenFetchFail:
      // Backoff between retries still counts as token_fetch: the I/O is
      // stalled on the fetch path, not on conversion. Keep the interval
      // open across the retry.
      break;
    case EventType::kPoolEmpty:
      // The FAA came back empty: the engine now waits for the monitor's
      // conversion to refill the pool (step T4's retry interval).
      st.CloseFetch(t);
      st.OpenWait(t);
      break;
    case EventType::kEnginePeriodStart:
      // Fresh reservation tokens arrived; the engine is no longer blocked
      // on pool conversion. An in-flight FAA stays open — its tokens get
      // discarded at the boundary and kTokenDiscard closes it.
      st.CloseWait(t);
      break;
    case EventType::kEngineStop:
      DropLeftovers(st);
      st = EngineState{};
      break;
    // --- per-IO causal chain ----------------------------------------------
    case EventType::kIoQueued: {
      PendingIo p;
      p.io_id = static_cast<std::uint64_t>(event.a);
      p.period = event.period;
      p.queued_at = t;
      p.fetch0 = st.CumFetch(t);
      p.wait0 = st.CumWait(t);
      st.pending.push_back(p);
      break;
    }
    case EventType::kIoIssue: {
      const auto io_id = static_cast<std::uint64_t>(event.a);
      // The engine queue is FIFO, so the match is almost always the front;
      // the linear fallback only runs on truncated traces.
      auto it = st.pending.begin();
      while (it != st.pending.end() && it->io_id != io_id) ++it;
      if (it == st.pending.end()) {
        ++stats_.orphan_events;
        break;
      }
      IoSpan span;
      span.engine = event.actor;
      span.period = it->period;
      span.io_id = io_id;
      span.token_source = event.b;
      span.queued_at = it->queued_at;
      span.issued_at = t;
      const SimDuration fetch = st.CumFetch(t) - it->fetch0;
      const SimDuration wait = st.CumWait(t) - it->wait0;
      span.stage_ns[static_cast<std::size_t>(SpanStage::kAdmit)] = 0;
      span.stage_ns[static_cast<std::size_t>(SpanStage::kTokenFetch)] = fetch;
      span.stage_ns[static_cast<std::size_t>(SpanStage::kConvertWait)] = wait;
      span.stage_ns[static_cast<std::size_t>(SpanStage::kQueue)] =
          std::max<SimDuration>(0, (t - it->queued_at) - fetch - wait);
      st.pending.erase(it);
      st.inflight.emplace(io_id, span);
      break;
    }
    case EventType::kIoComplete: {
      const auto io_id = static_cast<std::uint64_t>(event.a);
      auto it = st.inflight.find(io_id);
      if (it == st.inflight.end()) {
        ++stats_.orphan_events;
        break;
      }
      IoSpan span = it->second;
      st.inflight.erase(it);
      span.completed_at = t;
      span.stage_ns[static_cast<std::size_t>(SpanStage::kNicService)] =
          t - span.issued_at;
      done_.push_back(span);
      ++stats_.spans;
      break;
    }
    default:
      break;
  }
}

void SpanAssembler::DropLeftovers(EngineState& state) {
  stats_.dropped_unissued += state.pending.size();
  stats_.dropped_uncompleted += state.inflight.size();
  state.pending.clear();
  state.inflight.clear();
}

std::vector<IoSpan> SpanAssembler::Finish() {
  for (auto& [actor, state] : engines_) DropLeftovers(state);
  engines_.clear();
  // Merged() orders by time with (kind, actor, seq) tiebreaks, so same-seed
  // runs feed identical streams; the final sort makes the output canonical
  // regardless of completion interleaving across engines.
  std::sort(done_.begin(), done_.end(),
            [](const IoSpan& x, const IoSpan& y) {
              if (x.engine != y.engine) return x.engine < y.engine;
              return x.io_id < y.io_id;
            });
  return std::move(done_);
}

std::vector<IoSpan> AssembleSpans(const std::vector<TraceEvent>& events,
                                  SpanAssemblyStats* stats) {
  SpanAssembler assembler;
  for (const TraceEvent& event : events) assembler.OnEvent(event);
  std::vector<IoSpan> spans = assembler.Finish();
  if (stats != nullptr) *stats = assembler.stats();
  return spans;
}

}  // namespace haechi::obs

#endif  // HAECHI_TRACE_ENABLED
