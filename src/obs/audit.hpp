// Trace-replay audit: re-derives the PeriodLedger conservation identities
// and the reservation-guarantee invariant purely from an exported trace.
//
// The audit never looks at live simulator state — its only input is the
// event stream (usually parsed back from a CSV export), so it is an
// independent witness: a bug that corrupts both the token accounting and
// the stats it is summarised into still has to forge a *consistent* event
// stream to slip past it. Checks (DESIGN.md §9.3):
//
//   A1 stream integrity   per-actor seqs dense from 0, times non-decreasing
//   A2 dispatch identity  initial_pool == max(capacity - dispatched, 0)
//   A3 pool monotonicity  the pool word only moves down between monitor
//                         writes (clients can only FAA-subtract)
//   A4 conversion bound   every converted pool value respects the paper's
//                         time budget C*(T-t)/T (replayed in integer math)
//   A5 FAA conservation   pool decrease == B * (applied fetches); exact per
//                         period on fault-free traces, bounded by
//                         B*(done+discard) <= granted <= B*(posted+dups)
//                         when transport faults can lose completions
//   A6 decay bound        tokens a client surrenders to decay never exceed
//                         the reservation it was granted
//   A7 report sanity      report seqs strictly increase and completed
//                         counts are monotone within a period, per engine
//                         incarnation (a restart resets both)
//   A8 reclamation        a lease expiry reclaims exactly the residual of
//                         some report the client wrote this period (or the
//                         full reservation if it never reported)
//   A9 reservation        every admitted, demanding, alive client completes
//      guarantee          at least `guarantee_fraction * min(R, demand)`
//                         in every fully-measured period
//
// Cluster traces (a harness kClusterConfig row is present) carry one
// monitor stream per data node; A2..A8 replay per node, A9 sums each
// client's per-node calibration reports into its cluster-wide completion,
// and three cluster-only identities join the list (DESIGN.md §12):
//
//   C1 split conservation  after every coordinator rebalance the client's
//                          per-node reservation splits sum exactly to its
//                          cluster-wide R_i, and each tenant's member
//                          reservations stay within its envelope R_t
//   C2 borrow conservation for every (lender, borrower) pair repaid never
//                          exceeds granted, and each node's pool-word
//                          borrow flows (kPoolBorrowOut/In) match the
//                          coordinator ledger's grants + repayments
//   C3 node commitment     every reservation mutation leaves each node
//                          within its admission envelope: sum_i R_i,d <=
//                          aggregate_d and R_i,d <= local_d
//
// A failed check is a Violation; ok() == violations.empty().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace haechi::obs {

struct AuditOptions {
  /// Fraction of min(reservation, demand) a client must complete per
  /// measured period for A9. The paper's guarantee is ~1.0 minus reporting
  /// lag; chaos runs with lossy fabrics audit against a lower bar.
  double guarantee_fraction = 0.95;
  /// Accept traces whose rings wrapped (A1 gaps). Count-based checks
  /// (A5..A9) are skipped for actors with truncated streams.
  bool allow_truncated = false;
};

struct AuditViolation {
  std::string check;   // "A3", "A5", ...
  std::string detail;  // human-readable, with period/client/values
};

/// The ledger the audit re-derives for one QoS period, from events alone.
/// Cluster traces produce one entry per (node, period).
struct AuditPeriod {
  std::uint32_t node = 0;  // monitor actor (data node); 0 on single-node
  std::uint32_t period = 0;
  SimTime start_time = 0;
  std::int64_t capacity = 0;
  std::int64_t dispatched = 0;    // sum of reservations pushed
  std::int64_t initial_pool = 0;
  std::int64_t granted = 0;       // pool decrease attributed to FAAs
  std::int64_t minted = 0;        // net pool movement by conversions
  std::int64_t end_pool = 0;
  std::int64_t completed = 0;     // monitor's calibrated total
  std::int64_t faa_done = 0;      // successful fetches tagged this period
  bool closed = false;            // saw kMonitorPeriodEnd
  bool reporting = false;         // S2 fired / Algorithm 1 ran
  bool measured = false;          // fully inside the measurement window
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  std::vector<AuditPeriod> periods;
  /// True when the trace holds no fabric fault or client crash events, so
  /// the strict per-period form of A5 applies.
  bool clean = true;
  /// True when the trace carries a harness kClusterConfig row; C1..C3 ran
  /// and the per-period ledger is per (node, period).
  bool cluster = false;
  std::uint32_t data_nodes = 1;
  int checks_run = 0;
  int guarantee_checks = 0;  // (client, period) pairs A9 evaluated
  int control_checks = 0;    // (node, period) pairs A10 evaluated

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Multi-line human-readable summary (per-period ledger + verdict).
  [[nodiscard]] std::string Summary() const;
};

/// Runs every check against the event stream. Order of `events` does not
/// matter; the audit re-sorts per actor by sequence number.
[[nodiscard]] AuditReport AuditTrace(const std::vector<TraceEvent>& events,
                                     const AuditOptions& options = {});

/// k of the first violation's check "Ak" — or 10+k for a cluster check
/// "Ck" — taking the lowest across violations, or 0 when the report is
/// clean. haechi_audit maps this to its exit code 10+result, so scripts
/// see 10+k for identity Ak and 20+k for cluster identity Ck.
[[nodiscard]] int FirstFailedCheck(const AuditReport& report);

}  // namespace haechi::obs
