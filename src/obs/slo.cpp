#include "obs/slo.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace haechi::obs {

namespace {

constexpr SimTime kTimeMax = std::numeric_limits<SimTime>::max();

std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string FormatStatusLine(const PeriodStatus& status) {
  std::string line =
      Fmt("period %4u | pool %lld/%lld | done %lld | att", status.period,
          static_cast<long long>(status.end_pool),
          static_cast<long long>(status.capacity),
          static_cast<long long>(status.completed));
  if (status.attainment.empty()) line += " -";
  for (const auto& [client, pct] : status.attainment) {
    line += Fmt(" C%u:%d%%", client, pct);
  }
  // Sharded / cluster segments appear only when the trace carries them, so
  // single-pool single-node lines stay byte-identical to the PR 3 format.
  if (!status.shard_pools.empty()) {
    line += " | shards";
    for (const auto& [shard, pool] : status.shard_pools) {
      line += Fmt(" s%u:%lld", shard, static_cast<long long>(pool));
    }
  }
  if (status.borrow_granted != 0 || status.borrow_repaid != 0) {
    line += Fmt(" | borrow +%lld/-%lld",
                static_cast<long long>(status.borrow_granted),
                static_cast<long long>(status.borrow_repaid));
  }
  line += Fmt(" | alerts +%zu/%zu", status.period_alerts,
              status.total_alerts);
  return line;
}

std::int64_t SloWatchdog::ClientState::ReservationAt(SimTime t) const {
  std::int64_t r = spec_reservation;
  for (const auto& [at, res] : admits) {
    if (at <= t) r = res;
  }
  return r;
}

bool SloWatchdog::ClientState::DepartedBy(SimTime t) const {
  SimTime last_departure = -1;
  for (const SimTime at : departures) {
    if (at <= t) last_departure = std::max(last_departure, at);
  }
  if (last_departure < 0) return false;
  for (const auto& [at, res] : admits) {
    if (at >= last_departure && at <= t) return false;  // readmitted
  }
  return true;
}

SloWatchdog::SloWatchdog(WatchdogOptions options) : options_(options) {}

void SloWatchdog::AddSink(AlertSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void SloWatchdog::SetStatusFn(std::function<void(const PeriodStatus&)> fn,
                              std::uint32_t interval) {
  status_fn_ = std::move(fn);
  status_interval_ = interval;
}

void SloWatchdog::Raise(Alert alert) {
  alerts_.push_back(alert);
  for (AlertSink* sink : sinks_) sink->OnAlert(alerts_.back());
}

std::size_t SloWatchdog::CountAtLeast(AlertSeverity severity) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(), [&](const Alert& a) {
        return a.severity >= severity;
      }));
}

std::string SloWatchdog::FaultCause(const char* healthy_cause) const {
  if (cur_.faulted) return Fmt("%s (faults injected this period)",
                               healthy_cause);
  if (run_faulted_) return Fmt("%s (faults injected earlier this run)",
                               healthy_cause);
  return healthy_cause;
}

void SloWatchdog::ObservePool(const TraceEvent& event, std::int64_t value) {
  if (!have_pool_ || !period_open_) return;
  const std::int64_t drop = last_pool_ - value;
  if (drop < 0) {
    Raise({AlertKind::kPoolConservation, AlertSeverity::kCritical,
           event.time, cur_.period, -1, last_pool_, value,
           Fmt("pool rose without a monitor write (%s)",
               std::string(ToString(event.type)).c_str())});
  } else {
    cur_.derived_granted += drop;
  }
  last_pool_ = value;
}

void SloWatchdog::CheckSeq(const TraceEvent& e) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(e.actor_kind) << 32) | e.actor;
  const auto [it, fresh] = last_seq_.try_emplace(key, e.seq);
  std::uint64_t expected = e.seq;
  if (fresh) {
    // A stream must start at seq 0; a higher first seq means the ring
    // already wrapped before export.
    expected = 0;
  } else {
    expected = it->second + 1;
    it->second = e.seq;
  }
  if (e.seq != expected && !truncation_alerted_) {
    truncation_alerted_ = true;
    Raise({AlertKind::kTraceTruncation, AlertSeverity::kWarning, e.time,
           e.period, -1, static_cast<std::int64_t>(expected),
           static_cast<std::int64_t>(e.seq),
           "per-actor seq gap: the recorder ring wrapped and events were "
           "lost before export"});
  }
}

void SloWatchdog::NotifyTruncation(SimTime time) {
  if (truncation_alerted_) return;
  truncation_alerted_ = true;
  Raise({AlertKind::kTraceTruncation, AlertSeverity::kWarning, time,
         cur_.period, -1, 0, 0,
         "recorder ring wrapped: oldest events overwritten, any export of "
         "this run is truncated"});
}

void SloWatchdog::OnEvent(const TraceEvent& e) {
  CheckSeq(e);
  // Cluster traces carry one monitor stream per data node; the watchdog's
  // single pool state machine follows node 0 and leaves cross-node
  // invariants to the offline auditor's C checks.
  if (cluster_mode_ && e.actor_kind == ActorKind::kMonitor && e.actor != 0) {
    return;
  }
  if (cluster_mode_ && e.actor_kind == ActorKind::kEngine) {
    const auto bound = engine_nodes_.find(e.actor);
    if (bound != engine_nodes_.end() && bound->second != 0) return;
  }
  switch (e.type) {
    // --- harness: run configuration and scripted chaos -------------------
    case EventType::kRunConfig:
      have_harness_ = true;
      period_len_ = e.a;
      token_batch_ = e.b;
      break;
    case EventType::kClientSpec: {
      have_harness_ = true;
      ClientState& client = clients_[e.actor];
      client.spec_reservation = e.a;
      client.spec_limit = e.b;
      client.spec_demand = e.c;
      break;
    }
    case EventType::kMeasureStart:
      have_harness_ = true;
      measure_start_ = e.time;
      break;
    case EventType::kMeasureEnd:
      have_harness_ = true;
      measure_end_ = e.time;
      break;
    case EventType::kClientCrash:
      have_harness_ = true;
      run_faulted_ = true;
      cur_.faulted = true;
      clients_[e.actor].crash_windows.emplace_back(e.time, kTimeMax);
      break;
    case EventType::kClientRestart: {
      have_harness_ = true;
      auto& windows = clients_[e.actor].crash_windows;
      if (!windows.empty() && windows.back().second == kTimeMax) {
        windows.back().second = e.time;
      }
      break;
    }
    case EventType::kClusterConfig:
      have_harness_ = true;
      cluster_mode_ = true;
      break;
    case EventType::kEngineBinding:
      have_harness_ = true;
      engine_nodes_[e.actor] = static_cast<std::uint32_t>(e.b);
      break;

    // --- monitor: period boundaries and the token pool -------------------
    case EventType::kMonitorPeriodStart: {
      if (period_len_ == 0 && prev_period_start_ >= 0) {
        period_len_ = e.time - prev_period_start_;
      }
      prev_period_start_ = e.time;
      const bool was_faulted = cur_.faulted && period_open_;
      cur_ = PeriodState{};
      cur_.period = e.period;
      cur_.start_time = e.time;
      cur_.capacity = e.a;
      cur_.dispatched = e.b;
      cur_.initial_pool = e.c;
      // Fault context persists across the boundary for annotation: a fault
      // window rarely aligns with period edges.
      cur_.faulted = was_faulted;
      period_open_ = true;
      if (e.c != std::max<std::int64_t>(e.a - e.b, 0)) {
        Raise({AlertKind::kPoolConservation, AlertSeverity::kCritical,
               e.time, e.period, -1, std::max<std::int64_t>(e.a - e.b, 0),
               e.c,
               "initial pool breaks the dispatch identity "
               "max(capacity - dispatched, 0)"});
      }
      last_pool_ = e.c;
      have_pool_ = true;
      break;
    }
    case EventType::kPoolSample:
      ObservePool(e, e.a);
      break;
    case EventType::kShardSample:
      // Per-shard occupancy for the status line; the summed kPoolSample in
      // the same check tick drives the conservation math.
      if (period_open_) {
        cur_.shard_pools[static_cast<std::uint32_t>(e.a)] = e.b;
      }
      break;
    case EventType::kPoolBorrowOut:
    case EventType::kPoolBorrowIn:
      // Coordinator-driven pool moves: any drop since the last write is
      // client grants; the move itself (a -> b) is ledgered as a loan, so
      // it must not count as a grant or trip conservation.
      ObservePool(e, e.a);
      last_pool_ = e.b;
      if (period_open_) cur_.borrow_credit += e.b - e.a;
      break;
    case EventType::kBorrowRequest:
      if (period_open_) ++cur_.borrow_requests;
      break;
    case EventType::kBorrowGrant:
      if (period_open_) cur_.borrow_granted += e.b;
      break;
    case EventType::kBorrowRepay:
      if (period_open_) cur_.borrow_repaid += e.b;
      break;
    case EventType::kTokenConvert: {
      ObservePool(e, e.a);
      if (!period_open_) break;
      ++cur_.conversions;
      cur_.max_converted_pool = std::max(cur_.max_converted_pool, e.b);
      last_pool_ = e.b;
      if (period_len_ > 0) {
        const SimDuration left = std::max<SimDuration>(
            period_len_ - (e.time - cur_.start_time), 0);
        const auto budget = static_cast<std::int64_t>(
            static_cast<__int128>(cur_.capacity) * left / period_len_);
        const std::int64_t allowed =
            std::max<std::int64_t>(budget, 0) +
            std::max<std::int64_t>(cur_.borrow_credit, 0);
        if (e.b > allowed) {
          Raise({AlertKind::kPoolConservation, AlertSeverity::kCritical,
                 e.time, cur_.period, -1, allowed, e.b,
                 "conversion wrote above the C*(T-t)/T time budget "
                 "(plus any absorbed borrow credit)"});
        }
      }
      break;
    }
    case EventType::kClientPeriodReport:
      if (period_open_ && e.period == cur_.period) {
        cur_.reports[static_cast<std::uint32_t>(e.a)] = {e.b, e.c};
      }
      break;
    case EventType::kReportSignal:
    case EventType::kCapacityEstimate:
      if (period_open_ && e.period == cur_.period) cur_.reporting = true;
      if (e.type == EventType::kCapacityEstimate) {
        // W5: Algorithm 1 oscillation — consecutive significant
        // sign-alternating estimate moves.
        const std::int64_t estimate = e.b;
        if (last_estimate_ >= 0) {
          const std::int64_t delta = estimate - last_estimate_;
          const int sign = delta > 0 ? 1 : (delta < 0 ? -1 : 0);
          const bool significant =
              static_cast<double>(delta > 0 ? delta : -delta) >=
              options_.oscillation_amplitude *
                  static_cast<double>(std::max<std::int64_t>(last_estimate_,
                                                             1));
          if (sign != 0 && significant && sign == -last_delta_sign_) {
            ++flips_;
          } else {
            flips_ = sign != 0 && significant ? 1 : 0;
          }
          if (sign != 0) last_delta_sign_ = sign;
          if (flips_ >= options_.oscillation_flips) {
            Raise({AlertKind::kCapacityOscillation, AlertSeverity::kWarning,
                   e.time, e.period, -1, last_estimate_, estimate,
                   Fmt("capacity estimate alternated direction %d periods "
                       "running (Algorithm 1 hunting)",
                       flips_)});
            flips_ = 0;
          }
        }
        last_estimate_ = estimate;
      }
      break;
    case EventType::kMonitorPeriodEnd: {
      ObservePool(e, e.a);
      if (!period_open_ || e.period != cur_.period) break;
      cur_.end_pool = e.a;
      cur_.completed = e.b;
      // Live ledger cross-check: the monitor stamps its own granted total
      // into c. A zero can also mean a pre-watchdog trace, so only a
      // nonzero claim is held against the stream-derived figure.
      if (e.c > 0 && e.c != cur_.derived_granted) {
        Raise({AlertKind::kPoolConservation, AlertSeverity::kCritical,
               e.time, cur_.period, -1, cur_.derived_granted, e.c,
               "monitor ledger granted diverges from the grant total "
               "derived from pool observations"});
      }
      EvaluatePeriod(e);
      period_open_ = false;
      break;
    }

    // --- monitor: client membership --------------------------------------
    case EventType::kAdmit:
    case EventType::kReadmit: {
      ClientState& client = clients_[static_cast<std::uint32_t>(e.a)];
      client.admits.emplace_back(e.time, e.b);
      client.admitted_limit = e.c;
      break;
    }
    // A controller resize re-baselines the reservation W1/W2 judge against,
    // exactly like a re-admission (b = the new reservation).
    case EventType::kReservationUpdate:
      clients_[static_cast<std::uint32_t>(e.a)].admits.emplace_back(e.time,
                                                                    e.b);
      break;
    case EventType::kRelease:
      clients_[static_cast<std::uint32_t>(e.a)].departures.push_back(e.time);
      break;
    case EventType::kLeaseExpire: {
      ClientState& client = clients_[static_cast<std::uint32_t>(e.a)];
      client.departures.push_back(e.time);
      ++client.lease_expiries;
      Raise({AlertKind::kLeaseChurn,
             cur_.faulted || run_faulted_ ? AlertSeverity::kInfo
                                          : AlertSeverity::kWarning,
             e.time, e.period, e.a, 0, client.lease_expiries,
             FaultCause("report lease expired; client presumed dead")});
      break;
    }

    // --- controller: recovery claims become typed alerts, so live runs and
    // offline ReplayTrace produce byte-identical alert streams.
    case EventType::kControlRecovered:
      Raise({AlertKind::kRecovered, AlertSeverity::kInfo, e.time, e.period,
             e.b, e.a, e.c,
             "controller: violated rule stayed quiet through its window"});
      break;

    // --- engine: token-path distress signals ------------------------------
    case EventType::kTokenDecay:
      if (period_open_ && e.period == cur_.period) {
        cur_.decay_surrendered += e.a;
      }
      break;
    case EventType::kPoolEmpty:
      if (period_open_ && e.period == cur_.period) ++cur_.pool_empty_events;
      break;
    case EventType::kFaaExhausted:
      if (period_open_ && e.period == cur_.period) {
        cur_.faa_exhausted.insert(e.actor);
      }
      break;

    // --- fabric faults annotate -------------------------------------------
    case EventType::kOpDropped:
    case EventType::kOpDelayed:
    case EventType::kOpDuplicated:
    case EventType::kQpError:
    case EventType::kNodeCrash:
    case EventType::kNodeRestart:
    case EventType::kNodePause:
    case EventType::kNodeResume:
      run_faulted_ = true;
      cur_.faulted = true;
      break;

    default:
      break;
  }
}

void SloWatchdog::EvaluatePeriod(const TraceEvent& end_event) {
  const PeriodState& p = cur_;
  ++periods_evaluated_;
  const std::size_t alerts_before = alerts_.size();

  // The period's extent, for the measurement-window and crash-window
  // geometry — identical to the auditor's A9 so verdicts agree.
  const SimTime p_end =
      period_len_ > 0 ? p.start_time + period_len_ : kTimeMax;
  // Harness traces declare their window with kMeasureStart; until that
  // event arrives nothing is measured. This keeps the streaming verdict
  // independent of tie-breaking when a period boundary lands on the same
  // timestamp as the warmup edge (Merged() orders monitors before the
  // harness), so live taps and trace replays agree with audit A9.
  bool measured =
      (measure_start_ >= 0 && p.start_time >= measure_start_) &&
      (measure_end_ < 0 || (p_end != kTimeMax && p_end <= measure_end_));
  if (!have_harness_) measured = true;

  // W1/W2 need cluster-wide completions per client; on cluster traces the
  // watchdog only sees node 0's calibration reports, so the reservation
  // and limit verdicts are left to the offline auditor (A9).
  if (measured && p.reporting && !cluster_mode_) {
    for (const auto& [client, info] : clients_) {
      if (info.spec_demand <= 0) continue;  // closed loop / unknown demand
      const std::int64_t reservation = info.ReservationAt(p.start_time);
      if (reservation <= 0) continue;
      bool excluded = info.DepartedBy(p.start_time);
      for (const auto& [crash, restart] : info.crash_windows) {
        const SimTime padded_end =
            restart == kTimeMax || period_len_ == 0
                ? kTimeMax
                : restart + 2 * period_len_;
        if (crash <= p_end &&
            (padded_end == kTimeMax || padded_end >= p.start_time)) {
          excluded = true;
        }
      }
      if (excluded) continue;

      const std::int64_t target = std::min(reservation, info.spec_demand);
      const auto floor_target = static_cast<std::int64_t>(
          options_.guarantee_fraction * static_cast<double>(target));
      std::int64_t completed = 0;
      const auto report = p.reports.find(client);
      if (report != p.reports.end()) completed = report->second.first;
      ++guarantee_checks_;
      if (completed < floor_target) {
        Raise({AlertKind::kReservationShortfall, AlertSeverity::kCritical,
               end_event.time, p.period, client, floor_target, completed,
               FaultCause("client under-served while demanding and alive")});
      }
      const std::int64_t limit = info.LimitAt();
      if (limit > 0 && completed > limit) {
        Raise({AlertKind::kLimitOvershoot, AlertSeverity::kCritical,
               end_event.time, p.period, client, limit, completed,
               "completed above the admitted limit this period"});
      }
    }
  }

  // W4: every conversion pinned xi_global at zero while at least a full
  // FAA batch of reservation tokens sat idle (surrendered to decay) and
  // some engine found the pool empty — recycling should have minted.
  const std::int64_t idle_floor = std::max<std::int64_t>(
      options_.stall_min_idle_tokens > 0 ? options_.stall_min_idle_tokens
                                         : token_batch_,
      1);
  if (p.reporting && p.conversions > 0 && p.max_converted_pool == 0 &&
      p.decay_surrendered >= idle_floor && p.pool_empty_events > 0) {
    Raise({AlertKind::kConversionStall,
           cur_.faulted || run_faulted_ ? AlertSeverity::kInfo
                                        : AlertSeverity::kWarning,
           end_event.time, p.period, -1, p.decay_surrendered, 0,
           FaultCause("token conversion stuck at zero with idle "
                      "reservations and starved engines")});
  }

  // W7: borrow storm — the coordinator spent the period begging peers for
  // tokens, meaning a node is chronically dry (its reservations should
  // move instead, or the cluster is over-committed).
  if (cluster_mode_ && options_.borrow_storm_requests > 0 &&
      p.borrow_requests >= options_.borrow_storm_requests) {
    Raise({AlertKind::kBorrowStorm,
           cur_.faulted || run_faulted_ ? AlertSeverity::kInfo
                                        : AlertSeverity::kWarning,
           end_event.time, p.period, -1, options_.borrow_storm_requests,
           p.borrow_requests,
           FaultCause("cross-server borrow requests flooded the period")});
  }

  // W6: FAA backoff saturation. The set is ordered, so alert order is
  // deterministic.
  for (const std::uint32_t client : p.faa_exhausted) {
    Raise({AlertKind::kFaaStarvation,
           cur_.faulted || run_faulted_ ? AlertSeverity::kInfo
                                        : AlertSeverity::kWarning,
           end_event.time, p.period, client,
           static_cast<std::int64_t>(token_batch_), 0,
           FaultCause("FAA retry backoff saturated at its maximum")});
  }

  if (status_fn_ && status_interval_ > 0 &&
      periods_evaluated_ % status_interval_ == 0) {
    PeriodStatus status;
    status.period = p.period;
    status.capacity = p.capacity;
    status.end_pool = p.end_pool;
    status.completed = p.completed;
    for (const auto& [client, info] : clients_) {
      if (info.spec_demand <= 0) continue;
      const std::int64_t reservation = info.ReservationAt(p.start_time);
      if (reservation <= 0 || info.DepartedBy(p.start_time)) continue;
      const std::int64_t target =
          std::max<std::int64_t>(std::min(reservation, info.spec_demand), 1);
      std::int64_t completed = 0;
      const auto report = p.reports.find(client);
      if (report != p.reports.end()) completed = report->second.first;
      status.attainment.emplace_back(
          client, static_cast<int>(completed * 100 / target));
    }
    for (const auto& [shard, pool] : p.shard_pools) {
      status.shard_pools.emplace_back(shard, pool);
    }
    status.borrow_granted = p.borrow_granted;
    status.borrow_repaid = p.borrow_repaid;
    status.period_alerts = alerts_.size() - alerts_before;
    status.total_alerts = alerts_.size();
    status_fn_(status);
  }
}

Status SloWatchdog::Finish() {
  Status first = Status::Ok();
  for (AlertSink* sink : sinks_) {
    Status flushed = sink->Flush();
    if (first.ok() && !flushed.ok()) first = std::move(flushed);
  }
  return first;
}

std::vector<Alert> ReplayTrace(const std::vector<TraceEvent>& events,
                               const WatchdogOptions& options) {
  SloWatchdog watchdog(options);
  for (const TraceEvent& event : events) watchdog.OnEvent(event);
  (void)watchdog.Finish();  // no file-backed sinks here
  return watchdog.alerts();
}

}  // namespace haechi::obs
