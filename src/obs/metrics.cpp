#include "obs/metrics.hpp"

#include <cstdio>

namespace haechi::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::int64_t& MetricsRegistry::Counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::Gauge(const std::string& name) {
  return gauges_[name];
}

stats::Histogram& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

std::int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         histograms_.contains(name);
}

void MetricsRegistry::SnapshotPeriod(std::uint32_t period) {
  auto push = [&](const std::string& name, const char* kind, double value) {
    SnapshotRow row;
    row.period = period;
    row.name = name;
    row.kind = kind;
    row.value = value;
    const std::string key = std::string(kind) + ":" + name;
    row.delta = value - last_snapshot_[key];
    last_snapshot_[key] = value;
    snapshots_.push_back(std::move(row));
  };
  for (const auto& [name, value] : counters_) {
    push(name, "counter", static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges_) push(name, "gauge", value);
  for (const auto& [name, histogram] : histograms_) {
    push(name, "histogram_count", static_cast<double>(histogram.Count()));
    push(name, "histogram_p50",
         static_cast<double>(histogram.ValueAtQuantile(0.5)));
    push(name, "histogram_p99",
         static_cast<double>(histogram.ValueAtQuantile(0.99)));
    push(name, "histogram_max", static_cast<double>(histogram.Max()));
  }
}

stats::CsvWriter MetricsRegistry::ToCsv() const {
  stats::CsvWriter csv({"period", "name", "kind", "value", "delta"});
  for (const SnapshotRow& row : snapshots_) {
    csv.AddRow({std::to_string(row.period), row.name, row.kind,
                FormatDouble(row.value), FormatDouble(row.delta)});
  }
  return csv;
}

}  // namespace haechi::obs
