#include "obs/metrics.hpp"

#include <cstdio>

namespace haechi::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::int64_t& MetricsRegistry::Counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::Gauge(const std::string& name) {
  return gauges_[name];
}

stats::Histogram& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

std::int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         histograms_.contains(name);
}

void MetricsRegistry::SnapshotPeriod(std::uint32_t period) {
  auto push = [&](const std::string& name, const char* kind, double value) {
    SnapshotRow row;
    row.period = period;
    row.name = name;
    row.kind = kind;
    row.value = value;
    const std::string key = std::string(kind) + ":" + name;
    row.delta = value - last_snapshot_[key];
    last_snapshot_[key] = value;
    snapshots_.push_back(std::move(row));
  };
  for (const auto& [name, value] : counters_) {
    push(name, "counter", static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges_) push(name, "gauge", value);
  for (const auto& [name, histogram] : histograms_) {
    push(name, "histogram_count", static_cast<double>(histogram.Count()));
    push(name, "histogram_p50",
         static_cast<double>(histogram.ValueAtQuantile(0.5)));
    push(name, "histogram_p99",
         static_cast<double>(histogram.ValueAtQuantile(0.99)));
    push(name, "histogram_max", static_cast<double>(histogram.Max()));
  }
}

void MetricsRegistry::SnapshotHistograms(std::uint32_t period,
                                         const std::string& prefix) {
  auto push = [&](const std::string& name, const char* kind, double value) {
    SnapshotRow row;
    row.period = period;
    row.name = name;
    row.kind = kind;
    row.value = value;
    const std::string key = std::string(kind) + ":" + name;
    row.delta = value - last_snapshot_[key];
    last_snapshot_[key] = value;
    snapshots_.push_back(std::move(row));
  };
  for (const auto& [name, histogram] : histograms_) {
    if (name.rfind(prefix, 0) != 0) continue;
    push(name, "histogram_count", static_cast<double>(histogram.Count()));
    push(name, "histogram_p50",
         static_cast<double>(histogram.ValueAtQuantile(0.5)));
    push(name, "histogram_p95",
         static_cast<double>(histogram.ValueAtQuantile(0.95)));
    push(name, "histogram_p99",
         static_cast<double>(histogram.ValueAtQuantile(0.99)));
    push(name, "histogram_p999",
         static_cast<double>(histogram.ValueAtQuantile(0.999)));
    push(name, "histogram_max", static_cast<double>(histogram.Max()));
  }
}

stats::CsvWriter MetricsRegistry::ToCsv() const {
  stats::CsvWriter csv({"period", "name", "kind", "value", "delta"});
  for (const SnapshotRow& row : snapshots_) {
    csv.AddRow({std::to_string(row.period), row.name, row.kind,
                FormatDouble(row.value), FormatDouble(row.delta)});
  }
  return csv;
}

namespace {

// "engine.faa_ops" -> "haechi_engine_faa_ops": Prometheus metric names are
// [a-zA-Z_:][a-zA-Z0-9_:]*, so dots and any other punctuation collapse to
// underscores.
std::string PromName(const std::string& name, const std::string& kind) {
  std::string out = "haechi_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  // Histogram quantile rows keep their kind suffix ("histogram_p99" ->
  // "_p99") so each quantile is its own series; plain counters and gauges
  // need no suffix.
  if (kind.rfind("histogram_", 0) == 0) {
    out.push_back('_');
    out += kind.substr(sizeof("histogram_") - 1);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  // One exposition covering every snapshot, the period as a label — the
  // text-format analogue of ToCsv()'s long format. Scrape-style consumers
  // read the last sample per series; offline tooling gets the full
  // per-period trajectory in one file.
  std::string out;
  for (const SnapshotRow& row : snapshots_) {
    out += PromName(row.name, row.kind);
    out += "{period=\"";
    out += std::to_string(row.period);
    out += "\"} ";
    out += FormatDouble(row.value);
    out += '\n';
  }
  return out;
}

}  // namespace haechi::obs
