#include "obs/trace.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace haechi::obs {

namespace {

Recorder* g_active = nullptr;

struct TypeName {
  EventType type;
  std::string_view name;
};

// Stable wire names: the CSV exporter writes them and the audit tool parses
// them back, so renaming one is a trace-format break.
constexpr TypeName kTypeNames[] = {
    {EventType::kMonitorPeriodStart, "period_start"},
    {EventType::kMonitorPeriodEnd, "period_end"},
    {EventType::kPoolSample, "pool_sample"},
    {EventType::kTokenConvert, "convert"},
    {EventType::kCapacityEstimate, "capacity_estimate"},
    {EventType::kClientPeriodReport, "client_period_report"},
    {EventType::kReportSignal, "report_signal"},
    {EventType::kReportResend, "report_resend"},
    {EventType::kLeaseExpire, "lease_expire"},
    {EventType::kAdmit, "admit"},
    {EventType::kAdmitReject, "admit_reject"},
    {EventType::kReadmit, "readmit"},
    {EventType::kRelease, "release"},
    {EventType::kPoolRebalance, "pool_rebalance"},
    {EventType::kReservationUpdate, "reservation_update"},
    {EventType::kPoolBorrowOut, "borrow_out"},
    {EventType::kPoolBorrowIn, "borrow_in"},
    {EventType::kShardSample, "shard_sample"},
    {EventType::kEnginePeriodStart, "engine_period_start"},
    {EventType::kTokenDecay, "decay"},
    {EventType::kTokenFetch, "faa_post"},
    {EventType::kTokenFetchDone, "faa_done"},
    {EventType::kTokenFetchFail, "faa_fail"},
    {EventType::kTokenDiscard, "faa_discard"},
    {EventType::kPoolEmpty, "pool_empty"},
    {EventType::kReportWrite, "report_write"},
    {EventType::kEngineStop, "engine_stop"},
    {EventType::kFaaExhausted, "faa_exhausted"},
    {EventType::kIoQueued, "io_queued"},
    {EventType::kIoIssue, "io_issue"},
    {EventType::kIoComplete, "io_complete"},
    {EventType::kNodeCrash, "node_crash"},
    {EventType::kNodeRestart, "node_restart"},
    {EventType::kNodePause, "node_pause"},
    {EventType::kNodeResume, "node_resume"},
    {EventType::kQpError, "qp_error"},
    {EventType::kOpDropped, "op_dropped"},
    {EventType::kOpDelayed, "op_delayed"},
    {EventType::kOpDuplicated, "op_duplicated"},
    {EventType::kRdmaIssue, "rdma_issue"},
    {EventType::kRdmaComplete, "rdma_complete"},
    {EventType::kKvIssue, "kv_issue"},
    {EventType::kKvComplete, "kv_complete"},
    {EventType::kBorrowRequest, "borrow_request"},
    {EventType::kBorrowGrant, "borrow_grant"},
    {EventType::kBorrowRepay, "borrow_repay"},
    {EventType::kClusterStaleReport, "cluster_stale_report"},
    {EventType::kClusterRebalance, "cluster_rebalance"},
    {EventType::kRunConfig, "run_config"},
    {EventType::kClientSpec, "client_spec"},
    {EventType::kMeasureStart, "measure_start"},
    {EventType::kMeasureEnd, "measure_end"},
    {EventType::kClientCrash, "client_crash"},
    {EventType::kClientRestart, "client_restart"},
    {EventType::kClusterConfig, "cluster_config"},
    {EventType::kEngineBinding, "engine_binding"},
    {EventType::kNodeCapacity, "node_capacity"},
    {EventType::kTenantSpec, "tenant_spec"},
    {EventType::kControllerConfig, "controller_config"},
    {EventType::kControlAction, "control_action"},
    {EventType::kControlRecovered, "control_recovered"},
};

constexpr std::string_view kKindNames[kActorKinds] = {
    "monitor", "engine", "fabric", "kv", "harness", "cluster", "controller"};

}  // namespace

std::string_view ToString(EventType type) {
  for (const TypeName& entry : kTypeNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

std::string_view ToString(ActorKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kActorKinds ? kKindNames[index] : "unknown";
}

bool EventTypeFromName(std::string_view name, EventType& out) {
  for (const TypeName& entry : kTypeNames) {
    if (entry.name == name) {
      out = entry.type;
      return true;
    }
  }
  return false;
}

bool ActorKindFromName(std::string_view name, ActorKind& out) {
  for (std::size_t i = 0; i < kActorKinds; ++i) {
    if (kKindNames[i] == name) {
      out = static_cast<ActorKind>(i);
      return true;
    }
  }
  return false;
}

Recorder::Recorder(sim::Simulator& sim) : Recorder(sim, Options{}) {}

Recorder::Recorder(sim::Simulator& sim, Options options)
    : sim_(&sim), options_(options) {
  HAECHI_EXPECTS(options_.ring_capacity > 0);
  for (auto& per_kind : rings_) per_kind.resize(options_.preallocate_actors);
}

Recorder::Recorder(ClockFn clock, Options options)
    : clock_(std::move(clock)), options_(options) {
  HAECHI_EXPECTS(options_.ring_capacity > 0);
  HAECHI_EXPECTS(clock_ != nullptr);
  for (auto& per_kind : rings_) per_kind.resize(options_.preallocate_actors);
}

Recorder::~Recorder() { SetTap(nullptr); }

Recorder::Ring& Recorder::RingFor(ActorKind kind, std::uint32_t actor) {
  auto& per_kind = rings_[static_cast<std::size_t>(kind)];
  if (actor >= per_kind.size()) per_kind.resize(actor + 1);
  return per_kind[actor];
}

void Recorder::Emit(ActorKind kind, std::uint32_t actor, EventType type,
                    std::uint32_t period, std::int64_t a, std::int64_t b,
                    std::int64_t c) {
  EmitAt(sim_ != nullptr ? sim_->Now() : clock_(), kind, actor, type, period,
         a, b, c);
}

void Recorder::EmitAt(SimTime time, ActorKind kind, std::uint32_t actor,
                      EventType type, std::uint32_t period, std::int64_t a,
                      std::int64_t b, std::int64_t c) {
  Ring& ring = RingFor(kind, actor);
  TraceEvent event;
  event.time = time;
  event.seq = ring.appended;
  event.type = type;
  event.actor_kind = kind;
  event.actor = actor;
  event.period = period;
  event.a = a;
  event.b = b;
  event.c = c;
  if (ring.buf.size() < options_.ring_capacity) {
    ring.buf.push_back(event);  // grow lazily up to capacity
  } else {
    ring.buf[ring.appended % options_.ring_capacity] = event;
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    // First wrap fires the one-shot truncation notification (exactly once
    // across all emitters — the exchange arbitrates concurrent wraps).
    if (drop_notify_ &&
        !drop_notified_.exchange(true, std::memory_order_relaxed)) {
      drop_notify_();
    }
  }
  ++ring.appended;
  total_emitted_.fetch_add(1, std::memory_order_relaxed);
  // Cheap common case: no tap installed, one relaxed load. The full
  // epoch-counted entry only happens when a tap might be present.
  if (tap_.load(std::memory_order_relaxed) != nullptr) RunTap(event);
}

void Recorder::RunTap(const TraceEvent& event) {
  // Epoch entry: count in, re-load the pointer, count out. SetTap swaps the
  // pointer first and then waits for entered == exited, so once it returns
  // no emitter can still be running (or about to run) the old callable.
  tap_entered_.fetch_add(1, std::memory_order_seq_cst);
  TapFn* tap = tap_.load(std::memory_order_seq_cst);
  if (tap != nullptr) (*tap)(event);
  tap_exited_.fetch_add(1, std::memory_order_seq_cst);
}

void Recorder::SetTap(std::function<void(const TraceEvent&)> tap) {
  TapFn* next = tap ? new TapFn(std::move(tap)) : nullptr;
  TapFn* old = tap_.exchange(next, std::memory_order_seq_cst);
  if (old != nullptr) {
    // Quiesce: wait for a moment with no emitter inside the tap section.
    // Any emitter entering after the exchange sees the new pointer, so once
    // entered == exited the old callable is unreachable.
    while (tap_entered_.load(std::memory_order_seq_cst) !=
           tap_exited_.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    delete old;
  }
}

std::vector<TraceEvent> Recorder::ActorEvents(ActorKind kind,
                                              std::uint32_t actor) const {
  const auto& per_kind = rings_[static_cast<std::size_t>(kind)];
  if (actor >= per_kind.size()) return {};
  const Ring& ring = per_kind[actor];
  std::vector<TraceEvent> out;
  out.reserve(ring.buf.size());
  if (ring.appended <= ring.buf.size()) {
    out = ring.buf;
  } else {
    // The ring wrapped: the oldest retained event sits right after the
    // write cursor.
    const std::size_t cursor = ring.appended % ring.buf.size();
    out.insert(out.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(cursor),
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + static_cast<std::ptrdiff_t>(cursor));
  }
  return out;
}

std::vector<TraceEvent> Recorder::Merged() const {
  std::vector<TraceEvent> out;
  for (std::size_t kind = 0; kind < kActorKinds; ++kind) {
    for (std::uint32_t actor = 0; actor < rings_[kind].size(); ++actor) {
      const auto events =
          ActorEvents(static_cast<ActorKind>(kind), actor);
      out.insert(out.end(), events.begin(), events.end());
    }
  }
  // Deterministic global order: per-actor streams are already seq-ordered,
  // and the tiebreak on (kind, actor, seq) is total.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.actor_kind != y.actor_kind) {
                return x.actor_kind < y.actor_kind;
              }
              if (x.actor != y.actor) return x.actor < y.actor;
              return x.seq < y.seq;
            });
  return out;
}

Recorder* ActiveRecorder() { return g_active; }

ScopedRecorder::ScopedRecorder(Recorder* recorder) : previous_(g_active) {
  g_active = recorder;
}

ScopedRecorder::~ScopedRecorder() { g_active = previous_; }

}  // namespace haechi::obs
