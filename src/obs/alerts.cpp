#include "obs/alerts.hpp"

#include <cstdio>

namespace haechi::obs {

namespace {

// Stable wire names: the JSONL schema is part of the tool surface
// (DESIGN.md §10); renaming one breaks downstream alert consumers.
constexpr std::string_view kKindNames[] = {
    "reservation_shortfall", "limit_overshoot",      "pool_conservation",
    "conversion_stall",      "capacity_oscillation", "faa_starvation",
    "borrow_storm",          "trace_truncation",     "lease_churn",
    "recovered",
};

constexpr std::string_view kSeverityNames[] = {"info", "warning", "critical"};

/// Minimal JSON string escaping — cause strings are ASCII diagnostics, but
/// a quote or backslash in one must not corrupt the line format.
void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
}

}  // namespace

std::string_view ToString(AlertKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < std::size(kKindNames) ? kKindNames[index] : "unknown";
}

std::string_view ToString(AlertSeverity severity) {
  const auto index = static_cast<std::size_t>(severity);
  return index < std::size(kSeverityNames) ? kSeverityNames[index]
                                           : "unknown";
}

std::string ToJsonl(const Alert& alert) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"time_ns\":%lld,\"period\":%u,\"kind\":\"%s\","
                "\"severity\":\"%s\",\"client\":%lld,\"expected\":%lld,"
                "\"observed\":%lld,\"cause\":\"",
                static_cast<long long>(alert.time), alert.period,
                std::string(ToString(alert.kind)).c_str(),
                std::string(ToString(alert.severity)).c_str(),
                static_cast<long long>(alert.client),
                static_cast<long long>(alert.expected),
                static_cast<long long>(alert.observed));
  std::string out = head;
  AppendEscaped(out, alert.cause);
  out += "\"}";
  return out;
}

RingAlertSink::RingAlertSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingAlertSink::OnAlert(const Alert& alert) {
  if (alerts_.size() == capacity_) {
    alerts_.pop_front();
    ++dropped_;
  }
  alerts_.push_back(alert);
  ++total_;
}

JsonlAlertSink::JsonlAlertSink(std::string path) : path_(std::move(path)) {}

void JsonlAlertSink::OnAlert(const Alert& alert) {
  buffer_ += ToJsonl(alert);
  buffer_ += '\n';
  ++count_;
}

Status JsonlAlertSink::Flush() {
  if (path_.empty()) return Status::Ok();
  std::FILE* file = std::fopen(path_.c_str(), "wb");
  if (file == nullptr) {
    return ErrInvalidArgument("cannot open alerts file: " + path_);
  }
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file);
  const int closed = std::fclose(file);
  if (written != buffer_.size() || closed != 0) {
    return ErrInternal("short write to alerts file: " + path_);
  }
  return Status::Ok();
}

}  // namespace haechi::obs
