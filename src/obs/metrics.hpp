// Metrics registry: named counters, gauges and log-bucketed histograms
// with per-period snapshots, unified with src/stats (histograms are
// stats::Histogram, exports go through stats::CsvWriter).
//
// Counters are monotonically increasing int64s; gauges are last-write-wins
// doubles; histograms log-bucket int64 samples. A snapshot captures every
// registered metric at a QoS-period boundary, so the registry yields the
// same per-period trajectory the paper's figures are drawn from, for any
// metric, without bespoke plumbing per experiment.
//
// Names are stable identifiers ("engine.faa_ops", "monitor.pool.initial");
// registration is idempotent — Counter("x") returns the same cell every
// call. Deterministic iteration (std::map) keeps CSV exports byte-stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/csv.hpp"
#include "stats/histogram.hpp"

namespace haechi::obs {

class MetricsRegistry {
 public:
  /// Returns the counter cell for `name`, creating it at zero.
  std::int64_t& Counter(const std::string& name);
  /// Returns the gauge cell for `name`, creating it at zero.
  double& Gauge(const std::string& name);
  /// Returns the histogram for `name`, creating it empty.
  stats::Histogram& Histogram(const std::string& name);

  void Add(const std::string& name, std::int64_t delta) {
    Counter(name) += delta;
  }
  void Set(const std::string& name, double value) { Gauge(name) = value; }
  void Record(const std::string& name, std::int64_t sample) {
    Histogram(name).Record(sample);
  }

  [[nodiscard]] std::int64_t CounterValue(const std::string& name) const;
  [[nodiscard]] double GaugeValue(const std::string& name) const;
  [[nodiscard]] bool Has(const std::string& name) const;

  /// One metric's state at a period boundary.
  struct SnapshotRow {
    std::uint32_t period = 0;
    std::string name;
    std::string kind;          // "counter" | "gauge" | "histogram_p50" ...
    double value = 0.0;        // cumulative value at the boundary
    double delta = 0.0;        // change since the previous snapshot
  };

  /// Captures all counters/gauges (cumulative + delta since the previous
  /// snapshot) and histogram quantiles, tagged with `period`.
  void SnapshotPeriod(std::uint32_t period);

  /// Snapshots only the histograms whose name starts with `prefix`, with
  /// the full quantile ladder (count/p50/p95/p99/p999/max). Used for the
  /// per-period span-stage distributions, which are assembled after the
  /// run and replayed period by period — SnapshotPeriod's row kinds stay
  /// untouched so existing golden CSVs remain byte-stable.
  void SnapshotHistograms(std::uint32_t period, const std::string& prefix);

  [[nodiscard]] const std::vector<SnapshotRow>& snapshots() const {
    return snapshots_;
  }

  /// Long-format CSV: period,name,kind,value,delta — one row per metric per
  /// snapshot.
  [[nodiscard]] stats::CsvWriter ToCsv() const;

  /// Prometheus text exposition (one sample per snapshot row): metric names
  /// sanitized to [a-zA-Z0-9_] with a `haechi_` prefix, the QoS period as a
  /// `period` label, histogram quantiles flattened into per-kind series.
  /// Deterministic for byte-stable golden files, like ToCsv().
  [[nodiscard]] std::string ToPrometheus() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, stats::Histogram> histograms_;
  std::map<std::string, double> last_snapshot_;  // per metric cumulative
  std::vector<SnapshotRow> snapshots_;
};

}  // namespace haechi::obs
