// Online QoS conformance watchdog: streaming SLO evaluation over the
// flight-recorder event stream.
//
// The offline auditor (obs/audit.hpp) replays an exported trace after the
// run; the watchdog consumes the *same* event stream while the run is in
// flight — installed as the Recorder's tap, it sees every event the moment
// it is emitted and settles each QoS period's verdicts at the period-end
// boundary, when the monitor has already published that period's
// calibration reports. Rules (DESIGN.md §10):
//
//   W1 reservation shortfall   completed < f * min(R, demand) for an
//                              admitted, demanding, alive client in a
//                              fully-measured reporting period — the
//                              streaming form of the auditor's A9, with the
//                              same crash-window padding and departure
//                              exclusions, so online and offline verdicts
//                              agree on the same trace.
//   W2 limit overshoot         a limited client completed more than its
//                              admitted limit in one period.
//   W3 pool conservation       dispatch identity (A2), pool monotonicity
//                              between monitor writes (A3), the conversion
//                              time budget (A4), and a live cross-check of
//                              the monitor's own granted ledger against the
//                              stream-derived grant total.
//   W4 conversion stall        every conversion this period wrote
//                              xi_global = 0 while clients surrendered at
//                              least one FAA batch of reservation tokens to
//                              decay and some engine found the pool empty.
//   W5 capacity oscillation    Algorithm 1's estimate alternated direction
//                              for `oscillation_flips` consecutive periods
//                              with relative amplitude above the threshold.
//   W6 FAA starvation          an engine's FAA retry backoff saturated at
//                              faa_retry_backoff_max within one period.
//   W7 borrow storm            the cluster coordinator issued at least
//                              `borrow_storm_requests` cross-server borrow
//                              requests within one period — a node is
//                              chronically dry and thrashing against its
//                              peers instead of rebalancing reservations.
//
// Cluster traces (harness kClusterConfig) demote the watchdog to node 0's
// pool plus the cluster control plane: monitor streams from other nodes
// are ignored (one pool state machine), engine distress signals only count
// for engines bound to node 0, and W1/W2 are left to the offline auditor —
// per-node calibration reports cannot be judged against cluster-wide specs
// without the auditor's cross-node summation.
//
// Injected faults annotate instead of false-alarming: fabric fault and
// client-crash events downgrade W4/W6 to info severity with a cause naming
// the fault, and W1 applies exactly the auditor's crash exclusions.
//
// Determinism: verdicts are a pure function of the event stream, and the
// live tap sees the same per-actor streams an exported trace carries — so
// same seed => byte-identical alert JSONL, and ReplayTrace() (the same
// OnEvent code path fed from a parsed export) reproduces the online alert
// set offline.
//
// Cost: nothing when HAECHI_WATCHDOG=OFF (no tap is installed and the
// harness wiring compiles out — the HAECHI_TRACE elision discipline);
// when on but not requested, no watchdog exists and Recorder::Emit pays
// only its existing tap-null check.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/trace.hpp"

// The watchdog rides the trace stream: compiling out tracing starves it,
// so the default follows HAECHI_TRACE_ENABLED. CMake's HAECHI_WATCHDOG
// option pins it explicitly (OFF forces 0 even with tracing on).
#ifndef HAECHI_WATCHDOG_ENABLED
#define HAECHI_WATCHDOG_ENABLED HAECHI_TRACE_ENABLED
#endif

namespace haechi::obs {

struct WatchdogOptions {
  /// W1 bar: completed >= f * min(reservation, demand) per measured
  /// reporting period. Matches AuditOptions::guarantee_fraction so the
  /// agreement test can run both at the same bar.
  double guarantee_fraction = 0.95;
  /// W5 trigger: this many consecutive sign-alternating estimate deltas...
  int oscillation_flips = 4;
  /// ...each at least this fraction of the previous estimate. Algorithm
  /// 1's eta probe (~3%) must stay below it or steady-state Grow/Hold
  /// cycling would alarm.
  double oscillation_amplitude = 0.05;
  /// W4 floor on decay-surrendered tokens; 0 = one token batch.
  std::int64_t stall_min_idle_tokens = 0;
  /// W7 trigger: cross-server borrow requests in one period. The default
  /// tolerates a burst while the adaptive quota ramps (a request per
  /// borrow tick for a chunk of the period) but flags a node that stays
  /// dry through a whole period's worth of ticks.
  std::int64_t borrow_storm_requests = 12;
};

/// One period's summary for the live status line (`--status-interval=N`).
struct PeriodStatus {
  std::uint32_t period = 0;
  std::int64_t capacity = 0;
  std::int64_t end_pool = 0;
  std::int64_t completed = 0;
  /// (client, attainment %) of min(R, demand), demanding clients only.
  std::vector<std::pair<std::uint32_t, int>> attainment;
  /// (shard, last sampled pool word) — sharded threaded runtime only
  /// (kShardSample events); empty on sim and single-shard traces.
  std::vector<std::pair<std::uint32_t, std::int64_t>> shard_pools;
  /// Cluster borrow flow this period: tokens moved by coordinator grants
  /// and repaid by borrowers. Zero outside cluster traces.
  std::int64_t borrow_granted = 0;
  std::int64_t borrow_repaid = 0;
  std::size_t period_alerts = 0;  // alerts raised for this period
  std::size_t total_alerts = 0;   // run total so far
};

/// One fixed-width status line ("p 12 pool 480/5000 att C0:100% ..."),
/// deterministic so it can be pinned in tests.
[[nodiscard]] std::string FormatStatusLine(const PeriodStatus& status);

class SloWatchdog {
 public:
  explicit SloWatchdog(WatchdogOptions options = {});

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Registers a sink (not owned). Every alert is fanned out to all sinks
  /// in registration order, after being appended to alerts().
  void AddSink(AlertSink* sink);

  /// Installs the live status callback, invoked after evaluating every
  /// `interval`-th period. The callback must not mutate simulation state.
  void SetStatusFn(std::function<void(const PeriodStatus&)> fn,
                   std::uint32_t interval);

  /// Feeds one event — the Recorder tap entry point, also used by
  /// ReplayTrace. Events must arrive in emission order per actor.
  void OnEvent(const TraceEvent& event);

  /// Live truncation notification (the harness wires this to
  /// Recorder::SetDropNotify): the ring wrapped, so any export of this run
  /// is incomplete. Raises one kTraceTruncation alert, shared one-shot
  /// with the replay-side seq-gap detection — a truncated run alerts once
  /// whether caught live or on replay.
  void NotifyTruncation(SimTime time);

  /// Ends the stream: flushes every sink, returning the first failure.
  /// Periods settle on their own end events, so no verdicts are pending
  /// here; the trailing open period is not judged (mirroring the auditor,
  /// which skips unclosed periods).
  Status Finish();

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  /// Alerts at a given severity or above.
  [[nodiscard]] std::size_t CountAtLeast(AlertSeverity severity) const;
  [[nodiscard]] std::size_t periods_evaluated() const {
    return periods_evaluated_;
  }
  [[nodiscard]] int guarantee_checks() const { return guarantee_checks_; }

 private:
  struct ClientState {
    std::int64_t spec_reservation = -1;
    std::int64_t spec_demand = -1;
    std::int64_t spec_limit = 0;
    // (time, reservation) per admit/readmit; limit of the newest admit.
    std::vector<std::pair<SimTime, std::int64_t>> admits;
    std::int64_t admitted_limit = -1;
    std::vector<SimTime> departures;  // releases + lease expiries
    std::int64_t lease_expiries = 0;  // cumulative, fuels kLeaseChurn
    // Scripted crash windows [crash, restart); restart == kTimeMax while
    // the client is still down.
    std::vector<std::pair<SimTime, SimTime>> crash_windows;

    [[nodiscard]] std::int64_t ReservationAt(SimTime t) const;
    [[nodiscard]] bool DepartedBy(SimTime t) const;
    [[nodiscard]] std::int64_t LimitAt() const {
      return admitted_limit >= 0 ? admitted_limit : spec_limit;
    }
  };

  struct PeriodState {
    std::uint32_t period = 0;
    SimTime start_time = 0;
    std::int64_t capacity = 0;
    std::int64_t dispatched = 0;
    std::int64_t initial_pool = 0;
    std::int64_t derived_granted = 0;  // pool drops between monitor writes
    std::int64_t end_pool = 0;
    std::int64_t completed = 0;
    bool reporting = false;  // S2 fired / Algorithm 1 ran
    // client -> (completed, residual) from the monitor's calibration.
    std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>> reports;
    std::int64_t decay_surrendered = 0;  // sum over engines, this period
    std::int64_t pool_empty_events = 0;
    std::int64_t borrow_requests = 0;  // W7: coordinator requests observed
    // Status-line telemetry: last witnessed per-shard pool words
    // (kShardSample) and the period's cluster borrow flow.
    std::map<std::uint32_t, std::int64_t> shard_pools;
    std::int64_t borrow_granted = 0;
    std::int64_t borrow_repaid = 0;
    // Net borrow movement this period (absorbed - lent): conversion
    // preserves loans, so the W3 time budget extends by the positive part.
    std::int64_t borrow_credit = 0;
    int conversions = 0;
    std::int64_t max_converted_pool = 0;
    std::set<std::uint32_t> faa_exhausted;  // clients whose backoff pinned
    bool faulted = false;  // fabric/crash fault observed this period
  };

  void Raise(Alert alert);
  /// Satellite of the truncation alert: per-(kind, actor) seq continuity.
  void CheckSeq(const TraceEvent& event);
  /// A3-style pool observation between monitor writes.
  void ObservePool(const TraceEvent& event, std::int64_t value);
  /// Settles every W-rule for the period that just closed.
  void EvaluatePeriod(const TraceEvent& end_event);
  void EmitStatus(const TraceEvent& end_event);
  [[nodiscard]] std::string FaultCause(const char* healthy_cause) const;

  WatchdogOptions options_;
  std::vector<AlertSink*> sinks_;
  std::vector<Alert> alerts_;
  std::function<void(const PeriodStatus&)> status_fn_;
  std::uint32_t status_interval_ = 0;

  // Run configuration gleaned from harness events (with the same
  // inference fallbacks the auditor uses).
  SimDuration period_len_ = 0;
  std::int64_t token_batch_ = 0;
  SimTime measure_start_ = -1;
  SimTime measure_end_ = -1;  // -1 until kMeasureEnd arrives
  bool have_harness_ = false;
  bool run_faulted_ = false;
  // Cluster traces: watch node 0's pool only and skip W1/W2 (see header).
  bool cluster_mode_ = false;
  std::map<std::uint32_t, std::uint32_t> engine_nodes_;  // engine -> node
  std::map<std::uint32_t, ClientState> clients_;

  PeriodState cur_;
  bool period_open_ = false;
  SimTime prev_period_start_ = -1;
  std::int64_t last_pool_ = 0;
  bool have_pool_ = false;

  // W5 state: Algorithm 1 estimate trajectory.
  std::int64_t last_estimate_ = -1;
  int last_delta_sign_ = 0;
  int flips_ = 0;

  // Truncation detection: last seq per (kind << 32 | actor) stream, plus
  // the one-shot latch shared by CheckSeq and NotifyTruncation.
  std::map<std::uint64_t, std::uint64_t> last_seq_;
  bool truncation_alerted_ = false;

  std::size_t periods_evaluated_ = 0;
  int guarantee_checks_ = 0;
};

/// Replays a complete exported stream through a fresh watchdog — the same
/// OnEvent path the live tap drives — and returns the alerts. This is how
/// the online/offline agreement test pins the two witnesses together.
[[nodiscard]] std::vector<Alert> ReplayTrace(
    const std::vector<TraceEvent>& events, const WatchdogOptions& options = {});

}  // namespace haechi::obs
