// Per-IO span assembly: turns the flight recorder's causal detail events
// (kIoQueued -> kIoIssue -> kIoComplete, correlated by io_id) plus the
// engine's token-path events into per-IO latency spans broken down by
// pipeline stage. This is the measurement layer for the paper's central
// claim — that token fetch (FAA retries), conversion waits, and queueing
// at the client dominate one-sided I/O tail latency — so each stage of
// the span maps to one mechanism in §II:
//
//   admit        Submit() -> engine queue. Admission is synchronous in both
//                runtimes, so this stage is 0 ns today; it is kept so the
//                pipeline structure is stable when an async admission path
//                appears (and so sim and threads traces always agree on
//                stage *structure*, an acceptance property of the audit).
//   token_fetch  time the engine spent with a FAA in flight (including
//                failed posts and backoff retries, step T4) while this I/O
//                sat queued.
//   convert_wait time the engine spent parked on an empty pool — waiting
//                for the monitor's conversion (xi_global, step T2') to
//                refill it — while this I/O sat queued.
//   queue        residual queued time not attributed to fetch/convert:
//                head-of-line wait behind earlier I/Os, the period-end
//                fetch guard, and L_i throttling.
//   nic_service  issue -> completion at the backend (the one-sided data
//                op itself).
//
// Attribution is O(1) per event: the assembler keeps, per engine, running
// cumulative totals of "fetch open" and "wait open" interval time, snapshots
// them when an I/O is queued, and differences them when it issues. Overlap
// queries are never needed because the engine has at most one FAA in flight
// and the fetch/wait states are engine-global, not per-IO.
//
// Everything here compiles out under HAECHI_TRACE=OFF: the notrace build
// keeps only the type declarations (POD structs a caller may mention) and
// an inline stub AssembleSpans that returns empty — no assembler object
// code exists (bench_overhead's static_assert proves it).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace haechi::obs {

/// Pipeline stage of a per-IO span. Order is presentation order.
enum class SpanStage : std::uint8_t {
  kAdmit = 0,
  kTokenFetch,
  kConvertWait,
  kQueue,
  kNicService,
};
inline constexpr std::size_t kSpanStages = 5;

/// Stable stage name ("admit", "token_fetch", ...) used by the profile
/// table, the Prometheus writer, and the Perfetto span exporter. Inline so
/// it exists in notrace builds (error paths may still name stages).
[[nodiscard]] inline std::string_view ToString(SpanStage stage) {
  switch (stage) {
    case SpanStage::kAdmit: return "admit";
    case SpanStage::kTokenFetch: return "token_fetch";
    case SpanStage::kConvertWait: return "convert_wait";
    case SpanStage::kQueue: return "queue";
    case SpanStage::kNicService: return "nic_service";
  }
  return "unknown";
}

/// One assembled per-IO span. POD so same-seed runs produce byte-identical
/// span streams.
struct IoSpan {
  std::uint32_t engine = 0;       // engine trace actor
  std::uint32_t period = 0;       // period the I/O was queued in
  std::uint64_t io_id = 0;        // dense per engine from 0
  std::int64_t token_source = 0;  // 0=reservation 1=pool (kIoIssue.b)
  SimTime queued_at = 0;
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  SimDuration stage_ns[kSpanStages] = {};

  [[nodiscard]] SimDuration Total() const {
    SimDuration total = 0;
    for (const SimDuration d : stage_ns) total += d;
    return total;
  }
};

/// Assembly bookkeeping: how many spans were produced and what was left
/// over when the trace ended (truncated rings and engine stops surface
/// here instead of silently vanishing).
struct SpanAssemblyStats {
  std::uint64_t spans = 0;
  std::uint64_t dropped_unissued = 0;    // queued, never issued
  std::uint64_t dropped_uncompleted = 0; // issued, never completed
  std::uint64_t orphan_events = 0;       // issue/complete with no match
};

#if HAECHI_TRACE_ENABLED

inline constexpr bool kSpanAssemblyCompiled = true;

/// Streaming span assembler. Feed it trace events in merged (time-ordered)
/// order — Recorder::Merged() or a parsed CSV trace — then Finish().
/// Deterministic: the output is sorted by (engine, io_id), so two runs of
/// the same seed produce byte-identical span streams.
class SpanAssembler {
 public:
  void OnEvent(const TraceEvent& event);

  /// Flushes leftovers into the drop counters and returns all assembled
  /// spans sorted by (engine, io_id). The assembler is spent afterwards.
  [[nodiscard]] std::vector<IoSpan> Finish();

  [[nodiscard]] const SpanAssemblyStats& stats() const { return stats_; }

 private:
  struct PendingIo {
    std::uint64_t io_id = 0;
    std::uint32_t period = 0;
    SimTime queued_at = 0;
    SimDuration fetch0 = 0;  // cumulative fetch time at queue
    SimDuration wait0 = 0;   // cumulative wait time at queue
  };

  struct EngineState {
    // Cumulative interval accumulators. `*_open` holds the interval start
    // while one is open, -1 otherwise; Cum*(t) extends an open interval
    // to t without closing it.
    SimDuration fetch_cum = 0;
    SimTime fetch_open = -1;
    SimDuration wait_cum = 0;
    SimTime wait_open = -1;
    std::deque<PendingIo> pending;             // queued, not yet issued
    std::map<std::uint64_t, IoSpan> inflight;  // issued, not yet completed

    [[nodiscard]] SimDuration CumFetch(SimTime t) const {
      return fetch_cum + (fetch_open >= 0 ? t - fetch_open : 0);
    }
    [[nodiscard]] SimDuration CumWait(SimTime t) const {
      return wait_cum + (wait_open >= 0 ? t - wait_open : 0);
    }
    void OpenFetch(SimTime t) {
      if (fetch_open < 0) fetch_open = t;
    }
    void CloseFetch(SimTime t) {
      if (fetch_open >= 0) {
        fetch_cum += t - fetch_open;
        fetch_open = -1;
      }
    }
    void OpenWait(SimTime t) {
      if (wait_open < 0) wait_open = t;
    }
    void CloseWait(SimTime t) {
      if (wait_open >= 0) {
        wait_cum += t - wait_open;
        wait_open = -1;
      }
    }
  };

  void DropLeftovers(EngineState& state);

  std::map<std::uint32_t, EngineState> engines_;
  std::vector<IoSpan> done_;
  SpanAssemblyStats stats_;
};

/// One-call convenience: assemble all spans from a merged event stream.
[[nodiscard]] std::vector<IoSpan> AssembleSpans(
    const std::vector<TraceEvent>& events, SpanAssemblyStats* stats = nullptr);

#else  // !HAECHI_TRACE_ENABLED

inline constexpr bool kSpanAssemblyCompiled = false;

// Notrace stub: callers compile, assembly elides to an empty result.
[[nodiscard]] inline std::vector<IoSpan> AssembleSpans(
    const std::vector<TraceEvent>&, SpanAssemblyStats* stats = nullptr) {
  if (stats != nullptr) *stats = SpanAssemblyStats{};
  return {};
}

#endif  // HAECHI_TRACE_ENABLED

}  // namespace haechi::obs
