#include "kvstore/server.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace haechi::kvstore {

namespace {

std::uint64_t LoadVersion(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreVersion(std::byte* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

KvServer::KvServer(rdma::Node& node, const Config& config)
    : node_(node), config_(config) {
  HAECHI_EXPECTS(config.record_count > 0);
  HAECHI_EXPECTS(config.payload_bytes > 0);
  const std::size_t stride = RecordStride(config.payload_bytes);
  region_.resize(config.record_count * stride);
  mr_ = &node_.pd().Register(
      std::span<std::byte>(region_),
      rdma::access::kLocalRead | rdma::access::kLocalWrite |
          rdma::access::kRemoteRead | rdma::access::kRemoteWrite);
  view_.data_base = mr_->remote_addr();
  view_.data_rkey = mr_->rkey();
  view_.record_count = config.record_count;
  view_.payload_bytes = config.payload_bytes;
}

std::byte* KvServer::RecordPtr(std::uint64_t key) {
  HAECHI_EXPECTS(key < config_.record_count);
  return region_.data() + key * view_.stride();
}

const std::byte* KvServer::RecordPtr(std::uint64_t key) const {
  HAECHI_EXPECTS(key < config_.record_count);
  return region_.data() + key * view_.stride();
}

Status KvServer::Put(std::uint64_t key, std::span<const std::byte> value) {
  if (key >= config_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  if (value.size() != config_.payload_bytes) {
    return ErrInvalidArgument("payload must be exactly record-sized");
  }
  std::byte* head = RecordPtr(key);
  std::byte* payload = head + kVersionBytes;
  std::byte* tail = payload + config_.payload_bytes;
  // Seqlock write protocol: head goes odd, payload mutates, tail then head
  // reach the new even version. A one-sided reader that snapshots any
  // intermediate state sees head != tail or an odd version and retries.
  const std::uint64_t v = LoadVersion(head);
  HAECHI_ASSERT(v % 2 == 0);
  StoreVersion(head, v + 1);
  std::memcpy(payload, value.data(), value.size());
  StoreVersion(tail, v + 2);
  StoreVersion(head, v + 2);
  return Status::Ok();
}

Result<std::vector<std::byte>> KvServer::Get(std::uint64_t key) const {
  if (key >= config_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  const std::byte* payload = RecordPtr(key) + kVersionBytes;
  return std::vector<std::byte>(payload, payload + config_.payload_bytes);
}

std::byte KvServer::PatternByte(std::uint64_t key, std::size_t offset) {
  return static_cast<std::byte>((key * 131 + offset * 7 + 17) & 0xff);
}

void KvServer::PopulateDeterministic() {
  std::vector<std::byte> value(config_.payload_bytes);
  for (std::uint64_t key = 0; key < config_.record_count; ++key) {
    for (std::size_t i = 0; i < value.size(); ++i) {
      value[i] = PatternByte(key, i);
    }
    const Status s = Put(key, value);
    HAECHI_ASSERT(s.ok());
  }
}

void KvServer::BindRpcEndpoint(rdma::QueuePair& qp) {
  auto endpoint = std::make_unique<RpcEndpoint>();
  endpoint->qp = &qp;
  const std::size_t recv_bytes =
      sizeof(RpcRequest) + config_.payload_bytes;  // PUTs carry a payload
  endpoint->recv_buffers.resize(config_.rpc_recv_depth);
  for (std::size_t i = 0; i < config_.rpc_recv_depth; ++i) {
    endpoint->recv_buffers[i].resize(recv_bytes);
    const Status s = qp.PostRecv(i, std::span<std::byte>(
                                        endpoint->recv_buffers[i]));
    HAECHI_ASSERT(s.ok());
  }
  endpoint->reply_buffer.resize(sizeof(RpcReply) + config_.payload_bytes);
  RpcEndpoint* raw = endpoint.get();
  qp.recv_cq().SetNotify([this, raw](const rdma::WorkCompletion& wc) {
    HandleRpc(*raw, wc);
  });
  // Drain reply-send completions so the send CQ never grows unbounded.
  qp.send_cq().SetNotify([](const rdma::WorkCompletion& wc) {
    if (!wc.ok()) {
      HAECHI_LOG_WARN("kvserver: reply completion error: %s",
                      std::string(rdma::ToString(wc.status)).c_str());
    }
  });
  endpoints_.push_back(std::move(endpoint));
}

void KvServer::HandleRpc(RpcEndpoint& endpoint,
                         const rdma::WorkCompletion& wc) {
  HAECHI_ASSERT(wc.opcode == rdma::Opcode::kRecv);
  HAECHI_ASSERT(wc.wr_id < endpoint.recv_buffers.size());
  auto& buffer = endpoint.recv_buffers[wc.wr_id];
  RpcRequest request;
  HAECHI_ASSERT(wc.byte_len >= sizeof(request));
  std::memcpy(&request, buffer.data(), sizeof(request));
  std::vector<std::byte> put_payload;
  if (request.op == RpcOp::kPut && request.payload_bytes > 0) {
    // The length field comes off the wire: clamp it to the bytes actually
    // received before touching the buffer (Put() re-validates the size
    // against the record layout afterwards).
    const std::size_t claimed = request.payload_bytes;
    const std::size_t received = wc.byte_len - sizeof(request);
    const std::size_t take = std::min(claimed, received);
    put_payload.assign(buffer.begin() + sizeof(request),
                       buffer.begin() + sizeof(request) +
                           static_cast<std::ptrdiff_t>(take));
  }
  // The buffer's contents are copied out; re-post it right away so the
  // endpoint never runs dry.
  const Status repost =
      endpoint.qp->PostRecv(wc.wr_id, std::span<std::byte>(buffer));
  HAECHI_ASSERT(repost.ok());

  // Charge the data node's CPU for the request, fair-shared per endpoint —
  // this is the two-sided bottleneck the paper measures in Experiment 1B.
  const SimDuration service = node_.fabric().params().ScaledService(
      node_.fabric().params().server_rpc_service);
  node_.cpu().Submit(
      endpoint.qp->id(), service,
      [this, &endpoint, request, payload = std::move(put_payload)] {
        ++rpcs_served_;
        RpcReply reply{};
        reply.key = request.key;
        std::size_t reply_len = sizeof(RpcReply);
        switch (request.op) {
          case RpcOp::kGet: {
            if (request.key >= config_.record_count) {
              reply.status = RpcStatus::kNotFound;
              break;
            }
            reply.status = RpcStatus::kOk;
            reply.payload_bytes = config_.payload_bytes;
            const std::byte* record =
                RecordPtr(request.key) + kVersionBytes;
            std::memcpy(endpoint.reply_buffer.data() + sizeof(RpcReply),
                        record, config_.payload_bytes);
            reply_len += config_.payload_bytes;
            break;
          }
          case RpcOp::kPut: {
            const Status s = Put(request.key, payload);
            reply.status = s.ok() ? RpcStatus::kOk
                                  : (s.code() == StatusCode::kNotFound
                                         ? RpcStatus::kNotFound
                                         : RpcStatus::kBadRequest);
            break;
          }
          default:
            reply.status = RpcStatus::kBadRequest;
        }
        std::memcpy(endpoint.reply_buffer.data(), &reply, sizeof(reply));
        const Status s = endpoint.qp->PostSend(
            /*wr_id=*/0,
            std::span<const std::byte>(endpoint.reply_buffer.data(),
                                       reply_len));
        if (!s.ok()) {
          HAECHI_LOG_WARN("kvserver: reply send failed: %s",
                          s.ToString().c_str());
        }
      });
}

}  // namespace haechi::kvstore
