// Client-side access paths to the key-value store.
//
// GetOneSided is the silent path Haechi regulates: one RDMA READ straight
// into a registered local buffer, seqlock-validated, with bounded retries
// on torn reads. GetRpc is the two-sided baseline. PutOneSided writes a
// whole record frame (single WRITE; applied atomically at the responder's
// DMA instant in the simulated fabric).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "kvstore/layout.hpp"
#include "rdma/fabric.hpp"

namespace haechi::kvstore {

class KvClient {
 public:
  struct Config {
    /// Local READ-buffer slots; bounds concurrently outstanding GETs.
    std::size_t max_outstanding = 256;
    /// Re-reads attempted when a one-sided GET observes a torn record.
    std::size_t read_retry_limit = 3;
    /// Verify payload bytes against KvServer::PatternByte (tests only).
    bool validate_payload = false;
  };

  /// Result of a completed GET/PUT. `data` points into the client's buffer
  /// pool and is valid only during the callback.
  struct Completion {
    Status status = Status::Ok();
    std::span<const std::byte> data;
    std::uint32_t retries = 0;
  };
  using DoneFn = std::function<void(const Completion&)>;

  /// `data_qp` must be connected to a QP on the store's node.
  KvClient(rdma::Node& node, rdma::QueuePair& data_qp, StoreView view,
           const Config& config);

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// One-sided GET; `done` fires at the simulated completion instant.
  /// When the fabric copies payloads, each outstanding GET owns a buffer
  /// slot and the call fails fast with kResourceExhausted once the pool is
  /// exhausted. With copying disabled (timing-only experiments), GETs
  /// share one slot and the only depth limit is the QP's send queue.
  Status GetOneSided(std::uint64_t key, DoneFn done);

  /// One-sided PUT of a full record payload.
  Status PutOneSided(std::uint64_t key, std::span<const std::byte> value,
                     DoneFn done);

  /// Attaches the client side of a two-sided RPC channel.
  void BindRpcQp(rdma::QueuePair& qp);

  /// Two-sided GET via the RPC channel (BindRpcQp first).
  Status GetRpc(std::uint64_t key, DoneFn done);

  /// Two-sided PUT of a full record payload via the RPC channel.
  Status PutRpc(std::uint64_t key, std::span<const std::byte> value,
                DoneFn done);

  [[nodiscard]] const StoreView& view() const { return view_; }
  [[nodiscard]] std::size_t OutstandingOneSided() const { return ops_.size(); }
  [[nodiscard]] std::uint64_t TornReadRetries() const { return torn_retries_; }
  [[nodiscard]] std::uint64_t OpsCompleted() const { return completed_; }

 private:
  struct PendingOp {
    std::uint64_t key;
    std::size_t slot;
    rdma::Opcode opcode;
    std::uint32_t attempts;
    bool owns_slot;
    DoneFn done;
  };
  struct PendingRpc {
    std::uint64_t key;
    DoneFn done;
  };

  [[nodiscard]] std::span<std::byte> SlotSpan(std::size_t slot);
  void OnDataCompletion(const rdma::WorkCompletion& wc);
  void OnRpcReply(const rdma::WorkCompletion& wc);
  void FinishOp(PendingOp op, const Completion& completion);
  Status PostGet(std::uint64_t key, std::size_t slot, std::uint32_t attempts,
                 bool owns_slot, DoneFn done);
  void ReleaseSlot(const PendingOp& op);

  rdma::Node& node_;
  rdma::QueuePair& data_qp_;
  StoreView view_;
  Config config_;
  std::vector<std::byte> pool_;
  const rdma::MemoryRegion* pool_mr_ = nullptr;
  std::vector<std::size_t> free_slots_;
  std::unordered_map<std::uint64_t, PendingOp> ops_;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t torn_retries_ = 0;
  std::uint64_t completed_ = 0;

  // RPC channel state.
  rdma::QueuePair* rpc_qp_ = nullptr;
  std::vector<std::vector<std::byte>> rpc_recv_buffers_;
  std::deque<PendingRpc> rpc_pending_;  // replies arrive in request order
  std::vector<std::byte> rpc_request_buffer_;
};

}  // namespace haechi::kvstore
