// The data node's key-value store.
//
// Holds the record region in registered memory so clients can GET with a
// single one-sided READ (the silent path Haechi regulates), and serves a
// classical two-sided RPC path (used for the paper's two-sided baseline in
// Experiments 1A/1B). RPC handling consumes the node's CPU station, which
// is what makes two-sided throughput CPU-bound as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "kvstore/layout.hpp"
#include "rdma/fabric.hpp"

namespace haechi::kvstore {

class KvServer {
 public:
  struct Config {
    std::uint64_t record_count = 65536;
    std::uint32_t payload_bytes = 4096;
    /// RECV buffers kept posted per RPC queue pair.
    std::size_t rpc_recv_depth = 256;
  };

  /// Allocates and registers the record region on `node`.
  KvServer(rdma::Node& node, const Config& config);

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Remote-addressing view handed to clients at connection time.
  [[nodiscard]] StoreView view() const { return view_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] rdma::Node& node() { return node_; }

  /// Local (server-side) write: seqlock-framed, visible to concurrent
  /// one-sided readers as either the old or the new value, never torn.
  Status Put(std::uint64_t key, std::span<const std::byte> value);

  /// Local read of the current payload (for verification in tests).
  [[nodiscard]] Result<std::vector<std::byte>> Get(std::uint64_t key) const;

  /// Fills every record with a deterministic per-key pattern; tests verify
  /// one-sided GETs against the same pattern.
  void PopulateDeterministic();

  /// Returns the deterministic fill byte for (key, offset) used by
  /// PopulateDeterministic, so clients can validate without a copy.
  static std::byte PatternByte(std::uint64_t key, std::size_t offset);

  /// Attaches a server-side RPC endpoint: posts receive buffers on `qp` and
  /// serves GET/PUT requests arriving on it, charging the node CPU per
  /// request. The QP must already be connected to the client's QP.
  void BindRpcEndpoint(rdma::QueuePair& qp);

  /// RPCs served since construction (all endpoints).
  [[nodiscard]] std::uint64_t RpcsServed() const { return rpcs_served_; }

 private:
  struct RpcEndpoint {
    rdma::QueuePair* qp;
    std::vector<std::vector<std::byte>> recv_buffers;
    std::vector<std::byte> reply_buffer;
  };

  [[nodiscard]] std::byte* RecordPtr(std::uint64_t key);
  [[nodiscard]] const std::byte* RecordPtr(std::uint64_t key) const;

  void HandleRpc(RpcEndpoint& endpoint, const rdma::WorkCompletion& wc);

  rdma::Node& node_;
  Config config_;
  std::vector<std::byte> region_;
  const rdma::MemoryRegion* mr_ = nullptr;
  StoreView view_;
  std::vector<std::unique_ptr<RpcEndpoint>> endpoints_;
  std::uint64_t rpcs_served_ = 0;
};

}  // namespace haechi::kvstore
