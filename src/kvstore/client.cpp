#include "kvstore/client.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "kvstore/server.hpp"

namespace haechi::kvstore {

namespace {

std::uint64_t LoadU64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

KvClient::KvClient(rdma::Node& node, rdma::QueuePair& data_qp, StoreView view,
                   const Config& config)
    : node_(node), data_qp_(data_qp), view_(view), config_(config) {
  HAECHI_EXPECTS(config.max_outstanding > 0);
  pool_.resize(config.max_outstanding * view_.stride());
  pool_mr_ = &node_.pd().Register(
      std::span<std::byte>(pool_),
      rdma::access::kLocalRead | rdma::access::kLocalWrite);
  free_slots_.reserve(config.max_outstanding);
  for (std::size_t i = config.max_outstanding; i > 0; --i) {
    free_slots_.push_back(i - 1);
  }
  data_qp_.send_cq().SetNotify(
      [this](const rdma::WorkCompletion& wc) { OnDataCompletion(wc); });
}

std::span<std::byte> KvClient::SlotSpan(std::size_t slot) {
  return {pool_.data() + slot * view_.stride(), view_.stride()};
}

Status KvClient::PostGet(std::uint64_t key, std::size_t slot,
                         std::uint32_t attempts, bool owns_slot,
                         DoneFn done) {
  const std::uint64_t wr_id = next_wr_id_++;
  const Status s = data_qp_.PostRead(wr_id, SlotSpan(slot),
                                     view_.RecordAddr(key), view_.data_rkey);
  if (!s.ok()) {
    if (owns_slot) free_slots_.push_back(slot);
    return s;
  }
  ops_.emplace(wr_id, PendingOp{key, slot, rdma::Opcode::kRead, attempts,
                                owns_slot, std::move(done)});
  return Status::Ok();
}

void KvClient::ReleaseSlot(const PendingOp& op) {
  if (op.owns_slot) free_slots_.push_back(op.slot);
}

Status KvClient::GetOneSided(std::uint64_t key, DoneFn done) {
  HAECHI_EXPECTS(done != nullptr);
  HAECHI_TRACE_DETAIL(obs::ActorKind::kKv, Raw(node_.id()),
                      obs::EventType::kKvIssue, 0, 0,
                      static_cast<std::int64_t>(key));
  if (key >= view_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  if (!node_.fabric().copy_payloads()) {
    // Timing-only mode: no bytes move, so all GETs share slot 0.
    return PostGet(key, 0, 1, /*owns_slot=*/false, std::move(done));
  }
  if (free_slots_.empty()) {
    return ErrResourceExhausted("no free GET slots");
  }
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  return PostGet(key, slot, 1, /*owns_slot=*/true, std::move(done));
}

Status KvClient::PutOneSided(std::uint64_t key,
                             std::span<const std::byte> value, DoneFn done) {
  HAECHI_EXPECTS(done != nullptr);
  HAECHI_TRACE_DETAIL(obs::ActorKind::kKv, Raw(node_.id()),
                      obs::EventType::kKvIssue, 0, 1,
                      static_cast<std::int64_t>(key));
  if (key >= view_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  if (value.size() != view_.payload_bytes) {
    return ErrInvalidArgument("payload must be exactly record-sized");
  }
  const bool pooled = node_.fabric().copy_payloads();
  std::size_t slot = 0;
  if (pooled) {
    if (free_slots_.empty()) {
      return ErrResourceExhausted("no free PUT slots");
    }
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  // Stage the full frame [version | payload | version] locally, then ship
  // it with one WRITE. The simulated DMA applies it atomically; version 0
  // keeps the frame trivially consistent for subsequent readers. (Multi-
  // writer ordering is out of scope, as in the paper's read evaluation.)
  // In timing-only mode (payload copying off) the frame bytes are never
  // read, so all PUTs share slot 0.
  auto frame = SlotSpan(slot);
  if (pooled) {
    std::memset(frame.data(), 0, kVersionBytes);
    std::memcpy(frame.data() + kVersionBytes, value.data(), value.size());
    std::memset(frame.data() + kVersionBytes + value.size(), 0,
                kVersionBytes);
  }
  const std::uint64_t wr_id = next_wr_id_++;
  const Status s = data_qp_.PostWrite(wr_id, frame, view_.RecordAddr(key),
                                      view_.data_rkey);
  if (!s.ok()) {
    if (pooled) free_slots_.push_back(slot);
    return s;
  }
  ops_.emplace(wr_id, PendingOp{key, slot, rdma::Opcode::kWrite, 1,
                                /*owns_slot=*/pooled, std::move(done)});
  return Status::Ok();
}

void KvClient::OnDataCompletion(const rdma::WorkCompletion& wc) {
  const auto it = ops_.find(wc.wr_id);
  HAECHI_ASSERT(it != ops_.end());
  PendingOp op = std::move(it->second);
  ops_.erase(it);
  const std::uint32_t attempts = op.attempts;

  if (!wc.ok()) {
    ReleaseSlot(op);
    FinishOp(std::move(op),
             Completion{ErrInternal(std::string("completion error: ") +
                                    std::string(rdma::ToString(wc.status))),
                        {}, attempts - 1});
    return;
  }

  if (op.opcode == rdma::Opcode::kWrite) {
    ReleaseSlot(op);
    FinishOp(std::move(op), Completion{Status::Ok(), {}, 0});
    return;
  }

  // One-sided GET: validate the seqlock frame (only meaningful when the
  // fabric actually moved bytes).
  auto frame = SlotSpan(op.slot);
  if (node_.fabric().copy_payloads()) {
    const std::uint64_t head = LoadU64(frame.data());
    const std::uint64_t tail =
        LoadU64(frame.data() + kVersionBytes + view_.payload_bytes);
    const bool torn = head != tail || head % 2 != 0;
    if (torn) {
      ++torn_retries_;
      if (op.attempts < config_.read_retry_limit) {
        const Status s = PostGet(op.key, op.slot, op.attempts + 1,
                                 op.owns_slot, std::move(op.done));
        if (s.ok()) return;
      }
      ReleaseSlot(op);
      FinishOp(std::move(op),
               Completion{ErrAborted("torn read after retries"), {},
                          attempts});
      return;
    }
    if (config_.validate_payload) {
      for (std::size_t i = 0; i < view_.payload_bytes; ++i) {
        if (frame[kVersionBytes + i] != KvServer::PatternByte(op.key, i)) {
          ReleaseSlot(op);
          FinishOp(std::move(op),
                   Completion{ErrInternal("payload mismatch"), {},
                              attempts - 1});
          return;
        }
      }
    }
  }
  const std::span<const std::byte> data{frame.data() + kVersionBytes,
                                        view_.payload_bytes};
  ReleaseSlot(op);
  FinishOp(std::move(op), Completion{Status::Ok(), data, attempts - 1});
}

void KvClient::FinishOp(PendingOp op, const Completion& completion) {
  ++completed_;
  HAECHI_TRACE_DETAIL(obs::ActorKind::kKv, Raw(node_.id()),
                      obs::EventType::kKvComplete, 0,
                      op.opcode == rdma::Opcode::kWrite ? 1 : 0,
                      static_cast<std::int64_t>(op.key),
                      static_cast<std::int64_t>(completion.status.code()));
  op.done(completion);
}

void KvClient::BindRpcQp(rdma::QueuePair& qp) {
  HAECHI_EXPECTS(rpc_qp_ == nullptr);
  rpc_qp_ = &qp;
  const std::size_t reply_bytes = sizeof(RpcReply) + view_.payload_bytes;
  rpc_recv_buffers_.resize(config_.max_outstanding);
  for (std::size_t i = 0; i < rpc_recv_buffers_.size(); ++i) {
    rpc_recv_buffers_[i].resize(reply_bytes);
    const Status s =
        qp.PostRecv(i, std::span<std::byte>(rpc_recv_buffers_[i]));
    HAECHI_ASSERT(s.ok());
  }
  rpc_request_buffer_.resize(sizeof(RpcRequest));
  qp.recv_cq().SetNotify(
      [this](const rdma::WorkCompletion& wc) { OnRpcReply(wc); });
  qp.send_cq().SetNotify([](const rdma::WorkCompletion&) {
    // Request-send completions carry no information for the client.
  });
}

Status KvClient::GetRpc(std::uint64_t key, DoneFn done) {
  HAECHI_EXPECTS(done != nullptr);
  if (rpc_qp_ == nullptr) {
    return ErrFailedPrecondition("RPC channel not bound");
  }
  if (key >= view_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  RpcRequest request{RpcOp::kGet, 0, key};
  std::memcpy(rpc_request_buffer_.data(), &request, sizeof(request));
  const Status s = rpc_qp_->PostSend(
      next_wr_id_++, std::span<const std::byte>(rpc_request_buffer_),
      rdma::ServiceClass::kRpcRequest);
  if (!s.ok()) return s;
  rpc_pending_.push_back(PendingRpc{key, std::move(done)});
  return Status::Ok();
}

Status KvClient::PutRpc(std::uint64_t key, std::span<const std::byte> value,
                        DoneFn done) {
  HAECHI_EXPECTS(done != nullptr);
  if (rpc_qp_ == nullptr) {
    return ErrFailedPrecondition("RPC channel not bound");
  }
  if (key >= view_.record_count) {
    return ErrNotFound("key " + std::to_string(key) + " out of range");
  }
  if (value.size() != view_.payload_bytes) {
    return ErrInvalidArgument("payload must be exactly record-sized");
  }
  RpcRequest request{RpcOp::kPut,
                     static_cast<std::uint32_t>(value.size()), key};
  // PUT requests carry the payload after the header; build the frame in a
  // scratch buffer sized on first use.
  const std::size_t frame_bytes = sizeof(request) + value.size();
  if (rpc_request_buffer_.size() < frame_bytes) {
    rpc_request_buffer_.resize(frame_bytes);
  }
  std::memcpy(rpc_request_buffer_.data(), &request, sizeof(request));
  std::memcpy(rpc_request_buffer_.data() + sizeof(request), value.data(),
              value.size());
  const Status s = rpc_qp_->PostSend(
      next_wr_id_++,
      std::span<const std::byte>(rpc_request_buffer_.data(), frame_bytes),
      rdma::ServiceClass::kRpcRequest);
  if (!s.ok()) return s;
  rpc_pending_.push_back(PendingRpc{key, std::move(done)});
  return Status::Ok();
}

void KvClient::OnRpcReply(const rdma::WorkCompletion& wc) {
  HAECHI_ASSERT(wc.opcode == rdma::Opcode::kRecv);
  HAECHI_ASSERT(!rpc_pending_.empty());
  PendingRpc pending = std::move(rpc_pending_.front());
  rpc_pending_.pop_front();

  auto& buffer = rpc_recv_buffers_[wc.wr_id];
  RpcReply reply;
  HAECHI_ASSERT(wc.byte_len >= sizeof(reply));
  std::memcpy(&reply, buffer.data(), sizeof(reply));
  HAECHI_ASSERT(reply.key == pending.key);

  Completion completion;
  if (reply.status == RpcStatus::kOk) {
    // Clamp the server-reported length to the received frame.
    const std::size_t payload = std::min<std::size_t>(
        reply.payload_bytes, buffer.size() - sizeof(RpcReply));
    completion.data = {buffer.data() + sizeof(RpcReply), payload};
  } else {
    completion.status = reply.status == RpcStatus::kNotFound
                            ? ErrNotFound("key not found")
                            : ErrInvalidArgument("bad RPC request");
  }
  ++completed_;
  pending.done(completion);

  // Re-post the consumed receive buffer.
  const Status s =
      rpc_qp_->PostRecv(wc.wr_id, std::span<std::byte>(buffer));
  HAECHI_ASSERT(s.ok());
}

}  // namespace haechi::kvstore
