// On-"disk" (in-memory) record layout and the RPC wire protocol of the
// key-value store.
//
// The store follows the silent-data-access design of Telepathy [Liu &
// Varman, IPDPSW'20], the substrate the paper deploys Haechi on: records
// live in a registered memory region at addresses computable from the key,
// so a GET is a single one-sided READ. Each record is framed by a seqlock
// version pair so readers detect torn reads under concurrent writes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rdma/verbs.hpp"

namespace haechi::kvstore {

/// Record frame: [head version][payload][tail version].
/// A consistent record has head == tail and an even version; writers bump
/// head (odd), mutate, then bump tail to match (even).
struct RecordHeader {
  std::uint64_t version;
};

inline constexpr std::size_t kVersionBytes = sizeof(std::uint64_t);

/// Stride of one record slot given the payload size.
constexpr std::size_t RecordStride(std::size_t payload_bytes) {
  return kVersionBytes + payload_bytes + kVersionBytes;
}

/// Everything a client needs to address the store remotely. Obtained from
/// the server out of band at connection setup (the paper's clients likewise
/// learn the region layout when they attach).
struct StoreView {
  rdma::RemoteAddr data_base = 0;
  std::uint32_t data_rkey = 0;
  std::uint64_t record_count = 0;
  std::uint32_t payload_bytes = 0;

  [[nodiscard]] std::size_t stride() const {
    return RecordStride(payload_bytes);
  }
  [[nodiscard]] rdma::RemoteAddr RecordAddr(std::uint64_t key) const {
    return data_base + key * stride();
  }
};

// --- two-sided RPC wire format ---------------------------------------------

enum class RpcOp : std::uint32_t { kGet = 1, kPut = 2 };

enum class RpcStatus : std::uint32_t { kOk = 0, kNotFound = 1, kBadRequest = 2 };

/// Fixed-size request header; PUT payload follows the header.
struct RpcRequest {
  RpcOp op;
  std::uint32_t payload_bytes;  // 0 for GET
  std::uint64_t key;
};

/// Fixed-size reply header; GET payload follows the header.
struct RpcReply {
  RpcStatus status;
  std::uint32_t payload_bytes;
  std::uint64_t key;
};

}  // namespace haechi::kvstore
