#include "runtime/threaded_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace haechi::runtime {

namespace {
using obs::ActorKind;
using obs::EventType;
}  // namespace

ThreadedEngine::ThreadedEngine(Clock& clock, obs::Recorder* recorder,
                               ClientId id, const core::QosConfig& config,
                               ThreadedFabric& fabric, std::size_t port,
                               std::size_t slot)
    : clock_(clock),
      recorder_(recorder),
      id_(id),
      config_(config),
      fabric_(fabric),
      port_(port),
      slot_(slot),
      shards_(fabric.shards()),
      home_shard_(slot % fabric.shards()),
      effective_batch_(config.token_batch *
                       std::max<std::int64_t>(config.fetch_batch, 1)) {
  token_timer_ = std::make_unique<PeriodicTimer>(
      clock_, config_.token_tick, [this] { TokenTick(); });
  report_timer_ = std::make_unique<PeriodicTimer>(
      clock_, config_.report_interval, [this] { ReportTick(); });
}

ThreadedEngine::~ThreadedEngine() { Stop(); }

void ThreadedEngine::EmitLocked(SimTime now, EventType type,
                                std::uint32_t period, std::int64_t a,
                                std::int64_t b, std::int64_t c) {
  if (recorder_ != nullptr) {
    recorder_->EmitAt(now, ActorKind::kEngine, Raw(id_), type, period, a, b,
                      c);
  }
}

void ThreadedEngine::DeliverPeriodStart(const core::PeriodStartMsg& msg) {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    const SimTime now = clock_.Now();
    ++stats_.periods_started;
    period_ = msg.period;
    EmitLocked(now, EventType::kEnginePeriodStart, period_,
               msg.reservation_tokens, msg.limit);
    // Fresh reservation tokens *replace* leftovers (reservation and
    // global) — tokens never carry across periods.
    xi_reservation_ = msg.reservation_tokens;
    decay_x_ = static_cast<double>(msg.reservation_tokens);
    decay_per_tick_ = static_cast<double>(msg.reservation_tokens) *
                      static_cast<double>(config_.token_tick) /
                      static_cast<double>(config_.period);
    local_global_ = 0;
    limit_ = msg.limit;
    stats_.completed_this_period = 0;
    stats_.issued_this_period = 0;
    pool_retry_until_ = 0;
    started_ = true;
    period_started_at_ = now;
    // Reporting stops until the monitor asks again this period.
    reporting_ = false;
    report_timer_->Stop();
    token_timer_->Start();
  }
  cv_.notify_all();
}

void ThreadedEngine::DeliverReportRequest() {
  // Duplicate requests (half-lease retransmissions) are idempotent: an
  // already-reporting engine keeps its cadence.
  std::lock_guard lk(mu_);
  if (stopped_ || !started_ || reporting_) return;
  reporting_ = true;
  WriteReportLocked(clock_.Now());  // first report goes out immediately
  report_timer_->Start();
}

void ThreadedEngine::DeliverOverReserveHint() {
  std::lock_guard lk(mu_);
  ++stats_.over_reserve_hints;
}

void ThreadedEngine::Stop() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    if (started_) {
      EmitLocked(clock_.Now(), EventType::kEngineStop, period_);
    }
    started_ = false;
    stopped_ = true;
    token_timer_->Stop();
    report_timer_->Stop();
  }
  cv_.notify_all();
}

void ThreadedEngine::TokenTick() {
  std::lock_guard lk(mu_);
  if (!started_ || stopped_) return;
  decay_x_ = std::max(0.0, decay_x_ - decay_per_tick_);
  const auto bound = static_cast<std::int64_t>(std::floor(decay_x_));
  // Insufficient demand: surrender reservation tokens above the backlog
  // bound X (reclaimed by the monitor's token conversion once reported).
  if (xi_reservation_ > bound) {
    EmitLocked(clock_.Now(), EventType::kTokenDecay, period_,
               xi_reservation_ - bound, bound);
    xi_reservation_ = bound;
  }
}

void ThreadedEngine::ReportTick() {
  std::lock_guard lk(mu_);
  if (!started_ || stopped_ || !reporting_) return;
  WriteReportLocked(clock_.Now());
}

void ThreadedEngine::WriteReportLocked(SimTime now) {
  // Residual = the client's outstanding *claim* on the rest of the period:
  // unconsumed reservation tokens, locally-held global tokens, and issued
  // but uncompleted I/Os (same claims accounting as the sim engine).
  const std::int64_t claims =
      xi_reservation_ + local_global_ + backend_outstanding_;
  const std::uint64_t packed = core::PackReport(
      period_, static_cast<std::uint64_t>(std::max<std::int64_t>(claims, 0)),
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(stats_.completed_this_period, 0)),
      report_seq_++);
  ++stats_.report_writes;
  EmitLocked(now, EventType::kReportWrite, period_,
             static_cast<std::int64_t>(core::ReportResidual(packed)),
             static_cast<std::int64_t>(core::ReportCompleted(packed)),
             static_cast<std::int64_t>(stats_.report_writes));
  // The seqlock write is a handful of stores; keeping it under the engine
  // mutex keeps this thread's slot writes in report order.
  fabric_.PostReportWrite(port_, slot_, packed);
}

std::int64_t ThreadedEngine::TakeLocalLocked(std::int64_t want) {
  std::int64_t granted = 0;
  std::int64_t from_reservation = 0;
  if (want > 0 && xi_reservation_ > 0) {
    const std::int64_t n = std::min(want, xi_reservation_);
    xi_reservation_ -= n;
    stats_.tokens_from_reservation += n;
    from_reservation = n;
    granted += n;
    want -= n;
  }
  if (want > 0 && local_global_ > 0) {
    const std::int64_t n = std::min(want, local_global_);
    local_global_ -= n;
    stats_.tokens_from_pool += n;
    granted += n;
  }
  if (granted > 0) {
    stats_.issued_this_period += granted;
    backend_outstanding_ += granted;
    if (recorder_ != nullptr && recorder_->detail()) {
      // Span triplet, threads flavour: grant and issue are the same instant
      // (workers pull tokens; there is no engine-side request queue), so
      // kIoQueued and kIoIssue share a timestamp. Sim and threads traces
      // then agree on stage *structure* while the client-side stages are
      // ~0 here and the real durations live in nic_service.
      const SimTime now = clock_.Now();
      for (std::int64_t k = 0; k < granted; ++k) {
        const std::uint64_t io_id = next_io_id_++;
        const std::int64_t source = k < from_reservation ? 0 : 1;
        EmitLocked(now, EventType::kIoQueued, period_,
                   static_cast<std::int64_t>(io_id), 0);
        EmitLocked(now, EventType::kIoIssue, period_,
                   static_cast<std::int64_t>(io_id), source, 0);
        outstanding_io_ids_.push_back(io_id);
        ++runtime_stats_.span_ios;
      }
    }
  }
  return granted;
}

void ThreadedEngine::FetchPoolRoundLocked(std::unique_lock<std::mutex>& lk) {
  // One batched remote FAA per shard, home shard first — the chain draws
  // effective_batch_ = token_batch * fetch_batch tokens per atomic, the
  // doorbell-batching cost model on a real NIC. The lock drops around each
  // FAA so the monitor's control deliveries never wait behind the fetch.
  const std::int64_t delta = effective_batch_;
  for (std::size_t probe = 0; probe < shards_; ++probe) {
    if (stopped_ || !started_) return;
    const std::size_t shard = (home_shard_ + probe) % shards_;
    ++stats_.faa_ops;
    EmitLocked(clock_.Now(), EventType::kTokenFetch, period_, delta,
               static_cast<std::int64_t>(shard));
    const std::uint32_t at_period = period_;
    lk.unlock();
    const std::int64_t before = fabric_.PostFetchAdd(port_, shard, -delta);
    lk.lock();
    const SimTime done = clock_.Now();
    if (stopped_) return;
    if (period_ != at_period) {
      // The pool was re-initialised for a new period while the fetch ran;
      // its tokens belong to the dead period and are discarded.
      EmitLocked(done, EventType::kTokenDiscard, at_period, before, 0, delta);
      return;
    }
    const std::int64_t acquired = std::clamp<std::int64_t>(before, 0, delta);
    local_global_ += acquired;
    EmitLocked(done, EventType::kTokenFetchDone, period_, before, acquired,
               delta);
    if (acquired > 0) {
      if (probe == 0) {
        ++runtime_stats_.faa_home_hits;
      } else {
        ++runtime_stats_.faa_steals;
      }
      return;
    }
    ++runtime_stats_.faa_dry_probes;
    EmitLocked(done, EventType::kPoolEmpty, period_, before,
               static_cast<std::int64_t>(shard));
  }
  // Every shard came up empty: step T4's retry cadence.
  pool_retry_until_ = clock_.Now() + config_.pool_retry_interval;
}

ThreadedEngine::Grant ThreadedEngine::AcquireToken(std::uint32_t p) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (stopped_) return Grant::kStopped;
    if (!started_ || period_ != p) return Grant::kPeriodOver;
    if (limit_ > 0 && stats_.issued_this_period >= limit_) {
      ++stats_.limit_throttle_events;
      ++waiters_;
      cv_.wait(lk);  // throttled until the next period's delivery
      --waiters_;
      continue;
    }
    if (backend_outstanding_ >=
        static_cast<std::int64_t>(config_.max_backend_outstanding)) {
      ++waiters_;
      cv_.wait(lk);
      --waiters_;
      continue;
    }
    if (TakeLocalLocked(1) > 0) return Grant::kToken;
    const SimTime now = clock_.Now();
    // No fetch near the period end: a batch grabbed while the monitor
    // rolls the period over would be discarded (faa_end_guard).
    if (now - period_started_at_ >= config_.period - config_.faa_end_guard) {
      ++waiters_;
      cv_.wait_for(lk, std::chrono::nanoseconds(config_.faa_end_guard));
      --waiters_;
      continue;
    }
    if (now < pool_retry_until_) {  // step T4 retry cadence
      ++waiters_;
      cv_.wait_for(lk, std::chrono::nanoseconds(pool_retry_until_ - now));
      --waiters_;
      continue;
    }
    FetchPoolRoundLocked(lk);
  }
}

ThreadedEngine::Batch ThreadedEngine::TryAcquireBatch(
    std::uint32_t p, std::int64_t max_tokens) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (stopped_) return {Grant::kStopped, 0};
    if (!started_ || period_ != p) return {Grant::kPeriodOver, 0};
    std::int64_t want = std::max<std::int64_t>(max_tokens, 0);
    if (limit_ > 0) {
      const std::int64_t left = limit_ - stats_.issued_this_period;
      if (left <= 0) {
        ++stats_.limit_throttle_events;
        return {Grant::kNotReady, 0};
      }
      want = std::min(want, left);
    }
    const std::int64_t backend_room =
        static_cast<std::int64_t>(config_.max_backend_outstanding) -
        backend_outstanding_;
    if (backend_room <= 0) return {Grant::kNotReady, 0};
    want = std::min(want, backend_room);
    if (want <= 0) return {Grant::kNotReady, 0};
    const std::int64_t granted = TakeLocalLocked(want);
    if (granted > 0) return {Grant::kToken, granted};
    const SimTime now = clock_.Now();
    if (now - period_started_at_ >= config_.period - config_.faa_end_guard) {
      return {Grant::kNotReady, 0};
    }
    if (now < pool_retry_until_) return {Grant::kNotReady, 0};
    FetchPoolRoundLocked(lk);
    // Loop: re-evaluate with whatever the round brought home (it may also
    // have observed a stop or a period roll).
  }
}

void ThreadedEngine::OnIoCompleted(std::int64_t n) {
  bool notify;
  {
    std::lock_guard lk(mu_);
    backend_outstanding_ -= n;
    stats_.completed_this_period += n;
    stats_.completed_total += n;
    if (!outstanding_io_ids_.empty() && recorder_ != nullptr &&
        recorder_->detail()) {
      // Close the n oldest spans (grants complete FIFO per engine).
      const SimTime now = clock_.Now();
      std::int64_t out = backend_outstanding_ + n;
      for (std::int64_t k = 0; k < n && !outstanding_io_ids_.empty(); ++k) {
        const std::uint64_t io_id = outstanding_io_ids_.front();
        outstanding_io_ids_.pop_front();
        EmitLocked(now, EventType::kIoComplete, period_,
                   static_cast<std::int64_t>(io_id), --out);
      }
    }
    notify = waiters_ > 0;
  }
  if (notify) cv_.notify_all();
}

std::uint32_t ThreadedEngine::AwaitPeriodAfter(std::uint32_t p) {
  std::unique_lock lk(mu_);
  ++waiters_;
  cv_.wait(lk, [&] { return stopped_ || (started_ && period_ > p); });
  --waiters_;
  return stopped_ ? 0 : period_;
}

bool ThreadedEngine::Stopped() const {
  std::lock_guard lk(mu_);
  return stopped_;
}

ThreadedEngine::Stats ThreadedEngine::StatsSnapshot() const {
  std::lock_guard lk(mu_);
  return stats_;
}

ThreadedEngine::RuntimeStats ThreadedEngine::RuntimeStatsSnapshot() const {
  std::lock_guard lk(mu_);
  return runtime_stats_;
}

std::uint32_t ThreadedEngine::CurrentPeriod() const {
  std::lock_guard lk(mu_);
  return period_;
}

}  // namespace haechi::runtime
