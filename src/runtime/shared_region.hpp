// The process-shared QoS memory region backing the threaded runtime.
//
// This is the data node's registered control block and record store,
// realised as genuinely shared memory instead of simulated MRs:
//
//   * the global token pool as 1..kMaxShards cache-line-aligned signed
//     64-bit words, FAA'd by client worker threads and CAS/exchanged by the
//     monitor. With one shard this is the paper's single contended word;
//     with K shards each client homes on shard (slot % K) and the monitor
//     keeps the QoS ledger exact on the shard *sum*, with the
//     acquire/release discipline the RDMA atomics provide on a real NIC;
//   * one seqlock'd report slot per client: the 8-byte packed report plus
//     the writer's timestamp, overwritten by silent client WRITEs and
//     primed/read by the monitor;
//   * a flat record area client reads copy 4 KB records out of.
//
// Everything here is std::atomic with explicit ordering (the seqlock
// payload uses relaxed atomics under the seq protocol), so the whole layout
// is ThreadSanitizer-clean and would drop onto a shm/mmap mapping or an
// RDMA-registered buffer unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace haechi::runtime {

/// One report slot guarded by a sequence lock.
///
/// Two writers can collide on a slot — the owning client's report WRITE and
/// the monitor's period-boundary prime — so the writer side *acquires* the
/// seqlock by CAS-ing the sequence word from even to odd (a tiny writer
/// lock; the loser spins for the tens-of-nanoseconds store). Readers retry
/// until they see the same even sequence on both sides of the payload copy.
class alignas(64) SeqlockSlot {
 public:
  struct Snapshot {
    std::uint64_t packed = 0;  // core::PackReport wire format
    SimTime written_at = 0;    // writer's clock at the write
  };

  void Write(std::uint64_t packed, SimTime written_at);
  [[nodiscard]] Snapshot Read() const;

  /// Writer-side CAS failures (the even->odd acquire lost to a concurrent
  /// writer and spun). A contention signal, not a correctness one: the two
  /// slot writers are the owning client and the monitor's boundary prime.
  [[nodiscard]] std::uint64_t WriteRetries() const {
    return write_retries_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
  // Payload fields are relaxed atomics purely so the seqlock's benign
  // read/write overlap is not a C++ data race; the seq protocol provides
  // the actual ordering. The alignas(64) on the class pads each slot to
  // its own cache line: adjacent clients' report WRITEs (every
  // report_interval, per client) must not false-share — see
  // bench_overhead's padded-vs-packed seqlock microbenchmark.
  std::atomic<std::uint64_t> packed_{0};
  std::atomic<SimTime> written_at_{0};
  std::atomic<std::uint64_t> write_retries_{0};
};

static_assert(sizeof(SeqlockSlot) == 64,
              "report slots must be padded to one cache line each");

class SharedRegion {
 public:
  static constexpr std::size_t kMaxClients = 64;  // matches core::QosMonitor
  static constexpr std::size_t kMaxShards = 16;
  static constexpr std::size_t kRecordBytes = 4096;

  explicit SharedRegion(std::uint64_t records, std::size_t shards = 1);

  // --- global token pool shards (words 0..shards-1 of the control block) --

  [[nodiscard]] std::size_t shards() const { return shards_; }

  /// Client-side remote FAA on one shard: returns the value *before* the
  /// add.
  std::int64_t FetchAddPool(std::size_t shard, std::int64_t delta) {
    return pool_[CheckShard(shard)].word.fetch_add(delta,
                                                   std::memory_order_acq_rel);
  }

  [[nodiscard]] std::int64_t LoadPool(std::size_t shard) const {
    return pool_[CheckShard(shard)].word.load(std::memory_order_acquire);
  }

  /// Non-atomic-across-shards sum of all shard words (each load is
  /// acquire). Good enough for diagnostics; the monitor's ledger uses
  /// per-shard witnessed values, never this.
  [[nodiscard]] std::int64_t LoadPoolSum() const {
    std::int64_t sum = 0;
    for (std::size_t s = 0; s < shards_; ++s) sum += LoadPool(s);
    return sum;
  }

  /// Monitor-side period boundary: atomically installs the new period's
  /// initial share into one shard and returns that shard's final word —
  /// the exchange *is* the boundary, so no concurrent FAA is ever silently
  /// overwritten.
  std::int64_t ExchangePool(std::size_t shard, std::int64_t value) {
    return pool_[CheckShard(shard)].word.exchange(value,
                                                  std::memory_order_acq_rel);
  }

  /// Monitor-side token conversion / rebalance donor: replaces `expected`
  /// with `desired` on one shard. On failure `expected` is refreshed with
  /// the value FAAs moved the word to, and the monitor recomputes — a
  /// conversion never tramples a grant.
  bool CasPool(std::size_t shard, std::int64_t& expected,
               std::int64_t desired) {
    return pool_[CheckShard(shard)].word.compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  // --- report slots (words 1..kMaxClients) --------------------------------

  [[nodiscard]] SeqlockSlot& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] const SeqlockSlot& slot(std::size_t i) const {
    return slots_[i];
  }

  // --- record store -------------------------------------------------------

  [[nodiscard]] std::uint64_t records() const { return records_; }

  /// One-sided 4 KB READ: copies record `key % records` into `dst`.
  void ReadRecord(std::uint64_t key, std::span<std::byte> dst) const;

 private:
  struct alignas(64) PoolShard {
    std::atomic<std::int64_t> word{0};
  };

  std::size_t CheckShard(std::size_t shard) const {
    HAECHI_EXPECTS(shard < shards_);
    return shard;
  }

  std::size_t shards_;
  PoolShard pool_[kMaxShards];
  alignas(64) SeqlockSlot slots_[kMaxClients];
  std::uint64_t records_;
  std::vector<std::byte> data_;
};

}  // namespace haechi::runtime
