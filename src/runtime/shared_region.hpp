// The process-shared QoS memory region backing the threaded runtime.
//
// This is the data node's registered control block and record store,
// realised as genuinely shared memory instead of simulated MRs:
//
//   * one cache-line-aligned signed 64-bit global token pool word, FAA'd by
//     client worker threads and CAS/exchanged by the monitor — the paper's
//     single contended word, with the acquire/release discipline the RDMA
//     atomics provide on a real NIC;
//   * one seqlock'd report slot per client: the 8-byte packed report plus
//     the writer's timestamp, overwritten by silent client WRITEs and
//     primed/read by the monitor;
//   * a flat record area client reads copy 4 KB records out of.
//
// Everything here is std::atomic with explicit ordering (the seqlock
// payload uses relaxed atomics under the seq protocol), so the whole layout
// is ThreadSanitizer-clean and would drop onto a shm/mmap mapping or an
// RDMA-registered buffer unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace haechi::runtime {

/// One report slot guarded by a sequence lock.
///
/// Two writers can collide on a slot — the owning client's report WRITE and
/// the monitor's period-boundary prime — so the writer side *acquires* the
/// seqlock by CAS-ing the sequence word from even to odd (a tiny writer
/// lock; the loser spins for the tens-of-nanoseconds store). Readers retry
/// until they see the same even sequence on both sides of the payload copy.
class SeqlockSlot {
 public:
  struct Snapshot {
    std::uint64_t packed = 0;  // core::PackReport wire format
    SimTime written_at = 0;    // writer's clock at the write
  };

  void Write(std::uint64_t packed, SimTime written_at);
  [[nodiscard]] Snapshot Read() const;

 private:
  std::atomic<std::uint32_t> seq_{0};
  // Payload fields are relaxed atomics purely so the seqlock's benign
  // read/write overlap is not a C++ data race; the seq protocol provides
  // the actual ordering.
  std::atomic<std::uint64_t> packed_{0};
  std::atomic<SimTime> written_at_{0};
};

class SharedRegion {
 public:
  static constexpr std::size_t kMaxClients = 64;  // matches core::QosMonitor
  static constexpr std::size_t kRecordBytes = 4096;

  explicit SharedRegion(std::uint64_t records);

  // --- global token pool word (word 0 of the control block) ---------------

  /// Client-side remote FAA: returns the value *before* the add.
  std::int64_t FetchAddPool(std::int64_t delta) {
    return pool_.fetch_add(delta, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::int64_t LoadPool() const {
    return pool_.load(std::memory_order_acquire);
  }

  /// Monitor-side period boundary: atomically installs the new period's
  /// initial pool and returns the old period's final word — the exchange
  /// *is* the boundary, so no concurrent FAA is ever silently overwritten.
  std::int64_t ExchangePool(std::int64_t value) {
    return pool_.exchange(value, std::memory_order_acq_rel);
  }

  /// Monitor-side token conversion: replaces `expected` with `desired`.
  /// On failure `expected` is refreshed with the value FAAs moved the word
  /// to, and the monitor recomputes — a conversion never tramples a grant.
  bool CasPool(std::int64_t& expected, std::int64_t desired) {
    return pool_.compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // --- report slots (words 1..kMaxClients) --------------------------------

  [[nodiscard]] SeqlockSlot& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] const SeqlockSlot& slot(std::size_t i) const {
    return slots_[i];
  }

  // --- record store -------------------------------------------------------

  [[nodiscard]] std::uint64_t records() const { return records_; }

  /// One-sided 4 KB READ: copies record `key % records` into `dst`.
  void ReadRecord(std::uint64_t key, std::span<std::byte> dst) const;

 private:
  alignas(64) std::atomic<std::int64_t> pool_{0};
  alignas(64) SeqlockSlot slots_[kMaxClients];
  std::uint64_t records_;
  std::vector<std::byte> data_;
};

}  // namespace haechi::runtime
