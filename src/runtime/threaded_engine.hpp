// The client-side QoS engine on real threads (the concurrent-runtime port
// of core::ClientQosEngine, paper §II-D).
//
// Protocol logic is a faithful port of src/core/engine.cpp — same token
// priority (reservation, then locally-held global tokens, then a batched
// remote FAA), same decay arithmetic, same report wire format and claims
// accounting, same faa_end_guard and pool-retry cadence — re-hosted on:
//
//   * a wall Clock instead of the simulator clock;
//   * runtime::PeriodicTimer threads for token decay and reporting;
//   * the monitor's thread delivering control messages by direct call
//     (the two-sided SEND landing in the ctrl CQ);
//   * the client's worker thread pulling tokens through AcquireToken() and
//     executing the FAA *inline* — so N clients genuinely contend on the
//     shared pool word, which is the point of this backend.
//
// All mutable state sits behind one mutex; every trace event is emitted
// under it with a timestamp captured under it (per-actor streams must stay
// time-ordered and seq-dense for the audit's A1).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/wire.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "runtime/threaded_fabric.hpp"

namespace haechi::runtime {

class ThreadedEngine {
 public:
  /// Reuses the sim engine's stats struct so differential tests compare
  /// like with like.
  using Stats = core::ClientQosEngine::Stats;

  /// Threaded-runtime-only shard-contention telemetry. Kept separate from
  /// Stats (shared with the sim engine and diffed field-for-field by the
  /// differential tests, so it must not grow runtime-only fields).
  struct RuntimeStats {
    std::uint64_t faa_home_hits = 0;   // home-shard FAA acquired tokens
    std::uint64_t faa_steals = 0;      // non-home-shard FAA acquired tokens
    std::uint64_t faa_dry_probes = 0;  // an FAA probe found its shard empty
    std::uint64_t span_ios = 0;        // detail span triplets emitted
  };

  /// What AcquireToken's blocking wait (or TryAcquireBatch's poll) ended
  /// with.
  enum class Grant {
    kToken,       // token(s) consumed; caller owns that many issued I/Os
    kPeriodOver,  // the requested period ended
    kStopped,     // engine stopped; worker should exit
    kNotReady,    // TryAcquireBatch only: nothing grantable right now
                  // (limit throttle, backend full, end guard, empty pool)
  };

  /// TryAcquireBatch's result: on kToken, `count` tokens were granted and
  /// the caller must perform exactly that many I/Os and report them via
  /// OnIoCompleted(count).
  struct Batch {
    Grant status = Grant::kNotReady;
    std::int64_t count = 0;
  };

  /// `port`/`slot` come from the monitor's admission (ThreadedWiring).
  ThreadedEngine(Clock& clock, obs::Recorder* recorder, ClientId id,
                 const core::QosConfig& config, ThreadedFabric& fabric,
                 std::size_t port, std::size_t slot);
  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  // --- control plane (called from the monitor thread) ---------------------
  void DeliverPeriodStart(const core::PeriodStartMsg& msg);
  void DeliverReportRequest();
  void DeliverOverReserveHint();

  /// Quiesces the engine; pending AcquireToken/AwaitPeriodAfter calls
  /// return kStopped/0.
  void Stop();

  // --- worker side --------------------------------------------------------

  /// Blocks until a token for period `p` is granted, the period rolls
  /// over (a limit-throttled worker parks here until then), or Stop().
  /// On kToken the caller must perform exactly one I/O and then call
  /// OnIoCompleted().
  Grant AcquireToken(std::uint32_t p);

  /// Non-blocking multi-token acquisition for the worker-pool event loop:
  /// grants up to `max_tokens` from the reservation / locally-held global
  /// stock, running at most one probe round of batched remote FAAs (home
  /// shard first, then the rest) when the local stock is dry. One mutex
  /// acquisition amortises over the whole chain. Never parks — kNotReady
  /// tells the caller to service other clients and poll again.
  Batch TryAcquireBatch(std::uint32_t p, std::int64_t max_tokens);

  void OnIoCompleted(std::int64_t n = 1);

  [[nodiscard]] bool Stopped() const;

  /// Blocks until the current period exceeds `p` (returns it) or the
  /// engine stops (returns 0).
  std::uint32_t AwaitPeriodAfter(std::uint32_t p);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] Stats StatsSnapshot() const;
  [[nodiscard]] RuntimeStats RuntimeStatsSnapshot() const;
  [[nodiscard]] std::uint32_t CurrentPeriod() const;

 private:
  void TokenTick();
  void ReportTick();
  void WriteReportLocked(SimTime now);
  /// Takes up to `want` tokens from reservation-then-local-global stock;
  /// returns the number granted and books them as issued/outstanding.
  std::int64_t TakeLocalLocked(std::int64_t want);
  /// One probe round of batched remote FAAs (home shard first, then the
  /// other shards, one FAA each); drops `lk` around each FAA and returns
  /// with it held. Tokens land in local_global_; an all-empty round arms
  /// pool_retry_until_.
  void FetchPoolRoundLocked(std::unique_lock<std::mutex>& lk);
  void EmitLocked(SimTime now, obs::EventType type, std::uint32_t period,
                  std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0);

  Clock& clock_;
  obs::Recorder* recorder_;
  ClientId id_;
  core::QosConfig config_;
  ThreadedFabric& fabric_;
  std::size_t port_;
  std::size_t slot_;
  std::size_t shards_;
  std::size_t home_shard_;
  /// Tokens drawn per remote FAA: token_batch * fetch_batch.
  std::int64_t effective_batch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Blocked AcquireToken/AwaitPeriodAfter callers; OnIoCompleted skips
  /// the notify when nobody waits (the worker-pool hot path never does).
  std::size_t waiters_ = 0;

  // Token state (paper's xi_reservation, X, local batch of global tokens).
  std::int64_t xi_reservation_ = 0;
  double decay_x_ = 0.0;
  double decay_per_tick_ = 0.0;
  std::int64_t local_global_ = 0;
  std::int64_t limit_ = 0;  // <=0: unlimited
  std::uint32_t period_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  SimTime period_started_at_ = 0;
  /// After an empty-pool FAA, no re-fetch before this instant (step T4).
  SimTime pool_retry_until_ = 0;
  bool reporting_ = false;
  std::uint8_t report_seq_ = 0;
  std::int64_t backend_outstanding_ = 0;
  Stats stats_;
  RuntimeStats runtime_stats_;
  // Per-IO span support (detail traces only): ids are assigned at grant and
  // completed FIFO — workers issue granted I/Os in order, so the oldest
  // outstanding id completes first.
  std::uint64_t next_io_id_ = 0;
  std::deque<std::uint64_t> outstanding_io_ids_;

  std::unique_ptr<PeriodicTimer> token_timer_;
  std::unique_ptr<PeriodicTimer> report_timer_;
};

}  // namespace haechi::runtime
