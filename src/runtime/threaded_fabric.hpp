// The threaded runtime's stand-in for rdma::Fabric: the same one-sided op
// surface the simulated verbs layer exposes (FAA on the pool word, silent
// 8-byte report WRITE, 4 KB record READ, monitor-side loads/CAS), executed
// directly against SharedRegion.
//
// Mapping to the simulated verbs surface:
//   rdma::QueuePair::PostFetchAdd  -> PostFetchAdd   (inline completion;
//                                     the returned word is wc.atomic_result)
//   rdma::QueuePair::PostWrite     -> PostReportWrite (seqlock'd slot store)
//   rdma::QueuePair::PostRead      -> PostRecordRead  (4 KB memcpy)
//   monitor local load / CAS       -> LoadPool / CasPool / ExchangePool
//
// Because the memory is genuinely shared, the async post/completion split
// collapses: each post IS its completion, with the atomicity a real NIC
// provides for masked atomics. Two-sided control traffic (PeriodStart,
// ReportRequest) stays out of this class — the monitor delivers it by
// direct call, modelling the SEND landing in the engine's ctrl CQ.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "common/assert.hpp"
#include "runtime/clock.hpp"
#include "runtime/shared_region.hpp"

namespace haechi::runtime {

class ThreadedFabric {
 public:
  struct PortStats {
    std::uint64_t faa_ops = 0;
    std::uint64_t report_writes = 0;
    std::uint64_t record_reads = 0;
  };

  ThreadedFabric(Clock& clock, std::uint64_t records, std::size_t shards = 1)
      : clock_(clock), region_(records, shards) {}

  ThreadedFabric(const ThreadedFabric&) = delete;
  ThreadedFabric& operator=(const ThreadedFabric&) = delete;

  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] SharedRegion& region() { return region_; }

  // --- client-side one-sided ops (port = client index, bounds the stats) --

  /// Remote FAA on one pool shard; returns the pre-add value.
  std::int64_t PostFetchAdd(std::size_t port, std::size_t shard,
                            std::int64_t delta) {
    ports_[Check(port)].faa_ops.fetch_add(1, std::memory_order_relaxed);
    return region_.FetchAddPool(shard, delta);
  }

  /// Silent one-sided report WRITE into the client's slot.
  void PostReportWrite(std::size_t port, std::size_t slot,
                       std::uint64_t packed) {
    ports_[Check(port)].report_writes.fetch_add(1, std::memory_order_relaxed);
    region_.slot(slot).Write(packed, clock_.Now());
  }

  /// One-sided 4 KB record READ.
  void PostRecordRead(std::size_t port, std::uint64_t key,
                      std::span<std::byte> dst) {
    ports_[Check(port)].record_reads.fetch_add(1, std::memory_order_relaxed);
    region_.ReadRecord(key, dst);
  }

  // --- monitor-side ops ---------------------------------------------------

  [[nodiscard]] std::size_t shards() const { return region_.shards(); }
  [[nodiscard]] std::int64_t LoadPool(std::size_t shard) const {
    return region_.LoadPool(shard);
  }
  [[nodiscard]] std::int64_t LoadPoolSum() const {
    return region_.LoadPoolSum();
  }
  std::int64_t ExchangePool(std::size_t shard, std::int64_t value) {
    return region_.ExchangePool(shard, value);
  }
  bool CasPool(std::size_t shard, std::int64_t& expected,
               std::int64_t desired) {
    return region_.CasPool(shard, expected, desired);
  }
  /// Rebalance receiver side: the monitor tops a shard up without a
  /// witness race (the return value witnesses the receiver's word).
  std::int64_t AddPool(std::size_t shard, std::int64_t delta) {
    return region_.FetchAddPool(shard, delta);
  }
  [[nodiscard]] SeqlockSlot::Snapshot ReadSlot(std::size_t slot) const {
    return region_.slot(slot).Read();
  }
  [[nodiscard]] std::uint64_t SlotWriteRetries(std::size_t slot) const {
    return region_.slot(slot).WriteRetries();
  }
  void PrimeSlot(std::size_t slot, std::uint64_t packed) {
    region_.slot(slot).Write(packed, clock_.Now());
  }

  [[nodiscard]] PortStats stats(std::size_t port) const {
    const auto& p = ports_[Check(port)];
    PortStats out;
    out.faa_ops = p.faa_ops.load(std::memory_order_relaxed);
    out.report_writes = p.report_writes.load(std::memory_order_relaxed);
    out.record_reads = p.record_reads.load(std::memory_order_relaxed);
    return out;
  }

 private:
  struct alignas(64) Port {
    std::atomic<std::uint64_t> faa_ops{0};
    std::atomic<std::uint64_t> report_writes{0};
    std::atomic<std::uint64_t> record_reads{0};
  };

  static std::size_t Check(std::size_t port) {
    HAECHI_EXPECTS(port < SharedRegion::kMaxClients);
    return port;
  }

  Clock& clock_;
  SharedRegion region_;
  Port ports_[SharedRegion::kMaxClients];
};

}  // namespace haechi::runtime
