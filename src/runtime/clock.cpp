#include "runtime/clock.hpp"

#include "common/assert.hpp"

namespace haechi::runtime {

PeriodicTimer::PeriodicTimer(Clock& clock, SimDuration interval,
                             std::function<void()> fn)
    : clock_(clock), interval_(interval), fn_(std::move(fn)) {
  HAECHI_EXPECTS(interval_ > 0);
  HAECHI_EXPECTS(fn_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

PeriodicTimer::~PeriodicTimer() {
  {
    std::lock_guard lk(mu_);
    exit_ = true;
    armed_ = false;
  }
  cv_.notify_all();
  thread_.join();
}

void PeriodicTimer::Start() {
  {
    std::lock_guard lk(mu_);
    if (armed_) return;
    armed_ = true;
    next_fire_ = clock_.Now() + interval_;
  }
  cv_.notify_all();
}

void PeriodicTimer::Stop() {
  {
    std::lock_guard lk(mu_);
    armed_ = false;
  }
  cv_.notify_all();
}

bool PeriodicTimer::Running() const {
  std::lock_guard lk(mu_);
  return armed_;
}

void PeriodicTimer::Loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (exit_) return;
    if (!armed_) {
      cv_.wait(lk, [this] { return exit_ || armed_; });
      continue;
    }
    const SimTime now = clock_.Now();
    if (now < next_fire_) {
      cv_.wait_for(lk, std::chrono::nanoseconds(next_fire_ - now));
      continue;  // re-check: Stop()/Start() may have moved the goalposts
    }
    // Fixed cadence, but never a burst of catch-up fires after a stall:
    // the next fire is one interval from *now*.
    next_fire_ = now + interval_;
    lk.unlock();
    fn_();
    lk.lock();
  }
}

}  // namespace haechi::runtime
