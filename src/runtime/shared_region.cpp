#include "runtime/shared_region.hpp"

#include <cstring>
#include <thread>

#include "common/assert.hpp"

namespace haechi::runtime {

void SeqlockSlot::Write(std::uint64_t packed, SimTime written_at) {
  // Acquire the writer side: even -> odd. A concurrent writer holds the
  // lock for two relaxed stores, so spinning is the right tool.
  std::uint32_t seq = seq_.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1u) == 0 &&
        seq_.compare_exchange_weak(seq, seq + 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
      break;
    }
    write_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    seq = seq_.load(std::memory_order_relaxed);
  }
  packed_.store(packed, std::memory_order_relaxed);
  written_at_.store(written_at, std::memory_order_relaxed);
  seq_.store(seq + 2, std::memory_order_release);
}

SeqlockSlot::Snapshot SeqlockSlot::Read() const {
  for (;;) {
    const std::uint32_t before = seq_.load(std::memory_order_acquire);
    if ((before & 1u) != 0) {
      std::this_thread::yield();
      continue;  // a writer is mid-store
    }
    Snapshot snap;
    snap.packed = packed_.load(std::memory_order_relaxed);
    snap.written_at = written_at_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) return snap;
  }
}

SharedRegion::SharedRegion(std::uint64_t records, std::size_t shards)
    : shards_(shards), records_(records) {
  HAECHI_EXPECTS(records > 0);
  HAECHI_EXPECTS(shards > 0 && shards <= kMaxShards);
  data_.resize(records * kRecordBytes);
  // Deterministic record contents so a read's bytes are checkable.
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = static_cast<std::byte>((i / kRecordBytes + i) & 0xff);
  }
}

void SharedRegion::ReadRecord(std::uint64_t key,
                              std::span<std::byte> dst) const {
  HAECHI_EXPECTS(dst.size() >= kRecordBytes);
  const std::uint64_t index = key % records_;
  std::memcpy(dst.data(), data_.data() + index * kRecordBytes, kRecordBytes);
}

}  // namespace haechi::runtime
