// Wall-clock time sources for the concurrent runtime backend.
//
// The simulator's components tell time through sim::Simulator::Now() and
// sim::PeriodicTimer; the threaded runtime mirrors that pair on the host
// clock so the ported QoS protocol logic (src/runtime/threaded_*.cpp) reads
// the same shape as the sim-driven originals in src/core. Times are still
// SimTime (integer nanoseconds) — measured from the Clock's construction,
// so a threaded run's trace starts near t=0 exactly like a sim trace.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/types.hpp"

namespace haechi::runtime {

/// Monotonic wall clock reporting nanoseconds since its construction (the
/// run epoch). Thread-safe; Now() never goes backwards.
class Clock {
 public:
  Clock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] SimTime Now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void SleepFor(SimDuration d) const {
    if (d > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  }

  void SleepUntil(SimTime t) const { SleepFor(t - Now()); }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Wall-clock analogue of sim::PeriodicTimer: fires `fn` every `interval`
/// on a dedicated thread.
///
/// Unlike the sim version, Start()/Stop() only arm/disarm the cadence —
/// they never join the worker thread, so they are safe to call from any
/// thread *including while holding locks the callback itself takes* (the
/// engine stops its report timer from inside a period-start delivery that
/// holds the engine mutex; a joining Stop would deadlock there). The
/// consequence: a callback already launched when Stop() returns may still
/// run once — callbacks must re-check their guard condition under their own
/// lock, exactly like the sim timers' callbacks re-check `running_`.
/// The thread is joined by the destructor only.
class PeriodicTimer {
 public:
  PeriodicTimer(Clock& clock, SimDuration interval, std::function<void()> fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer: first fire one interval from now. Idempotent.
  void Start();
  /// Disarms the timer (see the class comment for the in-flight caveat).
  void Stop();
  [[nodiscard]] bool Running() const;

 private:
  void Loop();

  Clock& clock_;
  const SimDuration interval_;
  std::function<void()> fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool exit_ = false;
  SimTime next_fire_ = 0;
  std::thread thread_;
};

}  // namespace haechi::runtime
