// The data-node QoS monitor on real threads (the concurrent-runtime port
// of core::QosMonitor, paper §II-E).
//
// Protocol logic is a faithful port of src/core/monitor.cpp — same period
// sequencing (calibrate, close the ledger, re-provision, prime slots,
// dispatch reservations), same S1–S3 check loop, same token-conversion
// arithmetic and grant-lag correction, same report lease — re-hosted on a
// wall Clock with two runtime::PeriodicTimer threads (period boundary and
// check tick) that serialise on the monitor mutex. The differences forced
// by real concurrency:
//
//   * the period boundary re-initialises the pool with an atomic
//     *exchange*, so the old period's final word is read and the new
//     period's pool installed in one step — a client FAA can land before
//     or after the boundary but never be silently overwritten;
//   * token conversion installs the new pool with a CAS loop that
//     re-witnesses the pre-conversion word on every failure, so grants
//     racing the conversion stay exactly accounted in the ledger;
//   * control messages are delivered to engines by direct call from the
//     monitor thread (the two-sided SEND), never the other way around —
//     engines only touch the shared region, so the lock order
//     monitor-mutex -> engine-mutex is acyclic.
//
// The conservation identities of core::QosMonitor::PeriodLedger hold
// *exactly* here too (raw-difference telescoping over atomic operations),
// which is what tests/runtime_stress_test.cpp and the differential audit
// lean on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/capacity_estimator.hpp"
#include "core/config.hpp"
#include "core/control/controller.hpp"
#include "core/monitor.hpp"
#include "core/wire.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "runtime/threaded_engine.hpp"
#include "runtime/threaded_fabric.hpp"

namespace haechi::runtime {

/// What admission hands a threaded client: its report-slot index (also
/// used as the fabric port for per-client op stats). The pool word needs
/// no address — the shared region is the address space.
struct ThreadedWiring {
  std::size_t slot = 0;
};

class ThreadedMonitor {
 public:
  using Stats = core::QosMonitor::Stats;
  using PeriodLedger = core::QosMonitor::PeriodLedger;

  /// Threaded-runtime-only contention telemetry. Separate from Stats,
  /// which is shared with the sim monitor and compared field-for-field by
  /// the differential tests.
  struct RuntimeStats {
    std::uint64_t convert_cas_retries = 0;  // conversion CAS lost to a FAA
    std::uint64_t shard_samples = 0;        // kShardSample events emitted
  };
  using PeriodHook =
      std::function<void(std::uint32_t, std::int64_t, std::int64_t)>;
  /// (period, client, completed) for every fresh per-period client report
  /// seen at calibration — the threaded run's per-client series source.
  using ClientReportHook =
      std::function<void(std::uint32_t, ClientId, std::int64_t)>;

  ThreadedMonitor(Clock& clock, obs::Recorder* recorder,
                  const core::QosConfig& config, ThreadedFabric& fabric,
                  double profiled_global_iops, double profiled_local_iops);
  ~ThreadedMonitor();

  ThreadedMonitor(const ThreadedMonitor&) = delete;
  ThreadedMonitor& operator=(const ThreadedMonitor&) = delete;

  /// Admits a client (both capacity constraints enforced) and allocates
  /// its report slot. Bind the engine before Start() so control messages
  /// can be delivered.
  Result<ThreadedWiring> AdmitClient(ClientId client, std::int64_t reservation,
                                     std::int64_t limit);
  /// Binds the admitted client's engine for control-message delivery.
  Status BindEngine(ClientId client, ThreadedEngine* engine);
  /// Removes a client and releases its reservation.
  Status ReleaseClient(ClientId client);

  /// Runtime reservation resize (the closed-loop controller's W1 action).
  /// Validates against the client's limit and admission capacity, then
  /// emits kReservationUpdate so the watchdog and audit re-baseline.
  Status UpdateReservation(ClientId client, std::int64_t reservation);

  /// Wires the closed-loop controller (may be null to unwire). PlanBoundary
  /// runs under the monitor mutex at each boundary, right after the period
  /// verdicts settle through the recorder tap; `readmit` (optional) is
  /// called for kReadmit actions and must defer the actual re-admission —
  /// it runs on the monitor's timer thread holding mu_.
  void SetController(core::control::QosController* controller,
                     std::function<void(ClientId)> readmit);

  /// Starts period 1 immediately and runs until Stop().
  void Start();
  void Stop();

  [[nodiscard]] Stats StatsSnapshot() const;
  [[nodiscard]] RuntimeStats RuntimeStatsSnapshot() const;
  [[nodiscard]] std::vector<PeriodLedger> LedgerSnapshot() const;
  /// Sum over all pool shards (diagnostic; the ledger never uses it).
  [[nodiscard]] std::int64_t GlobalPoolValue() const {
    return fabric_.LoadPoolSum();
  }
  [[nodiscard]] std::int64_t PeriodCapacity() const;
  [[nodiscard]] std::int64_t InitialPool() const;
  [[nodiscard]] bool ReportingActive() const;
  [[nodiscard]] const core::AdmissionController& admission() const {
    return admission_;
  }

  void SetPeriodHook(PeriodHook fn);
  void SetClientReportHook(ClientReportHook fn);
  void SetOverReserveCallback(std::function<void(ClientId)> fn);
  void SetClientDeadCallback(std::function<void(ClientId)> fn);

 private:
  struct ClientEntry {
    ClientId id;
    std::int64_t reservation = 0;
    std::int64_t limit = 0;
    ThreadedEngine* engine = nullptr;
    std::size_t slot = 0;
    std::uint32_t underuse_streak = 0;
    // Report-lease state: packed slot bytes at the last check and the
    // number of consecutive checks they stayed identical.
    std::uint64_t last_slot_raw = 0;
    std::uint32_t lease_misses = 0;
  };

  void PeriodTick();
  void CheckTickFn();
  void StartPeriodLocked(SimTime now);
  void CheckTickLocked(SimTime now);
  void CheckLeasesLocked(SimTime now);
  void DeclareDeadLocked(SimTime now, ClientId client);
  void ConvertTokensLocked(SimTime now);
  void RebalanceLocked(SimTime now);
  void CalibrateLocked(SimTime now);
  Status UpdateReservationLocked(SimTime now, ClientId client,
                                 std::int64_t reservation);
  void RunControlBoundaryLocked(SimTime now);
  void ActivateReportingLocked(SimTime now, std::int64_t observed_pool);
  /// Shard `shard`'s share of `total` under the monitor's even split.
  [[nodiscard]] std::int64_t ShardShare(std::int64_t total,
                                        std::size_t shard) const;
  Status ReleaseClientLocked(SimTime now, ClientId client);
  [[nodiscard]] std::size_t AllocateSlotLocked();
  ClientEntry* FindClientLocked(ClientId client);
  void EmitLocked(SimTime now, obs::EventType type, std::int64_t a = 0,
                  std::int64_t b = 0, std::int64_t c = 0);

  Clock& clock_;
  obs::Recorder* recorder_;
  core::QosConfig config_;
  ThreadedFabric& fabric_;
  core::AdmissionController admission_;
  std::unique_ptr<core::CapacityEstimator> estimator_;

  mutable std::mutex mu_;
  std::vector<ClientEntry> clients_;
  std::size_t next_slot_ = 0;
  std::vector<std::size_t> retired_slots_;
  std::vector<std::size_t> free_slots_;
  Stats stats_;
  RuntimeStats runtime_stats_;
  bool running_ = false;
  SimTime period_start_time_ = 0;
  std::int64_t period_capacity_ = 0;
  std::int64_t initial_pool_ = 0;
  bool reporting_active_ = false;
  std::int64_t last_written_pool_ = 0;
  std::deque<std::int64_t> recent_grants_;
  std::vector<PeriodLedger> ledger_;
  /// Per-shard last value the monitor wrote or witnessed; raw-difference
  /// telescoping against it keeps the ledger's `granted` exact on the
  /// shard sum across samples, conversions, rebalances and boundaries.
  std::vector<std::int64_t> shard_last_pool_;
  std::int64_t dead_completed_this_period_ = 0;
  core::control::QosController* controller_ = nullptr;
  std::function<void(ClientId)> readmit_cb_;
  /// Latched by the controller's kForceConversion action: activate
  /// reporting at every period start instead of waiting for S2, which can
  /// never fire when the initial pool is zero (the W6 deadlock).
  bool force_reporting_ = false;
  PeriodHook period_hook_;
  ClientReportHook client_report_hook_;
  std::function<void(ClientId)> over_reserve_cb_;
  std::function<void(ClientId)> client_dead_cb_;

  std::unique_ptr<PeriodicTimer> period_timer_;
  std::unique_ptr<PeriodicTimer> check_timer_;
};

}  // namespace haechi::runtime
