#include "runtime/threaded_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace haechi::runtime {

namespace {

using obs::ActorKind;
using obs::EventType;

std::int64_t IopsToTokens(double iops, SimDuration period) {
  return static_cast<std::int64_t>(std::llround(iops * ToSeconds(period)));
}

}  // namespace

ThreadedMonitor::ThreadedMonitor(Clock& clock, obs::Recorder* recorder,
                                 const core::QosConfig& config,
                                 ThreadedFabric& fabric,
                                 double profiled_global_iops,
                                 double profiled_local_iops)
    : clock_(clock),
      recorder_(recorder),
      config_(config),
      fabric_(fabric),
      admission_(IopsToTokens(profiled_global_iops, config.period),
                 IopsToTokens(profiled_local_iops, config.period)) {
  const std::int64_t profiled_tokens =
      IopsToTokens(profiled_global_iops, config.period);
  core::CapacityEstimator::Params params;
  params.profiled = profiled_tokens;
  params.sigma =
      config.sigma > 0
          ? config.sigma
          : static_cast<std::int64_t>(std::llround(
                static_cast<double>(profiled_tokens) * config.sigma_fraction));
  params.eta = config.eta > 0
                   ? config.eta
                   : static_cast<std::int64_t>(std::llround(
                         static_cast<double>(profiled_tokens) *
                         config.eta_fraction));
  params.window = config.history_window;
  estimator_ = std::make_unique<core::CapacityEstimator>(params);
  shard_last_pool_.assign(fabric_.shards(), 0);

  period_timer_ = std::make_unique<PeriodicTimer>(clock_, config_.period,
                                                  [this] { PeriodTick(); });
  check_timer_ = std::make_unique<PeriodicTimer>(
      clock_, config_.check_interval, [this] { CheckTickFn(); });
}

ThreadedMonitor::~ThreadedMonitor() { Stop(); }

void ThreadedMonitor::EmitLocked(SimTime now, EventType type, std::int64_t a,
                                 std::int64_t b, std::int64_t c) {
  if (recorder_ != nullptr) {
    recorder_->EmitAt(now, ActorKind::kMonitor, 0, type, stats_.periods, a, b,
                      c);
  }
}

Result<ThreadedWiring> ThreadedMonitor::AdmitClient(ClientId client,
                                                    std::int64_t reservation,
                                                    std::int64_t limit) {
  std::lock_guard lk(mu_);
  const SimTime now = clock_.Now();
  bool readmission = false;
  if (FindClientLocked(client) != nullptr) {
    const Status released = ReleaseClientLocked(now, client);
    HAECHI_ASSERT(released.ok());
    ++stats_.readmissions;
    readmission = true;
  }
  if (clients_.size() >= SharedRegion::kMaxClients) {
    return ErrResourceExhausted("monitor is at its client capacity");
  }
  if (limit > 0 && limit < reservation) {
    return ErrInvalidArgument("limit below reservation");
  }
  if (free_slots_.empty() && next_slot_ >= SharedRegion::kMaxClients) {
    return ErrResourceExhausted("all report slots consumed");
  }
  if (auto s = admission_.Admit(client, reservation); !s.ok()) {
    EmitLocked(now, EventType::kAdmitReject,
               static_cast<std::int64_t>(Raw(client)), reservation);
    return s;
  }
  EmitLocked(now, readmission ? EventType::kReadmit : EventType::kAdmit,
             static_cast<std::int64_t>(Raw(client)), reservation, limit);

  ClientEntry entry;
  entry.id = client;
  entry.reservation = reservation;
  entry.limit = limit;
  entry.slot = AllocateSlotLocked();
  // Prime the (possibly recycled) slot with a stale-tagged conservative
  // report, then baseline the lease on those bytes.
  fabric_.PrimeSlot(
      entry.slot,
      core::PackReport(stats_.periods - 1,
                       static_cast<std::uint64_t>(
                           std::max<std::int64_t>(reservation, 0)),
                       0));
  entry.last_slot_raw = fabric_.ReadSlot(entry.slot).packed;
  entry.lease_misses = 0;
  clients_.push_back(entry);
  return ThreadedWiring{entry.slot};
}

Status ThreadedMonitor::BindEngine(ClientId client, ThreadedEngine* engine) {
  std::lock_guard lk(mu_);
  ClientEntry* entry = FindClientLocked(client);
  if (entry == nullptr) return ErrNotFound("client not admitted");
  entry->engine = engine;
  if (reporting_active_ && engine != nullptr) {
    // The period's ReportRequest broadcast predates this client.
    engine->DeliverReportRequest();
  }
  return Status::Ok();
}

Status ThreadedMonitor::ReleaseClient(ClientId client) {
  std::lock_guard lk(mu_);
  return ReleaseClientLocked(clock_.Now(), client);
}

Status ThreadedMonitor::ReleaseClientLocked(SimTime now, ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  // Quarantine the slot until the next period boundary: a report the
  // departing client's report thread already launched must not land in a
  // stranger's recycled slot.
  retired_slots_.push_back(it->slot);
  clients_.erase(it);
  EmitLocked(now, EventType::kRelease, static_cast<std::int64_t>(Raw(client)));
  return admission_.Release(client);
}

std::size_t ThreadedMonitor::AllocateSlotLocked() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return next_slot_++;
}

void ThreadedMonitor::Start() {
  {
    std::lock_guard lk(mu_);
    HAECHI_EXPECTS(!running_);
    running_ = true;
    StartPeriodLocked(clock_.Now());
  }
  period_timer_->Start();
  check_timer_->Start();
}

void ThreadedMonitor::Stop() {
  {
    std::lock_guard lk(mu_);
    running_ = false;
  }
  period_timer_->Stop();
  check_timer_->Stop();
}

void ThreadedMonitor::PeriodTick() {
  std::lock_guard lk(mu_);
  if (!running_) return;
  StartPeriodLocked(clock_.Now());
}

void ThreadedMonitor::CheckTickFn() {
  std::lock_guard lk(mu_);
  if (!running_) return;
  CheckTickLocked(clock_.Now());
}

void ThreadedMonitor::StartPeriodLocked(SimTime now) {
  if (stats_.periods > 0) CalibrateLocked(now);
  dead_completed_this_period_ = 0;

  // Provision the next period *before* touching the pool word, so the
  // boundary itself is one atomic exchange.
  const std::int64_t next_capacity = estimator_->Estimate();
  std::int64_t total_reserved = 0;
  for (const auto& entry : clients_) total_reserved += entry.reservation;
  const std::int64_t next_initial =
      std::max<std::int64_t>(next_capacity - total_reserved, 0);

  // The boundary: install each shard's share of the new pool and read the
  // old period's final word per shard in one exchange each. The ledger
  // closes on the shard-summed raw word; per-shard telescoping against
  // shard_last_pool_ keeps `granted` exact even though the exchanges are
  // not simultaneous (clients only ever decrease the words between them).
  const std::size_t nshards = fabric_.shards();
  std::int64_t raw_sum = 0;
  std::int64_t boundary_granted = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::int64_t raw =
        fabric_.ExchangePool(s, ShardShare(next_initial, s));
    raw_sum += raw;
    boundary_granted += shard_last_pool_[s] - raw;
    shard_last_pool_[s] = ShardShare(next_initial, s);
  }
  if (!ledger_.empty()) {
    PeriodLedger& prev = ledger_.back();
    prev.granted += boundary_granted;
    prev.end_pool = raw_sum;
    EmitLocked(now, EventType::kMonitorPeriodEnd, raw_sum,
               stats_.last_period_completions, prev.granted);
  }

  // Closed-loop control boundary. The kMonitorPeriodEnd emit above ran the
  // watchdog synchronously through the recorder tap, so the controller's
  // alert intake for the closing period is settled. Resizes are sum-neutral
  // on total_reserved, so next_initial (already exchanged into the shards)
  // stays valid; the T1 dispatch loop below reads the updated reservations.
  if (controller_ != nullptr && stats_.periods > 0) RunControlBoundaryLocked(now);

  // Slots retired last period sat out a full boundary; safe to recycle.
  free_slots_.insert(free_slots_.end(), retired_slots_.begin(),
                     retired_slots_.end());
  retired_slots_.clear();

  ++stats_.periods;
  period_start_time_ = now;
  reporting_active_ = false;
  period_capacity_ = next_capacity;
  initial_pool_ = next_initial;
  last_written_pool_ = initial_pool_;
  recent_grants_.clear();

  PeriodLedger ledger;
  ledger.period = stats_.periods;
  ledger.capacity = period_capacity_;
  ledger.dispatched = total_reserved;
  ledger.initial_pool = initial_pool_;
  ledger.end_pool = initial_pool_;
  ledger_.push_back(ledger);
  EmitLocked(now, EventType::kMonitorPeriodStart, period_capacity_,
             total_reserved, initial_pool_);
  if (ledger_.size() > 4096) ledger_.erase(ledger_.begin());

  // Step T1: prime report slots and push fresh reservation tokens; the
  // delivery is also the period-start signal.
  for (auto& entry : clients_) {
    fabric_.PrimeSlot(
        entry.slot,
        core::PackReport(stats_.periods,
                         static_cast<std::uint64_t>(
                             std::max<std::int64_t>(entry.reservation, 0)),
                         0));
    entry.last_slot_raw = fabric_.ReadSlot(entry.slot).packed;
    entry.lease_misses = 0;
    core::PeriodStartMsg msg;
    msg.period = stats_.periods;
    msg.reservation_tokens = entry.reservation;
    msg.limit = entry.limit;
    if (entry.engine != nullptr) entry.engine->DeliverPeriodStart(msg);
  }

  // Controller W6 recovery: a zero-initial pool can never trip S2, so once
  // forced conversion is latched, activate reporting at every period start.
  if (force_reporting_ && !reporting_active_) {
    ActivateReportingLocked(now, fabric_.LoadPoolSum());
  }
}

void ThreadedMonitor::CheckTickLocked(SimTime now) {
  if (stats_.periods == 0) return;
  ++stats_.checks;

  const std::size_t nshards = fabric_.shards();
  std::int64_t raw_sum = 0;
  std::int64_t sample_granted = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::int64_t raw = fabric_.LoadPool(s);
    raw_sum += raw;
    sample_granted += shard_last_pool_[s] - raw;
    shard_last_pool_[s] = raw;
    // Per-shard occupancy telemetry for the sharded runtime (the watchdog's
    // status line and the span profiler's shard view). Single-shard runs
    // stay bit-identical to sim traces, which have no kShardSample.
    if (nshards > 1) {
      EmitLocked(now, EventType::kShardSample,
                 static_cast<std::int64_t>(s), raw);
      ++runtime_stats_.shard_samples;
    }
  }
  if (!ledger_.empty()) {
    ledger_.back().granted += sample_granted;
    EmitLocked(now, EventType::kPoolSample, raw_sum);
  }

  // With the shard values freshly witnessed, even out lopsided shards so a
  // client whose home shard ran dry is not starved while a neighbour
  // hoards (AdapTBF-style periodic redistribution).
  if (nshards > 1) RebalanceLocked(now);

  const std::int64_t observed_now = raw_sum;
  // Tokens granted since the last check: the word only moves down between
  // monitor writes, and a draw against an empty pool grants nothing.
  const std::int64_t grants = std::max<std::int64_t>(last_written_pool_, 0) -
                              std::max<std::int64_t>(observed_now, 0);
  recent_grants_.push_back(std::max<std::int64_t>(grants, 0));
  const std::size_t lag_checks =
      static_cast<std::size_t>(
          config_.report_interval /
          std::max<SimDuration>(config_.check_interval, 1)) +
      2;
  while (recent_grants_.size() > lag_checks) recent_grants_.pop_front();
  last_written_pool_ = observed_now;

  // Step S2: reservation-token overflow — someone is drawing on the pool.
  if (!reporting_active_ && observed_now < initial_pool_) {
    ActivateReportingLocked(now, observed_now);
  }

  if (reporting_active_ && config_.report_lease_intervals > 0) {
    CheckLeasesLocked(now);
  }

  // Step T2: token conversion.
  if (reporting_active_ && config_.token_conversion) ConvertTokensLocked(now);
}

void ThreadedMonitor::CheckLeasesLocked(SimTime now) {
  std::vector<ClientId> dead;
  for (ClientEntry& entry : clients_) {
    const std::uint64_t raw = fabric_.ReadSlot(entry.slot).packed;
    if (raw != entry.last_slot_raw) {
      entry.last_slot_raw = raw;
      entry.lease_misses = 0;
      continue;
    }
    ++entry.lease_misses;
    if (entry.lease_misses ==
        std::max<std::uint32_t>(config_.report_lease_intervals / 2, 1)) {
      ++stats_.report_request_resends;
      EmitLocked(now, EventType::kReportResend,
                 static_cast<std::int64_t>(Raw(entry.id)));
      if (entry.engine != nullptr) entry.engine->DeliverReportRequest();
    }
    if (entry.lease_misses >= config_.report_lease_intervals) {
      dead.push_back(entry.id);
    }
  }
  for (const ClientId id : dead) DeclareDeadLocked(now, id);
}

void ThreadedMonitor::DeclareDeadLocked(SimTime now, ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  if (it == clients_.end()) return;
  const std::uint64_t slot = fabric_.ReadSlot(it->slot).packed;
  std::int64_t residual;
  std::int64_t salvaged = 0;
  if (core::ReportPeriod(slot) ==
      (stats_.periods & core::kReportPeriodMask)) {
    residual = static_cast<std::int64_t>(core::ReportResidual(slot));
    salvaged = static_cast<std::int64_t>(core::ReportCompleted(slot));
    dead_completed_this_period_ += salvaged;
  } else {
    residual = std::max<std::int64_t>(it->reservation, 0);
  }
  HAECHI_LOG_WARN(
      "threaded monitor: client %u report lease expired after %u checks; "
      "reclaiming %lld residual tokens",
      Raw(client), it->lease_misses, static_cast<long long>(residual));
  ++stats_.lease_expirations;
  EmitLocked(now, EventType::kLeaseExpire,
             static_cast<std::int64_t>(Raw(client)), residual, salvaged);
  stats_.reclaimed_tokens += residual;
  if (!ledger_.empty()) ledger_.back().reclaimed += residual;
  retired_slots_.push_back(it->slot);
  clients_.erase(it);
  const Status released = admission_.Release(client);
  HAECHI_ASSERT(released.ok());
  if (config_.token_conversion && reporting_active_) ConvertTokensLocked(now);
  if (client_dead_cb_) client_dead_cb_(client);
}

void ThreadedMonitor::ConvertTokensLocked(SimTime now) {
  std::int64_t outstanding_reservation = 0;  // the paper's L
  std::int64_t completed_so_far = dead_completed_this_period_;
  for (const auto& entry : clients_) {
    const std::uint64_t slot = fabric_.ReadSlot(entry.slot).packed;
    if (core::ReportPeriod(slot) ==
        (stats_.periods & core::kReportPeriodMask)) {
      outstanding_reservation += core::ReportResidual(slot);
      completed_so_far += core::ReportCompleted(slot);
    } else {
      outstanding_reservation += entry.reservation;
    }
  }
  const SimDuration elapsed = now - period_start_time_;
  const SimDuration left = std::max<SimDuration>(config_.period - elapsed, 0);
  // Same remaining-capacity arithmetic as the sim monitor: min of the
  // paper's time budget C*(T-t)/T and the conservation-preserving
  // completion budget C - U(t). The trace event is stamped with the same
  // `now` the budget uses, so the audit's A4 recomputation matches.
  const auto time_budget = static_cast<std::int64_t>(
      static_cast<__int128>(period_capacity_) * left / config_.period);
  const std::int64_t completion_budget =
      period_capacity_ - completed_so_far;
  const std::int64_t remaining_capacity =
      std::min(time_budget, completion_budget);
  std::int64_t unreported_grants = 0;
  for (const std::int64_t g : recent_grants_) unreported_grants += g;
  const std::int64_t new_pool = std::max<std::int64_t>(
      remaining_capacity - outstanding_reservation - unreported_grants, 0);

  // Install each shard's share with a CAS loop: every failure means client
  // FAAs moved that word; retry from the freshly-witnessed value so the
  // final successful CAS gives the exact pre-conversion word and no grant
  // is ever lost to an overwrite. The ledger and trace event carry the
  // shard-summed values.
  const std::size_t nshards = fabric_.shards();
  std::int64_t raw_before_sum = 0;
  std::int64_t convert_granted = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::int64_t share = ShardShare(new_pool, s);
    std::int64_t expected = fabric_.LoadPool(s);
    while (!fabric_.CasPool(s, expected, share)) {
      ++runtime_stats_.convert_cas_retries;
    }
    raw_before_sum += expected;
    convert_granted += shard_last_pool_[s] - expected;
    shard_last_pool_[s] = share;
  }
  if (!ledger_.empty()) {
    PeriodLedger& cur = ledger_.back();
    cur.granted += convert_granted;
    cur.minted += new_pool - raw_before_sum;
    EmitLocked(now, EventType::kTokenConvert, raw_before_sum, new_pool,
               outstanding_reservation);
  }
  last_written_pool_ = new_pool;
  ++stats_.conversions;
}

std::int64_t ThreadedMonitor::ShardShare(std::int64_t total,
                                         std::size_t shard) const {
  const auto n = static_cast<std::int64_t>(fabric_.shards());
  if (total <= 0) return 0;
  return total / n + (static_cast<std::int64_t>(shard) < total % n ? 1 : 0);
}

void ThreadedMonitor::RebalanceLocked(SimTime now) {
  // Move half the spread from the fullest shard to the emptiest one, one
  // move per check tick, when the spread exceeds two effective fetch
  // batches — cheap, incremental, and a no-op in steady state. The donor
  // side is a CAS (witnessing the live word so concurrent grants stay
  // ledger-exact, clamping the move to what is actually there); the
  // receiver side is a FAA whose return value witnesses that word. The
  // move itself is sum-neutral: only the witnessed client grants change
  // `granted`, and `minted` is untouched.
  if (ledger_.empty()) return;
  const std::size_t nshards = fabric_.shards();
  std::size_t donor = 0;
  std::size_t receiver = 0;
  for (std::size_t s = 1; s < nshards; ++s) {
    if (shard_last_pool_[s] > shard_last_pool_[donor]) donor = s;
    if (shard_last_pool_[s] < shard_last_pool_[receiver]) receiver = s;
  }
  const std::int64_t batch =
      config_.token_batch * std::max<std::int64_t>(config_.fetch_batch, 1);
  const std::int64_t spread =
      shard_last_pool_[donor] - shard_last_pool_[receiver];
  if (donor == receiver || spread <= 2 * batch) return;

  PeriodLedger& cur = ledger_.back();
  std::int64_t move = spread / 2;
  std::int64_t expected = fabric_.LoadPool(donor);
  for (;;) {
    move = std::min(move, std::max<std::int64_t>(expected, 0));
    if (move <= 0) {
      // Clients drained the donor under us; fold the witnessed grants in
      // and try again next tick.
      cur.granted += shard_last_pool_[donor] - expected;
      shard_last_pool_[donor] = expected;
      return;
    }
    if (fabric_.CasPool(donor, expected, expected - move)) break;
  }
  cur.granted += shard_last_pool_[donor] - expected;
  shard_last_pool_[donor] = expected - move;
  const std::int64_t receiver_before = fabric_.AddPool(receiver, move);
  cur.granted += shard_last_pool_[receiver] - receiver_before;
  shard_last_pool_[receiver] = receiver_before + move;
  ++stats_.rebalances;
  stats_.rebalanced_tokens += move;
  std::int64_t tracked_sum = 0;
  for (const std::int64_t v : shard_last_pool_) tracked_sum += v;
  EmitLocked(now, EventType::kPoolRebalance, tracked_sum, move,
             static_cast<std::int64_t>((donor << 8) | receiver));
}

void ThreadedMonitor::CalibrateLocked(SimTime now) {
  // Step T3: feed Algorithm 1 with the reported completion total.
  std::int64_t total_completed = dead_completed_this_period_;
  for (const auto& entry : clients_) {
    const std::uint64_t slot = fabric_.ReadSlot(entry.slot).packed;
    if (core::ReportPeriod(slot) ==
        (stats_.periods & core::kReportPeriodMask)) {
      total_completed += core::ReportCompleted(slot);
      EmitLocked(now, EventType::kClientPeriodReport,
                 static_cast<std::int64_t>(Raw(entry.id)),
                 static_cast<std::int64_t>(core::ReportCompleted(slot)),
                 static_cast<std::int64_t>(core::ReportResidual(slot)));
      if (client_report_hook_) {
        client_report_hook_(
            stats_.periods, entry.id,
            static_cast<std::int64_t>(core::ReportCompleted(slot)));
      }
    }
  }
  stats_.last_period_completions = total_completed;
  if (reporting_active_) {
    estimator_->OnPeriodEnd(total_completed);
    EmitLocked(now, EventType::kCapacityEstimate, total_completed,
               estimator_->Estimate(),
               static_cast<std::int64_t>(estimator_->LastDecision()));

    for (auto& entry : clients_) {
      const std::uint64_t slot = fabric_.ReadSlot(entry.slot).packed;
      if (core::ReportPeriod(slot) !=
          (stats_.periods & core::kReportPeriodMask)) {
        continue;
      }
      const auto completed =
          static_cast<std::int64_t>(core::ReportCompleted(slot));
      if (completed < entry.reservation) {
        ++entry.underuse_streak;
        if (entry.underuse_streak >= config_.underuse_alert_periods) {
          ++stats_.over_reserve_hints;
          if (over_reserve_cb_) over_reserve_cb_(entry.id);
          if (entry.engine != nullptr) entry.engine->DeliverOverReserveHint();
          entry.underuse_streak = 0;
        }
      } else {
        entry.underuse_streak = 0;
      }
    }
  }
  if (period_hook_) {
    period_hook_(stats_.periods, total_completed, estimator_->Estimate());
  }
}

ThreadedMonitor::ClientEntry* ThreadedMonitor::FindClientLocked(
    ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientEntry& e) { return e.id == client; });
  return it == clients_.end() ? nullptr : &*it;
}

void ThreadedMonitor::SetController(core::control::QosController* controller,
                                    std::function<void(ClientId)> readmit) {
  std::lock_guard lk(mu_);
  controller_ = controller;
  readmit_cb_ = std::move(readmit);
}

Status ThreadedMonitor::UpdateReservation(ClientId client,
                                          std::int64_t reservation) {
  std::lock_guard lk(mu_);
  return UpdateReservationLocked(clock_.Now(), client, reservation);
}

Status ThreadedMonitor::UpdateReservationLocked(SimTime now, ClientId client,
                                                std::int64_t reservation) {
  ClientEntry* entry = FindClientLocked(client);
  if (entry == nullptr) return ErrNotFound("client not admitted");
  if (entry->limit > 0 && reservation > entry->limit) {
    return ErrInvalidArgument("reservation above the client's limit");
  }
  if (auto s = admission_.Update(client, reservation); !s.ok()) return s;
  const std::int64_t previous = entry->reservation;
  entry->reservation = reservation;
  EmitLocked(now, EventType::kReservationUpdate,
             static_cast<std::int64_t>(Raw(client)), reservation, previous);
  return Status::Ok();
}

void ThreadedMonitor::ActivateReportingLocked(SimTime now,
                                              std::int64_t observed_pool) {
  reporting_active_ = true;
  ++stats_.report_signals;
  EmitLocked(now, EventType::kReportSignal, observed_pool, initial_pool_);
  for (auto& entry : clients_) {
    if (entry.engine != nullptr) entry.engine->DeliverReportRequest();
  }
}

void ThreadedMonitor::RunControlBoundaryLocked(SimTime now) {
  // The view: reservations as configured, completions as reported for the
  // period that just ended (slots still hold the final reports — they are
  // re-primed only when the next period is dispatched below).
  std::vector<core::control::QosController::ClientView> view;
  view.reserve(clients_.size());
  for (const auto& entry : clients_) {
    std::int64_t completed = 0;
    const std::uint64_t slot = fabric_.ReadSlot(entry.slot).packed;
    if (core::ReportPeriod(slot) ==
        (stats_.periods & core::kReportPeriodMask)) {
      completed = static_cast<std::int64_t>(core::ReportCompleted(slot));
    }
    // The admissible region caps the planning limit: a receiver can never
    // be grown past the per-client local capacity, so every planned resize
    // passes admission_.Update and the emitted deltas stay sum-neutral.
    const std::int64_t local = admission_.LocalCapacity();
    const std::int64_t plan_limit =
        entry.limit > 0 ? std::min(entry.limit, local) : local;
    view.push_back({Raw(entry.id), entry.reservation, plan_limit, completed});
  }
  std::sort(view.begin(), view.end(),
            [](const core::control::QosController::ClientView& x,
               const core::control::QosController::ClientView& y) {
              return x.client < y.client;
            });

  const core::control::QosController::Boundary plan =
      controller_->PlanBoundary(stats_.periods, view);
  if (recorder_ != nullptr) {
    for (const auto& r : plan.recovered) {
      recorder_->EmitAt(now, ActorKind::kController, 0,
                        EventType::kControlRecovered, stats_.periods,
                        static_cast<std::int64_t>(r.rule), r.client,
                        static_cast<std::int64_t>(r.periods));
    }
  }
  for (const auto& action : plan.actions) {
    bool applied = false;
    std::int64_t payload = action.value;
    switch (action.kind) {
      case core::control::ActionKind::kResize: {
        const Status s = UpdateReservationLocked(
            now, MakeClientId(static_cast<std::uint32_t>(action.client)),
            action.value);
        if (!s.ok()) {
          HAECHI_LOG_WARN("controller: resize of client %lld failed: %s",
                          static_cast<long long>(action.client),
                          s.ToString().c_str());
        }
        applied = s.ok();
        payload = action.delta;
        break;
      }
      case core::control::ActionKind::kScaleEta:
        estimator_->SetEtaScaleMilli(action.value);
        applied = true;
        break;
      case core::control::ActionKind::kForceConversion:
        force_reporting_ = true;
        applied = true;
        break;
      case core::control::ActionKind::kReadmit:
        if (readmit_cb_) {
          readmit_cb_(MakeClientId(static_cast<std::uint32_t>(action.client)));
          applied = true;
        }
        break;
    }
    if (applied && recorder_ != nullptr) {
      recorder_->EmitAt(now, ActorKind::kController, 0,
                        EventType::kControlAction, stats_.periods,
                        static_cast<std::int64_t>(action.kind), action.client,
                        payload);
    }
  }
}

ThreadedMonitor::Stats ThreadedMonitor::StatsSnapshot() const {
  std::lock_guard lk(mu_);
  return stats_;
}

ThreadedMonitor::RuntimeStats ThreadedMonitor::RuntimeStatsSnapshot() const {
  std::lock_guard lk(mu_);
  return runtime_stats_;
}

std::vector<ThreadedMonitor::PeriodLedger> ThreadedMonitor::LedgerSnapshot()
    const {
  std::lock_guard lk(mu_);
  return ledger_;
}

std::int64_t ThreadedMonitor::PeriodCapacity() const {
  std::lock_guard lk(mu_);
  return period_capacity_;
}

std::int64_t ThreadedMonitor::InitialPool() const {
  std::lock_guard lk(mu_);
  return initial_pool_;
}

bool ThreadedMonitor::ReportingActive() const {
  std::lock_guard lk(mu_);
  return reporting_active_;
}

void ThreadedMonitor::SetPeriodHook(PeriodHook fn) {
  std::lock_guard lk(mu_);
  period_hook_ = std::move(fn);
}

void ThreadedMonitor::SetClientReportHook(ClientReportHook fn) {
  std::lock_guard lk(mu_);
  client_report_hook_ = std::move(fn);
}

void ThreadedMonitor::SetOverReserveCallback(std::function<void(ClientId)> fn) {
  std::lock_guard lk(mu_);
  over_reserve_cb_ = std::move(fn);
}

void ThreadedMonitor::SetClientDeadCallback(std::function<void(ClientId)> fn) {
  std::lock_guard lk(mu_);
  client_dead_cb_ = std::move(fn);
}

}  // namespace haechi::runtime
