#include "cluster/tenant.hpp"

#include <algorithm>

namespace haechi::cluster {

TenantDirectory::TenantDirectory(std::int64_t cluster_reservable)
    : cluster_reservable_(cluster_reservable) {}

Status TenantDirectory::AddTenant(TenantId tenant, std::int64_t reservation,
                                  std::int64_t limit) {
  if (reservation < 0) return ErrInvalidArgument("negative reservation");
  if (limit > 0 && limit < reservation) {
    return ErrInvalidArgument("tenant limit below its reservation");
  }
  if (FindTenant(tenant) != nullptr) {
    return ErrFailedPrecondition("tenant already registered");
  }
  if (cluster_reservable_ > 0 &&
      TotalReserved() + reservation > cluster_reservable_) {
    return ErrResourceExhausted(
        "tenant reservations would exceed cluster capacity");
  }
  Tenant t;
  t.id = tenant;
  t.reservation = reservation;
  t.limit = limit;
  tenants_.push_back(t);
  return Status::Ok();
}

Status TenantDirectory::RemoveTenant(TenantId tenant) {
  const auto it =
      std::find_if(tenants_.begin(), tenants_.end(),
                   [&](const Tenant& t) { return t.id == tenant; });
  if (it == tenants_.end()) return ErrNotFound("tenant not registered");
  if (it->clients > 0) {
    return ErrFailedPrecondition("tenant still has admitted clients");
  }
  tenants_.erase(it);
  return Status::Ok();
}

Status TenantDirectory::AdmitClient(TenantId tenant, ClientId client,
                                    std::int64_t reservation,
                                    std::int64_t limit) {
  if (reservation < 0) return ErrInvalidArgument("negative reservation");
  if (limit > 0 && limit < reservation) {
    return ErrInvalidArgument("limit below reservation");
  }
  Tenant* t = FindTenantMutable(tenant);
  if (t == nullptr) return ErrNotFound("tenant not registered");
  if (FindMember(client) != nullptr) {
    return ErrFailedPrecondition("client already admitted to a tenant");
  }
  if (t->reserved + reservation > t->reservation) {
    return ErrResourceExhausted(
        "client reservations would exceed the tenant's reservation");
  }
  if (t->limit > 0) {
    if (limit <= 0) {
      return ErrInvalidArgument(
          "a limited tenant requires a per-client limit");
    }
    if (t->limited + limit > t->limit) {
      return ErrResourceExhausted(
          "client limits would exceed the tenant's limit");
    }
  }
  t->reserved += reservation;
  t->limited += limit > 0 ? limit : 0;
  ++t->clients;
  clients_.push_back(Member{client, tenant, reservation, limit});
  return Status::Ok();
}

Status TenantDirectory::ReleaseClient(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const Member& m) { return m.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  Tenant* t = FindTenantMutable(it->tenant);
  if (t != nullptr) {
    t->reserved -= it->reservation;
    t->limited -= it->limit > 0 ? it->limit : 0;
    --t->clients;
  }
  clients_.erase(it);
  return Status::Ok();
}

Status TenantDirectory::UpdateClientReservation(ClientId client,
                                                std::int64_t reservation) {
  if (reservation < 0) return ErrInvalidArgument("negative reservation");
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const Member& m) { return m.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  if (it->limit > 0 && reservation > it->limit) {
    return ErrInvalidArgument("reservation above the client's limit");
  }
  Tenant* t = FindTenantMutable(it->tenant);
  if (t == nullptr) return ErrNotFound("tenant vanished under the client");
  if (t->reserved - it->reservation + reservation > t->reservation) {
    return ErrResourceExhausted(
        "client reservations would exceed the tenant's reservation");
  }
  t->reserved += reservation - it->reservation;
  it->reservation = reservation;
  return Status::Ok();
}

Result<TenantId> TenantDirectory::TenantOf(ClientId client) const {
  const Member* m = FindMember(client);
  if (m == nullptr) return ErrNotFound("client not admitted");
  return m->tenant;
}

Result<std::int64_t> TenantDirectory::ClientReservation(
    ClientId client) const {
  const Member* m = FindMember(client);
  if (m == nullptr) return ErrNotFound("client not admitted");
  return m->reservation;
}

const TenantDirectory::Tenant* TenantDirectory::FindTenant(
    TenantId tenant) const {
  const auto it =
      std::find_if(tenants_.begin(), tenants_.end(),
                   [&](const Tenant& t) { return t.id == tenant; });
  return it == tenants_.end() ? nullptr : &*it;
}

TenantDirectory::Tenant* TenantDirectory::FindTenantMutable(TenantId tenant) {
  return const_cast<Tenant*>(FindTenant(tenant));
}

const TenantDirectory::Member* TenantDirectory::FindMember(
    ClientId client) const {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const Member& m) { return m.id == client; });
  return it == clients_.end() ? nullptr : &*it;
}

std::int64_t TenantDirectory::TotalReserved() const {
  std::int64_t total = 0;
  for (const Tenant& t : tenants_) total += t.reservation;
  return total;
}

}  // namespace haechi::cluster
