// Two-level tenant hierarchy for cluster deployments.
//
// The single-node admission controller guards one flat client population
// against the node's capacities (C_G, C_L). At cluster scale the paper's
// "millions of users" decompose into tenant groups: each tenant t owns a
// cluster-wide reservation R_t (and optional limit L_t), and its member
// clients carve their cluster-wide reservations R_i out of R_t. The
// directory enforces the nesting at both levels:
//
//   sum_t R_t  <= cluster reservable capacity      (tenant admission)
//   sum_{i in t} R_i <= R_t                        (client admission)
//   sum_{i in t} L_i <= L_t   when L_t is set      (limits nest too)
//
// Free <-> reserved conversion composes per level: the slack R_t -
// sum_{i in t} R_i is never dispatched as reservation tokens, so it stays
// in the per-node pools where ordinary token conversion recycles it — a
// tenant that under-subscribes its reservation donates the difference to
// the cluster's free tier without any extra machinery.
//
// The directory is pure bookkeeping (no monitors, no timers); the cluster
// coordinator consults it before touching per-node admission, and rolls it
// back if a node rejects the split.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace haechi::cluster {

using TenantId = std::uint32_t;

class TenantDirectory {
 public:
  struct Tenant {
    TenantId id = 0;
    std::int64_t reservation = 0;  // R_t
    std::int64_t limit = 0;        // L_t; <= 0 means unlimited
    std::int64_t reserved = 0;     // sum of member client reservations
    std::int64_t limited = 0;      // sum of member client limits
    std::size_t clients = 0;
  };

  /// `cluster_reservable` caps sum_t R_t; <= 0 disables the top-level
  /// check (the per-node admission controllers still bound reality).
  explicit TenantDirectory(std::int64_t cluster_reservable);

  Status AddTenant(TenantId tenant, std::int64_t reservation,
                   std::int64_t limit);
  /// Only an empty tenant can be removed.
  Status RemoveTenant(TenantId tenant);

  Status AdmitClient(TenantId tenant, ClientId client,
                     std::int64_t reservation, std::int64_t limit);
  Status ReleaseClient(ClientId client);
  /// Re-checks the tenant bound with the new value.
  Status UpdateClientReservation(ClientId client, std::int64_t reservation);

  [[nodiscard]] Result<TenantId> TenantOf(ClientId client) const;
  [[nodiscard]] Result<std::int64_t> ClientReservation(ClientId client) const;
  [[nodiscard]] const Tenant* FindTenant(TenantId tenant) const;
  [[nodiscard]] const std::vector<Tenant>& tenants() const { return tenants_; }
  /// sum_t R_t across all tenants.
  [[nodiscard]] std::int64_t TotalReserved() const;
  [[nodiscard]] std::size_t ClientCount() const { return clients_.size(); }

 private:
  struct Member {
    ClientId id;
    TenantId tenant;
    std::int64_t reservation;
    std::int64_t limit;
  };

  [[nodiscard]] Tenant* FindTenantMutable(TenantId tenant);
  [[nodiscard]] const Member* FindMember(ClientId client) const;

  std::int64_t cluster_reservable_;
  std::vector<Tenant> tenants_;
  std::vector<Member> clients_;
};

}  // namespace haechi::cluster
