// Cross-server token borrowing: policy, quotas, and the conservation
// ledger.
//
// When one data node's pool runs dry mid-period while a peer's sits idle,
// the coordinator moves free tokens between the two monitors (LendTokens /
// AbsorbTokens). The BorrowLedger is the cluster-wide double-entry record
// of those moves: every grant creates an outstanding loan on the ordered
// (lender, borrower) pair, every repayment retires part of it, and the
// audit identity C2 holds by construction:
//
//   granted(l, b) == repaid(l, b) + outstanding(l, b),   outstanding >= 0
//
// Borrow quotas bound how much a node may import per period. The static
// policy pins the quota; the adaptive policy follows AdapTBF (PAPERS.md):
// multiplicative increase when the borrowed tokens were fully consumed
// (the demand was real), multiplicative decrease when a chunk of them sat
// unused at the boundary (the node over-borrowed), clamped to
// [min_quota, max_quota]. Decentralised in spirit — each node's quota
// adapts only on its own consumption signal.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace haechi::cluster {

enum class BorrowPolicy : std::uint8_t {
  kOff = 0,      // never move tokens between nodes
  kStatic = 1,   // fixed per-period borrow quota per node
  kAdaptive = 2, // AdapTBF-style multiplicative quota adaptation
};

[[nodiscard]] std::string_view ToString(BorrowPolicy policy);
bool BorrowPolicyFromName(std::string_view name, BorrowPolicy& out);

struct BorrowConfig {
  BorrowPolicy policy = BorrowPolicy::kOff;
  /// Per-period borrow cap per node (static policy), and the adaptive
  /// policy's starting quota.
  std::int64_t quota = 4000;
  /// Adaptive clamp range.
  std::int64_t min_quota = 500;
  std::int64_t max_quota = 64000;
};

class BorrowLedger {
 public:
  BorrowLedger(std::size_t nodes, const BorrowConfig& config);

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] const BorrowConfig& config() const { return config_; }

  /// Current per-period borrow quota of `node`.
  [[nodiscard]] std::int64_t Quota(std::uint32_t node) const;
  /// Quota remaining for `borrower` this period (0 when the policy is off).
  [[nodiscard]] std::int64_t Headroom(std::uint32_t borrower) const;
  /// Tokens `node` imported so far this period.
  [[nodiscard]] std::int64_t BorrowedThisPeriod(std::uint32_t node) const;

  void RecordGrant(std::uint32_t lender, std::uint32_t borrower,
                   std::int64_t tokens);
  void RecordRepay(std::uint32_t borrower, std::uint32_t lender,
                   std::int64_t tokens);

  [[nodiscard]] std::int64_t Outstanding(std::uint32_t lender,
                                         std::uint32_t borrower) const;
  /// Loans `borrower` still owes across all lenders.
  [[nodiscard]] std::int64_t OwedBy(std::uint32_t borrower) const;
  /// Loans still owed to `lender` across all borrowers.
  [[nodiscard]] std::int64_t OwedTo(std::uint32_t lender) const;
  [[nodiscard]] std::int64_t TotalOutstanding() const;
  [[nodiscard]] std::int64_t TotalGranted() const { return total_granted_; }
  [[nodiscard]] std::int64_t TotalRepaid() const { return total_repaid_; }

  /// Adaptive feedback for one node at a period boundary: `borrowed` is
  /// what it imported during the closed period, `unused` how much of that
  /// was still sitting in its pool at the boundary. No-op under the static
  /// policy.
  void AdaptQuota(std::uint32_t node, std::int64_t borrowed,
                  std::int64_t unused);
  /// Resets the per-period borrow counters (call once per boundary, after
  /// AdaptQuota has consumed them).
  void ResetPeriod();

 private:
  [[nodiscard]] std::size_t PairIndex(std::uint32_t lender,
                                      std::uint32_t borrower) const {
    return static_cast<std::size_t>(lender) * nodes_ + borrower;
  }

  std::size_t nodes_;
  BorrowConfig config_;
  std::vector<std::int64_t> outstanding_;  // nodes x nodes, lender-major
  std::vector<std::int64_t> quota_;        // per node
  std::vector<std::int64_t> borrowed_this_period_;
  std::int64_t total_granted_ = 0;
  std::int64_t total_repaid_ = 0;
};

}  // namespace haechi::cluster
