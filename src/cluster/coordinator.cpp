#include "cluster/coordinator.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "workload/distributions.hpp"

namespace haechi::cluster {

ClusterCoordinator::ClusterCoordinator(sim::Simulator& sim,
                                       const Config& config,
                                       std::vector<core::QosMonitor*> monitors)
    : sim_(sim),
      config_(config),
      monitors_(std::move(monitors)),
      directory_(config.tenant_capacity),
      ledger_(monitors_.size(), config.borrow) {
  HAECHI_EXPECTS(!monitors_.empty());
  HAECHI_EXPECTS(config.ewma > 0.0 && config.ewma <= 1.0);
  HAECHI_EXPECTS(config.min_share >= 0.0 &&
                 config.min_share * static_cast<double>(monitors_.size()) <
                     1.0);
  HAECHI_EXPECTS(config.interval > config.lead);
  HAECHI_EXPECTS(config.borrow_tick > 0);
  HAECHI_EXPECTS(config.repay_lag > 0 && config.repay_lag < config.interval);
  HAECHI_EXPECTS(config.dry_watermark >= 0 && config.lender_floor >= 0);
  rebalance_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.interval, [this] { Rebalance(); });
  borrow_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.borrow_tick, [this] { BorrowTick(); });
  settle_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, config_.interval, [this] { SettleLoans(); });
  for (std::size_t d = 0; d < monitors_.size(); ++d) {
    // Distinct trace actors keep the per-actor event streams (and their
    // dense seq counters) disjoint across the data nodes.
    monitors_[d]->SetTraceActor(static_cast<std::uint32_t>(d));
    // One node's report lease declaring a client dead purges it
    // cluster-wide: its reservation shards on the other nodes are
    // unreachable capacity the moment the client is gone.
    monitors_[d]->SetClientDeadCallback(
        [this](ClientId client) { OnClientDead(client); });
  }
}

Status ClusterCoordinator::AddTenant(TenantId tenant, std::int64_t reservation,
                                     std::int64_t limit) {
  return directory_.AddTenant(tenant, reservation, limit);
}

void ClusterCoordinator::OnClientDead(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  if (it == clients_.end()) return;  // unknown or already purged
  for (core::QosMonitor* monitor : monitors_) {
    // The detecting node already released the client; other nodes may have
    // raced their own lease expiry. Both make NotFound expected here.
    const Status s = monitor->ReleaseClient(client);
    HAECHI_ASSERT(s.ok() || s.code() == StatusCode::kNotFound);
  }
  const Status released = directory_.ReleaseClient(client);
  HAECHI_ASSERT(released.ok());
  clients_.erase(it);
  ++stats_.dead_clients;
  HAECHI_LOG_WARN("cluster: purged dead client %u from %zu nodes",
                  Raw(client), monitors_.size());
}

Result<std::vector<core::QosWiring>> ClusterCoordinator::AdmitClient(
    TenantId tenant, ClientId client, std::int64_t reservation,
    std::int64_t limit, const std::vector<rdma::QueuePair*>& ctrl_qps) {
  if (ctrl_qps.size() != monitors_.size()) {
    return ErrInvalidArgument("need one control QP per data node");
  }
  if (Find(client) != nullptr) {
    return ErrFailedPrecondition("client already admitted to the cluster");
  }
  // Tenant envelope first: a client that does not fit its tenant never
  // touches the per-node admission controllers.
  const Status member = directory_.AdmitClient(tenant, client, reservation,
                                               limit);
  if (!member.ok()) return member;

  const auto nodes = monitors_.size();
  const auto split = workload::UniformShare(reservation, nodes);

  std::vector<core::QosWiring> wirings;
  wirings.reserve(nodes);
  for (std::size_t d = 0; d < nodes; ++d) {
    auto wiring =
        monitors_[d]->AdmitClient(client, split[d], limit, *ctrl_qps[d]);
    if (!wiring.ok()) {
      // Roll back the nodes already admitted and the tenant membership.
      for (std::size_t undone = 0; undone < d; ++undone) {
        const Status s = monitors_[undone]->ReleaseClient(client);
        HAECHI_ASSERT(s.ok());
      }
      const Status unmember = directory_.ReleaseClient(client);
      HAECHI_ASSERT(unmember.ok());
      return wiring.status();
    }
    wirings.push_back(wiring.value());
  }

  ClientState state;
  state.id = client;
  state.reservation = reservation;
  state.split.assign(split.begin(), split.end());
  state.demand_ewma.assign(nodes, 1.0);  // neutral prior: equal split
  state.stale_streak.assign(nodes, 0);
  clients_.push_back(std::move(state));
  return wirings;
}

Status ClusterCoordinator::ReleaseClient(ClientId client) {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  if (it == clients_.end()) return ErrNotFound("client not admitted");
  for (core::QosMonitor* monitor : monitors_) {
    const Status s = monitor->ReleaseClient(client);
    HAECHI_ASSERT(s.ok());
  }
  const Status released = directory_.ReleaseClient(client);
  HAECHI_ASSERT(released.ok());
  clients_.erase(it);
  return Status::Ok();
}

void ClusterCoordinator::Start(SimTime at) {
  sim_.ScheduleAt(at, [this] {
    if (rebalance_timer_->Running()) return;
    // The rebalance sample lands just before each period boundary (final
    // usage reports, not freshly primed slots); loans settle just after it
    // (fresh pools provisioned) and dry-pool probes tick through the
    // period in between.
    rebalance_timer_->Start(config_.interval - config_.lead);
    settle_timer_->Start(config_.interval + config_.repay_lag);
    if (config_.borrow.policy != BorrowPolicy::kOff) {
      borrow_timer_->Start(config_.borrow_tick);
    }
  });
}

void ClusterCoordinator::Stop() {
  rebalance_timer_->Stop();
  borrow_timer_->Stop();
  settle_timer_->Stop();
}

std::uint32_t ClusterCoordinator::CurrentPeriod() const {
  return monitors_.front()->CurrentPeriod();
}

void ClusterCoordinator::Rebalance() {
  ++stats_.rebalances;
  const auto nodes = monitors_.size();
  const std::uint32_t period = CurrentPeriod();
  for (ClientState& client : clients_) {
    // 1. Refresh per-node usage estimates from the monitors' report slots.
    //    LastCompleted is cumulative within the current period; reading it
    //    once per interval approximates the per-period usage. A node whose
    //    slot holds no report for this period (lost/delayed WRITE, crashed
    //    reporter) keeps its previous EWMA: a missing report is absence of
    //    evidence, not evidence of zero demand.
    for (std::size_t d = 0; d < nodes; ++d) {
      if (!monitors_[d]->HasFreshReport(client.id)) {
        ++client.stale_streak[d];
        ++stats_.stale_reports;
        HAECHI_TRACE_EVENT(obs::ActorKind::kCluster, 0,
                           obs::EventType::kClusterStaleReport, period,
                           static_cast<std::uint64_t>(d), Raw(client.id),
                           client.stale_streak[d]);
        continue;
      }
      client.stale_streak[d] = 0;
      const std::uint32_t completed = monitors_[d]->LastCompleted(client.id);
      client.demand_ewma[d] =
          config_.ewma * static_cast<double>(completed) +
          (1.0 - config_.ewma) * client.demand_ewma[d];
    }

    // 2. Target split: usage-proportional with a min_share floor.
    std::vector<double> weights(nodes);
    const double floor_weight =
        config_.min_share *
        std::max(1.0, *std::max_element(client.demand_ewma.begin(),
                                        client.demand_ewma.end()));
    for (std::size_t d = 0; d < nodes; ++d) {
      weights[d] = client.demand_ewma[d] + floor_weight;
    }
    const auto target = workload::WeightedShare(client.reservation, weights);

    // 3. Apply decreases first (freeing per-node headroom), then increases.
    std::uint64_t moved = 0;
    std::uint64_t rejected = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t d = 0; d < nodes; ++d) {
        const bool decrease = target[d] < client.split[d];
        if (pass == 0 ? !decrease : decrease) continue;
        if (target[d] == client.split[d]) continue;
        const Status s =
            monitors_[d]->UpdateReservation(client.id, target[d]);
        if (s.ok()) {
          moved += static_cast<std::uint64_t>(
              std::llabs(target[d] - client.split[d]));
          client.split[d] = target[d];
        } else {
          ++rejected;
          HAECHI_LOG_DEBUG("cluster: move rejected on node %zu: %s", d,
                           s.ToString().c_str());
        }
      }
    }

    // 4. If an increase was refused (the target node had no admission
    //    headroom), the freed tokens must not evaporate: park them on any
    //    node that will take them so Σ_d R_i,d == R_i stays invariant.
    std::int64_t placed = 0;
    for (const auto share : client.split) placed += share;
    std::int64_t shortfall = client.reservation - placed;
    HAECHI_ASSERT(shortfall >= 0);
    for (std::size_t d = 0; d < nodes && shortfall > 0; ++d) {
      const auto& admission = monitors_[d]->admission();
      const std::int64_t headroom = std::min(
          admission.AggregateCapacity() - admission.TotalReserved(),
          admission.LocalCapacity() - client.split[d]);
      const std::int64_t add = std::min(shortfall, headroom);
      if (add <= 0) continue;
      const Status s = monitors_[d]->UpdateReservation(
          client.id, client.split[d] + add);
      if (s.ok()) {
        client.split[d] += add;
        shortfall -= add;
      }
    }
    // The pre-rebalance placement fit, and decreases only freed capacity,
    // so the shortfall always finds a home.
    HAECHI_ASSERT(shortfall == 0);

    stats_.tokens_moved += moved;
    stats_.rejected_moves += rejected;
    if (moved > 0 || rejected > 0) {
      HAECHI_TRACE_EVENT(obs::ActorKind::kCluster, 0,
                         obs::EventType::kClusterRebalance, period,
                         Raw(client.id), moved, rejected);
    }
  }
}

void ClusterCoordinator::BorrowTick() {
  if (config_.borrow.policy == BorrowPolicy::kOff) return;
  const auto nodes = monitors_.size();
  const std::uint32_t period = CurrentPeriod();
  for (std::size_t d = 0; d < nodes; ++d) {
    if (monitors_[d]->GlobalPoolValue() >= config_.dry_watermark) continue;
    const std::int64_t want =
        std::min(ledger_.Headroom(static_cast<std::uint32_t>(d)),
                 config_.dry_watermark);
    if (want <= 0) continue;  // quota exhausted for this period
    ++stats_.borrow_requests;
    HAECHI_TRACE_EVENT(obs::ActorKind::kCluster, 0,
                       obs::EventType::kBorrowRequest, period,
                       static_cast<std::uint64_t>(d),
                       static_cast<std::uint64_t>(want),
                       static_cast<std::uint64_t>(
                           ledger_.Quota(static_cast<std::uint32_t>(d))));

    // Pick the peer with the largest pool surplus above the lender floor.
    std::size_t lender = nodes;
    std::int64_t best_surplus = 0;
    for (std::size_t l = 0; l < nodes; ++l) {
      if (l == d) continue;
      const std::int64_t surplus =
          monitors_[l]->GlobalPoolValue() - config_.lender_floor;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        lender = l;
      }
    }
    if (lender == nodes) continue;  // every peer is near-dry too

    const std::int64_t lent = monitors_[lender]->LendTokens(
        std::min(want, best_surplus), static_cast<std::uint32_t>(d));
    if (lent <= 0) continue;
    monitors_[d]->AbsorbTokens(lent, static_cast<std::uint32_t>(lender));
    ledger_.RecordGrant(static_cast<std::uint32_t>(lender),
                        static_cast<std::uint32_t>(d), lent);
    ++stats_.borrow_grants;
    stats_.borrowed_tokens += lent;
    HAECHI_TRACE_EVENT(obs::ActorKind::kCluster, 0,
                       obs::EventType::kBorrowGrant, period,
                       static_cast<std::uint64_t>(lender),
                       static_cast<std::uint64_t>(lent),
                       static_cast<std::uint64_t>(d));
  }
}

void ClusterCoordinator::SettleLoans() {
  if (config_.borrow.policy == BorrowPolicy::kOff) return;
  const auto nodes = monitors_.size();
  const std::uint32_t period = CurrentPeriod();

  // Adaptive quota feedback for the period that just closed: how much of
  // what each node borrowed was still sitting unused in its pool at the
  // boundary. The monitor's ledger entry for the closed period (the newest
  // entry belongs to the period now running) recorded the end-of-period
  // pool exactly.
  for (std::size_t d = 0; d < nodes; ++d) {
    const std::int64_t borrowed =
        ledger_.BorrowedThisPeriod(static_cast<std::uint32_t>(d));
    if (borrowed <= 0) continue;
    const auto& periods = monitors_[d]->ledger();
    std::int64_t unused = 0;
    if (periods.size() >= 2) {
      const std::int64_t end_pool = periods[periods.size() - 2].end_pool;
      unused = std::clamp<std::int64_t>(end_pool, 0, borrowed);
    }
    ledger_.AdaptQuota(static_cast<std::uint32_t>(d), borrowed, unused);
  }
  ledger_.ResetPeriod();

  // Repay every outstanding loan out of the borrower's fresh pool. A
  // partial repayment (the fresh pool was smaller than the debt) carries
  // the remainder forward to the next boundary.
  for (std::uint32_t l = 0; l < nodes; ++l) {
    for (std::uint32_t b = 0; b < nodes; ++b) {
      if (l == b) continue;
      const std::int64_t owed = ledger_.Outstanding(l, b);
      if (owed <= 0) continue;
      const std::int64_t repaid = monitors_[b]->LendTokens(owed, l);
      if (repaid <= 0) continue;
      monitors_[l]->AbsorbTokens(repaid, b);
      ledger_.RecordRepay(b, l, repaid);
      stats_.repaid_tokens += repaid;
      HAECHI_TRACE_EVENT(obs::ActorKind::kCluster, 0,
                         obs::EventType::kBorrowRepay, period,
                         static_cast<std::uint64_t>(b),
                         static_cast<std::uint64_t>(repaid),
                         static_cast<std::uint64_t>(l));
    }
  }
}

Result<std::vector<std::int64_t>> ClusterCoordinator::SplitOf(
    ClientId client) const {
  const ClientState* state = Find(client);
  if (state == nullptr) return ErrNotFound("client not admitted");
  return state->split;
}

const ClusterCoordinator::ClientState* ClusterCoordinator::Find(
    ClientId client) const {
  const auto it =
      std::find_if(clients_.begin(), clients_.end(),
                   [&](const ClientState& c) { return c.id == client; });
  return it == clients_.end() ? nullptr : &*it;
}

}  // namespace haechi::cluster
