// The cluster coordinator: sharded multi-server Haechi (paper §V future
// work, ROADMAP "scale out to a sharded multi-server cluster").
//
// D data nodes each run an ordinary QosMonitor; clients are striped across
// all of them. The coordinator is the control plane gluing the shards into
// one deployment:
//
//  * Hierarchical admission. Clients belong to tenants (TenantDirectory):
//    a client's cluster-wide reservation R_i must fit its tenant's R_t,
//    and only then is R_i split across the per-node admission controllers
//    (uniformly at admission, usage-weighted afterwards). Any rejection
//    rolls the whole admission back — a client is either on every node or
//    on none.
//
//  * Intra-tenant rebalancing (the seed policy, kept verbatim). Shortly
//    before each period boundary the coordinator re-splits each client's
//    R_i toward an EWMA of its observed per-node usage, decreases before
//    increases, re-parking rejected increases so sum_d R_i,d == R_i stays
//    invariant. A node whose report slot went stale for the period keeps
//    its last EWMA (and a cluster_stale_report event is emitted) instead
//    of polluting the estimate with a zero.
//
//  * Cross-server token borrowing. Every borrow_tick the coordinator
//    probes each node's pool; a node below the dry watermark borrows free
//    tokens from the peer with the most surplus, bounded by its
//    (AdapTBF-adaptive) per-period quota — see borrow.hpp. Loans are
//    repaid explicitly just after the next period boundary out of the
//    borrower's fresh pool (partial repayments carry the remainder
//    forward), so every period settles to a clean cluster-wide ledger and
//    the audit's C2 conservation identity is checkable from the trace.
//
// Control traffic only: the coordinator never touches the one-sided data
// path. In a real deployment it is a control-plane service doing periodic
// RPCs to the monitors; calling them directly here is faithful because
// every interaction is per-period or per-tick, never per-I/O.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/borrow.hpp"
#include "cluster/tenant.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "core/monitor.hpp"
#include "sim/simulator.hpp"

namespace haechi::cluster {

class ClusterCoordinator {
 public:
  struct Config {
    /// EWMA weight for fresh per-node usage observations.
    double ewma = 0.5;
    /// Fraction of R_i every node keeps as a floor (ramp headroom).
    double min_share = 0.05;
    /// Rebalancing cadence; normally the QoS period.
    SimDuration interval = kSecond;
    /// The rebalancer samples this long *before* each period boundary, so
    /// it sees the period's final usage reports rather than the freshly
    /// re-primed slots of the next period.
    SimDuration lead = kMillisecond;
    /// Dry-pool probe cadence for cross-server borrowing.
    SimDuration borrow_tick = Millis(10);
    /// Loans settle this long *after* each boundary — after every
    /// monitor's StartPeriod has provisioned the fresh pools the
    /// repayments are drawn from.
    SimDuration repay_lag = Micros(100);
    /// A node whose pool is below this many tokens counts as dry and
    /// tries to borrow (typically the engines' FAA batch size, so a dry
    /// pool is one that cannot serve a single fetch).
    std::int64_t dry_watermark = 1000;
    /// A lender never gives its pool away below this floor.
    std::int64_t lender_floor = 2000;
    /// Cap on sum_t R_t fed to the TenantDirectory; <= 0 disables.
    std::int64_t tenant_capacity = 0;
    BorrowConfig borrow;
  };

  struct Stats {
    std::uint64_t rebalances = 0;
    std::uint64_t tokens_moved = 0;   // total |delta| applied
    std::uint64_t rejected_moves = 0; // increases refused by admission
    /// Clients purged cluster-wide after a node's report lease expired.
    std::uint64_t dead_clients = 0;
    /// (client, node) samples skipped because the node's report for the
    /// period was missing (stale slot) — the EWMA kept its last value.
    std::uint64_t stale_reports = 0;
    std::uint64_t borrow_requests = 0;
    std::uint64_t borrow_grants = 0;
    std::int64_t borrowed_tokens = 0;
    std::int64_t repaid_tokens = 0;
  };

  /// The coordinator drives the given per-node monitors; they must outlive
  /// it. Monitor d's trace actor is set to d so the per-actor streams the
  /// audit walks stay disjoint.
  ClusterCoordinator(sim::Simulator& sim, const Config& config,
                     std::vector<core::QosMonitor*> monitors);

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Registers a tenant with a cluster-wide reservation/limit envelope.
  Status AddTenant(TenantId tenant, std::int64_t reservation,
                   std::int64_t limit);

  /// Admits `client` under `tenant` with a cluster-wide reservation,
  /// initially split equally. `ctrl_qps[d]` is the monitor-side control QP
  /// on node d. Returns one QosWiring per node for the client's per-node
  /// engines. Atomic: tenant-level and all node-level admissions succeed,
  /// or everything is rolled back.
  Result<std::vector<core::QosWiring>> AdmitClient(
      TenantId tenant, ClientId client, std::int64_t reservation,
      std::int64_t limit, const std::vector<rdma::QueuePair*>& ctrl_qps);

  /// Releases the client on every node and from its tenant.
  Status ReleaseClient(ClientId client);

  /// Starts the periodic rebalance/borrow/settle machinery; the monitors
  /// are expected to start their periods at the same `at`.
  void Start(SimTime at);
  void Stop();

  /// Forces one rebalancing pass (also called by the periodic timer).
  void Rebalance();
  /// Forces one dry-pool borrow probe (also called by the borrow timer).
  void BorrowTick();
  /// Boundary settlement: adaptive quota feedback + loan repayment (also
  /// called by the settle timer, repay_lag after each boundary).
  void SettleLoans();

  /// Current per-node reservation split of a client.
  [[nodiscard]] Result<std::vector<std::int64_t>> SplitOf(
      ClientId client) const;

  [[nodiscard]] std::size_t NodeCount() const { return monitors_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const BorrowLedger& borrow_ledger() const { return ledger_; }
  [[nodiscard]] const TenantDirectory& tenants() const { return directory_; }

 private:
  struct ClientState {
    ClientId id;
    std::int64_t reservation;          // cluster-wide R_i
    std::vector<std::int64_t> split;   // per-node R_i,d
    std::vector<double> demand_ewma;   // per-node usage estimate
    std::vector<std::uint32_t> stale_streak;  // consecutive stale periods
  };

  [[nodiscard]] const ClientState* Find(ClientId client) const;
  void OnClientDead(ClientId client);
  [[nodiscard]] std::uint32_t CurrentPeriod() const;

  sim::Simulator& sim_;
  Config config_;
  std::vector<core::QosMonitor*> monitors_;
  TenantDirectory directory_;
  BorrowLedger ledger_;
  std::vector<ClientState> clients_;
  Stats stats_;
  std::unique_ptr<sim::PeriodicTimer> rebalance_timer_;
  std::unique_ptr<sim::PeriodicTimer> borrow_timer_;
  std::unique_ptr<sim::PeriodicTimer> settle_timer_;
};

}  // namespace haechi::cluster
