#include "cluster/borrow.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace haechi::cluster {

std::string_view ToString(BorrowPolicy policy) {
  switch (policy) {
    case BorrowPolicy::kOff:
      return "off";
    case BorrowPolicy::kStatic:
      return "static";
    case BorrowPolicy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

bool BorrowPolicyFromName(std::string_view name, BorrowPolicy& out) {
  if (name == "off") {
    out = BorrowPolicy::kOff;
  } else if (name == "static") {
    out = BorrowPolicy::kStatic;
  } else if (name == "adaptive") {
    out = BorrowPolicy::kAdaptive;
  } else {
    return false;
  }
  return true;
}

BorrowLedger::BorrowLedger(std::size_t nodes, const BorrowConfig& config)
    : nodes_(nodes), config_(config) {
  HAECHI_EXPECTS(nodes > 0);
  HAECHI_EXPECTS(config.quota >= 0);
  HAECHI_EXPECTS(config.min_quota >= 0);
  HAECHI_EXPECTS(config.max_quota >= config.min_quota);
  outstanding_.assign(nodes_ * nodes_, 0);
  quota_.assign(nodes_, config_.policy == BorrowPolicy::kOff
                            ? 0
                            : std::clamp(config_.quota, config_.min_quota,
                                         config_.max_quota));
  borrowed_this_period_.assign(nodes_, 0);
}

std::int64_t BorrowLedger::Quota(std::uint32_t node) const {
  HAECHI_EXPECTS(node < nodes_);
  return quota_[node];
}

std::int64_t BorrowLedger::Headroom(std::uint32_t borrower) const {
  HAECHI_EXPECTS(borrower < nodes_);
  if (config_.policy == BorrowPolicy::kOff) return 0;
  return std::max<std::int64_t>(
      quota_[borrower] - borrowed_this_period_[borrower], 0);
}

std::int64_t BorrowLedger::BorrowedThisPeriod(std::uint32_t node) const {
  HAECHI_EXPECTS(node < nodes_);
  return borrowed_this_period_[node];
}

void BorrowLedger::RecordGrant(std::uint32_t lender, std::uint32_t borrower,
                               std::int64_t tokens) {
  HAECHI_EXPECTS(lender < nodes_ && borrower < nodes_ && lender != borrower);
  HAECHI_EXPECTS(tokens > 0);
  outstanding_[PairIndex(lender, borrower)] += tokens;
  borrowed_this_period_[borrower] += tokens;
  total_granted_ += tokens;
}

void BorrowLedger::RecordRepay(std::uint32_t borrower, std::uint32_t lender,
                               std::int64_t tokens) {
  HAECHI_EXPECTS(lender < nodes_ && borrower < nodes_ && lender != borrower);
  HAECHI_EXPECTS(tokens > 0);
  std::int64_t& owed = outstanding_[PairIndex(lender, borrower)];
  // C2 by construction: a repayment can never exceed the loan.
  HAECHI_ASSERT(tokens <= owed);
  owed -= tokens;
  total_repaid_ += tokens;
}

std::int64_t BorrowLedger::Outstanding(std::uint32_t lender,
                                       std::uint32_t borrower) const {
  HAECHI_EXPECTS(lender < nodes_ && borrower < nodes_);
  return outstanding_[PairIndex(lender, borrower)];
}

std::int64_t BorrowLedger::OwedBy(std::uint32_t borrower) const {
  HAECHI_EXPECTS(borrower < nodes_);
  std::int64_t total = 0;
  for (std::uint32_t l = 0; l < nodes_; ++l) {
    total += outstanding_[PairIndex(l, borrower)];
  }
  return total;
}

std::int64_t BorrowLedger::OwedTo(std::uint32_t lender) const {
  HAECHI_EXPECTS(lender < nodes_);
  std::int64_t total = 0;
  for (std::uint32_t b = 0; b < nodes_; ++b) {
    total += outstanding_[PairIndex(lender, b)];
  }
  return total;
}

std::int64_t BorrowLedger::TotalOutstanding() const {
  std::int64_t total = 0;
  for (const std::int64_t owed : outstanding_) total += owed;
  return total;
}

void BorrowLedger::AdaptQuota(std::uint32_t node, std::int64_t borrowed,
                              std::int64_t unused) {
  HAECHI_EXPECTS(node < nodes_);
  if (config_.policy != BorrowPolicy::kAdaptive) return;
  if (borrowed <= 0) return;  // no consumption signal this period
  if (unused <= borrowed / 8) {
    // The borrowed tokens were (almost) fully consumed: real demand, so
    // allow the node to import more next period.
    quota_[node] = std::min(quota_[node] * 2, config_.max_quota);
  } else if (unused > borrowed / 2) {
    // Over half the import sat idle at the boundary: over-borrowing.
    quota_[node] = std::max(quota_[node] / 2, config_.min_quota);
  }
}

void BorrowLedger::ResetPeriod() {
  std::fill(borrowed_this_period_.begin(), borrowed_this_period_.end(), 0);
}

}  // namespace haechi::cluster
