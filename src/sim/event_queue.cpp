#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace haechi::sim {

EventId BinaryHeapEventQueue::Schedule(SimTime time, EventFn fn) {
  HAECHI_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{time, id, std::move(fn)});
  SiftUp(heap_.size() - 1);
  done_.push_back(false);
  ++live_;
  return id;
}

bool BinaryHeapEventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_ || IsDone(id)) return false;
  MarkDone(id);
  HAECHI_ASSERT(live_ > 0);
  --live_;
  return true;
}

void BinaryHeapEventQueue::DropCancelledTop() {
  // Entries are removed from the heap lazily, so a heap entry whose id is
  // marked done but which is still physically present is a cancelled entry.
  while (!heap_.empty() && IsDone(heap_.front().id)) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
}

Event BinaryHeapEventQueue::PopNext() {
  DropCancelledTop();
  if (heap_.empty()) return {};
  Event out{heap_.front().time, heap_.front().id,
            std::move(heap_.front().fn)};
  MarkDone(out.id);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  HAECHI_ASSERT(live_ > 0);
  --live_;
  return out;
}

SimTime BinaryHeapEventQueue::PeekTime() {
  DropCancelledTop();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

void BinaryHeapEventQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!EarlierThan(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void BinaryHeapEventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && EarlierThan(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && EarlierThan(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace haechi::sim
