// Priority queues of timestamped events.
//
// Two interchangeable implementations are provided:
//  * BinaryHeapEventQueue — vector-based binary heap, the default;
//  * HierarchicalTimingWheel (timing_wheel.hpp) — O(1) amortised insert/pop
//    for the dense short-horizon timers this simulator generates.
// Both deliver events in (time, insertion-sequence) order so simulation
// results are identical regardless of the queue chosen.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace haechi::sim {

/// Handle for cancelling a scheduled event. Ids are unique per queue and
/// never reused within a run.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Callback invoked when an event fires. Fires at most once.
using EventFn = std::function<void()>;

struct Event {
  SimTime time = 0;
  EventId id = kInvalidEventId;  // doubles as the insertion sequence number
  EventFn fn;
};

/// Interface shared by the queue implementations. Not thread-safe: the
/// simulation is single-threaded by design (see DESIGN.md §1).
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Enqueues `fn` to fire at absolute time `time`.
  virtual EventId Schedule(SimTime time, EventFn fn) = 0;

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  virtual bool Cancel(EventId id) = 0;

  /// Removes and returns the earliest pending event, skipping cancelled
  /// entries. Returns an Event with id == kInvalidEventId when empty.
  virtual Event PopNext() = 0;

  /// Earliest pending time, or kSimTimeMax when empty.
  [[nodiscard]] virtual SimTime PeekTime() = 0;

  [[nodiscard]] virtual bool Empty() const = 0;

  /// Number of live (non-cancelled, non-fired) events.
  [[nodiscard]] virtual std::size_t Size() const = 0;
};

/// Binary-heap event queue ordered by (time, id). Cancellation is lazy:
/// cancelled entries are dropped when they reach the top, keeping Cancel
/// O(1). A one-bit-per-event table gives Cancel exact semantics (it can tell
/// fired ids from pending ones without scanning the heap).
class BinaryHeapEventQueue final : public EventQueue {
 public:
  EventId Schedule(SimTime time, EventFn fn) override;
  bool Cancel(EventId id) override;
  Event PopNext() override;
  [[nodiscard]] SimTime PeekTime() override;
  [[nodiscard]] bool Empty() const override { return live_ == 0; }
  [[nodiscard]] std::size_t Size() const override { return live_; }

 private:
  // Hand-rolled heap (rather than std::priority_queue) so the callback can
  // be moved out of the popped element instead of copied from a const top().
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  static bool EarlierThan(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void DropCancelledTop();
  [[nodiscard]] bool IsDone(EventId id) const {
    return done_[static_cast<std::size_t>(id - 1)];
  }
  void MarkDone(EventId id) { done_[static_cast<std::size_t>(id - 1)] = true; }

  std::vector<Entry> heap_;
  std::vector<bool> done_;  // indexed by id-1: fired or cancelled
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace haechi::sim
