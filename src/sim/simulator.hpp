// The discrete-event simulator every Haechi component runs on.
//
// Single-threaded and deterministic: all concurrency in the modelled system
// (client threads, NIC DMA engines, the QoS monitor) is expressed as events
// on one virtual clock. Determinism is what lets the test suite make exact
// assertions about token accounting and reservation guarantees.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace haechi::sim {

enum class QueueKind { kBinaryHeap, kTimingWheel };

class Simulator {
 public:
  explicit Simulator(QueueKind kind = QueueKind::kBinaryHeap);

  /// Current virtual time. Starts at 0.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `time`; times in the past fire
  /// as soon as control returns to the event loop.
  EventId ScheduleAt(SimTime time, EventFn fn) {
    return queue_->Schedule(time < now_ ? now_ : time, std::move(fn));
  }

  /// Schedules `fn` after a relative delay (>= 0).
  EventId ScheduleAfter(SimDuration delay, EventFn fn) {
    HAECHI_EXPECTS(delay >= 0);
    return queue_->Schedule(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool Cancel(EventId id) { return queue_->Cancel(id); }

  /// Runs events until the queue empties. Returns the number of events run.
  std::uint64_t Run() { return RunUntil(kSimTimeMax); }

  /// Runs events with time <= deadline; afterwards Now() == deadline unless
  /// the queue drained first (then Now() is the last event time). Events at
  /// exactly `deadline` are run.
  std::uint64_t RunUntil(SimTime deadline);

  /// Executes exactly one event if available. Returns false when drained.
  bool Step();

  [[nodiscard]] bool Idle() const { return queue_->Empty(); }
  [[nodiscard]] std::size_t PendingEvents() const { return queue_->Size(); }
  [[nodiscard]] std::uint64_t EventsRun() const { return events_run_; }

  /// Installs a coarse progress callback: `fn(Now(), EventsRun())` after
  /// every `every_events` events inside RunUntil (haechi_sim's live status
  /// heartbeat). `every_events == 0` (the default) removes it; the loop
  /// then pays nothing but an integer test. The callback must not schedule
  /// or cancel events.
  void SetProgressHook(std::uint64_t every_events,
                       std::function<void(SimTime, std::uint64_t)> fn) {
    progress_every_ = fn ? every_events : 0;
    progress_fn_ = std::move(fn);
  }

 private:
  std::unique_ptr<EventQueue> queue_;
  SimTime now_ = 0;
  std::uint64_t events_run_ = 0;
  std::uint64_t progress_every_ = 0;
  std::function<void(SimTime, std::uint64_t)> progress_fn_;
};

/// A cancellable repeating timer: fires `fn(now)` every `interval` starting
/// at `start`. Used for the paper's 1 ms token-management, reporting, and
/// check-interval loops. Stop() (or destruction) halts it.
class PeriodicTimer {
 public:
  using TickFn = std::function<void()>;

  PeriodicTimer(Simulator& sim, SimDuration interval, TickFn fn)
      : sim_(sim), interval_(interval), fn_(std::move(fn)) {
    HAECHI_EXPECTS(interval > 0);
    HAECHI_EXPECTS(fn_ != nullptr);
  }

  ~PeriodicTimer() { Stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; the first tick fires at Now() + interval (or at
  /// `first_delay` if given). No-op when already running.
  void Start() { Start(interval_); }
  void Start(SimDuration first_delay);

  /// Disarms the timer; pending tick is cancelled.
  void Stop();

  [[nodiscard]] bool Running() const { return pending_ != kInvalidEventId; }

 private:
  void Fire();

  Simulator& sim_;
  SimDuration interval_;
  TickFn fn_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace haechi::sim
