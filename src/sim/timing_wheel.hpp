// Hierarchical timing wheel: an EventQueue with O(1) amortised insert and
// pop for short-horizon timers, which dominate this simulator's load
// (service completions microseconds out, 1 ms protocol timers).
//
// Four levels of 256 slots each; ticks default to 1 µs. Events within one
// tick are ordered exactly by (time, id) when the slot is drained, so the
// wheel delivers the *identical* event order as BinaryHeapEventQueue — the
// queues are interchangeable without changing simulation results (verified
// by tests/sim_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"

namespace haechi::sim {

class HierarchicalTimingWheel final : public EventQueue {
 public:
  /// `tick` is the wheel granularity in nanoseconds (default 1 µs). Events
  /// are still timed exactly; the granularity only affects bucketing.
  explicit HierarchicalTimingWheel(SimDuration tick = kMicrosecond);

  EventId Schedule(SimTime time, EventFn fn) override;
  bool Cancel(EventId id) override;
  Event PopNext() override;
  [[nodiscard]] SimTime PeekTime() override;
  [[nodiscard]] bool Empty() const override { return live_ == 0; }
  [[nodiscard]] std::size_t Size() const override { return live_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint64_t kSlots = 1ULL << kSlotBits;  // 256
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  // Ticks covered by the whole wheel (levels 0..3).
  static constexpr std::uint64_t kCapacityTicks = 1ULL
                                                  << (kSlotBits * kLevels);

  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };

  [[nodiscard]] std::uint64_t TickOf(SimTime time) const {
    return static_cast<std::uint64_t>(time) / tick_ns_;
  }
  [[nodiscard]] bool IsDone(EventId id) const {
    return done_[static_cast<std::size_t>(id - 1)];
  }
  void MarkDone(EventId id) { done_[static_cast<std::size_t>(id - 1)] = true; }

  /// Places an entry into the wheel relative to the current cursor. The
  /// caller guarantees cursor_ <= tick < cursor_ + kCapacityTicks; entries
  /// whose tick equals the cursor go straight to ready_.
  void PlaceInWheel(Entry entry);

  /// Inserts a due entry into ready_, keeping (time, id) ascending order.
  void PushReady(Entry entry);

  /// Moves the cursor forward until ready_ has at least one live entry or
  /// every structure is empty.
  void AdvanceUntilReady();

  /// Drains level `level`'s slot at the cursor's digit into lower levels
  /// (level 0 entries land in ready_).
  void CascadeLevel(int level);

  /// Pulls overflow entries that now fit into the wheel horizon.
  void PullOverflow();

  void DropDoneReadyFront();

  void SetOccupied(int level, std::uint64_t slot) {
    occupancy_[level][slot >> 6] |= (1ULL << (slot & 63));
  }
  void ClearOccupied(int level, std::uint64_t slot) {
    occupancy_[level][slot >> 6] &= ~(1ULL << (slot & 63));
  }
  /// Lowest occupied slot index >= from at `level`, or kSlots when none.
  [[nodiscard]] std::uint64_t NextOccupied(int level,
                                           std::uint64_t from) const;

  std::uint64_t tick_ns_;    // nanoseconds per tick
  std::uint64_t cursor_ = 0; // current tick; slots before it are drained
  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> slots_;
  std::array<std::array<std::uint64_t, kSlots / 64>, kLevels> occupancy_{};
  std::multimap<std::uint64_t, Entry> overflow_;  // tick -> entry
  std::deque<Entry> ready_;                       // ascending (time, id)
  std::vector<bool> done_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;      // excludes cancelled
  std::size_t in_wheel_ = 0;  // physical entries in slots (incl. cancelled)
};

}  // namespace haechi::sim
