#include "sim/timing_wheel.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/assert.hpp"

namespace haechi::sim {

HierarchicalTimingWheel::HierarchicalTimingWheel(SimDuration tick)
    : tick_ns_(static_cast<std::uint64_t>(tick)) {
  HAECHI_EXPECTS(tick > 0);
}

EventId HierarchicalTimingWheel::Schedule(SimTime time, EventFn fn) {
  HAECHI_EXPECTS(fn != nullptr);
  HAECHI_EXPECTS(time >= 0);
  const EventId id = next_id_++;
  done_.push_back(false);
  ++live_;
  Entry entry{time, id, std::move(fn)};
  const std::uint64_t tick = TickOf(time);
  if (tick <= cursor_) {
    // Due now (or scheduled "in the past"): bypass the wheel.
    PushReady(std::move(entry));
  } else if (tick - cursor_ < kCapacityTicks) {
    PlaceInWheel(std::move(entry));
  } else {
    overflow_.emplace(tick, std::move(entry));
  }
  return id;
}

bool HierarchicalTimingWheel::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_ || IsDone(id)) return false;
  MarkDone(id);
  HAECHI_ASSERT(live_ > 0);
  --live_;
  return true;
}

void HierarchicalTimingWheel::PlaceInWheel(Entry entry) {
  const std::uint64_t tick = TickOf(entry.time);
  HAECHI_ASSERT(tick > cursor_ && tick - cursor_ < kCapacityTicks);
  const std::uint64_t delta = tick - cursor_;
  int level = 0;
  while (delta >= (1ULL << (kSlotBits * (level + 1)))) ++level;
  HAECHI_ASSERT(level < kLevels);
  const std::uint64_t slot = (tick >> (kSlotBits * level)) & kSlotMask;
  slots_[level][slot].push_back(std::move(entry));
  SetOccupied(level, slot);
  ++in_wheel_;
}

void HierarchicalTimingWheel::PushReady(Entry entry) {
  // Common case: entries arrive in non-decreasing (time, id) order.
  if (ready_.empty() || ready_.back().time < entry.time ||
      (ready_.back().time == entry.time && ready_.back().id < entry.id)) {
    ready_.push_back(std::move(entry));
    return;
  }
  const auto pos = std::lower_bound(
      ready_.begin(), ready_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.id < b.id;
      });
  ready_.insert(pos, std::move(entry));
}

std::uint64_t HierarchicalTimingWheel::NextOccupied(int level,
                                                    std::uint64_t from) const {
  for (std::uint64_t word = from >> 6; word < kSlots / 64; ++word) {
    std::uint64_t bits = occupancy_[level][word];
    if (word == from >> 6) bits &= ~0ULL << (from & 63);
    if (bits != 0) {
      return word * 64 +
             static_cast<std::uint64_t>(std::countr_zero(bits));
    }
  }
  return kSlots;
}

void HierarchicalTimingWheel::CascadeLevel(int level) {
  const std::uint64_t slot = (cursor_ >> (kSlotBits * level)) & kSlotMask;
  auto& bucket = slots_[level][slot];
  if (bucket.empty()) return;
  std::vector<Entry> pending;
  pending.swap(bucket);
  ClearOccupied(level, slot);
  in_wheel_ -= pending.size();
  for (auto& entry : pending) {
    if (IsDone(entry.id)) continue;  // cancelled while parked
    const std::uint64_t tick = TickOf(entry.time);
    HAECHI_ASSERT(tick >= cursor_);
    if (tick == cursor_) {
      // NOT straight to ready_: the level-0 slot for this tick may already
      // hold wrap-placed entries (scheduled when the cursor was less than
      // one block behind), and those must sort together with the cascaded
      // ones in the slot drain — bypassing it would pop this entry before
      // earlier-timed parked ones.
      const std::uint64_t slot0 = tick & kSlotMask;
      slots_[0][slot0].push_back(std::move(entry));
      SetOccupied(0, slot0);
      ++in_wheel_;
    } else {
      PlaceInWheel(std::move(entry));
    }
  }
}

void HierarchicalTimingWheel::PullOverflow() {
  // Keep a one-top-level-block margin so pulled entries always fit.
  const std::uint64_t horizon =
      cursor_ + kCapacityTicks - (1ULL << (kSlotBits * (kLevels - 1)));
  while (!overflow_.empty() && overflow_.begin()->first < horizon) {
    Entry entry = std::move(overflow_.begin()->second);
    const std::uint64_t tick = overflow_.begin()->first;
    overflow_.erase(overflow_.begin());
    if (IsDone(entry.id)) continue;
    if (tick == cursor_) {
      // Same merge discipline as CascadeLevel: due-now entries join the
      // level-0 slot so they sort with anything already parked there.
      const std::uint64_t slot0 = tick & kSlotMask;
      slots_[0][slot0].push_back(std::move(entry));
      SetOccupied(0, slot0);
      ++in_wheel_;
    } else if (tick < cursor_) {
      PushReady(std::move(entry));
    } else {
      PlaceInWheel(std::move(entry));
    }
  }
}

void HierarchicalTimingWheel::DropDoneReadyFront() {
  while (!ready_.empty() && IsDone(ready_.front().id)) ready_.pop_front();
}

void HierarchicalTimingWheel::AdvanceUntilReady() {
  DropDoneReadyFront();
  while (ready_.empty()) {
    if (live_ == 0) return;
    if (in_wheel_ == 0) {
      if (overflow_.empty()) {
        // live_ > 0 entries must then be cancelled residue in ready_ —
        // but ready_ is empty, so the accounting is broken.
        HAECHI_UNREACHABLE("live events but no storage holds them");
      }
      // Jump straight to the first overflow entry.
      cursor_ = overflow_.begin()->first;
      PullOverflow();
      DropDoneReadyFront();
      continue;
    }
    // Find the next occupied level-0 slot within the current block.
    const std::uint64_t pos = cursor_ & kSlotMask;
    const std::uint64_t slot = NextOccupied(0, pos);
    if (slot < kSlots) {
      cursor_ = (cursor_ & ~kSlotMask) + slot;
      auto& bucket = slots_[0][slot];
      std::vector<Entry> drained;
      drained.swap(bucket);
      ClearOccupied(0, slot);
      in_wheel_ -= drained.size();
      std::sort(drained.begin(), drained.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.time != b.time) return a.time < b.time;
                  return a.id < b.id;
                });
      for (auto& entry : drained) {
        if (IsDone(entry.id)) continue;
        HAECHI_ASSERT(TickOf(entry.time) == cursor_);
        ready_.push_back(std::move(entry));
      }
      DropDoneReadyFront();
      continue;
    }
    // Level-0 block exhausted: step to the next block boundary and cascade
    // every level whose digit turned over (highest level first so entries
    // trickle down through lower levels correctly).
    cursor_ = (cursor_ | kSlotMask) + 1;
    for (int level = kLevels - 1; level >= 1; --level) {
      const std::uint64_t span = 1ULL << (kSlotBits * level);
      if (cursor_ % span == 0) {
        if (level == kLevels - 1) PullOverflow();
        CascadeLevel(level);
      }
    }
    DropDoneReadyFront();
  }
}

Event HierarchicalTimingWheel::PopNext() {
  AdvanceUntilReady();
  if (ready_.empty()) return {};
  Entry entry = std::move(ready_.front());
  ready_.pop_front();
  MarkDone(entry.id);
  HAECHI_ASSERT(live_ > 0);
  --live_;
  return Event{entry.time, entry.id, std::move(entry.fn)};
}

SimTime HierarchicalTimingWheel::PeekTime() {
  AdvanceUntilReady();
  return ready_.empty() ? kSimTimeMax : ready_.front().time;
}

}  // namespace haechi::sim
