#include "sim/simulator.hpp"

#include "sim/timing_wheel.hpp"

namespace haechi::sim {

Simulator::Simulator(QueueKind kind) {
  switch (kind) {
    case QueueKind::kBinaryHeap:
      queue_ = std::make_unique<BinaryHeapEventQueue>();
      break;
    case QueueKind::kTimingWheel:
      queue_ = std::make_unique<HierarchicalTimingWheel>();
      break;
  }
}

std::uint64_t Simulator::RunUntil(SimTime deadline) {
  std::uint64_t ran = 0;
  while (queue_->PeekTime() <= deadline) {
    Event event = queue_->PopNext();
    if (event.id == kInvalidEventId) break;
    HAECHI_ASSERT(event.time >= now_);
    now_ = event.time;
    event.fn();
    ++ran;
    if (progress_every_ != 0 &&
        (events_run_ + ran) % progress_every_ == 0) {
      progress_fn_(now_, events_run_ + ran);
    }
  }
  if (deadline != kSimTimeMax && now_ < deadline) now_ = deadline;
  events_run_ += ran;
  return ran;
}

bool Simulator::Step() {
  Event event = queue_->PopNext();
  if (event.id == kInvalidEventId) return false;
  HAECHI_ASSERT(event.time >= now_);
  now_ = event.time;
  event.fn();
  ++events_run_;
  return true;
}

void PeriodicTimer::Start(SimDuration first_delay) {
  if (Running()) return;
  HAECHI_EXPECTS(first_delay >= 0);
  pending_ = sim_.ScheduleAfter(first_delay, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (!Running()) return;
  sim_.Cancel(pending_);
  pending_ = kInvalidEventId;
}

void PeriodicTimer::Fire() {
  // Rearm before invoking the callback so the callback may Stop() us.
  pending_ = sim_.ScheduleAfter(interval_, [this] { Fire(); });
  fn_();
}

}  // namespace haechi::sim
