// Unit tests for the simulated verbs layer: memory registration and
// protection, one-sided READ/WRITE data movement, atomics, SEND/RECV,
// completion ordering, and error (NAK) paths.
#include <gtest/gtest.h>

#include <cstring>

#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::rdma {
namespace {

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest()
      : fabric_(sim_, net::ModelParams{}, /*seed=*/7),
        server_(fabric_.AddNode("server", NodeRole::kData)),
        client_(fabric_.AddNode("client")),
        client_cq_(client_.CreateCq()),
        server_cq_(server_.CreateCq()),
        client_qp_(client_.CreateQp(client_cq_, client_cq_)),
        server_qp_(server_.CreateQp(server_cq_, server_cq_)) {
    fabric_.Connect(client_qp_, server_qp_);
  }

  std::vector<WorkCompletion> RunAndPoll(CompletionQueue& cq) {
    sim_.Run();
    return cq.Poll(64);
  }

  sim::Simulator sim_;
  Fabric fabric_;
  Node& server_;
  Node& client_;
  CompletionQueue& client_cq_;
  CompletionQueue& server_cq_;
  QueuePair& client_qp_;
  QueuePair& server_qp_;
};

TEST_F(RdmaTest, MemoryRegionCoversExactBounds) {
  std::vector<std::byte> buf(128);
  const MemoryRegion& mr =
      server_.pd().Register(std::span<std::byte>(buf), access::kAll);
  EXPECT_TRUE(mr.Covers(mr.remote_addr(), 128));
  EXPECT_TRUE(mr.Covers(mr.remote_addr() + 64, 64));
  EXPECT_FALSE(mr.Covers(mr.remote_addr() + 64, 65));
  EXPECT_FALSE(mr.Covers(mr.remote_addr() - 1, 1));
  EXPECT_NE(mr.lkey(), mr.rkey());
}

TEST_F(RdmaTest, ProtectionDomainLookups) {
  std::vector<std::byte> buf(64);
  const MemoryRegion& mr =
      server_.pd().Register(std::span<std::byte>(buf), access::kRemoteRead);
  EXPECT_EQ(server_.pd().FindByRkey(mr.rkey()), &mr);
  EXPECT_EQ(server_.pd().FindByRkey(mr.rkey() + 999), nullptr);
  EXPECT_EQ(server_.pd().FindCovering(buf.data() + 10, 20), &mr);
  EXPECT_EQ(server_.pd().FindCovering(buf.data() + 60, 10), nullptr);
  // Deregister frees the MR (the PD owns it) — snapshot the rkey first.
  const std::uint32_t rkey = mr.rkey();
  ASSERT_TRUE(server_.pd().Deregister(rkey).ok());
  EXPECT_EQ(server_.pd().FindByRkey(rkey), nullptr);
  EXPECT_FALSE(server_.pd().Deregister(12345).ok());
}

TEST_F(RdmaTest, ReadMovesRemoteBytes) {
  std::vector<std::byte> remote(256);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i);
  }
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(256);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);

  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local), rmr.remote_addr(),
                            rmr.rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(wcs[0].wr_id, 1u);
  EXPECT_EQ(wcs[0].opcode, Opcode::kRead);
  EXPECT_EQ(wcs[0].byte_len, 256u);
  EXPECT_EQ(std::memcmp(local.data(), remote.data(), 256), 0);
}

TEST_F(RdmaTest, WriteMovesLocalBytes) {
  std::vector<std::byte> remote(64, std::byte{0});
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(64, std::byte{0xAB});
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);

  ASSERT_TRUE(client_qp_
                  .PostWrite(2, std::span<const std::byte>(local),
                             rmr.remote_addr(), rmr.rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(remote[0], std::byte{0xAB});
  EXPECT_EQ(remote[63], std::byte{0xAB});
}

TEST_F(RdmaTest, WriteSnapshotsPayloadAtPostTime) {
  std::vector<std::byte> remote(8, std::byte{0});
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(8, std::byte{0x11});
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostWrite(3, std::span<const std::byte>(local),
                             rmr.remote_addr(), rmr.rkey())
                  .ok());
  // Mutate the source buffer after posting: the DMA gather already copied.
  local[0] = std::byte{0xFF};
  sim_.Run();
  EXPECT_EQ(remote[0], std::byte{0x11});
}

TEST_F(RdmaTest, FetchAddReturnsOldValueAndAdds) {
  alignas(8) std::uint64_t word = 100;
  auto span = std::span<std::byte>(reinterpret_cast<std::byte*>(&word), 8);
  const MemoryRegion& rmr = server_.pd().Register(span, access::kAll);

  ASSERT_TRUE(client_qp_.PostFetchAdd(4, rmr.remote_addr(), rmr.rkey(), 42)
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_TRUE(wcs[0].ok());
  EXPECT_EQ(wcs[0].atomic_result, 100u);
  EXPECT_EQ(word, 142u);
}

TEST_F(RdmaTest, FetchAddWithNegativeDelta) {
  alignas(8) std::uint64_t word = 50;
  auto span = std::span<std::byte>(reinterpret_cast<std::byte*>(&word), 8);
  const MemoryRegion& rmr = server_.pd().Register(span, access::kAll);
  ASSERT_TRUE(
      client_qp_.PostFetchAdd(5, rmr.remote_addr(), rmr.rkey(), -80).ok());
  sim_.Run();
  auto wcs = client_cq_.Poll(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].atomic_result, 50u);
  EXPECT_EQ(static_cast<std::int64_t>(word), -30);
}

TEST_F(RdmaTest, AtomicsAreSequencedAtTheResponder) {
  // Two FAAs racing from the same client: the second must see the first's
  // effect (RNIC atomics serialise at the responder).
  alignas(8) std::uint64_t word = 0;
  auto span = std::span<std::byte>(reinterpret_cast<std::byte*>(&word), 8);
  const MemoryRegion& rmr = server_.pd().Register(span, access::kAll);
  ASSERT_TRUE(
      client_qp_.PostFetchAdd(6, rmr.remote_addr(), rmr.rkey(), 10).ok());
  ASSERT_TRUE(
      client_qp_.PostFetchAdd(7, rmr.remote_addr(), rmr.rkey(), 10).ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].atomic_result, 0u);
  EXPECT_EQ(wcs[1].atomic_result, 10u);
  EXPECT_EQ(word, 20u);
}

TEST_F(RdmaTest, CompareSwapSwapsOnlyOnMatch) {
  alignas(8) std::uint64_t word = 7;
  auto span = std::span<std::byte>(reinterpret_cast<std::byte*>(&word), 8);
  const MemoryRegion& rmr = server_.pd().Register(span, access::kAll);

  ASSERT_TRUE(client_qp_
                  .PostCompareSwap(8, rmr.remote_addr(), rmr.rkey(),
                                   /*expected=*/7, /*desired=*/99)
                  .ok());
  ASSERT_TRUE(client_qp_
                  .PostCompareSwap(9, rmr.remote_addr(), rmr.rkey(),
                                   /*expected=*/7, /*desired=*/55)
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].atomic_result, 7u);   // matched, swapped
  EXPECT_EQ(wcs[1].atomic_result, 99u);  // mismatch, no swap
  EXPECT_EQ(word, 99u);
}

TEST_F(RdmaTest, InvalidRkeyCompletesWithError) {
  std::vector<std::byte> local(32);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostRead(10, std::span<std::byte>(local),
                            0xdeadbeef, /*rkey=*/4242)
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteInvalidRkey);
  EXPECT_FALSE(wcs[0].ok());
}

TEST_F(RdmaTest, OutOfBoundsCompletesWithError) {
  std::vector<std::byte> remote(64);
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(128);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostRead(11, std::span<std::byte>(local),
                            rmr.remote_addr(), rmr.rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteOutOfRange);
}

TEST_F(RdmaTest, MissingAccessFlagCompletesWithError) {
  std::vector<std::byte> remote(64);
  const MemoryRegion& rmr = server_.pd().Register(
      std::span<std::byte>(remote), access::kRemoteRead);  // no write
  std::vector<std::byte> local(64);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostWrite(12, std::span<const std::byte>(local),
                             rmr.remote_addr(), rmr.rkey())
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteAccessError);
}

TEST_F(RdmaTest, MisalignedAtomicCompletesWithError) {
  std::vector<std::byte> remote(64);
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  ASSERT_TRUE(client_qp_
                  .PostFetchAdd(13, rmr.remote_addr() + 1, rmr.rkey(), 1)
                  .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteMisaligned);
}

TEST_F(RdmaTest, LocalValidationFailsSynchronously) {
  std::vector<std::byte> unregistered(32);
  const Status s = client_qp_.PostRead(14, std::span<std::byte>(unregistered),
                                       0x1000, 1);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST_F(RdmaTest, PostOnDisconnectedQpFails) {
  auto& cq = client_.CreateCq();
  auto& lonely = client_.CreateQp(cq, cq);
  std::vector<std::byte> local(8);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  const Status s = lonely.PostRead(15, std::span<std::byte>(local), 0x1000, 1);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RdmaTest, SendQueueDepthEnforced) {
  auto& cq_a = client_.CreateCq();
  auto& cq_b = server_.CreateCq();
  auto& shallow = client_.CreateQp(cq_a, cq_a, /*send_queue_depth=*/2);
  auto& peer = server_.CreateQp(cq_b, cq_b);
  fabric_.Connect(shallow, peer);
  std::vector<std::byte> payload(16);
  EXPECT_TRUE(shallow.PostSend(1, payload).ok());
  EXPECT_TRUE(shallow.PostSend(2, payload).ok());
  const Status s = shallow.PostSend(3, payload);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shallow.InFlight(), 2u);
  sim_.Run();
  EXPECT_EQ(shallow.InFlight(), 0u);
  EXPECT_TRUE(shallow.PostSend(4, payload).ok());
  sim_.Run();
}

TEST_F(RdmaTest, SendRecvDeliversPayload) {
  std::vector<std::byte> recv_buf(64);
  ASSERT_TRUE(server_qp_.PostRecv(100, std::span<std::byte>(recv_buf)).ok());
  const char msg[] = "hello haechi";
  ASSERT_TRUE(client_qp_
                  .PostSend(16, std::span<const std::byte>(
                                    reinterpret_cast<const std::byte*>(msg),
                                    sizeof(msg)))
                  .ok());
  sim_.Run();
  auto recv_wcs = server_cq_.Poll(4);
  // Recv CQE plus the client's send CQE live in different CQs.
  ASSERT_EQ(recv_wcs.size(), 1u);
  EXPECT_EQ(recv_wcs[0].opcode, Opcode::kRecv);
  EXPECT_EQ(recv_wcs[0].wr_id, 100u);
  EXPECT_EQ(recv_wcs[0].byte_len, sizeof(msg));
  EXPECT_STREQ(reinterpret_cast<const char*>(recv_buf.data()), msg);
}

TEST_F(RdmaTest, SendBeforeRecvIsParkedNotLost) {
  const char msg[] = "early";
  ASSERT_TRUE(client_qp_
                  .PostSend(17, std::span<const std::byte>(
                                    reinterpret_cast<const std::byte*>(msg),
                                    sizeof(msg)))
                  .ok());
  sim_.Run();
  EXPECT_EQ(server_cq_.Pending(), 0u);
  std::vector<std::byte> recv_buf(64);
  ASSERT_TRUE(server_qp_.PostRecv(101, std::span<std::byte>(recv_buf)).ok());
  auto wcs = server_cq_.Poll(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_STREQ(reinterpret_cast<const char*>(recv_buf.data()), msg);
}

TEST_F(RdmaTest, CompletionsArriveInPostOrder) {
  std::vector<std::byte> remote(8192);
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(8192);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  // Mix of sizes: big read, small write, atomic — same QP, so completions
  // must arrive in post order (RC ordering).
  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local.data(), 4096),
                            rmr.remote_addr(), rmr.rkey())
                  .ok());
  ASSERT_TRUE(client_qp_
                  .PostWrite(2, std::span<const std::byte>(local.data(), 8),
                             rmr.remote_addr() + 4096, rmr.rkey())
                  .ok());
  ASSERT_TRUE(
      client_qp_.PostFetchAdd(3, rmr.remote_addr() + 4104, rmr.rkey(), 1)
          .ok());
  auto wcs = RunAndPoll(client_cq_);
  ASSERT_EQ(wcs.size(), 3u);
  EXPECT_EQ(wcs[0].wr_id, 1u);
  EXPECT_EQ(wcs[1].wr_id, 2u);
  EXPECT_EQ(wcs[2].wr_id, 3u);
}

TEST_F(RdmaTest, TimingMatchesCalibratedModel) {
  std::vector<std::byte> remote(4096);
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> local(4096);
  client_.pd().Register(std::span<std::byte>(local),
                        access::kLocalRead | access::kLocalWrite);
  net::ModelParams params;  // defaults match the fabric's
  ASSERT_TRUE(client_qp_
                  .PostRead(1, std::span<std::byte>(local), rmr.remote_addr(),
                            rmr.rkey())
                  .ok());
  sim_.Run();
  // Unloaded 4 KB read RTT = client NIC + link + server NIC + link,
  // plus ±2% jitter.
  const double expected =
      static_cast<double>(params.ClientNicService(4096) +
                          params.ServerNicService(4096) +
                          2 * params.link_latency);
  EXPECT_NEAR(static_cast<double>(sim_.Now()), expected, expected * 0.03);
}

TEST_F(RdmaTest, CqCallbackConsumesCompletions) {
  std::vector<std::byte> remote(8);
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  int called = 0;
  client_cq_.SetNotify([&](const WorkCompletion& wc) {
    EXPECT_TRUE(wc.ok());
    ++called;
  });
  ASSERT_TRUE(
      client_qp_.PostFetchAdd(1, rmr.remote_addr(), rmr.rkey(), 1).ok());
  sim_.Run();
  EXPECT_EQ(called, 1);
  EXPECT_EQ(client_cq_.Pending(), 0u);  // callback mode bypasses the buffer
}

TEST_F(RdmaTest, SmallWritesCarryDataEvenWithCopiesDisabled) {
  fabric_.set_copy_payloads(false);
  std::vector<std::byte> remote(4096 + 64, std::byte{0});
  const MemoryRegion& rmr =
      server_.pd().Register(std::span<std::byte>(remote), access::kAll);
  std::vector<std::byte> small(8, std::byte{0x7});
  std::vector<std::byte> big(4096, std::byte{0x9});
  client_.pd().Register(std::span<std::byte>(small),
                        access::kLocalRead | access::kLocalWrite);
  client_.pd().Register(std::span<std::byte>(big),
                        access::kLocalRead | access::kLocalWrite);
  ASSERT_TRUE(client_qp_
                  .PostWrite(1, std::span<const std::byte>(small),
                             rmr.remote_addr(), rmr.rkey())
                  .ok());
  ASSERT_TRUE(client_qp_
                  .PostWrite(2, std::span<const std::byte>(big),
                             rmr.remote_addr() + 64, rmr.rkey())
                  .ok());
  sim_.Run();
  EXPECT_EQ(remote[0], std::byte{0x7});   // control write materialised
  EXPECT_EQ(remote[64], std::byte{0x0});  // bulk write skipped (timing-only)
}

TEST_F(RdmaTest, LoopbackConnectionWorks) {
  auto& cq_a = server_.CreateCq();
  auto& cq_b = server_.CreateCq();
  auto& qp_a = server_.CreateQp(cq_a, cq_a);
  auto& qp_b = server_.CreateQp(cq_b, cq_b);
  fabric_.Connect(qp_a, qp_b);
  alignas(8) std::uint64_t word = 5;
  const MemoryRegion& rmr = server_.pd().Register(
      std::span<std::byte>(reinterpret_cast<std::byte*>(&word), 8),
      access::kAll);
  ASSERT_TRUE(qp_a.PostCompareSwap(1, rmr.remote_addr(), rmr.rkey(), 0, 0)
                  .ok());
  sim_.Run();
  auto wcs = cq_a.Poll(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].atomic_result, 5u);  // pure read via CAS(0,0)
  EXPECT_EQ(word, 5u);
}

}  // namespace
}  // namespace haechi::rdma
