// Concurrency stress tests for the threaded runtime's shared primitives.
// Designed to run under ThreadSanitizer (the tsan preset / the matrix
// script's tsan-runtime entry) as well as the default build:
//
//   * N worker threads hammer the global pool (one word, and sharded
//     K-word) with batched FAAs while a monitor thread runs conversion CAS
//     loops, rebalance donor-CAS/receiver-FAA pairs, and period-boundary
//     exchange sweeps — the raw-difference telescoping identity must hold
//     EXACTLY across the shard sum (no token minted or lost, ever);
//   * two writers (client report + monitor prime) collide on one seqlock'd
//     report slot while readers spin — no torn snapshot may escape;
//   * Recorder::SetTap install/removal races concurrent emitters — the
//     PR 3 regression: the old tap must never run after SetTap returns,
//     and must never be destroyed mid-call.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/shared_region.hpp"
#include "runtime/threaded_fabric.hpp"

namespace haechi {
namespace {

// The paper's step-T3 contention pattern: every worker FAAs -B and clamps
// its grant to [0, B]; the monitor concurrently re-fills via conversion
// CAS. Conservation is checked with raw differences, which telescope
// exactly no matter how the hardware interleaves the atomics:
//   initial + sum(new - witnessed) - B * total_faas == final.
TEST(RuntimeStressTest, PoolConservationUnderContendedFaaAndConversion) {
  constexpr int kWorkers = 8;
  constexpr int kFaasPerWorker = 40000;
  constexpr std::int64_t kBatch = 50;
  constexpr std::int64_t kInitial = 10000;

  runtime::SharedRegion region(1);
  region.ExchangePool(0, kInitial);

  std::atomic<bool> start{false};
  std::atomic<bool> workers_done{false};
  std::atomic<std::int64_t> total_acquired{0};

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {}
      std::int64_t acquired = 0;
      for (int i = 0; i < kFaasPerWorker; ++i) {
        const std::int64_t before = region.FetchAddPool(0, -kBatch);
        acquired += std::clamp<std::int64_t>(before, 0, kBatch);
      }
      total_acquired.fetch_add(acquired, std::memory_order_relaxed);
    });
  }

  // The monitor: convert (CAS re-filling the word to a budget) at full
  // speed until the workers drain, mirroring ConvertTokensLocked's loop.
  std::int64_t net_minted = 0;
  std::uint64_t conversions = 0;
  std::thread monitor([&] {
    while (!start.load(std::memory_order_acquire)) {}
    while (!workers_done.load(std::memory_order_acquire)) {
      const std::int64_t budget = 5000 + static_cast<std::int64_t>(
                                             conversions % 7) *
                                             1000;
      std::int64_t expected = region.LoadPool(0);
      while (!region.CasPool(0, expected, budget)) {}
      net_minted += budget - expected;
      ++conversions;
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  workers_done.store(true, std::memory_order_release);
  monitor.join();

  const std::int64_t total_faas =
      static_cast<std::int64_t>(kWorkers) * kFaasPerWorker;
  const std::int64_t final_pool = region.LoadPool(0);
  EXPECT_EQ(kInitial + net_minted - kBatch * total_faas, final_pool)
      << "pool word leaked or minted tokens under contention "
      << "(conversions=" << conversions << ")";
  EXPECT_GT(conversions, 0u);
  // Clamped grants can never exceed what was ever made available.
  EXPECT_LE(total_acquired.load(), kInitial + net_minted +
                                       kBatch * total_faas);
}

// The period boundary uses exchange, not load+store: tokens FAA'd between
// the monitor's read and write must show up in the returned word. A plain
// load/store pair here loses FAAs — this is what the exchange prevents.
TEST(RuntimeStressTest, PeriodBoundaryExchangeLosesNoFaa) {
  constexpr int kRounds = 2000;
  constexpr std::int64_t kBatch = 10;
  runtime::SharedRegion region(1);
  region.ExchangePool(0, 0);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> faas{0};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      region.FetchAddPool(0, -kBatch);
      faas.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Each boundary installs `kRefill` and recovers the previous word; the
  // recovered values plus the final word must account for every FAA.
  constexpr std::int64_t kRefill = 100000;
  std::int64_t recovered_sum = 0;
  for (int r = 0; r < kRounds; ++r) {
    recovered_sum += region.ExchangePool(0, kRefill);
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  const std::int64_t final_pool = region.LoadPool(0);
  const std::int64_t total_faas = faas.load();
  // Telescoping: sum of recovered words == installed refills minus all
  // FAA'd tokens minus what's still in the word (give or take the initial
  // zero): r_1 + ... + r_n + final == kRefill * kRounds - kBatch * faas.
  EXPECT_EQ(recovered_sum + final_pool,
            kRefill * static_cast<std::int64_t>(kRounds) -
                kBatch * total_faas);
}

// The sharded pool under the full monitor repertoire: workers FAA their
// home shards while the monitor interleaves conversion CAS sweeps with
// rebalance moves (donor CAS down, receiver FAA up). Rebalances are
// sum-neutral and conversions mint exactly (new - witnessed) per shard, so
// the telescoped shard-sum identity must hold EXACTLY:
//   initial_sum + net_minted - B * total_faas == final_sum.
TEST(RuntimeStressTest, ShardedPoolConservationUnderFaaAndRebalance) {
  constexpr std::size_t kShards = 4;
  constexpr int kWorkers = 8;
  constexpr int kFaasPerWorker = 20000;
  constexpr std::int64_t kBatch = 50;
  constexpr std::int64_t kInitialPerShard = 5000;

  runtime::SharedRegion region(1, kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    region.ExchangePool(s, kInitialPerShard);
  }

  std::atomic<bool> start{false};
  std::atomic<bool> workers_done{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Skewed tenant placement: all workers home on shards 0..1, so
      // shards 2..3 keep a positive surplus and the rebalancer always has
      // a donor — the imbalance the rebalance pass exists to fix.
      const std::size_t home = static_cast<std::size_t>(w) % 2;
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kFaasPerWorker; ++i) {
        region.FetchAddPool(home, -kBatch);
      }
    });
  }

  // The monitor: alternate rebalance moves (max shard -> min shard, CAS
  // the donor down then FAA the receiver up — RebalanceLocked's shape)
  // with conversion sweeps that CAS every shard to a fresh share.
  std::int64_t net_minted = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t conversions = 0;
  std::thread monitor([&] {
    while (!start.load(std::memory_order_acquire)) {}
    std::uint64_t round = 0;
    // A floor of rounds guarantees rebalances/conversions happen even if
    // the scheduler starves this thread until the workers drain (the
    // telescoped identity is interleaving-independent, so post-drain
    // rounds exercise the same arithmetic).
    constexpr std::uint64_t kMinRounds = 64;
    while (!workers_done.load(std::memory_order_acquire) ||
           round < kMinRounds) {
      if (++round % 4 != 0) {
        // Rebalance: move half the spread from the richest shard to the
        // poorest. Sum-neutral by construction.
        std::size_t donor = 0;
        std::size_t receiver = 0;
        for (std::size_t s = 1; s < kShards; ++s) {
          if (region.LoadPool(s) > region.LoadPool(donor)) donor = s;
          if (region.LoadPool(s) < region.LoadPool(receiver)) receiver = s;
        }
        if (donor == receiver) continue;
        std::int64_t expected = region.LoadPool(donor);
        const std::int64_t move =
            std::clamp<std::int64_t>((expected) / 2, 0, 2000);
        if (move <= 0) continue;
        if (region.CasPool(donor, expected, expected - move)) {
          region.FetchAddPool(receiver, move);
          ++rebalances;
        }
      } else {
        // Conversion: re-fill every shard to a rotating per-shard budget.
        const std::int64_t budget =
            3000 + static_cast<std::int64_t>(round % 5) * 500;
        for (std::size_t s = 0; s < kShards; ++s) {
          std::int64_t expected = region.LoadPool(s);
          while (!region.CasPool(s, expected, budget)) {}
          net_minted += budget - expected;
        }
        ++conversions;
      }
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  workers_done.store(true, std::memory_order_release);
  monitor.join();

  const std::int64_t total_faas =
      static_cast<std::int64_t>(kWorkers) * kFaasPerWorker;
  EXPECT_EQ(static_cast<std::int64_t>(kShards) * kInitialPerShard +
                net_minted - kBatch * total_faas,
            region.LoadPoolSum())
      << "sharded pool leaked or minted tokens (rebalances=" << rebalances
      << " conversions=" << conversions << ")";
  EXPECT_GT(rebalances, 0u);
  EXPECT_GT(conversions, 0u);
}

// Rebalance moves racing the period boundary: the monitor alternates
// full-sweep exchanges (installing each shard's next-period share and
// recovering the raw word) with rebalance donor-CAS/receiver-FAA pairs
// while workers FAA every shard. Every token must be accounted for:
//   sum(recovered) + final_sum == sum(installed) - B * faas
// (rebalance moves cancel; the initial sum is zero).
TEST(RuntimeStressTest, RebalanceAndPeriodBoundaryInterleavingConserves) {
  constexpr std::size_t kShards = 4;
  constexpr int kRounds = 1500;
  constexpr std::int64_t kBatch = 10;
  constexpr std::int64_t kRefillPerShard = 50000;
  runtime::SharedRegion region(1, kShards);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> faas{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kShards; ++w) {
    workers.emplace_back([&, w] {
      while (!stop.load(std::memory_order_acquire)) {
        region.FetchAddPool(w, -kBatch);
        faas.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::int64_t recovered_sum = 0;
  std::int64_t installed_sum = 0;
  std::uint64_t rebalances = 0;
  for (int r = 0; r < kRounds; ++r) {
    // Boundary sweep: exchange every shard to its next share.
    for (std::size_t s = 0; s < kShards; ++s) {
      recovered_sum += region.ExchangePool(s, kRefillPerShard);
      installed_sum += kRefillPerShard;
    }
    // A rebalance squeezed between boundaries, mirroring a check tick
    // that fires mid-period: donor CAS down, receiver FAA up.
    const std::size_t donor = static_cast<std::size_t>(r) % kShards;
    const std::size_t receiver = (donor + 1) % kShards;
    std::int64_t expected = region.LoadPool(donor);
    const std::int64_t move = std::clamp<std::int64_t>(expected, 0, 500);
    if (move > 0 && region.CasPool(donor, expected, expected - move)) {
      region.FetchAddPool(receiver, move);
      ++rebalances;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(recovered_sum + region.LoadPoolSum(),
            installed_sum - kBatch * faas.load())
      << "boundary/rebalance interleaving lost tokens (rebalances="
      << rebalances << ")";
  EXPECT_GT(rebalances, 0u);
}

// Seqlock slot: the client's report WRITE and the monitor's prime collide
// on one slot while readers spin. Writers maintain written_at == ~packed,
// so any torn snapshot is detected immediately.
TEST(RuntimeStressTest, SeqlockSlotNeverTearsUnderTwoWriters) {
  constexpr int kWritesPerWriter = 200000;
  runtime::SharedRegion region(1);
  runtime::SeqlockSlot& slot = region.slot(0);
  slot.Write(0, static_cast<SimTime>(~std::uint64_t{0}));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const runtime::SeqlockSlot::Snapshot snap = slot.Read();
        if (static_cast<std::uint64_t>(snap.written_at) != ~snap.packed) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      // Distinct value streams per writer, all satisfying the invariant.
      std::uint64_t value = 0x1000000ULL * (w + 1);
      for (int i = 0; i < kWritesPerWriter; ++i) {
        ++value;
        slot.Write(value, static_cast<SimTime>(~value));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(torn.load(), 0u) << "seqlock reader observed a torn snapshot";
  const runtime::SeqlockSlot::Snapshot last = slot.Read();
  EXPECT_EQ(static_cast<std::uint64_t>(last.written_at), ~last.packed);
}

// Regression for the PR 3 Recorder::SetTap data race: installing/removing
// a tap while emitters stream events must not race the tap's destruction,
// and after SetTap(nullptr) returns the old callable must never fire.
TEST(RuntimeStressTest, RecorderTapInstallRemoveRacesEmitters) {
  constexpr int kEmitters = 4;
  constexpr int kEventsPerEmitter = 50000;
  std::atomic<SimTime> fake_now{0};
  obs::Recorder::Options options;
  options.ring_capacity = 256;
  options.preallocate_actors = kEmitters;
  obs::Recorder recorder(
      obs::Recorder::ClockFn(
          [&] { return fake_now.fetch_add(1, std::memory_order_relaxed); }),
      options);

  std::atomic<bool> start{false};
  std::vector<std::thread> emitters;
  for (int e = 0; e < kEmitters; ++e) {
    emitters.emplace_back([&, e] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kEventsPerEmitter; ++i) {
        // One writer per (kind, actor) ring, per the recorder's contract.
        recorder.EmitAt(static_cast<SimTime>(i), obs::ActorKind::kEngine,
                        static_cast<std::uint32_t>(e),
                        obs::EventType::kTokenFetch, 1, i);
      }
    });
  }

  // Tap churn: each generation owns a heap cell the callable writes
  // through; a tap running after its removal (or freed while running)
  // is a use-after-free TSan/ASan will catch.
  std::thread churn([&] {
    while (!start.load(std::memory_order_acquire)) {}
    for (int g = 0; g < 500; ++g) {
      auto hits = std::make_unique<std::atomic<std::uint64_t>>(0);
      std::atomic<std::uint64_t>* cell = hits.get();
      recorder.SetTap(
          [cell](const obs::TraceEvent&) {
            cell->fetch_add(1, std::memory_order_relaxed);
          });
      std::this_thread::yield();
      recorder.SetTap(nullptr);
      // SetTap(nullptr) has returned: the callable can no longer run, so
      // destroying `hits` here must be safe.
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& emitter : emitters) emitter.join();
  churn.join();

  EXPECT_EQ(recorder.TotalEmitted(),
            static_cast<std::uint64_t>(kEmitters) * kEventsPerEmitter);
  // Quiesced: a final tap sees exactly the events emitted after install.
  std::atomic<std::uint64_t> tail_hits{0};
  recorder.SetTap([&](const obs::TraceEvent&) { ++tail_hits; });
  recorder.EmitAt(0, obs::ActorKind::kMonitor, 0,
                  obs::EventType::kPoolSample, 1, 42);
  recorder.SetTap(nullptr);
  recorder.EmitAt(1, obs::ActorKind::kMonitor, 0,
                  obs::EventType::kPoolSample, 1, 43);
  EXPECT_EQ(tail_hits.load(), 1u);
}

}  // namespace
}  // namespace haechi
