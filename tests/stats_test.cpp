// Unit tests for stats/: histogram percentiles, period series, tables.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/period_series.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

namespace haechi::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;  // values < 64 land in exact linear buckets
  for (int i = 1; i <= 10; ++i) h.Record(i);
  EXPECT_EQ(h.Count(), 10u);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  EXPECT_EQ(h.ValueAtQuantile(0.1), 1);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 10);
}

TEST(Histogram, BoundedRelativeError) {
  Histogram h;
  Rng rng(3);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBelow(100'000'000)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const auto approx = h.ValueAtQuantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.03)
        << "q=" << q;
  }
}

TEST(Histogram, RecordManyCountsAll) {
  Histogram h;
  h.RecordMany(1000, 500);
  h.RecordMany(2000, 500);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_NEAR(h.Mean(), 1500.0, 1.0);
  EXPECT_LE(h.ValueAtQuantile(0.4), 1100);
  EXPECT_GE(h.ValueAtQuantile(0.9), 1900);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_NEAR(a.Mean(), 200.0, 1.0);
  EXPECT_EQ(a.Max(), 300);
  EXPECT_EQ(a.Min(), 100);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, SummaryMentionsPercentiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000 * i);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=100"), std::string::npos);
}

TEST(PeriodSeries, AccumulatesPerPeriodPerClient) {
  PeriodSeries series(3);
  series.BeginPeriod();
  series.Add(MakeClientId(0), 5);
  series.Add(MakeClientId(0), 2);
  series.Add(MakeClientId(2), 10);
  series.BeginPeriod();
  series.Add(MakeClientId(0), 1);

  EXPECT_EQ(series.Periods(), 2u);
  EXPECT_EQ(series.At(0, MakeClientId(0)), 7);
  EXPECT_EQ(series.At(0, MakeClientId(1)), 0);
  EXPECT_EQ(series.At(0, MakeClientId(2)), 10);
  EXPECT_EQ(series.At(1, MakeClientId(0)), 1);
  EXPECT_EQ(series.ClientTotal(MakeClientId(0)), 8);
  EXPECT_EQ(series.PeriodTotal(0), 17);
  EXPECT_EQ(series.Total(), 18);
  EXPECT_EQ(series.ClientMinPerPeriod(MakeClientId(0)), 1);
  EXPECT_EQ(series.ClientMinPerPeriod(MakeClientId(2)), 0);
}

TEST(PeriodSeries, KiopsConversion) {
  PeriodSeries series(1);
  series.BeginPeriod();
  series.Add(MakeClientId(0), 400'000);
  EXPECT_DOUBLE_EQ(series.ClientKiops(0, MakeClientId(0), kSecond), 400.0);
}

TEST(PeriodSeriesDeathTest, AddBeforeBeginPeriodIsAPreconditionFailure) {
  PeriodSeries series(2);
  EXPECT_DEATH(series.Add(MakeClientId(0), 1), "Precondition");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "kiops"});
  t.AddRow({"client-1", "400.0"});
  t.AddRow({"c2", "1570.5"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("client-1"), std::string::npos);
  EXPECT_NE(out.find("1570.5"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(1570.0, 0), "1570");
  EXPECT_EQ(Table::Int(-42), "-42");
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"x", "y"});
  EXPECT_EQ(csv.Render(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(csv.Rows(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::Escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"k", "v"});
  csv.AddRow({"answer", "42"});
  const std::string path = ::testing::TempDir() + "/haechi_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const auto read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "k,v\nanswer,42\n");
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/x.csv").ok());
}

TEST(Csv, SeriesExportLongFormat) {
  PeriodSeries series(2);
  series.BeginPeriod();
  series.Add(MakeClientId(0), 5);
  series.BeginPeriod();
  series.Add(MakeClientId(1), 7);
  CsvWriter csv = SeriesToCsv(series);
  const std::string out = csv.Render();
  EXPECT_NE(out.find("period,client,completed_ios"), std::string::npos);
  EXPECT_NE(out.find("0,0,5"), std::string::npos);
  EXPECT_NE(out.find("1,1,7"), std::string::npos);
  EXPECT_EQ(csv.Rows(), 4u);
}

TEST(Csv, HistogramExport) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 10);
  CsvWriter csv = HistogramToCsv(h);
  EXPECT_EQ(csv.Rows(), 5u);
  EXPECT_NE(csv.Render().find("quantile,value_ns"), std::string::npos);
}

}  // namespace
}  // namespace haechi::stats
