// Closed-loop QoS controller tests (DESIGN.md §14): pure policy-engine
// unit tests (plans over synthetic alert streams and client views), and
// the chaos/recovery suite from the acceptance criteria — scripted W1/W5/
// W6/lease-churn violations that the controller must detect, correct with
// sum-neutral actions, and declare recovered within a bounded number of
// periods, with the audit (including A10 neutrality) staying green.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/control/controller.hpp"
#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/alerts.hpp"
#include "obs/audit.hpp"
#include "obs/slo.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using core::control::ActionKind;
using core::control::ClientClass;
using core::control::ControllerConfig;
using core::control::kAllRules;
using core::control::kRuleLease;
using core::control::kRuleOscillation;
using core::control::kRuleShortfall;
using core::control::kRuleStarvation;
using core::control::ParseRuleMask;
using core::control::Policy;
using core::control::PolicyFromName;
using core::control::QosController;
using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using obs::Alert;
using obs::AlertKind;
using obs::AlertSeverity;

using Action = QosController::Action;
using ClientView = QosController::ClientView;

Alert MakeAlert(AlertKind kind, std::uint32_t period, std::int64_t client,
                std::int64_t expected, std::int64_t observed) {
  Alert alert;
  alert.kind = kind;
  alert.period = period;
  alert.client = client;
  alert.expected = expected;
  alert.observed = observed;
  return alert;
}

std::int64_t DeltaSum(const std::vector<Action>& actions) {
  std::int64_t sum = 0;
  for (const Action& a : actions) {
    if (a.kind == ActionKind::kResize) sum += a.delta;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Flag-surface parsers.

TEST(ControlParsing, RuleMaskAcceptsSubsetsAllAndNone) {
  EXPECT_EQ(ParseRuleMask("all").value(), kAllRules);
  EXPECT_EQ(ParseRuleMask("none").value(), 0u);
  EXPECT_EQ(ParseRuleMask("w1").value(), kRuleShortfall);
  EXPECT_EQ(ParseRuleMask("w5,lease").value(),
            kRuleOscillation | kRuleLease);
  EXPECT_EQ(ParseRuleMask("w1,w5,w6,lease").value(), kAllRules);
  EXPECT_FALSE(ParseRuleMask("w2").ok());
  EXPECT_FALSE(ParseRuleMask("w1,bogus").ok());
}

TEST(ControlParsing, PolicyNamesRoundTrip) {
  for (const Policy policy :
       {Policy::kOff, Policy::kConservative, Policy::kAggressive}) {
    Policy parsed{};
    ASSERT_TRUE(PolicyFromName(core::control::ToString(policy), parsed));
    EXPECT_EQ(parsed, policy);
  }
  Policy unused{};
  EXPECT_FALSE(PolicyFromName("gentle", unused));
}

// ---------------------------------------------------------------------------
// Policy-engine unit tests: synthetic alerts in, plans out.

TEST(ControllerPlan, OffPolicyDrainsAlertsWithoutActions) {
  ControllerConfig config;
  config.policy = Policy::kOff;
  QosController controller(config);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 3, 0, 900, 100));
  const auto plan = controller.PlanBoundary(3, {{0, 1000, 0, 100}});
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_TRUE(plan.recovered.empty());
  // A later boundary must not act on the drained alert either.
  EXPECT_TRUE(controller.PlanBoundary(4, {{0, 1000, 0, 100}}).actions.empty());
}

TEST(ControllerPlan, ShortfallShedsSumNeutralShrinkBeforeGrow) {
  ControllerConfig config;
  config.policy = Policy::kConservative;
  QosController controller(config);
  // Receiver 1 is demand-capped (reservation >= demand): the safe place
  // to park shed reservation.
  controller.SetClientSpec(0, 1000, 0, 2000);
  controller.SetClientSpec(1, 400, 0, 200);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 5, 0, 950, 400));
  const std::vector<ClientView> view = {{0, 1000, 5000, 400},
                                        {1, 400, 5000, 200}};
  const auto plan = controller.PlanBoundary(5, view);
  ASSERT_EQ(plan.actions.size(), 2u);
  // Conservative: shed half the (current - observed) gap = 300.
  EXPECT_EQ(plan.actions[0].kind, ActionKind::kResize);
  EXPECT_EQ(plan.actions[0].client, 0);
  EXPECT_EQ(plan.actions[0].value, 700);
  EXPECT_EQ(plan.actions[0].delta, -300);
  EXPECT_EQ(plan.actions[1].client, 1);
  EXPECT_EQ(plan.actions[1].value, 700);
  EXPECT_EQ(plan.actions[1].delta, 300);
  EXPECT_EQ(DeltaSum(plan.actions), 0);
  EXPECT_EQ(controller.stats().resizes, 2u);
}

TEST(ControllerPlan, AggressiveClosesTheWholeGapAtOnce) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  QosController controller(config);
  controller.SetClientSpec(0, 1000, 0, 2000);
  controller.SetClientSpec(1, 400, 0, 200);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 5, 0, 950, 400));
  const auto plan = controller.PlanBoundary(
      5, {{0, 1000, 5000, 400}, {1, 400, 5000, 200}});
  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].value, 400);  // shrunk all the way to observed
  EXPECT_EQ(plan.actions[0].delta, -600);
  EXPECT_EQ(DeltaSum(plan.actions), 0);
}

TEST(ControllerPlan, ReceiverRankingPrefersDemandCappedThenPriority) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  QosController controller(config);
  controller.SetClientSpec(0, 900, 0, 2000);
  controller.SetClientSpec(1, 300, 0, 1000);  // hungry: not demand-capped
  controller.SetClientSpec(2, 300, 0, 100);   // demand-capped
  controller.SetClientSpec(3, 300, 0, 100);   // demand-capped, higher prio
  controller.SetClientClass(3, {/*priority=*/7, /*burst=*/true});
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 2, 0, 855, 300));
  // Limits bound each receiver to +100, forcing the plan to spill across
  // the ranking order.
  const auto plan = controller.PlanBoundary(2, {{0, 900, 5000, 300},
                                                {1, 300, 400, 0},
                                                {2, 300, 400, 100},
                                                {3, 300, 400, 100}});
  ASSERT_EQ(plan.actions.size(), 4u);
  EXPECT_EQ(plan.actions[0].client, 0);  // shrink first
  EXPECT_LT(plan.actions[0].delta, 0);
  // Demand-capped receivers first, priority 7 ahead of priority 1, the
  // hungry client last.
  EXPECT_EQ(plan.actions[1].client, 3);
  EXPECT_EQ(plan.actions[2].client, 2);
  EXPECT_EQ(plan.actions[3].client, 1);
  EXPECT_EQ(DeltaSum(plan.actions), 0);
}

TEST(ControllerPlan, NonBurstReceiverNeverGrowsPastItsSpecReservation) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  QosController controller(config);
  controller.SetClientSpec(0, 900, 0, 2000);
  controller.SetClientSpec(1, 300, 0, 100);
  controller.SetClientClass(1, {/*priority=*/1, /*burst=*/false});
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 2, 0, 855, 300));
  // Receiver already at its spec reservation: no room at all, and with no
  // other receiver the plan must stay empty rather than leak tokens.
  const auto plan =
      controller.PlanBoundary(2, {{0, 900, 5000, 300}, {1, 300, 5000, 100}});
  EXPECT_TRUE(plan.actions.empty());

  // Below spec, the non-burst receiver absorbs only up to spec.
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 3, 0, 855, 300));
  const auto partial =
      controller.PlanBoundary(3, {{0, 900, 5000, 300}, {1, 250, 5000, 100}});
  ASSERT_EQ(partial.actions.size(), 2u);
  EXPECT_EQ(partial.actions[1].client, 1);
  EXPECT_EQ(partial.actions[1].value, 300);  // spec cap, not the full shed
  EXPECT_EQ(partial.actions[1].delta, 50);
  EXPECT_EQ(DeltaSum(partial.actions), 0);
}

TEST(ControllerPlan, OscillationDampsEtaToTheFloorThenRelaxes) {
  ControllerConfig config;
  config.policy = Policy::kConservative;  // damp x0.5 per fresh alert
  config.eta_recover_after = 4;
  QosController controller(config);

  controller.OnAlert(MakeAlert(AlertKind::kCapacityOscillation, 2, -1, 0, 0));
  auto plan = controller.PlanBoundary(2, {});
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].kind, ActionKind::kScaleEta);
  EXPECT_EQ(plan.actions[0].value, 500);
  EXPECT_EQ(controller.eta_scale_milli(), 500);

  // Fresh alerts keep halving down to the 125-milli floor, never below.
  controller.OnAlert(MakeAlert(AlertKind::kCapacityOscillation, 3, -1, 0, 0));
  EXPECT_EQ(controller.PlanBoundary(3, {}).actions.at(0).value, 250);
  controller.OnAlert(MakeAlert(AlertKind::kCapacityOscillation, 4, -1, 0, 0));
  EXPECT_EQ(controller.PlanBoundary(4, {}).actions.at(0).value, 125);
  controller.OnAlert(MakeAlert(AlertKind::kCapacityOscillation, 5, -1, 0, 0));
  EXPECT_TRUE(controller.PlanBoundary(5, {}).actions.empty());  // at floor
  EXPECT_EQ(controller.eta_scale_milli(), 125);

  // After eta_recover_after quiet periods the damping relaxes one
  // doubling per window.
  EXPECT_TRUE(controller.PlanBoundary(8, {}).actions.empty());
  auto relaxed = controller.PlanBoundary(9, {});
  ASSERT_EQ(relaxed.actions.size(), 1u);
  EXPECT_EQ(relaxed.actions[0].value, 250);
}

TEST(ControllerPlan, StarvationLatchesForcedConversionOnce) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  QosController controller(config);
  controller.OnAlert(MakeAlert(AlertKind::kFaaStarvation, 2, 1, 100, 0));
  auto plan = controller.PlanBoundary(2, {});
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].kind, ActionKind::kForceConversion);
  EXPECT_TRUE(controller.force_conversion_active());
  // Latched: further starvation alerts add no duplicate action.
  controller.OnAlert(MakeAlert(AlertKind::kFaaStarvation, 3, 1, 100, 0));
  EXPECT_TRUE(controller.PlanBoundary(3, {}).actions.empty());
  EXPECT_EQ(controller.stats().forced_conversions, 1u);
}

TEST(ControllerPlan, LeaseChurnReadmitsPerPolicyThreshold) {
  ControllerConfig conservative;
  conservative.policy = Policy::kConservative;  // readmit after 2 expiries
  QosController slow(conservative);
  slow.OnAlert(MakeAlert(AlertKind::kLeaseChurn, 2, 4, 0, 1));
  EXPECT_TRUE(slow.PlanBoundary(2, {}).actions.empty());
  slow.OnAlert(MakeAlert(AlertKind::kLeaseChurn, 3, 4, 0, 2));
  auto plan = slow.PlanBoundary(3, {});
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].kind, ActionKind::kReadmit);
  EXPECT_EQ(plan.actions[0].client, 4);
  // One re-admission per *new* expiry: replaying the same count is a no-op.
  slow.OnAlert(MakeAlert(AlertKind::kLeaseChurn, 4, 4, 0, 2));
  EXPECT_TRUE(slow.PlanBoundary(4, {}).actions.empty());

  ControllerConfig aggressive;
  aggressive.policy = Policy::kAggressive;  // readmit on the first expiry
  QosController fast(aggressive);
  fast.OnAlert(MakeAlert(AlertKind::kLeaseChurn, 2, 4, 0, 1));
  EXPECT_EQ(fast.PlanBoundary(2, {}).actions.size(), 1u);
}

TEST(ControllerPlan, DisabledRulesAreIgnored) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  config.rules = kRuleOscillation;  // everything else off
  QosController controller(config);
  controller.SetClientSpec(0, 1000, 0, 2000);
  controller.SetClientSpec(1, 400, 0, 200);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 2, 0, 950, 100));
  controller.OnAlert(MakeAlert(AlertKind::kFaaStarvation, 2, 1, 100, 0));
  controller.OnAlert(MakeAlert(AlertKind::kLeaseChurn, 2, 1, 0, 5));
  EXPECT_TRUE(controller
                  .PlanBoundary(2, {{0, 1000, 5000, 100}, {1, 400, 5000, 200}})
                  .actions.empty());

  // EnableRule turns W1 back on at runtime.
  controller.EnableRule(kRuleShortfall, true);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 3, 0, 950, 100));
  EXPECT_FALSE(controller
                   .PlanBoundary(3, {{0, 1000, 5000, 100}, {1, 400, 5000, 200}})
                   .actions.empty());
}

TEST(ControllerPlan, RecoveryFiresAfterTheQuietWindow) {
  ControllerConfig config;
  config.policy = Policy::kAggressive;
  config.quiet_periods = 2;
  config.oscillation_quiet = 5;
  QosController controller(config);
  controller.SetClientSpec(0, 1000, 0, 2000);
  controller.SetClientSpec(1, 400, 0, 200);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 4, 0, 950, 400));
  controller.OnAlert(MakeAlert(AlertKind::kCapacityOscillation, 4, -1, 0, 0));
  const std::vector<ClientView> view = {{0, 1000, 5000, 400},
                                        {1, 400, 5000, 200}};
  controller.PlanBoundary(4, view);
  EXPECT_TRUE(controller.PlanBoundary(5, view).recovered.empty());
  // Period 6 = last violation (4) + quiet_periods (2): W1 recovers; the
  // oscillation needs its longer window.
  auto plan = controller.PlanBoundary(6, view);
  ASSERT_EQ(plan.recovered.size(), 1u);
  EXPECT_EQ(plan.recovered[0].rule, AlertKind::kReservationShortfall);
  EXPECT_EQ(plan.recovered[0].client, 0);
  EXPECT_EQ(plan.recovered[0].periods, 1u);  // violated in period 4 only
  auto osc = controller.PlanBoundary(9, view);
  ASSERT_EQ(osc.recovered.size(), 1u);
  EXPECT_EQ(osc.recovered[0].rule, AlertKind::kCapacityOscillation);
  EXPECT_EQ(controller.stats().recoveries, 2u);
}

TEST(ControllerPlan, PolicySwapMidRunActsOnOngoingViolations) {
  ControllerConfig config;
  config.policy = Policy::kOff;
  QosController controller(config);
  controller.SetClientSpec(0, 1000, 0, 2000);
  controller.SetClientSpec(1, 400, 0, 200);
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 2, 0, 950, 400));
  EXPECT_TRUE(controller
                  .PlanBoundary(2, {{0, 1000, 5000, 400}, {1, 400, 5000, 200}})
                  .actions.empty());
  controller.SetPolicy(Policy::kAggressive);
  // The violation re-alerts while ongoing; the swapped-in policy reacts.
  controller.OnAlert(
      MakeAlert(AlertKind::kReservationShortfall, 3, 0, 950, 400));
  const auto plan = controller.PlanBoundary(
      3, {{0, 1000, 5000, 400}, {1, 400, 5000, 200}});
  EXPECT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(DeltaSum(plan.actions), 0);
}

// ---------------------------------------------------------------------------
// Chaos/recovery end-to-end: scripted violations, closed loop, audits.

#if HAECHI_WATCHDOG_ENABLED

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

/// Base scenario all chaos configs extend: small scale, tracing and
/// watchdog armed (the controller requires both).
ExperimentConfig ControlBase(std::uint64_t seed) {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 10;
  config.records = 256;
  config.seed = seed;
  config.trace.enabled = true;
  config.watchdog.enabled = true;
  return config;
}

/// W1 chaos: client 0 holds a large reservation it cannot fill once
/// background congestion eats into fabric capacity; clients 1-3 are
/// demand-capped (reservation >= demand), i.e. safe receivers whose W1
/// target min(R, demand) never moves when shed reservation lands on them.
ExperimentConfig ShortfallChaosConfig(std::uint64_t seed, Policy policy) {
  ExperimentConfig config = ControlBase(seed);
  config.watchdog.guarantee_fraction = 0.9;
  config.control.policy = policy;
  const std::int64_t cap = Capacity(config);
  // The per-client admissible ceiling is the local NIC capacity (~25% of
  // the aggregate); the victim reserves just under it.
  ClientSpec victim;
  victim.reservation = cap * 24 / 100;
  victim.demand = cap / 2;  // hungry: W1 target is the full reservation
  victim.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(victim);
  for (int i = 0; i < 3; ++i) {
    ClientSpec spec;
    spec.reservation = cap * 12 / 100;
    spec.demand = spec.reservation / 2;  // demand-capped receiver
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  // fig16-style congestion: uncontrolled background traffic on every node
  // squeezes the fabric below the admitted reservations.
  config.background_demand = cap / 4 / 4;
  return config;
}

/// W5 chaos: an oversized eta makes Algorithm 1 overshoot on every Grow
/// and fall back on the next window mean — a period-2 sawtooth whose
/// amplitude clears the watchdog's 5% oscillation bar. The Grow branch
/// needs *exact* U == Omega, so the load is built to complete a bit-
/// reproducible count every period: four burst clients funded entirely by
/// reservation (completed == demand, no pool contention), plus one tiny
/// zero-reservation "stirrer" whose pool draw fires S2 and whose 200
/// tokens are exactly the slack Omega - dispatched leaves at the plateau.
/// Undamped eta (10% of Omega_prof) flips the estimate ~16% every period;
/// one aggressive damp to 250 milli shrinks the step under the 5% bar.
ExperimentConfig OscillationChaosConfig(std::uint64_t seed, Policy policy) {
  ExperimentConfig config = ControlBase(seed);
  config.measure_periods = 16;
  config.control.policy = policy;
  config.control.eta_recover_after = 64;  // keep damping latched in-run
  config.qos.eta_fraction = 0.10;
  config.qos.sigma_fraction = 0.20;  // keep the plateau above Omega_min
  config.qos.history_window = 2;
  config.qos.token_batch = 50;  // stirrer demand is a whole number of FAAs
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r;  // burst to the funded target, then idle: U is exact
    spec.pattern = workload::RequestPattern::kBurst;
    config.clients.push_back(spec);
  }
  ClientSpec stirrer;
  stirrer.reservation = 0;
  stirrer.demand = 200;
  stirrer.pattern = workload::RequestPattern::kBurst;
  config.clients.push_back(stirrer);
  return config;
}

/// W6 chaos: a lossy fabric drops token-fetch FAAs until mid-run, driving
/// the engines' retry backoff to its (shortened) maximum.
ExperimentConfig StarvationChaosConfig(std::uint64_t seed, Policy policy) {
  ExperimentConfig config = ControlBase(seed);
  config.control.policy = policy;
  config.qos.faa_retry_backoff_max = Millis(4);
  config.qos.token_batch = 100;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap / 2, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 4;  // pool-hungry: constant FAA pressure
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.faults.seed = seed * 31 + 7;
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.6;
  drop_faa.from = Seconds(1);
  drop_faa.until = Seconds(5);  // chaos ends: recovery window begins
  config.faults.Add(drop_faa);
  return config;
}

/// Lease churn chaos: report WRITEs are dropped hard until mid-run, so
/// report leases expire and the monitor declares live clients dead; the
/// controller must re-admit them through the harness.
ExperimentConfig LeaseChurnChaosConfig(std::uint64_t seed, Policy policy) {
  ExperimentConfig config = ControlBase(seed);
  config.control.policy = policy;
  config.qos.report_lease_intervals = 4;
  config.qos.token_batch = 100;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap / 2, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 4;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  config.faults.seed = seed * 131 + 3;
  rdma::FaultRule drop_report;
  drop_report.action = rdma::FaultAction::kDrop;
  drop_report.opcode = rdma::Opcode::kWrite;
  drop_report.probability = 0.95;
  drop_report.from = Seconds(1) + Millis(600);
  drop_report.until = Seconds(4);
  config.faults.Add(drop_report);
  return config;
}

std::unique_ptr<Experiment> RunControlled(ExperimentConfig config) {
  auto experiment = std::make_unique<Experiment>(std::move(config));
  experiment->Run();
  return experiment;
}

std::size_t CountKind(const std::vector<Alert>& alerts, AlertKind kind) {
  return static_cast<std::size_t>(
      std::count_if(alerts.begin(), alerts.end(),
                    [&](const Alert& a) { return a.kind == kind; }));
}

/// First `recovered` alert for `rule`, or nullptr.
const Alert* FindRecovery(const std::vector<Alert>& alerts, AlertKind rule) {
  for (const Alert& a : alerts) {
    if (a.kind == AlertKind::kRecovered &&
        a.expected == static_cast<std::int64_t>(rule)) {
      return &a;
    }
  }
  return nullptr;
}

/// Chaos audits run A1-A8 and A10 at full strength but lower the A9 bar:
/// the scripted violation *is* a real shortfall, and proving recovery is
/// the watchdog/controller contract, not the ledger's.
obs::AuditReport ChaosAudit(Experiment& experiment) {
  obs::AuditOptions options;
  options.guarantee_fraction = 0.05;
  return obs::AuditTrace(experiment.recorder()->Merged(), options);
}

TEST(ControllerChaos, ShortfallIsResizedSumNeutrallyAndRecovers) {
  auto experiment = RunControlled(
      ShortfallChaosConfig(11, Policy::kConservative));
  ASSERT_NE(experiment->controller(), nullptr);
  const auto& stats = experiment->controller()->stats();
  EXPECT_GT(stats.alerts, 0u);
  EXPECT_GE(stats.resizes, 2u);  // at least one shrink+grow pair

  const auto& alerts = experiment->watchdog()->alerts();
  ASSERT_GT(CountKind(alerts, AlertKind::kReservationShortfall), 0u);
  const Alert* recovered =
      FindRecovery(alerts, AlertKind::kReservationShortfall);
  ASSERT_NE(recovered, nullptr) << experiment->alerts_jsonl();
  EXPECT_EQ(recovered->client, 0);
  // SLO restored within a bounded number of periods of the first alert.
  EXPECT_LE(recovered->observed, 8);

  const obs::AuditReport report = ChaosAudit(*experiment);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.control_checks, 0);  // A10 actually ran
}

TEST(ControllerChaos, ShortfallUnaddressedWithoutTheResizeRule) {
  // Same chaos, W1 rule masked off: alerts keep firing, nothing resizes,
  // and no recovery is declared for the shortfall.
  ExperimentConfig config = ShortfallChaosConfig(11, Policy::kConservative);
  config.control.rules = kRuleOscillation | kRuleStarvation | kRuleLease;
  auto experiment = RunControlled(std::move(config));
  ASSERT_NE(experiment->controller(), nullptr);
  EXPECT_EQ(experiment->controller()->stats().resizes, 0u);
  const auto& alerts = experiment->watchdog()->alerts();
  EXPECT_GT(CountKind(alerts, AlertKind::kReservationShortfall), 2u);
  EXPECT_EQ(FindRecovery(alerts, AlertKind::kReservationShortfall), nullptr);
}

TEST(ControllerChaos, OscillationIsDampedAndCalmsTheEstimator) {
  auto experiment = RunControlled(
      OscillationChaosConfig(3, Policy::kAggressive));
  ASSERT_NE(experiment->controller(), nullptr);
  const auto& stats = experiment->controller()->stats();
  EXPECT_GE(stats.eta_scalings, 1u);
  EXPECT_LT(experiment->controller()->eta_scale_milli(), 1000);

  const auto& alerts = experiment->watchdog()->alerts();
  ASSERT_GT(CountKind(alerts, AlertKind::kCapacityOscillation), 0u);

  // The undamped twin keeps flipping: the controller must beat it.
  auto undamped = RunControlled(OscillationChaosConfig(3, Policy::kOff));
  EXPECT_LT(CountKind(alerts, AlertKind::kCapacityOscillation),
            CountKind(undamped->watchdog()->alerts(),
                      AlertKind::kCapacityOscillation))
      << "damping did not reduce oscillation alerts";

  EXPECT_TRUE(ChaosAudit(*experiment).ok());
}

TEST(ControllerChaos, StarvationForcesEarlyConversionAndRecovers) {
  auto experiment = RunControlled(
      StarvationChaosConfig(5, Policy::kAggressive));
  ASSERT_NE(experiment->controller(), nullptr);
  const auto& stats = experiment->controller()->stats();
  EXPECT_EQ(stats.forced_conversions, 1u);  // latched, not repeated
  EXPECT_TRUE(experiment->controller()->force_conversion_active());

  const auto& alerts = experiment->watchdog()->alerts();
  ASSERT_GT(CountKind(alerts, AlertKind::kFaaStarvation), 0u);
  // The fault window closes at t=5s; the violation must then go quiet and
  // be declared recovered before the run ends.
  EXPECT_NE(FindRecovery(alerts, AlertKind::kFaaStarvation), nullptr)
      << experiment->alerts_jsonl();

  EXPECT_TRUE(ChaosAudit(*experiment).ok());
}

TEST(ControllerChaos, LeaseChurnTriggersReadmissionAndRecovers) {
  auto experiment = RunControlled(
      LeaseChurnChaosConfig(9, Policy::kAggressive));
  ASSERT_NE(experiment->controller(), nullptr);
  const auto& stats = experiment->controller()->stats();
  EXPECT_GE(stats.readmits, 1u);

  const auto& alerts = experiment->watchdog()->alerts();
  ASSERT_GT(CountKind(alerts, AlertKind::kLeaseChurn), 0u);
  EXPECT_NE(FindRecovery(alerts, AlertKind::kLeaseChurn), nullptr)
      << experiment->alerts_jsonl();

  // Dropping 95% of writes destroys the calibration reports A9 attests
  // completions from, so fault-window periods can audit as under-served
  // even though the read data path never faulted. Every other identity —
  // stream integrity through reclamation (A8) and controller neutrality
  // (A10) — must hold unconditionally on the churned trace.
  const obs::AuditReport report = ChaosAudit(*experiment);
  for (const auto& violation : report.violations) {
    EXPECT_EQ(violation.check, "A9")
        << violation.check << ": " << violation.detail;
  }
}

TEST(ControllerChaos, SameSeedRunsAreByteIdentical) {
  auto first = RunControlled(ShortfallChaosConfig(17, Policy::kAggressive));
  auto second = RunControlled(ShortfallChaosConfig(17, Policy::kAggressive));
  EXPECT_EQ(first->alerts_jsonl(), second->alerts_jsonl());
  EXPECT_EQ(first->controller()->stats().resizes,
            second->controller()->stats().resizes);
  EXPECT_EQ(first->controller()->stats().recoveries,
            second->controller()->stats().recoveries);
}

TEST(ControllerChaos, LiveAlertsMatchReplayOfTheExportedTrace) {
  // kControlAction/kControlRecovered ride the trace, so the offline
  // replay reproduces the recovered alerts byte-for-byte.
  auto experiment = RunControlled(ShortfallChaosConfig(13, Policy::kAggressive));
  obs::WatchdogOptions options;
  options.guarantee_fraction = 0.9;
  const auto replayed =
      obs::ReplayTrace(experiment->recorder()->Merged(), options);
  const auto& live = experiment->watchdog()->alerts();
  ASSERT_EQ(live.size(), replayed.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(obs::ToJsonl(live[i]), obs::ToJsonl(replayed[i]));
  }
}

TEST(ControllerChaos, ScriptedApiSwapArmsTheControllerMidRun) {
  // Starts with the policy off; the scripted swap turns it aggressive at
  // period 3. The watchdog is still armed from the start (an armed control
  // api forces it), so the ongoing violation is acted on after the swap.
  ExperimentConfig config = ShortfallChaosConfig(11, Policy::kOff);
  config.control.api.emplace_back(3, Policy::kAggressive);
  auto experiment = RunControlled(std::move(config));
  ASSERT_NE(experiment->controller(), nullptr);
  EXPECT_EQ(experiment->controller()->policy(), Policy::kAggressive);
  EXPECT_GE(experiment->controller()->stats().resizes, 2u);
}

TEST(ControllerChaos, ControllerOffLeavesTheRunByteIdenticalToNoController) {
  // Policy off and no api: config.control stays unarmed, the controller is
  // never constructed, and the run matches a plain watchdog run.
  ExperimentConfig with_off = ShortfallChaosConfig(19, Policy::kOff);
  auto off = RunControlled(std::move(with_off));
  EXPECT_EQ(off->controller(), nullptr);
  ExperimentConfig plain = ShortfallChaosConfig(19, Policy::kOff);
  auto baseline = RunControlled(std::move(plain));
  EXPECT_EQ(off->alerts_jsonl(), baseline->alerts_jsonl());
}

// ---------------------------------------------------------------------------
// Threaded runtime: the same control plane on real threads.

TEST(ControllerThreaded, HealthyRunArmsTheLoopWithoutActions) {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Millis(600);
  config.measure_periods = 4;
  config.qos.period = Millis(200);
  config.records = 256;
  config.seed = 21;
  config.control.policy = Policy::kConservative;
  config.profiled_global_iops = config.net.GlobalCapacityIops();
  config.profiled_local_iops = config.net.LocalCapacityIops();
  const std::int64_t cap = static_cast<std::int64_t>(
      config.net.GlobalCapacityIops() * ToSeconds(config.qos.period));
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 8;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  harness::ThreadedExperiment experiment(std::move(config));
  experiment.Run();
  ASSERT_NE(experiment.watchdog(), nullptr);
  ASSERT_NE(experiment.controller(), nullptr);
  // A healthy run: the loop is armed, watches every period, and needs no
  // corrective actions (resizes/forcing would perturb a meeting-SLO run).
  EXPECT_GT(experiment.watchdog()->periods_evaluated(), 0u);
  EXPECT_EQ(experiment.controller()->stats().resizes, 0u);
  EXPECT_EQ(experiment.controller()->stats().forced_conversions, 0u);
}

#endif  // HAECHI_WATCHDOG_ENABLED

}  // namespace
}  // namespace haechi
