// Failure-injection tests: the QoS protocol under broken wiring, revoked
// memory registrations, and hostile conditions. The engine must degrade
// (reservation-only service, error completions) without crashing, stalling
// the simulator, or corrupting token accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.hpp"
#include "core/wire.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest()
      : fabric_(sim_, MakeParams(), 17),
        server_(fabric_.AddNode("server", rdma::NodeRole::kData)),
        client_(fabric_.AddNode("client")),
        control_block_(16 * sizeof(std::uint64_t)) {
    control_mr_ = &server_.pd().Register(
        std::span<std::byte>(control_block_),
        rdma::access::kLocalRead | rdma::access::kLocalWrite |
            rdma::access::kRemoteRead | rdma::access::kRemoteWrite |
            rdma::access::kRemoteAtomic);
    config_.token_batch = 10;
  }

  static net::ModelParams MakeParams() {
    net::ModelParams params;
    params.capacity_scale = 0.02;
    return params;
  }

  /// Builds an engine wired to the control block, with an instant backend.
  std::unique_ptr<ClientQosEngine> MakeEngine(QosWiring wiring) {
    auto& qos_cq = client_.CreateCq();
    auto& qos_srv_cq = server_.CreateCq();
    auto& qos_qp = client_.CreateQp(qos_cq, qos_cq);
    auto& qos_srv_qp = server_.CreateQp(qos_srv_cq, qos_srv_cq);
    fabric_.Connect(qos_qp, qos_srv_qp);
    auto& ctrl_cq = client_.CreateCq();
    auto& ctrl_recv = client_.CreateCq();
    auto& mon_cq = server_.CreateCq();
    auto& ctrl_qp = client_.CreateQp(ctrl_cq, ctrl_recv);
    monitor_qp_ = &server_.CreateQp(mon_cq, mon_cq);
    mon_cq.SetNotify([](const rdma::WorkCompletion&) {});
    fabric_.Connect(ctrl_qp, *monitor_qp_);
    auto engine = std::make_unique<ClientQosEngine>(
        sim_, MakeClientId(0), config_, client_, qos_qp, ctrl_qp, wiring);
    engine->SetIoBackend(
        [this](std::uint64_t, bool, ClientQosEngine::CompleteFn done) {
          ++backend_calls_;
          sim_.ScheduleAfter(Micros(1), [done = std::move(done)] { done(); });
          return Status::Ok();
        });
    return engine;
  }

  QosWiring GoodWiring() const {
    QosWiring wiring;
    wiring.global_pool_addr = control_mr_->remote_addr();
    wiring.global_pool_rkey = control_mr_->rkey();
    wiring.report_slot_addr =
        control_mr_->remote_addr() + sizeof(std::uint64_t);
    wiring.report_slot_rkey = control_mr_->rkey();
    return wiring;
  }

  void SendPeriodStart(std::uint32_t period, std::int64_t tokens) {
    PeriodStartMsg msg;
    msg.period = period;
    msg.reservation_tokens = tokens;
    ASSERT_TRUE(monitor_qp_
                    ->PostSend(1, std::span<const std::byte>(
                                      reinterpret_cast<const std::byte*>(&msg),
                                      sizeof(msg)))
                    .ok());
  }

  void SendReportRequest(std::uint32_t period) {
    ReportRequestMsg msg;
    msg.period = period;
    ASSERT_TRUE(monitor_qp_
                    ->PostSend(2, std::span<const std::byte>(
                                      reinterpret_cast<const std::byte*>(&msg),
                                      sizeof(msg)))
                    .ok());
  }

  sim::Simulator sim_;
  rdma::Fabric fabric_;
  rdma::Node& server_;
  rdma::Node& client_;
  std::vector<std::byte> control_block_;
  const rdma::MemoryRegion* control_mr_ = nullptr;
  rdma::QueuePair* monitor_qp_ = nullptr;
  QosConfig config_;
  int backend_calls_ = 0;
};

TEST_F(ResilienceTest, BadPoolRkeyDegradesToReservationOnlyService) {
  QosWiring wiring = GoodWiring();
  wiring.global_pool_rkey = 0xdead;  // FAAs will NAK
  auto engine = MakeEngine(wiring);
  SendPeriodStart(1, /*tokens=*/5);
  for (int i = 0; i < 10; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(100));
  // Reservation-backed I/Os complete; pool-backed demand stays queued.
  EXPECT_EQ(backend_calls_, 5);
  EXPECT_EQ(engine->stats().tokens_from_pool, 0);
  EXPECT_EQ(engine->QueueDepth(), 5u);
  // Fresh tokens next period resume service: no wedged state.
  SendPeriodStart(2, /*tokens=*/5);
  sim_.RunUntil(Millis(200));
  EXPECT_EQ(backend_calls_, 10);
}

TEST_F(ResilienceTest, PoolMrRevokedMidRun) {
  auto engine = MakeEngine(GoodWiring());
  std::uint64_t pool = 1000;
  std::memcpy(control_block_.data(), &pool, sizeof(pool));
  SendPeriodStart(1, /*tokens=*/2);
  for (int i = 0; i < 6; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(5));
  EXPECT_EQ(backend_calls_, 6);  // 2 reserved + 4 pool
  // The data node revokes the control MR (e.g. restart): subsequent FAAs
  // and report writes fail as error completions, not crashes.
  ASSERT_TRUE(server_.pd().Deregister(control_mr_->rkey()).ok());
  SendReportRequest(1);
  for (int i = 0; i < 4; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(50));
  // Local batch left over from the pre-revocation FAA (10 - 4 = 6 tokens)
  // still serves 4 more I/Os.
  EXPECT_EQ(backend_calls_, 10);
  EXPECT_GE(engine->stats().report_writes, 1u);  // posted, completed in error
}

TEST_F(ResilienceTest, GarbageControlMessagesAreIgnored) {
  auto engine = MakeEngine(GoodWiring());
  // An unknown message type must not crash or change engine state.
  const std::uint32_t bogus_type = 0x7777;
  std::byte raw[32] = {};
  std::memcpy(raw, &bogus_type, sizeof(bogus_type));
  ASSERT_TRUE(
      monitor_qp_->PostSend(9, std::span<const std::byte>(raw, sizeof(raw)))
          .ok());
  sim_.RunUntil(Millis(1));
  EXPECT_EQ(engine->CurrentPeriod(), 0u);
  // Protocol proceeds normally afterwards.
  SendPeriodStart(1, /*tokens=*/3);
  engine->Submit(0, [] {});
  sim_.RunUntil(Millis(2));
  EXPECT_EQ(backend_calls_, 1);
}

TEST_F(ResilienceTest, ZeroReservationClientIsPoolOnly) {
  std::uint64_t pool = 100;
  std::memcpy(control_block_.data(), &pool, sizeof(pool));
  auto engine = MakeEngine(GoodWiring());
  SendPeriodStart(1, /*tokens=*/0);
  for (int i = 0; i < 5; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(backend_calls_, 5);
  EXPECT_EQ(engine->stats().tokens_from_reservation, 0);
  EXPECT_EQ(engine->stats().tokens_from_pool, 5);
}

TEST_F(ResilienceTest, BackendErrorsSurfaceAsPrecondition) {
  auto engine = MakeEngine(GoodWiring());
  // Replace the backend with one that always reports "saturated" — the
  // engine's outstanding cap makes this a wiring bug, which it asserts on
  // rather than spinning. Here we only verify the documented contract that
  // submissions before PeriodStart queue without invoking the backend.
  int calls = 0;
  engine->SetIoBackend(
      [&calls](std::uint64_t, bool, ClientQosEngine::CompleteFn) {
        ++calls;
        return ErrResourceExhausted("always full");
      });
  engine->Submit(0, [] {});
  sim_.RunUntil(Millis(1));
  EXPECT_EQ(calls, 0);  // no tokens yet -> backend untouched
}

TEST_F(ResilienceTest, FaaRetryBackoffRecoversThroughADropWindow) {
  // The fabric drops every token FAA for the first 10 ms. The engine must
  // back off exponentially (not spin), then recover the moment the window
  // closes and serve the queued pool-backed demand.
  rdma::FaultPlan plan;
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.until = Millis(10);
  plan.Add(drop_faa);
  fabric_.InstallFaultPlan(plan);

  std::uint64_t pool = 1000;
  std::memcpy(control_block_.data(), &pool, sizeof(pool));
  auto engine = MakeEngine(GoodWiring());
  SendPeriodStart(1, /*tokens=*/2);
  for (int i = 0; i < 8; ++i) engine->Submit(0, [] {});

  sim_.RunUntil(Millis(5));
  // Mid-window: reservation-backed I/Os done, pool demand blocked, at
  // least one failed fetch and one backoff retry behind us.
  EXPECT_EQ(backend_calls_, 2);
  EXPECT_GE(engine->stats().faa_failures, 1u);
  EXPECT_GE(engine->stats().faa_retries, 1u);

  sim_.RunUntil(Millis(100));
  // Window closed: a backoff retry landed, one FAA fetched the batch, and
  // the whole queue drained.
  EXPECT_EQ(backend_calls_, 8);
  EXPECT_EQ(engine->stats().tokens_from_pool, 6);
  EXPECT_EQ(engine->QueueDepth(), 0u);
  EXPECT_GE(engine->stats().faa_failures, 2u);
  EXPECT_GE(engine->stats().faa_retries, 2u);
  EXPECT_GE(fabric_.fault_stats().ops_dropped, 2u);
}

TEST_F(ResilienceTest, ReportWriteFailuresAreCountedNotFatal) {
  QosWiring wiring = GoodWiring();
  wiring.report_slot_rkey = 0xbeef;  // report WRITEs will NAK
  std::uint64_t pool = 1000;
  std::memcpy(control_block_.data(), &pool, sizeof(pool));
  auto engine = MakeEngine(wiring);
  SendPeriodStart(1, /*tokens=*/3);
  for (int i = 0; i < 3; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(1));
  SendReportRequest(1);
  sim_.RunUntil(Millis(6));
  // Reports were posted on the 1 ms cadence, every one completed in error,
  // and the engine neither crashed nor stopped serving.
  EXPECT_GE(engine->stats().report_writes, 2u);
  EXPECT_GE(engine->stats().report_failures, 2u);
  EXPECT_EQ(backend_calls_, 3);
  // The data path is untouched: a further submit rides pool tokens (only
  // the report slot's rkey is broken).
  engine->Submit(0, [] {});
  sim_.RunUntil(Millis(8));
  EXPECT_EQ(backend_calls_, 4);
  EXPECT_EQ(engine->stats().tokens_from_pool, 1);
}

TEST_F(ResilienceTest, StopQuiescesQueueAndTimers) {
  QosWiring wiring = GoodWiring();
  wiring.global_pool_rkey = 0xdead;  // pool fetches fail -> demand queues
  auto engine = MakeEngine(wiring);
  SendPeriodStart(1, /*tokens=*/2);
  for (int i = 0; i < 6; ++i) engine->Submit(0, [] {});
  sim_.RunUntil(Millis(2));
  EXPECT_EQ(backend_calls_, 2);
  EXPECT_EQ(engine->QueueDepth(), 4u);
  EXPECT_GE(engine->stats().faa_failures, 1u);

  // Crash handling calls Stop(): the backlog is shed, timers stop, and no
  // pending backoff retry fires work afterwards.
  engine->Stop();
  EXPECT_EQ(engine->QueueDepth(), 0u);
  sim_.RunUntil(Millis(200));
  EXPECT_EQ(backend_calls_, 2);
}

}  // namespace
}  // namespace haechi::core
