// Unit and statistical tests for the deterministic RNG and samplers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace haechi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Zipfian, ProbabilitiesMatchEmpiricalFrequencies) {
  constexpr std::uint64_t kN = 50;
  ZipfianSampler zipf(kN, 0.99);
  Rng rng(31);
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    const double expected = zipf.Probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.1) << "rank " << k;
  }
}

TEST(Zipfian, RankZeroIsMostPopular) {
  ZipfianSampler zipf(100, 0.6);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.Probability(0), zipf.Probability(k));
  }
}

TEST(Zipfian, ThetaZeroIsUniform) {
  ZipfianSampler zipf(10, 0.0);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-12);
  }
}

TEST(Zipfian, PaperGroupWeights) {
  // The paper's reservation distribution: 5 groups, exponent 0.6. Checks
  // the weight ratios used to derive Fig 9(b)'s reservations.
  ZipfianSampler zipf(5, 0.6);
  EXPECT_NEAR(zipf.Weight(0) / zipf.Weight(1), std::pow(2.0, 0.6), 1e-12);
  // Group 1 share of total: 1 / sum(k^-0.6) ≈ 0.334 — yields the paper's
  // 236 KIOPS for C1/C2 at 90% of 1570 KIOPS.
  double total = 0;
  for (std::uint64_t k = 0; k < 5; ++k) total += zipf.Weight(k);
  EXPECT_NEAR(zipf.Weight(0) / total, 0.334, 0.001);
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  constexpr std::uint64_t kN = 1000;
  ScrambledZipfianSampler zipf(kN, 0.99);
  Rng rng(41);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // The two hottest keys must not be adjacent (scrambling property).
  std::uint64_t hottest = 0, second = 0;
  int hottest_count = 0, second_count = 0;
  for (const auto& [key, count] : counts) {
    if (count > hottest_count) {
      second = hottest;
      second_count = hottest_count;
      hottest = key;
      hottest_count = count;
    } else if (count > second_count) {
      second = key;
      second_count = count;
    }
  }
  EXPECT_GT(hottest_count, second_count);
  EXPECT_GT(hottest > second ? hottest - second : second - hottest, 1u);
}

}  // namespace
}  // namespace haechi
