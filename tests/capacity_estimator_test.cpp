// Unit tests for Algorithm 1 (Adaptive Capacity Estimation), driven with
// synthetic per-period completion traces.
#include <gtest/gtest.h>

#include "core/capacity_estimator.hpp"

namespace haechi::core {
namespace {

CapacityEstimator::Params Params(std::int64_t profiled = 1'570'000,
                                 std::int64_t sigma = 125'600,
                                 std::int64_t eta = 47'100,
                                 std::size_t window = 8) {
  return {profiled, sigma, eta, window};
}

TEST(CapacityEstimator, StartsAtProfiledValue) {
  CapacityEstimator est(Params());
  EXPECT_EQ(est.Estimate(), 1'570'000);
  EXPECT_EQ(est.LowerBound(), 1'570'000 - 3 * 125'600);
}

TEST(CapacityEstimator, FullConsumptionGrowsByEta) {
  CapacityEstimator est(Params());
  est.OnPeriodEnd(1'570'000);  // U == Omega exactly
  EXPECT_EQ(est.Estimate(), 1'617'100);
  EXPECT_EQ(est.GrowthSteps(), 1u);
}

TEST(CapacityEstimator, NearMissDoesNotGrow) {
  CapacityEstimator est(Params());
  est.OnPeriodEnd(1'569'999);  // off by one: capacity-bound, not token-bound
  EXPECT_LT(est.Estimate(), 1'570'000);
  EXPECT_EQ(est.GrowthSteps(), 0u);
}

TEST(CapacityEstimator, SpillAboveEstimateDoesNotGrow) {
  CapacityEstimator est(Params());
  // U > Omega: completions spilled from an over-provisioned prior period.
  est.OnPeriodEnd(1'580'000);
  EXPECT_LE(est.Estimate(), 1'570'000);
  EXPECT_EQ(est.GrowthSteps(), 0u);
}

TEST(CapacityEstimator, WindowAveragesRecentHistory) {
  CapacityEstimator est(Params());
  est.OnPeriodEnd(1'500'000);
  EXPECT_EQ(est.Estimate(), 1'500'000);
  est.OnPeriodEnd(1'400'000);
  EXPECT_EQ(est.Estimate(), 1'450'000);
  EXPECT_EQ(est.WindowFill(), 2u);
}

TEST(CapacityEstimator, WindowEvictsOldestBeyondM) {
  CapacityEstimator est(Params(1000, 100, 10, /*window=*/2));
  est.OnPeriodEnd(900);
  est.OnPeriodEnd(800);
  est.OnPeriodEnd(700);  // evicts the 900 sample
  EXPECT_EQ(est.Estimate(), 750);
  EXPECT_EQ(est.WindowFill(), 2u);
}

TEST(CapacityEstimator, LowDemandPeriodsAreIgnored) {
  CapacityEstimator est(Params());
  const auto before = est.Estimate();
  est.OnPeriodEnd(100);  // far below Omega_min: idle clients, not capacity
  EXPECT_EQ(est.Estimate(), before);
  est.OnPeriodEnd(0);
  EXPECT_EQ(est.Estimate(), before);
  EXPECT_EQ(est.WindowFill(), 0u);
}

TEST(CapacityEstimator, LowerBoundGuardsTheWindow) {
  CapacityEstimator est(Params(1000, /*sigma=*/50, 10, 4));
  // Omega_min = 850: a 849 sample must be ignored, an 851 accepted.
  est.OnPeriodEnd(849);
  EXPECT_EQ(est.WindowFill(), 0u);
  est.OnPeriodEnd(851);
  EXPECT_EQ(est.WindowFill(), 1u);
  EXPECT_EQ(est.Estimate(), 851);
}

TEST(CapacityEstimator, ConvergesDownAfterCapacityDrop) {
  // Paper Set 4, congestion start: true capacity falls from 1570K to
  // 1256K; the estimate must track it within a few periods.
  CapacityEstimator est(Params());
  for (int period = 0; period < 10; ++period) {
    est.OnPeriodEnd(std::min<std::int64_t>(est.Estimate() - 1, 1'256'000));
  }
  EXPECT_NEAR(static_cast<double>(est.Estimate()), 1'256'000, 20'000);
}

TEST(CapacityEstimator, RecoversUpAfterCapacityRestores) {
  // Paper Set 4, congestion stop: estimate at 1256K, capacity back to
  // 1570K; eta increments climb until the window re-centres.
  CapacityEstimator est(Params());
  for (int period = 0; period < 10; ++period) {
    est.OnPeriodEnd(std::min<std::int64_t>(est.Estimate() - 1, 1'256'000));
  }
  const auto congested = est.Estimate();
  int periods_to_recover = 0;
  // Capacity is now 1570K: while the estimate is below it, every token is
  // consumed (U == estimate exactly) and the eta branch fires.
  while (est.Estimate() < 1'540'000 && periods_to_recover < 50) {
    est.OnPeriodEnd(std::min<std::int64_t>(est.Estimate(), 1'570'000));
    ++periods_to_recover;
  }
  EXPECT_GT(est.Estimate(), congested);
  // eta = 3% -> recovery within roughly (1570-1256)/47 ≈ 7 growth steps,
  // alternating with window corrections.
  EXPECT_LE(periods_to_recover, 30);
  EXPECT_GE(est.GrowthSteps(), 5u);
}

TEST(CapacityEstimator, StableUnderSteadyState) {
  // Realistic steady state: capacity ~1562K with small jitter; the
  // estimate must stay within a tight band and not drift.
  CapacityEstimator est(Params());
  std::int64_t capacity = 1'562'000;
  for (int period = 0; period < 100; ++period) {
    const std::int64_t jitter = (period % 5 - 2) * 500;
    est.OnPeriodEnd(
        std::min<std::int64_t>(est.Estimate() - 200, capacity + jitter));
  }
  EXPECT_NEAR(static_cast<double>(est.Estimate()), 1'562'000, 15'000);
}

TEST(CapacityEstimator, RejectsNegativeInput) {
  CapacityEstimator est(Params());
  EXPECT_DEATH(est.OnPeriodEnd(-1), "Precondition");
}

TEST(CapacityEstimator, ValidatesParams) {
  EXPECT_DEATH(CapacityEstimator(Params(0)), "Precondition");
  EXPECT_DEATH(CapacityEstimator(Params(1000, -1)), "Precondition");
  EXPECT_DEATH(CapacityEstimator(Params(1000, 0, -1)), "Precondition");
  EXPECT_DEATH(CapacityEstimator(Params(1000, 0, 0, 0)), "Precondition");
}

TEST(CapacityEstimator, LowerBoundClampsAtZero) {
  CapacityEstimator est(Params(100, /*sigma=*/100));  // 100 - 300 < 0
  EXPECT_EQ(est.LowerBound(), 0);
}

}  // namespace
}  // namespace haechi::core
