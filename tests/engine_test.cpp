// Direct unit tests of ClientQosEngine against a hand-rolled mock monitor:
// the test owns the control QP and the pool/report words, crafting exact
// protocol situations (stale token fetches, report tags, limit edges) that
// the full harness cannot time precisely.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "core/engine.hpp"
#include "core/wire.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : fabric_(sim_, MakeParams(), 5),
        server_(fabric_.AddNode("server", rdma::NodeRole::kData)),
        client_(fabric_.AddNode("client")),
        control_block_(16 * sizeof(std::uint64_t)),
        qos_cq_(client_.CreateCq()),
        qos_srv_cq_(server_.CreateCq()),
        ctrl_cq_(client_.CreateCq()),
        ctrl_recv_cq_(client_.CreateCq()),
        monitor_cq_(server_.CreateCq()),
        qos_qp_(client_.CreateQp(qos_cq_, qos_cq_)),
        qos_srv_qp_(server_.CreateQp(qos_srv_cq_, qos_srv_cq_)),
        ctrl_qp_(client_.CreateQp(ctrl_cq_, ctrl_recv_cq_)),
        monitor_qp_(server_.CreateQp(monitor_cq_, monitor_cq_)) {
    fabric_.Connect(qos_qp_, qos_srv_qp_);
    fabric_.Connect(ctrl_qp_, monitor_qp_);
    control_mr_ = &server_.pd().Register(
        std::span<std::byte>(control_block_),
        rdma::access::kLocalRead | rdma::access::kLocalWrite |
            rdma::access::kRemoteRead | rdma::access::kRemoteWrite |
            rdma::access::kRemoteAtomic);
    monitor_cq_.SetNotify([](const rdma::WorkCompletion&) {});

    config_.token_batch = 10;
    config_.max_backend_outstanding = 1u << 20;

    QosWiring wiring;
    wiring.global_pool_addr = control_mr_->remote_addr();
    wiring.global_pool_rkey = control_mr_->rkey();
    wiring.report_slot_addr =
        control_mr_->remote_addr() + sizeof(std::uint64_t);
    wiring.report_slot_rkey = control_mr_->rkey();
    engine_ = std::make_unique<ClientQosEngine>(
        sim_, MakeClientId(0), config_, client_, qos_qp_, ctrl_qp_, wiring);
    engine_->SetIoBackend(
        [this](std::uint64_t, bool, ClientQosEngine::CompleteFn done) {
          // An instant backend: completes one simulated microsecond later.
          ++backend_calls_;
          sim_.ScheduleAfter(Micros(1), [done = std::move(done)] { done(); });
          return Status::Ok();
        });
  }

  static net::ModelParams MakeParams() {
    net::ModelParams params;
    params.capacity_scale = 0.02;
    return params;
  }

  void SetPool(std::int64_t tokens) {
    const auto raw = static_cast<std::uint64_t>(tokens);
    std::memcpy(control_block_.data(), &raw, sizeof(raw));
  }
  std::int64_t Pool() const {
    std::uint64_t raw;
    std::memcpy(&raw, control_block_.data(), sizeof(raw));
    return static_cast<std::int64_t>(raw);
  }
  std::uint64_t ReportSlot() const {
    std::uint64_t raw;
    std::memcpy(&raw, control_block_.data() + sizeof(std::uint64_t),
                sizeof(raw));
    return raw;
  }

  void SendPeriodStart(std::uint32_t period, std::int64_t tokens,
                       std::int64_t limit = 0) {
    PeriodStartMsg msg;
    msg.period = period;
    msg.reservation_tokens = tokens;
    msg.limit = limit;
    ASSERT_TRUE(monitor_qp_
                    .PostSend(1, std::span<const std::byte>(
                                     reinterpret_cast<const std::byte*>(&msg),
                                     sizeof(msg)))
                    .ok());
  }

  void SendReportRequest(std::uint32_t period) {
    ReportRequestMsg msg;
    msg.period = period;
    ASSERT_TRUE(monitor_qp_
                    .PostSend(2, std::span<const std::byte>(
                                     reinterpret_cast<const std::byte*>(&msg),
                                     sizeof(msg)))
                    .ok());
  }

  // Completion callbacks fire from simulator events long after SubmitMany
  // returns, so the counter must outlive the call frame.
  void SubmitMany(int n) {
    for (int i = 0; i < n; ++i) {
      const Status s = engine_->Submit(0, [this] { ++submit_completed_; });
      if (!s.ok()) break;
    }
  }

  sim::Simulator sim_;
  rdma::Fabric fabric_;
  rdma::Node& server_;
  rdma::Node& client_;
  std::vector<std::byte> control_block_;
  const rdma::MemoryRegion* control_mr_ = nullptr;
  rdma::CompletionQueue& qos_cq_;
  rdma::CompletionQueue& qos_srv_cq_;
  rdma::CompletionQueue& ctrl_cq_;
  rdma::CompletionQueue& ctrl_recv_cq_;
  rdma::CompletionQueue& monitor_cq_;
  rdma::QueuePair& qos_qp_;
  rdma::QueuePair& qos_srv_qp_;
  rdma::QueuePair& ctrl_qp_;
  rdma::QueuePair& monitor_qp_;
  QosConfig config_;
  std::unique_ptr<ClientQosEngine> engine_;
  int backend_calls_ = 0;
  int submit_completed_ = 0;
};

TEST_F(EngineTest, NothingIssuesBeforeFirstPeriod) {
  engine_->Submit(0, [] {});
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(backend_calls_, 0);
  EXPECT_EQ(engine_->QueueDepth(), 1u);
  EXPECT_EQ(engine_->CurrentPeriod(), 0u);
}

TEST_F(EngineTest, PeriodStartReleasesQueuedWork) {
  engine_->Submit(0, [] {});
  engine_->Submit(1, [] {});
  SendPeriodStart(1, /*tokens=*/5);
  sim_.RunUntil(Millis(1));
  EXPECT_EQ(backend_calls_, 2);
  EXPECT_EQ(engine_->CurrentPeriod(), 1u);
  EXPECT_EQ(engine_->ReservationTokens(), 3);
  EXPECT_EQ(engine_->stats().tokens_from_reservation, 2);
}

TEST_F(EngineTest, SubmitWithoutBackendFails) {
  ClientQosEngine bare(sim_, MakeClientId(1), config_, client_, qos_qp_,
                       ctrl_qp_, QosWiring{});
  EXPECT_EQ(bare.Submit(0, [] {}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, QueueBoundRejects) {
  QosConfig tiny = config_;
  tiny.max_engine_queue = 2;
  // Rebuild the engine with the tiny queue (fresh QPs to avoid CQ clashes).
  auto& cq_a = client_.CreateCq();
  auto& cq_b = server_.CreateCq();
  auto& qp_a = client_.CreateQp(cq_a, cq_a);
  auto& qp_b = server_.CreateQp(cq_b, cq_b);
  fabric_.Connect(qp_a, qp_b);
  auto& ctrl_a_cq = client_.CreateCq();
  auto& ctrl_a_recv = client_.CreateCq();
  auto& ctrl_b_cq = server_.CreateCq();
  auto& ctrl_a = client_.CreateQp(ctrl_a_cq, ctrl_a_recv);
  auto& ctrl_b = server_.CreateQp(ctrl_b_cq, ctrl_b_cq);
  fabric_.Connect(ctrl_a, ctrl_b);
  ClientQosEngine engine(sim_, MakeClientId(2), tiny, client_, qp_a, ctrl_a,
                         QosWiring{});
  engine.SetIoBackend(
      [](std::uint64_t, bool, ClientQosEngine::CompleteFn) {
        return Status::Ok();
      });
  EXPECT_TRUE(engine.Submit(0, [] {}).ok());
  EXPECT_TRUE(engine.Submit(1, [] {}).ok());
  EXPECT_EQ(engine.Submit(2, [] {}).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().rejected_submits, 1u);
}

TEST_F(EngineTest, ExhaustedReservationDrawsFromPool) {
  SetPool(100);
  SendPeriodStart(1, /*tokens=*/3);
  SubmitMany(8);
  sim_.RunUntil(Millis(5));
  EXPECT_EQ(backend_calls_, 8);
  EXPECT_EQ(engine_->stats().tokens_from_reservation, 3);
  EXPECT_EQ(engine_->stats().tokens_from_pool, 5);
  // One batched FAA of B=10 sufficed; its leftover tokens stay local.
  EXPECT_EQ(engine_->stats().faa_ops, 1u);
  EXPECT_EQ(engine_->PoolTokens(), 5);
  EXPECT_EQ(Pool(), 90);
}

TEST_F(EngineTest, EmptyPoolMakesClientWait) {
  SetPool(0);
  SendPeriodStart(1, /*tokens=*/1);
  SubmitMany(3);
  sim_.RunUntil(Millis(50));
  EXPECT_EQ(backend_calls_, 1);  // reservation only
  EXPECT_EQ(engine_->QueueDepth(), 2u);
  // Retries happen at the pool_retry_interval cadence, not a busy loop.
  EXPECT_LT(engine_->stats().faa_ops, 60u);
  // Tokens appear (monitor conversion): the client resumes.
  SetPool(50);
  sim_.RunUntil(Millis(60));
  EXPECT_EQ(backend_calls_, 3);
}

TEST_F(EngineTest, StaleTokenFetchIsDiscardedAcrossPeriods) {
  SetPool(100);
  SendPeriodStart(1, /*tokens=*/0);
  engine_->Submit(0, [] {});  // forces a FAA
  // Let the FAA get posted but roll the period before its completion
  // returns (client NIC + 2 links + atomic ≈ 5 µs).
  sim_.RunUntil(sim_.Now() + Micros(2));
  SendPeriodStart(2, /*tokens=*/0);
  sim_.RunUntil(Millis(10));
  // Two fetches hit the pool word (10 tokens each), but the first batch
  // belonged to period 1 and was discarded: only the second funds I/O.
  EXPECT_GE(engine_->stats().faa_ops, 2u);
  EXPECT_EQ(Pool(), 80);
  EXPECT_EQ(backend_calls_, 1);
  EXPECT_EQ(engine_->PoolTokens(), 9);  // 10 fetched, 1 consumed
  EXPECT_EQ(engine_->stats().tokens_from_pool, 1);
}

TEST_F(EngineTest, LimitIsExactPerPeriod) {
  SetPool(1000);
  SendPeriodStart(1, /*tokens=*/100, /*limit=*/4);
  SubmitMany(10);
  sim_.RunUntil(Millis(5));
  EXPECT_EQ(backend_calls_, 4);
  EXPECT_GT(engine_->stats().limit_throttle_events, 0u);
  // A new period resets the throttle.
  SendPeriodStart(2, /*tokens=*/100, /*limit=*/4);
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(backend_calls_, 8);
}

TEST_F(EngineTest, ReportsCarryPeriodTagAndClaims) {
  SendPeriodStart(3, /*tokens=*/50);
  SubmitMany(20);
  SendReportRequest(3);
  sim_.RunUntil(Millis(3));
  const std::uint64_t slot = ReportSlot();
  EXPECT_EQ(ReportPeriod(slot), 3u);
  EXPECT_EQ(ReportCompleted(slot), 20u);
  // Claims = unconsumed tokens (30) + nothing in flight.
  EXPECT_EQ(ReportResidual(slot), 30u);
  EXPECT_TRUE(engine_->Reporting());
  EXPECT_GT(engine_->stats().report_writes, 0u);
  // Reporting stops at the next period start.
  SendPeriodStart(4, /*tokens=*/50);
  sim_.RunUntil(Millis(4));
  EXPECT_FALSE(engine_->Reporting());
}

TEST_F(EngineTest, IdleTokensDecayLinearly) {
  SendPeriodStart(1, /*tokens=*/1000);
  sim_.RunUntil(Millis(1) + Millis(500));  // half the period
  EXPECT_NEAR(static_cast<double>(engine_->ReservationTokens()), 500, 10);
  sim_.RunUntil(Millis(1) + Millis(999));
  EXPECT_LE(engine_->ReservationTokens(), 2);
}

TEST_F(EngineTest, OverReserveHintIsCounted) {
  OverReserveHintMsg msg;
  msg.consecutive_periods = 5;
  ASSERT_TRUE(monitor_qp_
                  .PostSend(3, std::span<const std::byte>(
                                   reinterpret_cast<const std::byte*>(&msg),
                                   sizeof(msg)))
                  .ok());
  sim_.Run();
  EXPECT_EQ(engine_->stats().over_reserve_hints, 1u);
}

TEST_F(EngineTest, WritesFlowThroughTheSameTokenPath) {
  int writes_seen = 0;
  engine_->SetIoBackend(
      [this, &writes_seen](std::uint64_t, bool is_write,
                           ClientQosEngine::CompleteFn done) {
        writes_seen += is_write;
        sim_.ScheduleAfter(Micros(1), [done = std::move(done)] { done(); });
        return Status::Ok();
      });
  SendPeriodStart(1, /*tokens=*/10);
  engine_->Submit(0, [] {}, /*is_write=*/true);
  engine_->Submit(1, [] {}, /*is_write=*/false);
  engine_->Submit(2, [] {}, /*is_write=*/true);
  sim_.RunUntil(Millis(2));
  EXPECT_EQ(writes_seen, 2);
  EXPECT_EQ(engine_->stats().tokens_from_reservation, 3);
}

}  // namespace
}  // namespace haechi::core
