// Unit tests for the queueing stations: service rates, FIFO vs round-robin
// disciplines, the control-priority fast path, and jitter bounds.
#include <gtest/gtest.h>

#include <vector>

#include "net/model_params.hpp"
#include "net/station.hpp"
#include "sim/simulator.hpp"

namespace haechi::net {
namespace {

TEST(SerialStation, ServesAtConfiguredRate) {
  sim::Simulator sim;
  SerialStation station(sim, "nic", /*jitter=*/0.0, /*seed=*/1);
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    station.Submit(1000, [&] { ++done; });
  }
  sim.RunUntil(50'000);
  EXPECT_EQ(done, 50);
  sim.Run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(station.Served(), 100u);
  EXPECT_EQ(station.BusyTime(), 100'000);
}

TEST(SerialStation, FifoOrder) {
  sim::Simulator sim;
  SerialStation station(sim, "nic", 0.0, 1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    station.Submit(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SerialStation, IdleThenBusy) {
  sim::Simulator sim;
  SerialStation station(sim, "nic", 0.0, 1);
  EXPECT_FALSE(station.Busy());
  station.Submit(10, [] {});
  EXPECT_TRUE(station.Busy());
  sim.Run();
  EXPECT_FALSE(station.Busy());
  EXPECT_EQ(station.QueueDepth(), 0u);
}

TEST(SerialStation, CompletionCanResubmit) {
  sim::Simulator sim;
  SerialStation station(sim, "nic", 0.0, 1);
  int chain = 0;
  std::function<void()> resubmit = [&] {
    if (++chain < 5) station.Submit(7, resubmit);
  };
  station.Submit(7, resubmit);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.Now(), 5 * 7);
}

TEST(SerialStation, JitterStaysWithinBounds) {
  sim::Simulator sim;
  SerialStation station(sim, "nic", /*jitter=*/0.1, /*seed=*/3);
  std::vector<SimTime> completions;
  SimTime last = 0;
  for (int i = 0; i < 1000; ++i) {
    station.Submit(1000, [&] {
      completions.push_back(sim.Now() - last);
      last = sim.Now();
    });
  }
  sim.Run();
  for (const SimTime service : completions) {
    EXPECT_GE(service, 900);
    EXPECT_LE(service, 1100);
  }
  // Mean close to nominal.
  EXPECT_NEAR(static_cast<double>(sim.Now()) / 1000.0, 1000.0, 10.0);
}

TEST(FairShareStation, RoundRobinSharesEqually) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kRoundRobin);
  std::vector<int> done(4, 0);
  for (int f = 0; f < 4; ++f) {
    for (int i = 0; i < 1000; ++i) {
      station.Submit(static_cast<FlowId>(f), 100, [&done, f] { ++done[f]; });
    }
  }
  sim.RunUntil(100 * 2000);  // half the total work
  for (int f = 0; f < 4; ++f) {
    EXPECT_NEAR(done[f], 500, 2) << "flow " << f;
  }
}

TEST(FairShareStation, RoundRobinSkipsEmptyFlows) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kRoundRobin);
  int done_a = 0, done_b = 0;
  for (int i = 0; i < 10; ++i) station.Submit(0, 100, [&] { ++done_a; });
  station.Submit(7, 100, [&] { ++done_b; });  // sparse flow id
  sim.Run();
  EXPECT_EQ(done_a, 10);
  EXPECT_EQ(done_b, 1);
}

TEST(FairShareStation, FifoServesInArrivalOrder) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kFifo);
  std::vector<int> order;
  station.Submit(0, 100, [&] { order.push_back(0); });
  station.Submit(1, 100, [&] { order.push_back(1); });
  station.Submit(0, 100, [&] { order.push_back(2); });
  station.Submit(2, 100, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FairShareStation, FifoTracksPerFlowDepth) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kFifo);
  station.Submit(3, 100, [] {});
  station.Submit(3, 100, [] {});
  station.Submit(5, 100, [] {});
  // One item is in service already; 2 remain queued.
  EXPECT_EQ(station.QueueDepth(), 2u);
  EXPECT_GE(station.QueueDepth(3), 1u);
  sim.Run();
  EXPECT_EQ(station.QueueDepth(3), 0u);
  EXPECT_EQ(station.QueueDepth(5), 0u);
}

TEST(FairShareStation, ControlPriorityBypassesBulkBacklog) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kFifo);
  SimTime control_done = -1;
  // 1000 bulk items of 1µs each = 1ms of backlog.
  for (int i = 0; i < 1000; ++i) station.Submit(0, 1000, [] {});
  station.Submit(1, 50, [&] { control_done = sim.Now(); },
                 Priority::kControl);
  sim.Run();
  // Control op finishes after at most one in-service bulk item, not after
  // the 1 ms backlog.
  EXPECT_GT(control_done, 0);
  EXPECT_LE(control_done, 2 * 1000 + 50);
  EXPECT_EQ(sim.Now(), 1000 * 1000 + 50);
}

TEST(FairShareStation, ControlPriorityWorksUnderRoundRobinToo) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kRoundRobin);
  SimTime control_done = -1;
  for (int i = 0; i < 100; ++i) station.Submit(0, 1000, [] {});
  station.Submit(0, 50, [&] { control_done = sim.Now(); },
                 Priority::kControl);
  sim.Run();
  EXPECT_LE(control_done, 2 * 1000 + 50);
}

TEST(FairShareStation, WorkConservingAcrossFlows) {
  sim::Simulator sim;
  FairShareStation station(sim, "srv", 0.0, 1, Discipline::kRoundRobin);
  // Flow 0 has steady work; flow 1 arrives late; station must never idle.
  for (int i = 0; i < 100; ++i) station.Submit(0, 100, [] {});
  sim.ScheduleAt(5'000, [&] {
    for (int i = 0; i < 10; ++i) station.Submit(1, 100, [] {});
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), 110 * 100);
  EXPECT_EQ(station.BusyTime(), 110 * 100);
}

TEST(ModelParams, CalibratedCapacities) {
  const ModelParams params;
  EXPECT_NEAR(params.LocalCapacityIops(), 400'000, 2'000);
  EXPECT_NEAR(params.GlobalCapacityIops(), 1'570'000, 10'000);
  EXPECT_NEAR(params.TwoSidedCapacityIops(), 430'000, 2'000);
}

TEST(ModelParams, CapacityScaleShrinksDataNotControl) {
  ModelParams params;
  params.capacity_scale = 0.1;
  EXPECT_NEAR(params.GlobalCapacityIops(), 157'000, 1'000);
  // Control-plane floors are scale-invariant.
  EXPECT_EQ(params.ClientNicService(8), params.min_op_service);
  ModelParams full;
  EXPECT_EQ(params.ClientNicService(8), full.ClientNicService(8));
}

TEST(ModelParams, ServiceTimeMonotoneInSize) {
  const ModelParams params;
  EXPECT_LT(params.ServerNicService(64), params.ServerNicService(4096));
  EXPECT_LT(params.ClientNicService(512), params.ClientNicService(4096));
}

}  // namespace
}  // namespace haechi::net
