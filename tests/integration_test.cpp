// End-to-end protocol tests: full clusters (monitor + engines + KV store +
// workload) at reduced capacity scale for speed. Shapes and guarantees are
// scale-invariant (see DESIGN.md).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::IoPath;
using harness::Mode;

// 5% of the paper's hardware: C_G = 78.5 KIOPS, C_L = 20 KIOPS.
constexpr double kScale = 0.05;

ExperimentConfig ScaledConfig(Mode mode) {
  ExperimentConfig config;
  config.mode = mode;
  config.net.capacity_scale = kScale;
  config.warmup = Seconds(2);
  config.measure_periods = 8;
  config.records = 1024;
  return config;
}

std::int64_t Tokens(const ExperimentConfig& config, double fraction) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops() *
                                   ToSeconds(config.qos.period) * fraction);
}

// Experiment 2A (Zipf): with Haechi every client meets its reservation in
// every period; 90% of capacity reserved, demand = reservation + pool.
TEST(HaechiIntegration, ZipfReservationsMetEveryPeriod) {
  ExperimentConfig config = ScaledConfig(Mode::kHaechi);
  const std::int64_t reserved = Tokens(config, 0.9);
  const std::int64_t pool = Tokens(config, 0.1);
  const auto reservations = workload::ZipfGroupShare(reserved, 10, 5, 0.6);
  for (const auto r : reservations) {
    harness::ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + pool;
    // Set 2 requires demand sufficiency (Definition 1).
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  ExperimentResult result = Experiment(std::move(config)).Run();

  for (std::uint32_t c = 0; c < 10; ++c) {
    const auto id = MakeClientId(c);
    // 2% slack: measurement windows are aligned to the monitor's period
    // boundaries while engine periods lag by the control-message transit,
    // so a tail of completions can be attributed to the neighbouring
    // window. The tokens themselves are all consumed within the period.
    EXPECT_GE(result.series.ClientMinPerPeriod(id),
              result.reservations[c] * 98 / 100)
        << "client " << c << " missed its reservation";
  }
}

// Experiment 2A (bare baseline): the bare system serves everyone equally,
// so above-average reservations are missed.
TEST(HaechiIntegration, BareSystemMissesHighReservations) {
  ExperimentConfig config = ScaledConfig(Mode::kBare);
  const std::int64_t reserved = Tokens(config, 0.9);
  const std::int64_t pool = Tokens(config, 0.1);
  const auto reservations = workload::ZipfGroupShare(reserved, 10, 5, 0.6);
  for (const auto r : reservations) {
    harness::ClientSpec spec;
    spec.reservation = r;  // recorded but unenforced
    spec.demand = r + pool;
    config.clients.push_back(spec);
  }
  ExperimentResult result = Experiment(std::move(config)).Run();

  // Clients 0 and 1 (highest Zipf group) fall well short of reservation.
  const auto want = result.reservations[0];
  const auto got = result.series.ClientTotal(MakeClientId(0)) /
                   static_cast<std::int64_t>(result.series.Periods());
  EXPECT_LT(got, want * 9 / 10);
}

// Experiment 2B: token conversion moves unused reservation to busy clients;
// Basic Haechi wastes it.
TEST(HaechiIntegration, TokenConversionBeatsBasicHaechi) {
  auto build = [](Mode mode) {
    ExperimentConfig config = ScaledConfig(mode);
    const std::int64_t reserved = Tokens(config, 0.9);
    const std::int64_t pool = Tokens(config, 0.1);
    const auto reservations =
        workload::UniformShare(reserved, 10);
    for (std::size_t i = 0; i < reservations.size(); ++i) {
      harness::ClientSpec spec;
      spec.reservation = reservations[i];
      // C1, C2 have demand below reservation; the rest are hungry.
      spec.demand = i < 2 ? reservations[i] / 2 : reservations[i] + pool;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    return config;
  };

  ExperimentResult haechi = Experiment(build(Mode::kHaechi)).Run();
  ExperimentResult basic = Experiment(build(Mode::kBasicHaechi)).Run();

  // Work conservation: full Haechi recovers most of the surrendered
  // capacity; Basic wastes it.
  EXPECT_GT(haechi.total_kiops, basic.total_kiops * 1.05);

  // The reclaimed tokens let hungry clients exceed their reservation.
  const auto id = MakeClientId(5);
  EXPECT_GT(haechi.series.ClientTotal(id), basic.series.ClientTotal(id));
}

// Limits: a client with L_i = R_i never exceeds it.
TEST(HaechiIntegration, LimitsAreEnforced) {
  ExperimentConfig config = ScaledConfig(Mode::kHaechi);
  const std::int64_t reserved = Tokens(config, 0.8);
  const auto reservations = workload::UniformShare(reserved, 4);
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = reservations[i] * 2;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    if (i == 0) spec.limit = reservations[i];  // capped at its reservation
    config.clients.push_back(spec);
  }
  ExperimentResult result = Experiment(std::move(config)).Run();

  const auto id = MakeClientId(0);
  for (std::size_t p = 1; p + 1 < result.series.Periods(); ++p) {
    EXPECT_LE(result.series.At(p, id), result.reservations[0] + 160)
        << "period " << p;
  }
  // The other (unlimited) clients soak up the slack.
  EXPECT_GT(result.series.ClientTotal(MakeClientId(1)),
            result.series.ClientTotal(id));
}

// Uniform sufficient demand: Haechi costs almost nothing vs bare.
TEST(HaechiIntegration, OverheadIsNegligible) {
  auto build = [](Mode mode) {
    ExperimentConfig config = ScaledConfig(mode);
    const std::int64_t reserved = Tokens(config, 0.9);
    const std::int64_t pool = Tokens(config, 0.1);
    const auto reservations = workload::UniformShare(reserved, 10);
    for (const auto r : reservations) {
      harness::ClientSpec spec;
      spec.reservation = r;
      spec.demand = r + pool;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    return config;
  };
  ExperimentResult haechi = Experiment(build(Mode::kHaechi)).Run();
  ExperimentResult bare = Experiment(build(Mode::kBare)).Run();
  // Paper: < 0.1% throughput loss; allow 2% in the scaled simulation.
  EXPECT_GT(haechi.total_kiops, bare.total_kiops * 0.98);
}

}  // namespace
}  // namespace haechi
