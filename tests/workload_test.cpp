// Unit tests for workload/: demand distributions (exact sums, paper
// shapes) and the demand generator's three request patterns.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/simulator.hpp"
#include "workload/distributions.hpp"
#include "workload/generator.hpp"

namespace haechi::workload {
namespace {

TEST(Distributions, UniformShareExactSum) {
  const auto shares = UniformShare(1003, 10);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            1003);
  EXPECT_EQ(shares[0], 101);  // remainder goes to the first clients
  EXPECT_EQ(shares[9], 100);
}

TEST(Distributions, WeightedShareExactSumAndProportion) {
  const auto shares = WeightedShare(1000, {3.0, 1.0});
  EXPECT_EQ(shares[0] + shares[1], 1000);
  EXPECT_EQ(shares[0], 750);
  EXPECT_EQ(shares[1], 250);
}

TEST(Distributions, WeightedShareHandlesAwkwardFractions) {
  const auto shares = WeightedShare(100, {1.0, 1.0, 1.0});
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            100);
  for (const auto s : shares) EXPECT_GE(s, 33);
}

TEST(Distributions, ZipfGroupShareMatchesPaperNumbers) {
  // Paper Fig 9(b): 10 clients, 5 groups, theta 0.6, 90% of 1570K reserved
  // -> the top group's clients get ~236K each (7080K over 30 periods).
  const auto shares = ZipfGroupShare(1'413'000, 10, 5, 0.6);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            1'413'000);
  EXPECT_EQ(shares[0], shares[1]);  // both clients of a group are equal
  EXPECT_NEAR(static_cast<double>(shares[0]), 236'000, 1000);
  EXPECT_NEAR(static_cast<double>(shares[8]), 90'000, 1000);
  EXPECT_GT(shares[0], shares[2]);
  EXPECT_GT(shares[2], shares[4]);
}

TEST(Distributions, SpikeShareMatchesSet3) {
  // Paper Set 3: C1-C3 at 285K, C4-C10 at 80K.
  const auto shares = SpikeShare(10, 3, 285'000, 80'000);
  EXPECT_EQ(shares[0], 285'000);
  EXPECT_EQ(shares[2], 285'000);
  EXPECT_EQ(shares[3], 80'000);
  EXPECT_EQ(shares[9], 80'000);
}

TEST(KeyChooser, SequentialWraps) {
  KeyChooser chooser(KeyChooser::Kind::kSequential, 4, 0.0, Rng(1));
  EXPECT_EQ(chooser.Next(), 0u);
  EXPECT_EQ(chooser.Next(), 1u);
  EXPECT_EQ(chooser.Next(), 2u);
  EXPECT_EQ(chooser.Next(), 3u);
  EXPECT_EQ(chooser.Next(), 0u);
}

TEST(KeyChooser, UniformCoversSpace) {
  KeyChooser chooser(KeyChooser::Kind::kUniformRandom, 8, 0.0, Rng(2));
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 1000; ++i) ++seen[chooser.Next()];
  for (const int c : seen) EXPECT_GT(c, 50);
}

// --- generator fixtures -----------------------------------------------------

class GeneratorTest : public ::testing::Test {
 protected:
  // A backend with a fixed service time and unbounded concurrency.
  DemandGenerator::SubmitFn InstantBackend(SimDuration latency) {
    return [this, latency](std::uint64_t, bool,
                           DemandGenerator::CompleteFn done) {
      ++submitted_;
      sim_.ScheduleAfter(latency, [this, done = std::move(done)] {
        ++completed_;
        done();
      });
    };
  }

  sim::Simulator sim_;
  int submitted_ = 0;
  int completed_ = 0;
};

TEST_F(GeneratorTest, BurstKeepsWindowOutstanding) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kBurst;
  config.outstanding = 8;
  config.period = Millis(10);
  config.demand_per_period = 100;
  int in_flight_max = 0;
  int in_flight = 0;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      [&](std::uint64_t, bool, DemandGenerator::CompleteFn done) {
                        ++in_flight;
                        in_flight_max = std::max(in_flight_max, in_flight);
                        sim_.ScheduleAfter(Micros(10),
                                           [&, done = std::move(done)] {
                                             --in_flight;
                                             done();
                                           });
                      });
  gen.Start(0);
  sim_.RunUntil(Millis(10) - 1);
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(in_flight_max, 8);
  EXPECT_EQ(gen.SubmittedTotal(), 100);
  EXPECT_EQ(gen.CompletedTotal(), 100);
}

TEST_F(GeneratorTest, BurstStopsAtDemandTarget) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kBurst;
  config.outstanding = 64;
  config.period = Millis(10);
  config.demand_per_period = 5;  // below the window
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(1)));
  gen.Start(0);
  sim_.RunUntil(Millis(10) - 1);
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(submitted_, 5);
}

TEST_F(GeneratorTest, ConstantRateSpreadsRequests) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kConstantRate;
  config.period = Millis(10);
  config.demand_per_period = 10;  // one per ms
  std::vector<SimTime> times;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      [&](std::uint64_t, bool, DemandGenerator::CompleteFn done) {
                        times.push_back(sim_.Now());
                        done();
                      });
  gen.Start(0);
  sim_.RunUntil(Millis(10) - 1);
  gen.Stop();
  sim_.Run();
  ASSERT_EQ(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], Millis(1));
  }
}

TEST_F(GeneratorTest, OpenLoopSubmitsEverythingAtOnce) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 1000;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Millis(100)));  // slow backend
  gen.Start(0);
  sim_.Step();  // the period-start event
  EXPECT_EQ(submitted_, 1000);
  EXPECT_EQ(gen.InFlight(), 1000);
  gen.Stop();
  sim_.Run();
}

TEST_F(GeneratorTest, DemandRefreshesEveryPeriod) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 10;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(1)));
  gen.Start(0);
  sim_.RunUntil(Millis(35));
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(submitted_, 40);  // periods at 0, 10, 20, 30 ms
}

TEST_F(GeneratorTest, SetDemandTakesEffectNextPeriod) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 10;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(1)));
  gen.Start(0);
  sim_.RunUntil(Millis(5));
  gen.set_demand(3);
  sim_.RunUntil(Millis(15));
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(submitted_, 13);
}

TEST_F(GeneratorTest, LatencySinkRecordsAfterThreshold) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kConstantRate;
  config.period = Millis(10);
  config.demand_per_period = 10;
  stats::Histogram latency;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(50)));
  gen.SetLatencySink(&latency, /*after=*/Millis(5));
  gen.Start(0);
  sim_.RunUntil(Millis(10) - 1);
  gen.Stop();
  sim_.Run();
  // Only requests submitted at t >= 5ms are recorded (5 of 10).
  EXPECT_EQ(latency.Count(), 5u);
  EXPECT_NEAR(static_cast<double>(latency.Mean()), Micros(50), 1000);
}

TEST_F(GeneratorTest, StopPreventsFurtherPeriods) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 7;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(1)));
  gen.Start(0);
  sim_.RunUntil(Millis(2));
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(submitted_, 7);
}

TEST_F(GeneratorTest, DelayedStart) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 4;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      InstantBackend(Micros(1)));
  gen.Start(Millis(100));
  sim_.RunUntil(Millis(99));
  EXPECT_EQ(submitted_, 0);
  sim_.RunUntil(Millis(101));
  EXPECT_EQ(submitted_, 4);
  gen.Stop();
  sim_.Run();
}

TEST_F(GeneratorTest, WriteFractionProducesWrites) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 10000;
  config.write_fraction = 0.3;
  int writes = 0;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      [&](std::uint64_t, bool is_write,
                          DemandGenerator::CompleteFn done) {
                        writes += is_write;
                        done();
                      });
  gen.Start(0);
  sim_.RunUntil(Millis(5));
  gen.Stop();
  sim_.Run();
  EXPECT_NEAR(writes, 3000, 200);
  EXPECT_EQ(gen.WritesSubmitted(), writes);
}

TEST_F(GeneratorTest, ZeroWriteFractionIsReadOnly) {
  DemandGenerator::Config config;
  config.pattern = RequestPattern::kOpenLoop;
  config.period = Millis(10);
  config.demand_per_period = 1000;
  int writes = 0;
  DemandGenerator gen(sim_, config,
                      KeyChooser(KeyChooser::Kind::kSequential, 16, 0, Rng(1)),
                      [&](std::uint64_t, bool is_write,
                          DemandGenerator::CompleteFn done) {
                        writes += is_write;
                        done();
                      });
  gen.Start(0);
  sim_.RunUntil(Millis(5));
  gen.Stop();
  sim_.Run();
  EXPECT_EQ(writes, 0);
  EXPECT_EQ(gen.WritesSubmitted(), 0);
}

}  // namespace
}  // namespace haechi::workload
