// Protocol-level tests of the engine/monitor pair: token dispatch, decay,
// FAA batching, reporting activation, token conversion, limits, admission
// wiring, loopback-CAS mode, and over-reservation alerts. Uses small
// scaled clusters and the Experiment harness's introspection hooks.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Mode;

constexpr double kScale = 0.02;  // C_G ≈ 31.4K, C_L = 8K

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.mode = Mode::kHaechi;
  config.net.capacity_scale = kScale;
  config.warmup = Seconds(1);
  config.measure_periods = 4;
  config.records = 256;
  config.qos.token_batch = 100;
  return config;
}

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

TEST(Protocol, PeriodStartDispatchesReservationTokens) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  ClientSpec spec;
  spec.reservation = cap / 4;
  spec.demand = 0;  // idle client: tokens arrive but are not consumed
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  auto& sim = exp.simulator();
  std::int64_t tokens_after_start = -1;
  sim.ScheduleAt(Millis(1), [&] {
    tokens_after_start = exp.engine(0).ReservationTokens();
  });
  exp.Run();
  EXPECT_EQ(tokens_after_start, cap / 4);
}

TEST(Protocol, IdleClientTokensDecayLinearly) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t reservation = Capacity(config) / 4;
  ClientSpec spec;
  spec.reservation = reservation;
  spec.demand = 0;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  auto& sim = exp.simulator();
  std::int64_t at_half = -1;
  // Mid-period: X = R*(1 - t/T) -> half the tokens surrendered.
  sim.ScheduleAt(Millis(500), [&] {
    at_half = exp.engine(0).ReservationTokens();
  });
  exp.Run();
  EXPECT_NEAR(static_cast<double>(at_half),
              static_cast<double>(reservation) / 2,
              static_cast<double>(reservation) * 0.01);
}

TEST(Protocol, BusyClientTokensDoNotDecay) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t reservation = Capacity(config) / 4;
  ClientSpec spec;
  spec.reservation = reservation;
  spec.demand = reservation;  // sufficient demand, consumed instantly
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  auto& sim = exp.simulator();
  std::int64_t consumed_check = -1;
  sim.ScheduleAt(Millis(100), [&] {
    // All tokens already consumed by issuance — none left to decay.
    consumed_check = exp.engine(0).ReservationTokens();
  });
  ExperimentResult r = exp.Run();
  EXPECT_EQ(consumed_check, 0);
  // And the client actually completed its full reservation each period.
  EXPECT_GE(r.series.ClientMinPerPeriod(MakeClientId(0)),
            reservation * 98 / 100);
}

TEST(Protocol, ReportingActivatesOnPoolDraw) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  // One client whose demand exceeds its reservation: it must draw global
  // tokens, which triggers reporting.
  ClientSpec spec;
  spec.reservation = cap / 4;
  spec.demand = cap / 2;
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  auto& sim = exp.simulator();
  bool reporting_mid_period = false;
  bool engine_reporting = false;
  sim.ScheduleAt(Millis(500), [&] {
    reporting_mid_period = exp.monitor()->ReportingActive();
    engine_reporting = exp.engine(0).Reporting();
  });
  ExperimentResult r = exp.Run();
  EXPECT_TRUE(reporting_mid_period);
  EXPECT_TRUE(engine_reporting);
  EXPECT_GT(r.monitor_stats.report_signals, 0u);
  EXPECT_GT(r.engine_stats[0].report_writes, 0u);
  EXPECT_GT(r.engine_stats[0].faa_ops, 0u);
}

TEST(Protocol, InsufficientDemandNeverAcquiresPoolTokens) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  ClientSpec spec;
  spec.reservation = cap / 5;  // within C_L ≈ cap/4
  spec.demand = cap / 10;  // never exhausts its reservation
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  // A demand-insufficient client may probe the pool once at each period
  // boundary (fresh demand races the PeriodStart message by a few µs),
  // but it never actually uses global tokens.
  EXPECT_EQ(r.engine_stats[0].tokens_from_pool, 0);
  EXPECT_LE(r.engine_stats[0].faa_ops, r.monitor_stats.periods + 2);
}

TEST(Protocol, FaaBatchingAmortisesRemoteAtomics) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  ClientSpec spec;
  spec.reservation = 0;          // everything comes from the pool
  spec.demand = cap / 2;
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  const auto& st = r.engine_stats[0];
  ASSERT_GT(st.tokens_from_pool, 0);
  // With B = 100, FAAs per token <= 1/B plus empty-pool retries.
  EXPECT_LT(static_cast<double>(st.faa_ops),
            static_cast<double>(st.tokens_from_pool) / 100.0 * 1.5 + 5000.0);
  EXPECT_EQ(st.tokens_from_reservation, 0);
}

TEST(Protocol, TokenConversionReclaimsIdleReservation) {
  // Six reserved clients, two of them idle. 90% of capacity is reserved,
  // so the initial pool is small; with full Haechi the idle third of the
  // reservation is recycled to the hungry clients via token conversion,
  // while Basic Haechi wastes it.
  auto build = [](Mode mode) {
    ExperimentConfig config = SmallConfig();
    config.mode = mode;
    const std::int64_t cap = Capacity(config);
    const auto reservations = workload::UniformShare(cap * 9 / 10, 6);
    for (std::size_t i = 0; i < reservations.size(); ++i) {
      ClientSpec spec;
      spec.reservation = reservations[i];
      spec.demand = i < 2 ? 0 : cap;  // two idle, four insatiable
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    return config;
  };
  ExperimentResult haechi = Experiment(build(Mode::kHaechi)).Run();
  ExperimentResult basic = Experiment(build(Mode::kBasicHaechi)).Run();

  // Work conservation: the idle 30% is recovered by conversion only.
  EXPECT_GT(haechi.total_kiops, basic.total_kiops * 115 / 100);
  const auto hungry_id = MakeClientId(4);
  EXPECT_GT(haechi.series.ClientTotal(hungry_id),
            basic.series.ClientTotal(hungry_id) * 11 / 10);
  EXPECT_GT(haechi.monitor_stats.conversions, 0u);
  EXPECT_EQ(basic.monitor_stats.conversions, 0u);
}

TEST(Protocol, LimitThrottlesAndResumesEachPeriod) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  ClientSpec spec;
  spec.reservation = cap / 5;
  spec.limit = cap / 5;  // L == R
  spec.demand = cap / 2;
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients.push_back(spec);

  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  const auto id = MakeClientId(0);
  for (std::size_t p = 0; p < r.series.Periods(); ++p) {
    EXPECT_LE(r.series.At(p, id), cap / 5 + cap / 100) << "period " << p;
  }
  // But it still gets its full limit every period (not stuck).
  EXPECT_GE(r.series.ClientMinPerPeriod(id), cap / 5 * 95 / 100);
  EXPECT_GT(r.engine_stats[0].limit_throttle_events, 0u);
}

TEST(Protocol, AdmissionRejectsOverCommitment) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  ClientSpec giant;
  giant.reservation = cap * 2;  // exceeds even aggregate capacity
  giant.demand = cap;
  config.clients.push_back(giant);
  // The harness asserts on admission failure; death expected.
  EXPECT_DEATH(Experiment(std::move(config)).Run(), "");
}

TEST(Protocol, LoopbackCasModeMatchesLocalReads) {
  auto build = [](bool loopback) {
    ExperimentConfig config = SmallConfig();
    config.qos.loopback_cas = loopback;
    const std::int64_t cap = Capacity(config);
    const auto reservations = workload::UniformShare(cap * 8 / 10, 4);
    for (const auto r : reservations) {
      ClientSpec spec;
      spec.reservation = r;
      spec.demand = r + cap / 10;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    return config;
  };
  ExperimentResult local = Experiment(build(false)).Run();
  ExperimentResult loopback = Experiment(build(true)).Run();
  // Same protocol behaviour, observation path differs.
  EXPECT_NEAR(loopback.total_kiops, local.total_kiops,
              local.total_kiops * 0.02);
  EXPECT_GT(loopback.monitor_stats.report_signals, 0u);
}

TEST(Protocol, OverReserveAlertFiresForChronicUnderuse) {
  ExperimentConfig config = SmallConfig();
  config.measure_periods = 10;
  config.qos.underuse_alert_periods = 3;
  const std::int64_t cap = Capacity(config);
  ClientSpec under;  // chronically uses half its reservation
  under.reservation = cap / 5;
  under.demand = cap / 10;
  under.pattern = workload::RequestPattern::kOpenLoop;
  ClientSpec busy;  // keeps the pool drawn so reporting stays active
  busy.reservation = cap / 10;
  busy.demand = cap;
  busy.pattern = workload::RequestPattern::kOpenLoop;
  config.clients = {under, busy};

  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  EXPECT_GT(r.monitor_stats.over_reserve_hints, 0u);
  EXPECT_GT(r.engine_stats[0].over_reserve_hints, 0u);
  EXPECT_EQ(r.engine_stats[1].over_reserve_hints, 0u);
}

TEST(Protocol, RunawayClientIsIsolated) {
  // A client with zero reservation flooding the engine queue cannot push
  // a backlogged reserved client below its reservation.
  ExperimentConfig config = SmallConfig();
  // Bound large enough for the reserved client's per-period demand but far
  // below the runaway's: floods are shed at the engine.
  config.qos.max_engine_queue = 8192;
  const std::int64_t cap = Capacity(config);
  ClientSpec reserved;
  reserved.reservation = cap / 5;
  reserved.demand = cap / 5;
  reserved.pattern = workload::RequestPattern::kOpenLoop;
  ClientSpec runaway;
  runaway.reservation = 0;
  runaway.demand = cap * 4;  // hopeless over-demand
  runaway.pattern = workload::RequestPattern::kOpenLoop;
  config.clients = {reserved, runaway};

  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  EXPECT_GE(r.series.ClientMinPerPeriod(MakeClientId(0)),
            cap / 5 * 97 / 100);
  EXPECT_GT(r.engine_stats[1].rejected_submits, 0u);
}

TEST(Protocol, EngineRejectsSubmitBeforeFirstPeriod) {
  ExperimentConfig config = SmallConfig();
  ClientSpec spec;
  spec.reservation = 100;
  spec.demand = 0;
  config.clients.push_back(spec);
  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  // After Run() the engine is live; a fresh Submit with no backend state
  // still works (smoke check of the public API).
  EXPECT_EQ(r.engine_stats[0].rejected_submits, 0u);
}

TEST(Protocol, MonitorStatsAccounting) {
  ExperimentConfig config = SmallConfig();
  const std::int64_t cap = Capacity(config);
  const auto reservations = workload::UniformShare(cap * 8 / 10, 4);
  for (const auto res : reservations) {
    ClientSpec spec;
    spec.reservation = res;
    spec.demand = res + cap / 10;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  // 1 warm-up second + 4 measured periods => at least 5 period starts.
  EXPECT_GE(r.monitor_stats.periods, 5u);
  EXPECT_GT(r.monitor_stats.checks, 1000u);  // every 1 ms
  EXPECT_GT(r.monitor_stats.conversions, 0u);
  // Capacity trace covers every completed period.
  EXPECT_GE(r.capacity_trace.size(), 4u);
}

}  // namespace
}  // namespace haechi
