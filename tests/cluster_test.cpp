// Tests for the cluster subsystem (the paper's §V future work): the
// ClusterCoordinator's reservation splitting, usage-driven rebalancing,
// tenant hierarchy, invariants, and the end-to-end multi-node harness.
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/coordinator.hpp"
#include "harness/cluster_experiment.hpp"

namespace haechi {
namespace {

using harness::ClusterClientSpec;
using harness::ClusterExperiment;
using harness::ClusterExperimentConfig;
using harness::ClusterExperimentResult;

ClusterExperimentConfig BaseConfig() {
  ClusterExperimentConfig config;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(2);
  config.measure_periods = 6;
  config.records = 256;
  config.qos.token_batch = 50;
  return config;
}

/// Puts every client under one tenant sized to exactly fit their
/// reservations (the single-tenant harness shape).
void SingleTenant(ClusterExperimentConfig& config) {
  std::int64_t total = 0;
  for (auto& client : config.clients) {
    client.tenant = 0;
    total += client.reservation;
  }
  config.tenants = {{total, 0}};
}

std::int64_t Capacity(const ClusterExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

TEST(Cluster, InitialSplitIsEqualAndSumsToReservation) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 3;
  config.measure_periods = 1;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec spec;
  spec.reservation = cap / 5 * 3;  // cap/5 per node after the even split
  spec.demand_per_node = {cap / 5, cap / 5, cap / 5};
  config.clients = {spec};
  SingleTenant(config);

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();
  ASSERT_EQ(r.final_split.size(), 1u);
  const auto& split = r.final_split[0];
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), std::int64_t{0}),
            cap / 5 * 3);
}

TEST(Cluster, SplitFollowsSkewedDemand) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  const std::int64_t cap = Capacity(config);
  // 80% of this client's traffic goes to node 0.
  ClusterClientSpec skewed;
  skewed.reservation = cap / 5;
  skewed.demand_per_node = {cap / 5 * 8 / 10, cap / 5 * 2 / 10};
  config.clients = {skewed};
  SingleTenant(config);

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();
  const auto& split = r.final_split[0];
  EXPECT_EQ(split[0] + split[1], cap / 5);
  // The split converges toward the 80/20 demand shape (min_share floor
  // keeps a sliver on the cold node).
  EXPECT_GT(split[0], cap / 5 * 65 / 100);
  EXPECT_LT(split[1], cap / 5 * 35 / 100);
  EXPECT_GT(r.cluster_stats.rebalances, 0u);
  EXPECT_GT(r.cluster_stats.tokens_moved, 0u);
}

TEST(Cluster, ReservationMetAcrossNodesDespiteSkew) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  const std::int64_t cap = Capacity(config);
  // The skewed client competes with node-local heavy clients on node 0.
  ClusterClientSpec skewed;
  skewed.reservation = cap / 5;
  skewed.demand_per_node = {cap / 5 * 8 / 10, cap / 5 * 2 / 10};
  ClusterClientSpec hog;  // floods node 0 with best-effort traffic
  hog.reservation = 0;
  hog.demand_per_node = {cap, 0};
  config.clients = {skewed, hog};
  SingleTenant(config);

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();
  // After the split converges (skip the first 2 measured periods), the
  // skewed client's cluster-wide completions meet its reservation.
  const auto id = MakeClientId(0);
  for (std::size_t p = 2; p < r.node_series[0].Periods(); ++p) {
    const std::int64_t cluster_total =
        r.node_series[0].At(p, id) + r.node_series[1].At(p, id);
    EXPECT_GE(cluster_total, skewed.reservation * 95 / 100)
        << "period " << p;
  }
}

TEST(Cluster, SplitTracksDemandShift) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 10;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec spec;
  spec.reservation = cap / 5;
  spec.demand_per_node = {cap / 5 * 9 / 10, cap / 5 * 1 / 10};
  config.clients = {spec};
  SingleTenant(config);
  // Mid-run the demand flips to the other node.
  config.shift_at = config.warmup + Seconds(4);
  config.shifted_demand = {{cap / 5 * 1 / 10, cap / 5 * 9 / 10}};

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();
  const auto& split = r.final_split[0];
  // By the end the split has followed the flip.
  EXPECT_GT(split[1], split[0]);
  EXPECT_EQ(split[0] + split[1], cap / 5);
}

TEST(Cluster, AdmitRejectsWhenAnyNodeLacksCapacity) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 1;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec too_big;
  // Per-node share cap/2 exceeds the per-node local capacity (~cap/4).
  too_big.reservation = cap;
  too_big.demand_per_node = {cap / 2, cap / 2};
  config.clients = {too_big};
  SingleTenant(config);
  EXPECT_DEATH(ClusterExperiment(std::move(config)).Run(), "");
}

TEST(Cluster, CoordinatorApiValidation) {
  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;
  rdma::Fabric fabric(sim, params, 1);
  rdma::Node& data = fabric.AddNode("data", rdma::NodeRole::kData);
  core::QosConfig qos;
  core::QosMonitor monitor(sim, qos, data, params.GlobalCapacityIops(),
                           params.LocalCapacityIops());
  cluster::ClusterCoordinator coordinator(sim, {}, {&monitor});

  // A client cannot be admitted before its tenant exists.
  auto orphan = coordinator.AdmitClient(0, MakeClientId(0), 100, 0, {});
  EXPECT_EQ(orphan.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(coordinator.AddTenant(0, 500, 0).ok());
  EXPECT_EQ(coordinator.AddTenant(0, 500, 0).code(),
            StatusCode::kFailedPrecondition);

  // Wrong control-QP arity.
  auto bad = coordinator.AdmitClient(0, MakeClientId(0), 100, 0, {});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Unknown client queries.
  EXPECT_EQ(coordinator.SplitOf(MakeClientId(9)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(coordinator.ReleaseClient(MakeClientId(9)).code(),
            StatusCode::kNotFound);

  // Admit, duplicate-admit, release.
  rdma::Node& client_node = fabric.AddNode("client");
  auto& cq_a = client_node.CreateCq();
  auto& cq_b = data.CreateCq();
  auto& qp_a = client_node.CreateQp(cq_a, cq_a);
  auto& qp_b = data.CreateQp(cq_b, cq_b);
  fabric.Connect(qp_a, qp_b);
  auto ok = coordinator.AdmitClient(0, MakeClientId(0), 100, 0, {&qp_b});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 1u);
  auto dup = coordinator.AdmitClient(0, MakeClientId(0), 100, 0, {&qp_b});
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);

  // The tenant envelope binds: a second client pushing sum R_i past R_t is
  // rejected before any node-level admission, and release frees the room.
  auto over = coordinator.AdmitClient(0, MakeClientId(1), 450, 0, {&qp_b});
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(coordinator.ReleaseClient(MakeClientId(0)).ok());
  EXPECT_FALSE(monitor.admission().IsAdmitted(MakeClientId(0)));
  EXPECT_TRUE(
      coordinator.AdmitClient(0, MakeClientId(1), 450, 0, {&qp_b}).ok());
}

TEST(Cluster, TenantDirectoryNesting) {
  cluster::TenantDirectory directory(1000);
  ASSERT_TRUE(directory.AddTenant(1, 600, 0).ok());
  // Top level: sum_t R_t <= cluster reservable.
  EXPECT_EQ(directory.AddTenant(2, 500, 0).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(directory.AddTenant(2, 400, 800).ok());

  // Client level: sum_{i in t} R_i <= R_t.
  ASSERT_TRUE(directory.AdmitClient(1, MakeClientId(0), 400, 0).ok());
  EXPECT_EQ(directory.AdmitClient(1, MakeClientId(1), 300, 0).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(directory.AdmitClient(1, MakeClientId(1), 200, 0).ok());

  // A limited tenant requires per-client limits, and they nest too.
  EXPECT_EQ(directory.AdmitClient(2, MakeClientId(2), 100, 0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(directory.AdmitClient(2, MakeClientId(2), 100, 500).ok());
  EXPECT_EQ(directory.AdmitClient(2, MakeClientId(3), 100, 400).code(),
            StatusCode::kResourceExhausted);

  // Reservation updates re-check the envelope.
  EXPECT_EQ(directory.UpdateClientReservation(MakeClientId(1), 250).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(directory.UpdateClientReservation(MakeClientId(1), 150).ok());
  EXPECT_EQ(directory.FindTenant(1)->reserved, 550);

  // Only an empty tenant can be removed; release drains it.
  EXPECT_EQ(directory.RemoveTenant(1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(directory.ReleaseClient(MakeClientId(0)).ok());
  EXPECT_TRUE(directory.ReleaseClient(MakeClientId(1)).ok());
  EXPECT_TRUE(directory.RemoveTenant(1).ok());
}

TEST(Cluster, BorrowLedgerConservation) {
  cluster::BorrowConfig borrow;
  borrow.policy = cluster::BorrowPolicy::kStatic;
  borrow.quota = 1000;
  cluster::BorrowLedger ledger(3, borrow);

  ledger.RecordGrant(0, 1, 400);
  ledger.RecordGrant(2, 1, 300);
  ledger.RecordGrant(0, 2, 100);
  EXPECT_EQ(ledger.BorrowedThisPeriod(1), 700);
  EXPECT_EQ(ledger.Headroom(1), 300);
  EXPECT_EQ(ledger.OwedBy(1), 700);
  EXPECT_EQ(ledger.OwedTo(0), 500);

  ledger.RecordRepay(1, 0, 400);
  ledger.RecordRepay(1, 2, 250);
  // granted == repaid + outstanding, pairwise and in total.
  EXPECT_EQ(ledger.Outstanding(2, 1), 50);
  EXPECT_EQ(ledger.TotalGranted(),
            ledger.TotalRepaid() + ledger.TotalOutstanding());
  EXPECT_EQ(ledger.TotalOutstanding(), 150);

  // Repaying more than owed is a ledger corruption, not a clamp.
  EXPECT_DEATH(ledger.RecordRepay(1, 2, 51), "");
}

TEST(Cluster, AdaptiveQuotaFollowsConsumption) {
  cluster::BorrowConfig borrow;
  borrow.policy = cluster::BorrowPolicy::kAdaptive;
  borrow.quota = 1000;
  borrow.min_quota = 250;
  borrow.max_quota = 4000;
  cluster::BorrowLedger ledger(2, borrow);

  // Fully consumed -> multiplicative increase, clamped at max.
  ledger.AdaptQuota(0, 1000, 0);
  EXPECT_EQ(ledger.Quota(0), 2000);
  ledger.AdaptQuota(0, 2000, 0);
  EXPECT_EQ(ledger.Quota(0), 4000);
  ledger.AdaptQuota(0, 4000, 0);
  EXPECT_EQ(ledger.Quota(0), 4000);

  // Mostly idle -> multiplicative decrease, clamped at min.
  ledger.AdaptQuota(0, 1000, 800);
  EXPECT_EQ(ledger.Quota(0), 2000);
  ledger.AdaptQuota(0, 1000, 800);
  EXPECT_EQ(ledger.Quota(0), 1000);
  ledger.AdaptQuota(0, 100, 90);
  ledger.AdaptQuota(0, 100, 90);
  EXPECT_EQ(ledger.Quota(0), 250);

  // In-between consumption leaves the quota alone; no borrowing = no signal.
  ledger.AdaptQuota(1, 1000, 300);
  EXPECT_EQ(ledger.Quota(1), 1000);
  ledger.AdaptQuota(1, 0, 0);
  EXPECT_EQ(ledger.Quota(1), 1000);
}

TEST(Cluster, BorrowingBridgesSkewedPools) {
  // Node 0 runs dry (hog demand, all pool drained); node 1 idles. With
  // adaptive borrowing the coordinator imports node 1's idle pool tokens
  // and the ledger settles every loan at the boundaries.
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 6;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec hungry;  // small reservation, hot-node demand only
  hungry.reservation = cap / 10;
  hungry.demand_per_node = {cap, 0};
  config.clients = {hungry};
  SingleTenant(config);
  config.cluster.borrow.policy = cluster::BorrowPolicy::kAdaptive;

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();
  EXPECT_GT(r.cluster_stats.borrow_requests, 0u);
  EXPECT_GT(r.cluster_stats.borrow_grants, 0u);
  EXPECT_GT(r.borrow_granted, 0);
  // Conservation: everything granted is repaid or still on the books.
  EXPECT_EQ(r.borrow_granted,
            r.borrow_repaid + r.borrow_outstanding);
  EXPECT_GT(r.borrow_repaid, 0);
  // The monitors' ledgers saw the same movements.
  EXPECT_EQ(r.monitor_stats[0].lent_tokens + r.monitor_stats[1].lent_tokens,
            r.borrow_granted + r.borrow_repaid);
}

TEST(Cluster, MonitorUpdateReservationSemantics) {
  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;
  rdma::Fabric fabric(sim, params, 1);
  rdma::Node& data = fabric.AddNode("data", rdma::NodeRole::kData);
  rdma::Node& client_node = fabric.AddNode("client");
  core::QosConfig qos;
  core::QosMonitor monitor(sim, qos, data, params.GlobalCapacityIops(),
                           params.LocalCapacityIops());
  auto& cq_a = client_node.CreateCq();
  auto& cq_b = data.CreateCq();
  auto& qp_a = client_node.CreateQp(cq_a, cq_a);
  auto& qp_b = data.CreateQp(cq_b, cq_b);
  fabric.Connect(qp_a, qp_b);

  const auto local = static_cast<std::int64_t>(params.LocalCapacityIops());
  EXPECT_EQ(monitor.UpdateReservation(MakeClientId(0), 10).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(monitor
                  .AdmitClient(MakeClientId(0), 100, /*limit=*/2 * local,
                               qp_b)
                  .ok());
  EXPECT_TRUE(monitor.UpdateReservation(MakeClientId(0), 400).ok());
  EXPECT_EQ(monitor.ReservationOf(MakeClientId(0)).value(), 400);
  // Local capacity still enforced on updates.
  EXPECT_EQ(monitor.UpdateReservation(MakeClientId(0), local + 1).code(),
            StatusCode::kResourceExhausted);
  // A reservation above the client's limit is contradictory.
  EXPECT_EQ(
      monitor.UpdateReservation(MakeClientId(0), 2 * local + 5).code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace haechi
