// Tests for the multi-data-node extension (the paper's §V future work):
// the ClusterCoordinator's reservation splitting, usage-driven
// rebalancing, invariants, and the end-to-end multi-node harness.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/multi_experiment.hpp"

namespace haechi {
namespace {

using harness::MultiClientSpec;
using harness::MultiExperiment;
using harness::MultiExperimentConfig;
using harness::MultiExperimentResult;

MultiExperimentConfig BaseConfig() {
  MultiExperimentConfig config;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(2);
  config.measure_periods = 6;
  config.records = 256;
  config.qos.token_batch = 50;
  return config;
}

std::int64_t Capacity(const MultiExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

TEST(Cluster, InitialSplitIsEqualAndSumsToReservation) {
  MultiExperimentConfig config = BaseConfig();
  config.data_nodes = 3;
  config.measure_periods = 1;
  const std::int64_t cap = Capacity(config);
  MultiClientSpec spec;
  spec.reservation = cap / 5 * 3;  // cap/5 per node after the even split
  spec.demand_per_node = {cap / 5, cap / 5, cap / 5};
  config.clients = {spec};

  MultiExperiment exp(std::move(config));
  MultiExperimentResult r = exp.Run();
  ASSERT_EQ(r.final_split.size(), 1u);
  const auto& split = r.final_split[0];
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), std::int64_t{0}),
            cap / 5 * 3);
}

TEST(Cluster, SplitFollowsSkewedDemand) {
  MultiExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  const std::int64_t cap = Capacity(config);
  // 80% of this client's traffic goes to node 0.
  MultiClientSpec skewed;
  skewed.reservation = cap / 5;
  skewed.demand_per_node = {cap / 5 * 8 / 10, cap / 5 * 2 / 10};
  config.clients = {skewed};

  MultiExperiment exp(std::move(config));
  MultiExperimentResult r = exp.Run();
  const auto& split = r.final_split[0];
  EXPECT_EQ(split[0] + split[1], cap / 5);
  // The split converges toward the 80/20 demand shape (min_share floor
  // keeps a sliver on the cold node).
  EXPECT_GT(split[0], cap / 5 * 65 / 100);
  EXPECT_LT(split[1], cap / 5 * 35 / 100);
  EXPECT_GT(r.cluster_stats.rebalances, 0u);
  EXPECT_GT(r.cluster_stats.tokens_moved, 0u);
}

TEST(Cluster, ReservationMetAcrossNodesDespiteSkew) {
  MultiExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  const std::int64_t cap = Capacity(config);
  // The skewed client competes with node-local heavy clients on node 0.
  MultiClientSpec skewed;
  skewed.reservation = cap / 5;
  skewed.demand_per_node = {cap / 5 * 8 / 10, cap / 5 * 2 / 10};
  MultiClientSpec hog;  // floods node 0 with best-effort traffic
  hog.reservation = 0;
  hog.demand_per_node = {cap, 0};
  config.clients = {skewed, hog};

  MultiExperiment exp(std::move(config));
  MultiExperimentResult r = exp.Run();
  // After the split converges (skip the first 2 measured periods), the
  // skewed client's cluster-wide completions meet its reservation.
  const auto id = MakeClientId(0);
  for (std::size_t p = 2; p < r.node_series[0].Periods(); ++p) {
    const std::int64_t cluster_total =
        r.node_series[0].At(p, id) + r.node_series[1].At(p, id);
    EXPECT_GE(cluster_total, skewed.reservation * 95 / 100)
        << "period " << p;
  }
}

TEST(Cluster, SplitTracksDemandShift) {
  MultiExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 10;
  const std::int64_t cap = Capacity(config);
  MultiClientSpec spec;
  spec.reservation = cap / 5;
  spec.demand_per_node = {cap / 5 * 9 / 10, cap / 5 * 1 / 10};
  config.clients = {spec};
  // Mid-run the demand flips to the other node.
  config.shift_at = config.warmup + Seconds(4);
  config.shifted_demand = {{cap / 5 * 1 / 10, cap / 5 * 9 / 10}};

  MultiExperiment exp(std::move(config));
  MultiExperimentResult r = exp.Run();
  const auto& split = r.final_split[0];
  // By the end the split has followed the flip.
  EXPECT_GT(split[1], split[0]);
  EXPECT_EQ(split[0] + split[1], cap / 5);
}

TEST(Cluster, AdmitRejectsWhenAnyNodeLacksCapacity) {
  MultiExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 1;
  const std::int64_t cap = Capacity(config);
  MultiClientSpec too_big;
  // Per-node share cap/2 exceeds the per-node local capacity (~cap/4).
  too_big.reservation = cap;
  too_big.demand_per_node = {cap / 2, cap / 2};
  config.clients = {too_big};
  EXPECT_DEATH(MultiExperiment(std::move(config)).Run(), "");
}

TEST(Cluster, CoordinatorApiValidation) {
  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;
  rdma::Fabric fabric(sim, params, 1);
  rdma::Node& data = fabric.AddNode("data", rdma::NodeRole::kData);
  core::QosConfig qos;
  core::QosMonitor monitor(sim, qos, data, params.GlobalCapacityIops(),
                           params.LocalCapacityIops());
  core::ClusterCoordinator coordinator(sim, {}, {&monitor});

  // Wrong control-QP arity.
  auto bad = coordinator.AdmitClient(MakeClientId(0), 100, 0, {});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Unknown client queries.
  EXPECT_EQ(coordinator.SplitOf(MakeClientId(9)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(coordinator.ReleaseClient(MakeClientId(9)).code(),
            StatusCode::kNotFound);

  // Admit, duplicate-admit, release.
  rdma::Node& client_node = fabric.AddNode("client");
  auto& cq_a = client_node.CreateCq();
  auto& cq_b = data.CreateCq();
  auto& qp_a = client_node.CreateQp(cq_a, cq_a);
  auto& qp_b = data.CreateQp(cq_b, cq_b);
  fabric.Connect(qp_a, qp_b);
  auto ok = coordinator.AdmitClient(MakeClientId(0), 100, 0, {&qp_b});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 1u);
  auto dup = coordinator.AdmitClient(MakeClientId(0), 100, 0, {&qp_b});
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(coordinator.ReleaseClient(MakeClientId(0)).ok());
  EXPECT_FALSE(monitor.admission().IsAdmitted(MakeClientId(0)));
}

TEST(Cluster, MonitorUpdateReservationSemantics) {
  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;
  rdma::Fabric fabric(sim, params, 1);
  rdma::Node& data = fabric.AddNode("data", rdma::NodeRole::kData);
  rdma::Node& client_node = fabric.AddNode("client");
  core::QosConfig qos;
  core::QosMonitor monitor(sim, qos, data, params.GlobalCapacityIops(),
                           params.LocalCapacityIops());
  auto& cq_a = client_node.CreateCq();
  auto& cq_b = data.CreateCq();
  auto& qp_a = client_node.CreateQp(cq_a, cq_a);
  auto& qp_b = data.CreateQp(cq_b, cq_b);
  fabric.Connect(qp_a, qp_b);

  const auto local = static_cast<std::int64_t>(params.LocalCapacityIops());
  EXPECT_EQ(monitor.UpdateReservation(MakeClientId(0), 10).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(monitor
                  .AdmitClient(MakeClientId(0), 100, /*limit=*/2 * local,
                               qp_b)
                  .ok());
  EXPECT_TRUE(monitor.UpdateReservation(MakeClientId(0), 400).ok());
  EXPECT_EQ(monitor.ReservationOf(MakeClientId(0)).value(), 400);
  // Local capacity still enforced on updates.
  EXPECT_EQ(monitor.UpdateReservation(MakeClientId(0), local + 1).code(),
            StatusCode::kResourceExhausted);
  // A reservation above the client's limit is contradictory.
  EXPECT_EQ(
      monitor.UpdateReservation(MakeClientId(0), 2 * local + 5).code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace haechi
