// Property tests for the cluster subsystem: invariants that must hold for
// every admission history, seed, and fault script rather than for one
// hand-picked scenario.
//
//   P1  split conservation      sum_d R_i,d == R_i for every live client,
//                               through arbitrary admit/release churn and
//                               rebalancing passes; tenant bookkeeping
//                               tracks the same totals.
//   P2  borrow conservation     granted == repaid + outstanding across
//                               seeds, and the monitors' pool-word ledgers
//                               agree with the coordinator's (audit C2,
//                               checked in-process).
//   P3  crash reclamation       a crashed client's reservation shards are
//                               reclaimed on every node via the report
//                               lease, its tenant slot is freed, and the
//                               borrow ledger still settles.
//   P4  determinism             same seed => identical per-node series,
//                               splits, stats and alert stream (the
//                               sim-vs-sim check for --cluster runs).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/coordinator.hpp"
#include "common/rng.hpp"
#include "harness/cluster_experiment.hpp"
#include "net/model_params.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi {
namespace {

using harness::ClusterClientSpec;
using harness::ClusterExperiment;
using harness::ClusterExperimentConfig;
using harness::ClusterExperimentResult;

ClusterExperimentConfig BaseConfig() {
  ClusterExperimentConfig config;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(2);
  config.measure_periods = 6;
  config.records = 256;
  config.qos.token_batch = 50;
  return config;
}

void SingleTenant(ClusterExperimentConfig& config) {
  std::int64_t total = 0;
  for (auto& client : config.clients) {
    client.tenant = 0;
    total += client.reservation;
  }
  config.tenants = {{total, 0}};
}

std::int64_t Capacity(const ClusterExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

// ---------------------------------------------------------------------------
// P1: sum_d R_i,d == R_i survives arbitrary admission churn.

TEST(ClusterProperty, SplitSumInvariantUnderChurn) {
  constexpr std::size_t kNodes = 3;
  constexpr std::uint32_t kSlots = 8;

  sim::Simulator sim;
  net::ModelParams params;
  params.capacity_scale = 0.02;
  rdma::Fabric fabric(sim, params, /*seed=*/1);
  std::vector<std::unique_ptr<core::QosMonitor>> monitors;
  std::vector<core::QosMonitor*> monitor_ptrs;
  std::vector<rdma::QueuePair*> ctrl_qps;
  rdma::Node& client_node = fabric.AddNode("client");
  for (std::size_t d = 0; d < kNodes; ++d) {
    rdma::Node& data = fabric.AddNode("data", rdma::NodeRole::kData);
    core::QosConfig qos;
    monitors.push_back(std::make_unique<core::QosMonitor>(
        sim, qos, data, params.GlobalCapacityIops() / kNodes,
        params.LocalCapacityIops()));
    monitor_ptrs.push_back(monitors.back().get());
    auto& ccq = client_node.CreateCq();
    auto& dcq = data.CreateCq();
    auto& cqp = client_node.CreateQp(ccq, ccq);
    auto& dqp = data.CreateQp(dcq, dcq);
    fabric.Connect(cqp, dqp);
    ctrl_qps.push_back(&dqp);
  }
  cluster::ClusterCoordinator coordinator(sim, {}, monitor_ptrs);
  const std::int64_t cap = static_cast<std::int64_t>(
      params.GlobalCapacityIops());
  ASSERT_TRUE(coordinator.AddTenant(0, cap, 0).ok());

  // Churn: 120 random admit/release ops over an 8-client slot space, with
  // a rebalancing pass sprinkled in. After every op, every live client's
  // split sums exactly to its cluster-wide reservation and the tenant
  // directory carries the same totals. (At most ceil(120/2) = 60 admits
  // fit the monitors' 64 report slots, which only recycle at period
  // boundaries and this churn never runs the clock.)
  Rng rng(0x5eed);
  std::vector<std::int64_t> live(kSlots, -1);  // -1 = not admitted
  for (int op = 0; op < 120; ++op) {
    const auto slot = static_cast<std::uint32_t>(rng.NextBelow(kSlots));
    const ClientId id = MakeClientId(slot);
    if (live[slot] < 0) {
      const std::int64_t r = rng.NextInRange(1, cap / 20);
      auto admitted = coordinator.AdmitClient(0, id, r, 0, ctrl_qps);
      ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
      live[slot] = r;
    } else {
      ASSERT_TRUE(coordinator.ReleaseClient(id).ok());
      live[slot] = -1;
    }
    if (op % 7 == 0) coordinator.Rebalance();

    std::int64_t total = 0;
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (live[s] < 0) {
        EXPECT_EQ(coordinator.SplitOf(MakeClientId(s)).status().code(),
                  StatusCode::kNotFound);
        continue;
      }
      const auto split = coordinator.SplitOf(MakeClientId(s));
      ASSERT_TRUE(split.ok());
      std::int64_t sum = 0;
      for (const auto share : split.value()) {
        EXPECT_GE(share, 0);
        sum += share;
      }
      EXPECT_EQ(sum, live[s]) << "client " << s << " after op " << op;
      total += live[s];
    }
    ASSERT_NE(coordinator.tenants().FindTenant(0), nullptr);
    EXPECT_EQ(coordinator.tenants().FindTenant(0)->reserved, total);
  }
}

// ---------------------------------------------------------------------------
// P2: the borrow ledger conserves tokens for every seed, and the monitors'
// own pool-word accounting agrees with it.

TEST(ClusterProperty, BorrowConservationAcrossSeeds) {
  for (const std::uint64_t seed : {3u, 17u, 29u, 83u}) {
    ClusterExperimentConfig config = BaseConfig();
    config.data_nodes = 2;
    config.seed = seed;
    const std::int64_t cap = Capacity(config);
    ClusterClientSpec hungry;  // all demand on node 0; node 1 idles
    hungry.reservation = cap / 10;
    hungry.demand_per_node = {cap, 0};
    config.clients = {hungry};
    SingleTenant(config);
    config.cluster.borrow.policy = cluster::BorrowPolicy::kAdaptive;

    ClusterExperiment exp(std::move(config));
    ClusterExperimentResult r = exp.Run();
    EXPECT_GT(r.borrow_granted, 0) << "seed " << seed;
    EXPECT_GE(r.borrow_repaid, 0) << "seed " << seed;
    EXPECT_GE(r.borrow_outstanding, 0) << "seed " << seed;
    // C2 in-process: every granted token is repaid or still on the books.
    EXPECT_EQ(r.borrow_granted, r.borrow_repaid + r.borrow_outstanding)
        << "seed " << seed;
    // The monitors saw exactly the same movements: every grant and every
    // repayment is one LendTokens on one node and one AbsorbTokens on the
    // other.
    const std::int64_t lent =
        r.monitor_stats[0].lent_tokens + r.monitor_stats[1].lent_tokens;
    const std::int64_t absorbed = r.monitor_stats[0].absorbed_tokens +
                                  r.monitor_stats[1].absorbed_tokens;
    EXPECT_EQ(lent, r.borrow_granted + r.borrow_repaid) << "seed " << seed;
    EXPECT_EQ(absorbed, lent) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// P3: a crashed client's loans and reservation shards are reclaimed
// through the report-lease path on every node.

TEST(ClusterProperty, CrashedClientReclaimedClusterWide) {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.measure_periods = 6;
  config.qos.report_lease_intervals = 8;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec victim;
  victim.reservation = cap / 8;
  victim.demand_per_node = {cap / 8, cap / 16};
  ClusterClientSpec survivor;
  survivor.reservation = cap / 8;
  survivor.demand_per_node = {cap / 16, cap / 8};
  config.clients = {victim, survivor};
  SingleTenant(config);
  config.cluster.borrow.policy = cluster::BorrowPolicy::kAdaptive;
  config.client_crashes = {{/*client=*/0, config.warmup + Seconds(1)}};

  ClusterExperiment exp(std::move(config));
  ClusterExperimentResult r = exp.Run();

  // The lease fired on some node and the coordinator purged the victim
  // from every node and from its tenant.
  EXPECT_EQ(r.cluster_stats.dead_clients, 1u);
  EXPECT_TRUE(r.final_split[0].empty());
  EXPECT_EQ(exp.coordinator().SplitOf(MakeClientId(0)).status().code(),
            StatusCode::kNotFound);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_FALSE(exp.monitor(d).admission().IsAdmitted(MakeClientId(0)))
        << "node " << d;
    EXPECT_TRUE(exp.monitor(d).admission().IsAdmitted(MakeClientId(1)))
        << "node " << d;
  }
  const auto* tenant = exp.coordinator().tenants().FindTenant(0);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->reserved, survivor.reservation);
  EXPECT_EQ(tenant->clients, 1u);

  // The survivor's split still conserves, and node-level loans settle
  // regardless of which clients died.
  ASSERT_EQ(r.final_split[1].size(), 2u);
  EXPECT_EQ(r.final_split[1][0] + r.final_split[1][1],
            survivor.reservation);
  EXPECT_EQ(r.borrow_granted, r.borrow_repaid + r.borrow_outstanding);
}

// ---------------------------------------------------------------------------
// P4: cluster runs are deterministic — the sim-vs-sim check for --cluster.

ClusterExperimentConfig DeterminismConfig() {
  ClusterExperimentConfig config = BaseConfig();
  config.data_nodes = 2;
  config.seed = 99;
  config.qos.report_lease_intervals = 8;
  config.watchdog.enabled = true;
  const std::int64_t cap = Capacity(config);
  ClusterClientSpec skewed;
  skewed.reservation = cap / 8;
  skewed.demand_per_node = {cap / 8 * 9 / 10, cap / 8 * 1 / 10};
  ClusterClientSpec hog;
  hog.reservation = 0;
  hog.demand_per_node = {cap / 2, cap / 4};
  config.clients = {skewed, hog};
  SingleTenant(config);
  config.cluster.borrow.policy = cluster::BorrowPolicy::kAdaptive;
  return config;
}

TEST(ClusterProperty, SimVsSimDeterminism) {
  ClusterExperiment a(DeterminismConfig());
  ClusterExperiment b(DeterminismConfig());
  const ClusterExperimentResult ra = a.Run();
  const ClusterExperimentResult rb = b.Run();

  ASSERT_EQ(ra.node_series.size(), rb.node_series.size());
  for (std::size_t d = 0; d < ra.node_series.size(); ++d) {
    ASSERT_EQ(ra.node_series[d].Periods(), rb.node_series[d].Periods());
    for (std::size_t p = 0; p < ra.node_series[d].Periods(); ++p) {
      for (std::uint32_t c = 0; c < 2; ++c) {
        EXPECT_EQ(ra.node_series[d].At(p, MakeClientId(c)),
                  rb.node_series[d].At(p, MakeClientId(c)))
            << "node " << d << " period " << p << " client " << c;
      }
    }
  }
  EXPECT_EQ(ra.final_split, rb.final_split);
  EXPECT_EQ(ra.borrow_granted, rb.borrow_granted);
  EXPECT_EQ(ra.borrow_repaid, rb.borrow_repaid);
  EXPECT_EQ(ra.borrow_outstanding, rb.borrow_outstanding);
  EXPECT_EQ(ra.cluster_stats.rebalances, rb.cluster_stats.rebalances);
  EXPECT_EQ(ra.cluster_stats.tokens_moved, rb.cluster_stats.tokens_moved);
  EXPECT_EQ(ra.cluster_stats.borrow_requests,
            rb.cluster_stats.borrow_requests);
  EXPECT_EQ(ra.cluster_stats.stale_reports, rb.cluster_stats.stale_reports);
  EXPECT_DOUBLE_EQ(ra.total_kiops, rb.total_kiops);
  // Same seed => byte-identical watchdog alert stream.
  EXPECT_EQ(a.alerts_jsonl(), b.alerts_jsonl());
}

}  // namespace
}  // namespace haechi
