// Randomised stress tests of the RDMA fabric: several clients fire mixed
// op sequences at one server while a shadow model checks every completion
// (atomic results, data movement, ordering, conservation counts).
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::rdma {
namespace {

class FabricStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricStress, MixedOpsAgainstShadowModel) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::ModelParams params;
  params.service_jitter = 0.05;
  Fabric fabric(sim, params, seed);
  Node& server = fabric.AddNode("server", NodeRole::kData);

  // Server memory: an atomic counter word plus a data area.
  struct ServerMemory {
    alignas(8) std::uint64_t counter = 0;
    std::byte data[4096];
  };
  auto memory = std::make_unique<ServerMemory>();
  std::memset(memory->data, 0, sizeof(memory->data));
  const MemoryRegion& mr = server.pd().Register(
      std::span<std::byte>(reinterpret_cast<std::byte*>(memory.get()),
                           sizeof(ServerMemory)),
      access::kAll);

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 300;

  // Shadow model: the counter value is fully determined by the *order* of
  // atomic execution at the responder; FAA completions must return
  // strictly increasing pre-images when all deltas are +1.
  std::vector<std::uint64_t> faa_results;
  std::uint64_t completions = 0;
  std::uint64_t errors = 0;

  struct Client {
    Node* node;
    QueuePair* qp;
    std::vector<std::byte> buffer;
    std::uint64_t next_wr = 1;
    std::map<std::uint64_t, Opcode> posted;  // wr_id -> op (order check)
    // Completion order is strict per service class (control ops ride the
    // responder fast path and may legitimately overtake bulk READs; see
    // net::Discipline's doc — Haechi keeps control and data on separate
    // QPs for exactly this reason).
    std::uint64_t last_bulk_wr = 0;
    std::uint64_t last_control_wr = 0;
  };
  std::deque<Client> clients;
  Rng rng(seed * 21 + 1);

  for (int c = 0; c < kClients; ++c) {
    Client& client = clients.emplace_back();
    client.node = &fabric.AddNode("client-" + std::to_string(c));
    auto& cq = client.node->CreateCq();
    auto& srv_cq = server.CreateCq();
    client.qp = &client.node->CreateQp(cq, cq, /*send_queue_depth=*/4096);
    auto& srv_qp = server.CreateQp(srv_cq, srv_cq);
    fabric.Connect(*client.qp, srv_qp);
    client.buffer.resize(256);
    client.node->pd().Register(std::span<std::byte>(client.buffer),
                               access::kLocalRead | access::kLocalWrite);
    cq.SetNotify([&, c](const WorkCompletion& wc) {
      Client& self = clients[static_cast<std::size_t>(c)];
      ++completions;
      // Ordering holds within each service class.
      const bool control = wc.opcode == Opcode::kFetchAdd ||
                           (wc.opcode == Opcode::kWrite && wc.byte_len <= 64);
      auto& last = control ? self.last_control_wr : self.last_bulk_wr;
      ASSERT_GT(wc.wr_id, last);
      last = wc.wr_id;
      ASSERT_TRUE(self.posted.contains(wc.wr_id));
      const Opcode op = self.posted[wc.wr_id];
      self.posted.erase(wc.wr_id);
      if (!wc.ok()) {
        ++errors;
        return;
      }
      if (op == Opcode::kFetchAdd) faa_results.push_back(wc.atomic_result);
    });
  }

  // Fire mixed operations at randomised times.
  for (auto& client : clients) {
    for (int i = 0; i < kOpsPerClient; ++i) {
      const SimTime at =
          static_cast<SimTime>(rng.NextBelow(Millis(50)));
      const auto kind = rng.NextBelow(10);
      const auto offset = 8 + rng.NextBelow(3800);  // within data area
      sim.ScheduleAt(at, [&, kind, offset] {
        const std::uint64_t wr = client.next_wr++;
        Status s;
        Opcode op;
        if (kind < 4) {
          op = Opcode::kFetchAdd;
          s = client.qp->PostFetchAdd(
              wr, mr.remote_addr() + offsetof(ServerMemory, counter),
              mr.rkey(), 1);
        } else if (kind < 7) {
          op = Opcode::kRead;
          s = client.qp->PostRead(
              wr, std::span<std::byte>(client.buffer.data(), 128),
              mr.remote_addr() + 8 + offset % 3000, mr.rkey());
        } else if (kind < 9) {
          op = Opcode::kWrite;
          s = client.qp->PostWrite(
              wr, std::span<const std::byte>(client.buffer.data(), 64),
              mr.remote_addr() + 8 + offset % 3000, mr.rkey());
        } else {
          // Deliberately invalid: out-of-bounds read -> error completion.
          op = Opcode::kRead;
          s = client.qp->PostRead(
              wr, std::span<std::byte>(client.buffer.data(), 128),
              mr.remote_addr() + sizeof(ServerMemory), mr.rkey());
        }
        if (s.ok()) {
          client.posted[wr] = op;
        } else {
          --client.next_wr;  // not posted; reuse the id
        }
      });
    }
  }
  sim.Run();

  // Conservation: every posted op completed exactly once.
  std::uint64_t total_posted = 0;
  for (auto& client : clients) {
    EXPECT_TRUE(client.posted.empty())
        << "client has unfinished ops (seed " << seed << ")";
    total_posted += client.next_wr - 1;
    EXPECT_EQ(client.qp->InFlight(), 0u);
  }
  EXPECT_EQ(completions, total_posted);
  EXPECT_GT(errors, 0u);  // the OOB ops really failed

  // Atomic linearisability: pre-images of the +1 FAAs are a permutation of
  // 0..n-1 in strictly increasing responder order.
  ASSERT_EQ(memory->counter, faa_results.size());
  for (std::size_t i = 0; i < faa_results.size(); ++i) {
    EXPECT_EQ(faa_results[i], i) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricStress,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace haechi::rdma
