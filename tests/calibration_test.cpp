// Verifies the fabric timing model reproduces the paper's Section III-B
// profiling numbers (Table I hardware → calibrated simulation):
//   one-sided: C_L ≈ 400 KIOPS per client, C_G ≈ 1570 KIOPS aggregate;
//   two-sided: ≈ 327 KIOPS per client, ≈ 430 KIOPS aggregate;
//   equal division of saturated capacity among backlogged clients.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace haechi {
namespace {

using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::IoPath;
using harness::Mode;
using harness::UniformClients;

ExperimentConfig BareConfig(std::size_t clients, IoPath path) {
  ExperimentConfig config;
  config.mode = Mode::kBare;
  config.io_path = path;
  const auto saturating = static_cast<std::int64_t>(
      config.net.GlobalCapacityIops() * 2.0);
  config.clients = UniformClients(clients, 0, saturating,
                                  workload::RequestPattern::kBurst);
  config.warmup = Millis(200);
  config.measure_periods = 1;
  config.records = 1024;
  return config;
}

TEST(Calibration, OneSidedSingleClientHitsLocalCapacity) {
  ExperimentResult r = Experiment(BareConfig(1, IoPath::kOneSided)).Run();
  // Paper Fig 6: ~400 KIOPS per client.
  EXPECT_NEAR(r.total_kiops, 400.0, 12.0);
}

TEST(Calibration, TwoSidedSingleClientSlowerByTwentyPercent) {
  ExperimentResult r = Experiment(BareConfig(1, IoPath::kTwoSided)).Run();
  // Paper Fig 6: ~327 KIOPS, about 20% below one-sided.
  EXPECT_NEAR(r.total_kiops, 327.0, 12.0);
}

TEST(Calibration, OneSidedSaturatesNearPaperAggregate) {
  ExperimentResult r = Experiment(BareConfig(10, IoPath::kOneSided)).Run();
  // Paper Fig 7: ~1570 KIOPS with >= 4 clients.
  EXPECT_NEAR(r.total_kiops, 1570.0, 40.0);
}

TEST(Calibration, OneSidedScalesLinearlyToFourClients) {
  const double one = Experiment(BareConfig(1, IoPath::kOneSided)).Run()
                         .total_kiops;
  const double three =
      Experiment(BareConfig(3, IoPath::kOneSided)).Run().total_kiops;
  const double four =
      Experiment(BareConfig(4, IoPath::kOneSided)).Run().total_kiops;
  EXPECT_NEAR(three, 3 * one, 0.1 * 3 * one);
  EXPECT_GT(four, 1500.0);
}

TEST(Calibration, TwoSidedSaturatesWithTwoClients) {
  const double two =
      Experiment(BareConfig(2, IoPath::kTwoSided)).Run().total_kiops;
  const double ten =
      Experiment(BareConfig(10, IoPath::kTwoSided)).Run().total_kiops;
  // Paper Fig 7: flattens out at ~430 KIOPS almost immediately.
  EXPECT_NEAR(two, 430.0, 25.0);
  EXPECT_NEAR(ten, 430.0, 25.0);
}

TEST(Calibration, SaturatedCapacityDividesEqually) {
  ExperimentConfig config = BareConfig(10, IoPath::kOneSided);
  config.measure_periods = 2;
  ExperimentResult r = Experiment(std::move(config)).Run();
  const double expected_each = r.total_kiops / 10.0;
  for (std::uint32_t c = 0; c < 10; ++c) {
    const double kiops =
        ToKiops(r.series.ClientTotal(MakeClientId(c)), 2 * kSecond);
    EXPECT_NEAR(kiops, expected_each, 0.05 * expected_each) << "client " << c;
  }
}

}  // namespace
}  // namespace haechi
