// Trace-replay audit tests: the auditor independently re-verifies token
// conservation and the reservation guarantee from exported traces of the
// paper's Figure-10 insufficient-demand scenario and the chaos
// crash-reclamation scenario — and rejects corrupted traces (dropped
// lines, tampered pool words, forged ledger fields).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/audit.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using obs::AuditOptions;
using obs::AuditReport;
using obs::EventType;
using obs::TraceEvent;

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

/// Runs the experiment with the flight recorder on and returns the merged
/// event stream (what ExportTraceFile would write).
std::vector<TraceEvent> TraceOf(ExperimentConfig config) {
  config.trace.enabled = true;
  Experiment experiment(std::move(config));
  experiment.Run();
  return experiment.recorder()->Merged();
}

bool HasViolation(const AuditReport& report, const std::string& check) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const obs::AuditViolation& v) {
                       return v.check == check;
                     });
}

bool HasEvent(const std::vector<TraceEvent>& events, EventType type) {
  return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.type == type;
  });
}

// ---------------------------------------------------------------------------
// Scenario configs (scaled-down versions of the acceptance scenarios).

/// Figure 10: 10 clients, 90% of capacity reserved, C1/C2's demand stops at
/// half their reservation — token conversion recycles the shortfall.
ExperimentConfig Fig10Config() {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 6;
  config.records = 256;
  config.seed = 42;
  const std::int64_t cap = Capacity(config);
  const std::int64_t reserved = cap * 9 / 10;
  const std::int64_t pool = cap - reserved;
  const auto reservations = workload::UniformShare(reserved, 10);
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = i < 2 ? reservations[i] / 2 : reservations[i] + pool;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  return config;
}

/// The chaos crash-reclamation demo: saturated 4-client cluster, client 0
/// crashes mid-period-2 and never returns; the report lease reclaims it.
ExperimentConfig CrashReclamationConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 6;
  config.records = 256;
  config.qos.token_batch = 100;
  config.qos.report_lease_intervals = 8;
  config.seed = seed;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap * 6 / 10, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  ExperimentConfig::ClientFault fault;
  fault.client = 0;
  fault.crash_at = Seconds(2) + Millis(500);
  config.client_faults.push_back(fault);
  return config;
}

/// Transport chaos on the QoS control plane (the chaos_test mix): dropped
/// FAAs and reports, duplicated reports, jitter on everything.
rdma::FaultPlan ControlPlaneFaults(std::uint64_t seed) {
  rdma::FaultPlan plan;
  plan.seed = seed * 7919 + 1;
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.05;
  plan.Add(drop_faa);
  rdma::FaultRule drop_report;
  drop_report.action = rdma::FaultAction::kDrop;
  drop_report.opcode = rdma::Opcode::kWrite;
  drop_report.probability = 0.05;
  plan.Add(drop_report);
  rdma::FaultRule dup_report;
  dup_report.action = rdma::FaultAction::kDuplicate;
  dup_report.opcode = rdma::Opcode::kWrite;
  dup_report.probability = 0.05;
  plan.Add(dup_report);
  rdma::FaultRule jitter;
  jitter.action = rdma::FaultAction::kDelay;
  jitter.probability = 0.1;
  jitter.delay = 3'000;
  plan.Add(jitter);
  return plan;
}

// ---------------------------------------------------------------------------
// CSV tampering helpers. Format: time_ns,kind,actor,seq,type,period,a,b,c.

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::size_t FindLine(const std::vector<std::string>& lines,
                     const std::string& needle) {
  for (std::size_t i = 1; i < lines.size(); ++i) {  // skip the header
    if (lines[i].find(needle) != std::string::npos) return i;
  }
  return lines.size();
}

/// Replaces CSV field `index` (0-based) of `line` with `value`.
std::string WithField(const std::string& line, std::size_t index,
                      const std::string& value) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  fields.at(index) = value;
  std::string out = fields[0];
  for (std::size_t i = 1; i < fields.size(); ++i) out += "," + fields[i];
  return out;
}

// ---------------------------------------------------------------------------
// The acceptance scenarios audit clean.

TEST(Audit, Fig10InsufficientDemandTraceSatisfiesEveryIdentity) {
#if !HAECHI_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out";
#else
  const auto events = TraceOf(Fig10Config());
  ASSERT_TRUE(HasEvent(events, EventType::kTokenConvert));
  const AuditReport report = obs::AuditTrace(events);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.clean);
  EXPECT_GT(report.checks_run, 1000);
  // A9 covered every demanding client over the measured periods.
  EXPECT_GE(report.guarantee_checks, 10 * 4);
  // The re-derived ledger saw real token flow.
  bool saw_grants = false;
  for (const auto& p : report.periods) {
    if (p.closed && p.granted > 0) saw_grants = true;
  }
  EXPECT_TRUE(saw_grants);
#endif
}

TEST(Audit, CrashReclamationTraceSatisfiesLedgerAndLeaseIdentities) {
#if !HAECHI_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out";
#else
  const auto events = TraceOf(CrashReclamationConfig(5));
  // The scenario actually exercised the reclamation machinery.
  ASSERT_TRUE(HasEvent(events, EventType::kClientCrash));
  ASSERT_TRUE(HasEvent(events, EventType::kLeaseExpire));

  AuditOptions options;
  options.guarantee_fraction = 0.9;  // survivors' bar under a mid-run crash
  const AuditReport report = obs::AuditTrace(events, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // A client crash means the strict per-period FAA identity is replaced by
  // the run-total band — the report records why.
  EXPECT_FALSE(report.clean);
  EXPECT_GT(report.guarantee_checks, 0);
#endif
}

TEST(Audit, ChaosFaultPlanTraceStaysWithinTheConservationBand) {
#if !HAECHI_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out";
#else
  ExperimentConfig config = CrashReclamationConfig(1);
  config.faults = ControlPlaneFaults(1);
  config.client_faults.back().restart_at = Seconds(4) + Millis(100);
  const auto events = TraceOf(std::move(config));
  ASSERT_TRUE(HasEvent(events, EventType::kOpDropped));

  AuditOptions options;
  options.guarantee_fraction = 0.85;  // lossy control plane
  const AuditReport report = obs::AuditTrace(events, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.clean);
#endif
}

// ---------------------------------------------------------------------------
// Corrupted traces are rejected with the right check.

#if HAECHI_TRACE_ENABLED

class AuditCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = Fig10Config();
    config.measure_periods = 4;
    csv_ = new std::string(obs::ToCsvString(TraceOf(std::move(config))));
    ASSERT_TRUE(obs::AuditTrace(obs::ParseCsvTrace(*csv_).value()).ok());
  }
  static void TearDownTestSuite() {
    delete csv_;
    csv_ = nullptr;
  }

  static AuditReport AuditText(const std::string& text) {
    auto parsed = obs::ParseCsvTrace(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return obs::AuditTrace(parsed.value());
  }

  static std::string* csv_;
};

std::string* AuditCorruption::csv_ = nullptr;

TEST_F(AuditCorruption, ADroppedEventLineFailsStreamIntegrity) {
  auto lines = SplitLines(*csv_);
  const std::size_t victim = FindLine(lines, ",pool_sample,");
  ASSERT_LT(victim, lines.size());
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(victim));
  const AuditReport report = AuditText(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "A1")) << report.Summary();
}

TEST_F(AuditCorruption, AForgedInitialPoolFailsTheDispatchIdentity) {
  auto lines = SplitLines(*csv_);
  const std::size_t victim = FindLine(lines, ",period_start,");
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 8, "999999999");  // c=initial_pool
  const AuditReport report = AuditText(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "A2")) << report.Summary();
}

TEST_F(AuditCorruption, AnInflatedPoolSampleFailsPoolMonotonicity) {
  auto lines = SplitLines(*csv_);
  const std::size_t victim = FindLine(lines, ",pool_sample,");
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 6, "888888888");  // a=raw pool
  const AuditReport report = AuditText(JoinLines(lines));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "A3")) << report.Summary();
}

TEST_F(AuditCorruption, FirstFailedCheckMapsTheLowestBrokenIdentity) {
  // haechi_audit exits 10+k for the first failed Ak; 0 means clean.
  const AuditReport clean = AuditText(*csv_);
  EXPECT_EQ(obs::FirstFailedCheck(clean), 0);

  auto dropped = SplitLines(*csv_);
  const std::size_t gap = FindLine(dropped, ",pool_sample,");
  ASSERT_LT(gap, dropped.size());
  dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(gap));
  EXPECT_EQ(obs::FirstFailedCheck(AuditText(JoinLines(dropped))), 1);

  auto forged = SplitLines(*csv_);
  const std::size_t start = FindLine(forged, ",period_start,");
  ASSERT_LT(start, forged.size());
  forged[start] = WithField(forged[start], 8, "999999999");
  EXPECT_EQ(obs::FirstFailedCheck(AuditText(JoinLines(forged))), 2);

  auto inflated = SplitLines(*csv_);
  const std::size_t sample = FindLine(inflated, ",pool_sample,");
  ASSERT_LT(sample, inflated.size());
  inflated[sample] = WithField(inflated[sample], 6, "888888888");
  EXPECT_EQ(obs::FirstFailedCheck(AuditText(JoinLines(inflated))), 3);
}

TEST_F(AuditCorruption, AnUnknownEventNameIsRejectedByTheParser) {
  auto lines = SplitLines(*csv_);
  const std::size_t victim = FindLine(lines, ",pool_sample,");
  ASSERT_LT(victim, lines.size());
  lines[victim] = WithField(lines[victim], 4, "pool_oracle");
  EXPECT_FALSE(obs::ParseCsvTrace(JoinLines(lines)).ok());
}

TEST_F(AuditCorruption, ATruncatedRingIsDetectedUnlessExplicitlyAllowed) {
  auto config = Fig10Config();
  config.measure_periods = 4;
  config.trace.enabled = true;
  config.trace.ring_capacity = 64;  // far too small for the monitor stream
  Experiment experiment(std::move(config));
  experiment.Run();
  ASSERT_GT(experiment.recorder()->TotalDropped(), 0u);
  const AuditReport report =
      obs::AuditTrace(experiment.recorder()->Merged());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "A1"));
}

#endif  // HAECHI_TRACE_ENABLED

}  // namespace
}  // namespace haechi
