// Differential test: the discrete-event simulator and the concurrent
// threaded runtime execute the SAME ExperimentConfig — with the threaded
// backend swept across its pool-shard / fetch-batch grid — and both must
// (a) produce traces that pass the full A1–A9 audit,
// (b) satisfy the monitor's exact token-conservation ledger identity, and
// (c) deliver per-client completed-I/O totals that agree within a stated
//     tolerance band.
//
// The threaded backend is wall-clock scheduled, so agreement is
// statistical, not bitwise: the band below (kRelTolerance of the sim
// total, floored at two token batches per measured period) absorbs period
// boundary skew and FAA batch granularity while still catching a runtime
// whose token accounting leaks or starves a tenant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "core/control/controller.hpp"
#include "harness/experiment.hpp"
#include "harness/runtime_experiment.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"

namespace haechi {
namespace {

// One threaded-runtime knob combination under differential test. The
// shards/fetch-batch knobs only change *how* the threaded backend moves
// tokens (FAA contention and round-trip amortisation), never how many it
// may grant — so every combination must agree with the same simulator run.
struct KnobCombo {
  std::int64_t pool_shards;
  std::int64_t fetch_batch;
  // fetch_batch scales the tokens drawn per FAA; combos with a large
  // fetch_batch use a smaller token_batch so the effective batch
  // (token_batch * fetch_batch) stays well inside the shared pool and no
  // tenant can starve another by over-drawing.
  std::int64_t token_batch;
};

constexpr KnobCombo kKnobCombos[] = {
    {1, 1, 50}, {4, 1, 50}, {8, 1, 50}, {1, 8, 10}, {4, 8, 10}, {8, 8, 10},
};

// Both runtimes run this exact workload: four tenants with distinct
// reservations, demands above reservation (so the global pool and token
// conversion both matter), aggregate demand inside the profiled capacity.
harness::ExperimentConfig DiffConfig(std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.mode = harness::Mode::kHaechi;
  config.qos.period = Millis(100);
  config.qos.token_tick = Millis(2);
  config.qos.report_interval = Millis(2);
  config.qos.check_interval = Millis(2);
  config.qos.token_batch = 50;
  config.qos.pool_retry_interval = Millis(2);
  config.qos.faa_end_guard = Millis(20);
  // Explicit profiled capacities pin BOTH runtimes to the same token
  // budget: 2000 global / 800 local tokens per 100 ms period.
  config.profiled_global_iops = 20000;
  config.profiled_local_iops = 8000;
  config.records = 4096;
  config.warmup = Millis(200);  // 2 warm-up periods
  config.measure_periods = 5;
  config.seed = seed;
  config.trace.enabled = true;
  config.trace.ring_capacity = 1u << 16;

  const std::int64_t reservations[] = {500, 400, 200, 100};
  const std::int64_t demands[] = {600, 500, 250, 150};
  for (std::size_t i = 0; i < 4; ++i) {
    harness::ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = demands[i];
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  return config;
}

constexpr double kRelTolerance = 0.25;

std::int64_t ToleranceFor(std::int64_t sim_total,
                          const harness::ExperimentConfig& config) {
  // The floor scales with the *effective* FAA batch: one batched fetch
  // moves token_batch * fetch_batch tokens, so boundary skew can strand
  // up to that many per period.
  const std::int64_t effective_batch =
      config.qos.token_batch * std::max<std::int64_t>(config.qos.fetch_batch, 1);
  const auto floor_band = static_cast<std::int64_t>(
      2 * effective_batch * config.measure_periods);
  return std::max<std::int64_t>(
      floor_band, static_cast<std::int64_t>(
                      kRelTolerance * static_cast<double>(sim_total)));
}

void ExpectAuditClean(const obs::Recorder& recorder, const char* runtime,
                      std::uint64_t seed) {
#if !HAECHI_TRACE_ENABLED
  // Without the recorder there is no trace to audit; the per-client
  // totals comparison below still runs and is the diff test's core.
  (void)recorder;
  (void)runtime;
  (void)seed;
  return;
#else
  const obs::AuditReport report = obs::AuditTrace(recorder.Merged());
  for (const auto& v : report.violations) {
    ADD_FAILURE() << runtime << " seed " << seed << ": " << v.check << ": "
                  << v.detail;
  }
  EXPECT_TRUE(report.ok()) << runtime << " trace failed audit (seed " << seed
                           << ")";
  EXPECT_GT(report.guarantee_checks, 0u)
      << runtime << " audit ran no A9 checks (seed " << seed << ")";
#endif
}

TEST(RuntimeDiffTest, SimAndThreadsAgreeAcrossSeedsAndShardConfigs) {
  const std::uint64_t seeds[] = {1, 2, 3, 5, 8, 13, 21, 34};
  std::size_t combo_index = 0;
  for (const std::uint64_t seed : seeds) {
    // Cycle the shard/fetch-batch grid across the seed set: every combo
    // runs at least once, the wall-clock cost stays one sim + one threads
    // run per seed.
    const KnobCombo combo =
        kKnobCombos[combo_index++ % std::size(kKnobCombos)];
    SCOPED_TRACE("seed " + std::to_string(seed) + " shards=" +
                 std::to_string(combo.pool_shards) + " fetch_batch=" +
                 std::to_string(combo.fetch_batch));
    harness::ExperimentConfig config = DiffConfig(seed);
    config.qos.pool_shards = combo.pool_shards;
    config.qos.fetch_batch = combo.fetch_batch;
    config.qos.token_batch = combo.token_batch;

    harness::Experiment sim_experiment(config);
    const harness::ExperimentResult sim_result = sim_experiment.Run();
    ASSERT_NE(sim_experiment.recorder(), nullptr);
    ExpectAuditClean(*sim_experiment.recorder(), "sim", seed);

    harness::ThreadedExperiment threaded_experiment(config);
    const harness::ThreadedExperimentResult threaded_result =
        threaded_experiment.Run();
    ASSERT_NE(threaded_experiment.recorder(), nullptr);
    ExpectAuditClean(*threaded_experiment.recorder(), "threads", seed);

    // The monitor's conservation identity is exact in both runtimes:
    // initial + minted - granted == end_pool for every closed period
    // (raw-difference telescoping over the shared pool word).
    for (const auto& ledger : threaded_result.ledger) {
      if (ledger.period >=
          threaded_result.monitor_stats.periods) {  // still open
        continue;
      }
      EXPECT_EQ(ledger.initial_pool + ledger.minted - ledger.granted,
                ledger.end_pool)
          << "threads ledger period " << ledger.period;
    }

    ASSERT_EQ(sim_result.series.Clients(), threaded_result.series.Clients());
    ASSERT_EQ(threaded_result.series.Periods(), config.measure_periods);
    for (std::uint32_t c = 0; c < config.clients.size(); ++c) {
      const auto id = MakeClientId(c);
      const std::int64_t sim_total = sim_result.series.ClientTotal(id);
      const std::int64_t threaded_total =
          threaded_result.series.ClientTotal(id);
      const std::int64_t band = ToleranceFor(sim_total, config);
      EXPECT_LE(std::abs(sim_total - threaded_total), band)
          << "client " << c << ": sim=" << sim_total
          << " threads=" << threaded_total << " band=" << band;
      // Both runtimes must at least deliver the reservation each measured
      // period on average (the A9 audit already checks per-period).
      EXPECT_GE(threaded_total,
                config.clients[c].reservation *
                    static_cast<std::int64_t>(config.measure_periods))
          << "client " << c << " under-served in threads runtime";
    }
  }
}

// A controller-armed run must also agree: the closed loop rides each
// runtime's own period boundaries, and whatever actions it takes are
// sum-neutral, so the per-client totals stay inside the same band and
// both traces pass the full audit (including A10 when actions fired).
TEST(RuntimeDiffTest, ControllerArmedRunsAgree) {
#if !HAECHI_WATCHDOG_ENABLED
  GTEST_SKIP() << "controller requires HAECHI_WATCHDOG=ON";
#else
  harness::ExperimentConfig config = DiffConfig(55);
  config.watchdog.enabled = true;
  config.control.policy = core::control::Policy::kConservative;

  harness::Experiment sim_experiment(config);
  const harness::ExperimentResult sim_result = sim_experiment.Run();
  ASSERT_NE(sim_experiment.controller(), nullptr);
  ASSERT_NE(sim_experiment.recorder(), nullptr);
  ExpectAuditClean(*sim_experiment.recorder(), "sim", 55);

  harness::ThreadedExperiment threaded_experiment(config);
  const harness::ThreadedExperimentResult threaded_result =
      threaded_experiment.Run();
  ASSERT_NE(threaded_experiment.controller(), nullptr);
  ASSERT_NE(threaded_experiment.recorder(), nullptr);
  ExpectAuditClean(*threaded_experiment.recorder(), "threads", 55);

  for (std::uint32_t c = 0; c < config.clients.size(); ++c) {
    const auto id = MakeClientId(c);
    const std::int64_t sim_total = sim_result.series.ClientTotal(id);
    const std::int64_t threaded_total =
        threaded_result.series.ClientTotal(id);
    EXPECT_LE(std::abs(sim_total - threaded_total),
              ToleranceFor(sim_total, config))
        << "client " << c << ": sim=" << sim_total
        << " threads=" << threaded_total;
  }
#endif
}

// Basic Haechi (token conversion off) must also agree: unused reservation
// tokens are wasted identically in both runtimes.
TEST(RuntimeDiffTest, BasicModeAgrees) {
  harness::ExperimentConfig config = DiffConfig(99);
  config.mode = harness::Mode::kBasicHaechi;

  harness::Experiment sim_experiment(config);
  const harness::ExperimentResult sim_result = sim_experiment.Run();
  ASSERT_NE(sim_experiment.recorder(), nullptr);
  ExpectAuditClean(*sim_experiment.recorder(), "sim", 99);

  harness::ThreadedExperiment threaded_experiment(config);
  const harness::ThreadedExperimentResult threaded_result =
      threaded_experiment.Run();
  ASSERT_NE(threaded_experiment.recorder(), nullptr);
  ExpectAuditClean(*threaded_experiment.recorder(), "threads", 99);

  EXPECT_EQ(threaded_result.monitor_stats.conversions, 0u);
  for (std::uint32_t c = 0; c < config.clients.size(); ++c) {
    const auto id = MakeClientId(c);
    const std::int64_t sim_total = sim_result.series.ClientTotal(id);
    const std::int64_t threaded_total = threaded_result.series.ClientTotal(id);
    EXPECT_LE(std::abs(sim_total - threaded_total),
              ToleranceFor(sim_total, config))
        << "client " << c << ": sim=" << sim_total
        << " threads=" << threaded_total;
  }
}

}  // namespace
}  // namespace haechi
