// Direct unit tests of QosMonitor with a mock engine side: the test owns
// the client end of the control channel and writes report slots through
// the fabric itself, pinning down conversion arithmetic, grant tracking,
// reporting activation, and calibration gating.
#include <gtest/gtest.h>

#include <cstring>

#include "core/monitor.hpp"
#include "core/wire.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace haechi::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : fabric_(sim_, MakeParams(), 3),
        server_(fabric_.AddNode("server", rdma::NodeRole::kData)),
        client_(fabric_.AddNode("client")) {
    config_.token_batch = 10;
    monitor_ = std::make_unique<QosMonitor>(sim_, config_, server_,
                                            /*global=*/100'000,
                                            /*local=*/50'000);
  }

  static net::ModelParams MakeParams() {
    net::ModelParams params;
    params.capacity_scale = 0.02;
    params.service_jitter = 0.0;
    return params;
  }

  /// Admits a client and returns its wiring; the test keeps the engine-side
  /// QPs to impersonate the engine.
  QosWiring Admit(std::uint32_t id, std::int64_t reservation,
                  std::int64_t limit = 0) {
    auto& ctrl_cq = client_.CreateCq();
    auto& ctrl_recv = client_.CreateCq();
    auto& srv_cq = server_.CreateCq();
    auto& ctrl_qp = client_.CreateQp(ctrl_cq, ctrl_recv);
    auto& srv_qp = server_.CreateQp(srv_cq, srv_cq);
    fabric_.Connect(ctrl_qp, srv_qp);
    // Swallow the monitor's control messages.
    recv_buffers_.emplace_back(64);
    ctrl_qp.PostRecv(0, std::span<std::byte>(recv_buffers_.back()));
    ctrl_recv.SetNotify([&ctrl_qp, this](const rdma::WorkCompletion& wc) {
      ++ctrl_messages_;
      ctrl_qp.PostRecv(wc.wr_id,
                       std::span<std::byte>(recv_buffers_.back()));
    });
    auto wiring = monitor_->AdmitClient(MakeClientId(id), reservation, limit,
                                        srv_qp);
    EXPECT_TRUE(wiring.ok());
    return wiring.value();
  }

  /// Impersonates an engine: writes a packed report into the slot memory
  /// (directly — the one-sided path itself is covered by engine_test).
  void WriteReport(const QosWiring& wiring, std::uint32_t period,
                   std::uint64_t residual, std::uint64_t completed,
                   std::uint8_t seq = 0) {
    const std::uint64_t packed = PackReport(period, residual, completed, seq);
    std::memcpy(reinterpret_cast<void*>(wiring.report_slot_addr), &packed,
                sizeof(packed));
  }

  std::int64_t PoolWord(const QosWiring& wiring) {
    std::uint64_t raw;
    std::memcpy(&raw, reinterpret_cast<void*>(wiring.global_pool_addr),
                sizeof(raw));
    return static_cast<std::int64_t>(raw);
  }

  void DrainPool(const QosWiring& wiring, std::int64_t tokens) {
    const std::int64_t now = PoolWord(wiring);
    const auto raw = static_cast<std::uint64_t>(now - tokens);
    std::memcpy(reinterpret_cast<void*>(wiring.global_pool_addr), &raw,
                sizeof(raw));
  }

  sim::Simulator sim_;
  rdma::Fabric fabric_;
  rdma::Node& server_;
  rdma::Node& client_;
  QosConfig config_;
  std::unique_ptr<QosMonitor> monitor_;
  std::deque<std::vector<std::byte>> recv_buffers_;
  int ctrl_messages_ = 0;
};

TEST_F(MonitorTest, PeriodStartInitialisesPoolAndSlots) {
  const QosWiring a = Admit(0, 30'000);
  const QosWiring b = Admit(1, 20'000);
  monitor_->Start(0);
  sim_.RunUntil(Millis(1));
  EXPECT_EQ(monitor_->stats().periods, 1u);
  EXPECT_EQ(monitor_->PeriodCapacity(), 100'000);
  EXPECT_EQ(monitor_->InitialPool(), 50'000);
  EXPECT_EQ(PoolWord(a), 50'000);
  EXPECT_EQ(PoolWord(b), 50'000);  // same word
  // Slots are primed with the full reservation for the current period.
  EXPECT_EQ(monitor_->LastResidual(MakeClientId(0)), 30'000u);
  EXPECT_EQ(monitor_->LastCompleted(MakeClientId(0)), 0u);
  // Each client received a PeriodStart message.
  EXPECT_GE(ctrl_messages_, 2);
}

TEST_F(MonitorTest, ReportingActivatesOnlyOnPoolDraw) {
  const QosWiring wiring = Admit(0, 30'000);
  monitor_->Start(0);
  sim_.RunUntil(Millis(10));
  EXPECT_FALSE(monitor_->ReportingActive());
  EXPECT_EQ(monitor_->stats().report_signals, 0u);
  DrainPool(wiring, 10);  // someone took tokens
  sim_.RunUntil(Millis(12));
  EXPECT_TRUE(monitor_->ReportingActive());
  EXPECT_EQ(monitor_->stats().report_signals, 1u);
  // The flag resets at the next period.
  sim_.RunUntil(Seconds(1) + Millis(1));
  EXPECT_FALSE(monitor_->ReportingActive());
}

TEST_F(MonitorTest, ConversionReclaimsSurrenderedTokens) {
  const QosWiring wiring = Admit(0, 40'000);
  monitor_->Start(0);
  sim_.RunUntil(Millis(5));
  DrainPool(wiring, 100);  // trigger reporting
  sim_.RunUntil(Millis(7));
  ASSERT_TRUE(monitor_->ReportingActive());

  // The client reports that it surrendered half its reservation and
  // completed nothing: claims = 20'000.
  WriteReport(wiring, 1, /*residual=*/20'000, /*completed=*/0);
  sim_.RunUntil(Millis(100) + Micros(500));
  // At t=0.1: time budget = 0.9 * 100'000 = 90'000; completion budget =
  // 100'000 - 0; L = 20'000 -> pool ≈ 70'000 (minus the grant-lag window,
  // which saw the 100-token drain).
  EXPECT_NEAR(static_cast<double>(PoolWord(wiring)), 70'000, 300);
  EXPECT_GT(monitor_->stats().conversions, 0u);
}

TEST_F(MonitorTest, ConversionIsTokenConserving) {
  // With honest claims (everything still outstanding), conversion must not
  // mint: pool stays at its initial value even as time passes.
  const QosWiring wiring = Admit(0, 40'000);
  monitor_->Start(0);
  sim_.RunUntil(Millis(5));
  DrainPool(wiring, 1000);
  sim_.RunUntil(Millis(7));
  // Claims: full reservation + the 1000 pool tokens drawn, nothing done.
  WriteReport(wiring, 1, 41'000, 0);
  sim_.RunUntil(Millis(200));
  // Two ceilings apply. Conservation: never above initial pool minus the
  // 1000 already granted. Expiry: at t=0.2 the time budget is 80'000, so
  // pool = 80'000 - 41'000 claims - lag = ~39'000 (capacity that went
  // unused while the client sat on its tokens has expired).
  EXPECT_LE(PoolWord(wiring), 59'000);
  EXPECT_NEAR(static_cast<double>(PoolWord(wiring)), 39'000, 300);
  // And it keeps declining with the time budget, never re-minting.
  sim_.RunUntil(Millis(400));
  EXPECT_NEAR(static_cast<double>(PoolWord(wiring)), 19'000, 300);
}

TEST_F(MonitorTest, StaleReportsFallBackToReservation) {
  const QosWiring wiring = Admit(0, 40'000);
  monitor_->Start(0);
  sim_.RunUntil(Millis(5));
  DrainPool(wiring, 100);
  sim_.RunUntil(Millis(7));
  // A report tagged with the WRONG period (stale in-flight write).
  WriteReport(wiring, 99, /*residual=*/0, /*completed=*/39'000);
  sim_.RunUntil(Millis(100));
  // Conversion must treat the client conservatively (full 40'000
  // outstanding): pool = 90'000 - 40'000 - lag ≈ 50'000, NOT ~90'000.
  EXPECT_LT(PoolWord(wiring), 52'000);
  // And calibration must not see the stale completions.
  sim_.RunUntil(Seconds(1) + Millis(1));
  EXPECT_EQ(monitor_->stats().last_period_completions, 0);
}

TEST_F(MonitorTest, CalibrationFeedsEstimatorOnlyWhenReporting) {
  const QosWiring wiring = Admit(0, 40'000);
  monitor_->Start(0);
  // Period 1 passes without any pool draw: estimator untouched.
  sim_.RunUntil(Seconds(1) + Millis(1));
  EXPECT_EQ(monitor_->estimator().Estimate(), 100'000);
  EXPECT_EQ(monitor_->estimator().WindowFill(), 0u);

  // Period 2: pool drawn, reports flowing, partial consumption.
  DrainPool(wiring, 500);
  sim_.RunUntil(Seconds(1) + Millis(10));
  WriteReport(wiring, 2, 0, 90'000);
  sim_.RunUntil(Seconds(2) + Millis(1));
  EXPECT_EQ(monitor_->estimator().WindowFill(), 1u);
  EXPECT_EQ(monitor_->estimator().Estimate(), 90'000);
}

TEST_F(MonitorTest, UnderuseAlertAfterConsecutivePeriods) {
  config_.underuse_alert_periods = 2;
  monitor_ = std::make_unique<QosMonitor>(sim_, config_, server_, 100'000,
                                          50'000);
  const QosWiring wiring = Admit(0, 20'000);
  ClientId alerted = MakeClientId(999);
  monitor_->SetOverReserveCallback([&](ClientId id) { alerted = id; });
  monitor_->Start(0);
  for (int period = 1; period <= 3; ++period) {
    sim_.RunUntil(Seconds(period - 1) + Millis(5));
    DrainPool(wiring, 10);  // keep reporting active each period
    sim_.RunUntil(Seconds(period - 1) + Millis(10));
    WriteReport(wiring, static_cast<std::uint32_t>(period), 15'000, 5'000);
    sim_.RunUntil(Seconds(period));
  }
  sim_.RunUntil(Seconds(3) + Millis(1));
  EXPECT_EQ(alerted, MakeClientId(0));
  EXPECT_GE(monitor_->stats().over_reserve_hints, 1u);
}

TEST_F(MonitorTest, AdmissionLifecycleThroughMonitor) {
  Admit(0, 50'000);  // exactly C_L
  EXPECT_EQ(monitor_->admission().TotalReserved(), 50'000);
  // Beyond local capacity.
  auto& cq = server_.CreateCq();
  auto& qp = server_.CreateQp(cq, cq);
  auto too_big = monitor_->AdmitClient(MakeClientId(7), 50'001, 0, qp);
  EXPECT_FALSE(too_big.ok());
  // Limit below reservation is contradictory.
  auto contradictory = monitor_->AdmitClient(MakeClientId(8), 10'000,
                                             /*limit=*/5'000, qp);
  EXPECT_EQ(contradictory.status().code(), StatusCode::kInvalidArgument);
  // Release and reuse.
  EXPECT_TRUE(monitor_->ReleaseClient(MakeClientId(0)).ok());
  EXPECT_EQ(monitor_->admission().TotalReserved(), 0);
  EXPECT_EQ(monitor_->ReleaseClient(MakeClientId(0)).code(),
            StatusCode::kNotFound);
}

TEST_F(MonitorTest, DistinctReportSlotsPerClient) {
  const QosWiring a = Admit(0, 10'000);
  const QosWiring b = Admit(1, 10'000);
  EXPECT_EQ(a.global_pool_addr, b.global_pool_addr);
  EXPECT_NE(a.report_slot_addr, b.report_slot_addr);
  monitor_->Start(0);
  sim_.RunUntil(Millis(2));
  WriteReport(a, 1, 1111, 2222);
  WriteReport(b, 1, 3333, 4444);
  EXPECT_EQ(monitor_->LastResidual(MakeClientId(0)), 1111u);
  EXPECT_EQ(monitor_->LastCompleted(MakeClientId(1)), 4444u);
}

// ---------------------------------------------------------------------------
// Report lease: client-failure detection and reclamation.

TEST_F(MonitorTest, LeaseExpiryReclaimsSilentClientAndKeepsReportingOne) {
  config_.report_lease_intervals = 4;
  monitor_ = std::make_unique<QosMonitor>(sim_, config_, server_, 100'000,
                                          50'000);
  const QosWiring alive = Admit(0, 30'000);
  Admit(1, 20'000);
  ClientId dead = MakeClientId(999);
  monitor_->SetClientDeadCallback([&](ClientId id) { dead = id; });
  monitor_->Start(0);

  sim_.RunUntil(Millis(1) + Micros(100));
  DrainPool(alive, 10);  // activates reporting at the 2 ms check
  // Client 0 keeps reporting an unchanged payload but a fresh seq — the
  // lease must read that as alive (idle != dead). Client 1 stays silent.
  for (int m = 2; m <= 8; ++m) {
    sim_.RunUntil(Millis(m) - Micros(500));
    WriteReport(alive, 1, 30'000, 0, static_cast<std::uint8_t>(m));
  }
  sim_.RunUntil(Millis(10));

  // Client 1 missed k = 4 consecutive checks: declared dead, its admission
  // released, its primed residual (the full reservation) reclaimed.
  EXPECT_EQ(monitor_->stats().lease_expirations, 1u);
  EXPECT_EQ(dead, MakeClientId(1));
  EXPECT_FALSE(monitor_->admission().IsAdmitted(MakeClientId(1)));
  EXPECT_TRUE(monitor_->admission().IsAdmitted(MakeClientId(0)));
  EXPECT_EQ(monitor_->admission().TotalReserved(), 30'000);
  EXPECT_EQ(monitor_->stats().reclaimed_tokens, 20'000);
  // At half-lease (2 misses) the monitor re-sent a ReportRequest before
  // giving up on the client.
  EXPECT_GE(monitor_->stats().report_request_resends, 1u);
  // Work conservation: the death triggered an immediate conversion, so the
  // reclaimed 20'000 showed up in the global pool (time budget ~99'500
  // minus client 0's 30'000 claims — well above the 50'000 initial pool).
  EXPECT_GT(PoolWord(alive), 60'000);
}

TEST_F(MonitorTest, LeaseIsInertUntilReportingActivates) {
  config_.report_lease_intervals = 2;
  monitor_ = std::make_unique<QosMonitor>(sim_, config_, server_, 100'000,
                                          50'000);
  Admit(0, 30'000);
  monitor_->Start(0);
  // No pool draw -> reporting never signalled -> silence is not a crime.
  sim_.RunUntil(Millis(50));
  EXPECT_EQ(monitor_->stats().lease_expirations, 0u);
  EXPECT_TRUE(monitor_->admission().IsAdmitted(MakeClientId(0)));
}

TEST_F(MonitorTest, ReadmissionReplacesStaleIncarnation) {
  const QosWiring first = Admit(0, 30'000);
  EXPECT_EQ(monitor_->admission().TotalReserved(), 30'000);
  // The same client id re-admits after a restart: the stale admission is
  // released first, so the new reservation replaces (not stacks on) it.
  const QosWiring second = Admit(0, 25'000);
  EXPECT_EQ(monitor_->stats().readmissions, 1u);
  EXPECT_EQ(monitor_->admission().AdmittedCount(), 1u);
  EXPECT_EQ(monitor_->admission().TotalReserved(), 25'000);
  // The retired slot is quarantined until the next period boundary, so the
  // new incarnation writes elsewhere (an in-flight stale WRITE cannot
  // corrupt it).
  EXPECT_NE(first.report_slot_addr, second.report_slot_addr);
  EXPECT_EQ(first.global_pool_addr, second.global_pool_addr);
}

TEST_F(MonitorTest, SlotsRecycleAcrossPeriodBoundaries) {
  // 120 admit/release cycles against 64 physical slots: retired slots are
  // quarantined for one period, then recycled — churn must never exhaust
  // the slot table as long as boundaries keep passing.
  monitor_->Start(0);
  std::uint32_t id = 0;
  for (int period = 0; period < 6; ++period) {
    for (int i = 0; i < 20; ++i) {
      Admit(id, 1'000);
      EXPECT_TRUE(monitor_->ReleaseClient(MakeClientId(id)).ok());
      ++id;
    }
    sim_.RunUntil(Seconds(period + 1) + Millis(1));
  }
  EXPECT_EQ(monitor_->admission().AdmittedCount(), 0u);
}

}  // namespace
}  // namespace haechi::core
