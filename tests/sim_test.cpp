// Unit tests for the discrete-event core: Simulator, BinaryHeapEventQueue,
// HierarchicalTimingWheel, and PeriodicTimer — including a property sweep
// asserting both queue implementations deliver identical event orderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"

namespace haechi::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.EventsRun(), 3u);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.ScheduleAt(21, [&] { ++ran; });
  sim.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(ran, 3);
  // No events remain; clock advances to the deadline.
  EXPECT_EQ(sim.Now(), 100);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, SchedulingInThePastFiresImmediately) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { fired_at = sim.Now(); });  // "earlier" than now
  });
  sim.Run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double cancel
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1, [&] { ++ran; });
  sim.ScheduleAt(2, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(ran, 2);
}

TEST(PeriodicTimer, FiresAtFixedInterval) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(sim, 10, [&] { fires.push_back(sim.Now()); });
  timer.Start();
  sim.RunUntil(35);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30}));
  timer.Stop();
  sim.RunUntil(100);
  EXPECT_EQ(fires.size(), 3u);
}

TEST(PeriodicTimer, CallbackMayStopTheTimer) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 10, [&] {
    if (++fires == 2) timer.Stop();
  });
  timer.Start();
  sim.Run();
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(timer.Running());
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 10, [&] { ++fires; });
  timer.Start();
  sim.RunUntil(25);
  timer.Stop();
  timer.Start();
  sim.RunUntil(45);
  EXPECT_EQ(fires, 4);  // 10, 20, 35, 45
}

// --- event queue implementations ------------------------------------------

template <typename Queue>
class EventQueueTest : public ::testing::Test {
 protected:
  Queue queue_;
};

using QueueTypes =
    ::testing::Types<BinaryHeapEventQueue, HierarchicalTimingWheel>;
TYPED_TEST_SUITE(EventQueueTest, QueueTypes);

TYPED_TEST(EventQueueTest, PopsInTimeThenIdOrder) {
  auto& q = this->queue_;
  q.Schedule(500, [] {});
  q.Schedule(100, [] {});
  q.Schedule(100, [] {});
  q.Schedule(300, [] {});
  EXPECT_EQ(q.Size(), 4u);
  std::vector<std::pair<SimTime, EventId>> popped;
  while (!q.Empty()) {
    Event e = q.PopNext();
    popped.emplace_back(e.time, e.id);
  }
  ASSERT_EQ(popped.size(), 4u);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.front().first, 100);
  EXPECT_EQ(popped.back().first, 500);
}

TYPED_TEST(EventQueueTest, PeekDoesNotPop) {
  auto& q = this->queue_;
  q.Schedule(7, [] {});
  EXPECT_EQ(q.PeekTime(), 7);
  EXPECT_EQ(q.PeekTime(), 7);
  EXPECT_EQ(q.Size(), 1u);
  q.PopNext();
  EXPECT_EQ(q.PeekTime(), kSimTimeMax);
}

TYPED_TEST(EventQueueTest, CancelRemovesEvent) {
  auto& q = this->queue_;
  const EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  Event e = q.PopNext();
  EXPECT_EQ(e.time, 20);
  EXPECT_TRUE(q.Empty());
}

TYPED_TEST(EventQueueTest, CancelInvalidIdsReturnsFalse) {
  auto& q = this->queue_;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TYPED_TEST(EventQueueTest, PopOnEmptyReturnsInvalid) {
  Event e = this->queue_.PopNext();
  EXPECT_EQ(e.id, kInvalidEventId);
}

TYPED_TEST(EventQueueTest, FarFutureEvents) {
  auto& q = this->queue_;
  // Beyond the timing wheel's direct horizon (forces the overflow path).
  const SimTime far = Seconds(36000);
  q.Schedule(far, [] {});
  q.Schedule(5, [] {});
  EXPECT_EQ(q.PopNext().time, 5);
  EXPECT_EQ(q.PopNext().time, far);
}

TEST(QueueEquivalence, IdenticalOrderUnderRandomWorkload) {
  // Property: for any schedule/cancel sequence, both queues pop the exact
  // same (time, id) sequence.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    BinaryHeapEventQueue heap;
    HierarchicalTimingWheel wheel;
    std::vector<EventId> live;
    std::vector<std::pair<SimTime, EventId>> heap_popped, wheel_popped;
    SimTime now = 0;

    for (int step = 0; step < 5000; ++step) {
      const auto action = rng.NextBelow(10);
      if (action < 6) {
        // Schedule at a mix of horizons: sub-tick, short, medium, long.
        const SimTime when =
            now + static_cast<SimTime>(rng.NextBelow(1) == 0
                                           ? rng.NextBelow(Millis(50))
                                           : rng.NextBelow(200));
        const EventId h = heap.Schedule(when, [] {});
        const EventId w = wheel.Schedule(when, [] {});
        ASSERT_EQ(h, w);
        live.push_back(h);
      } else if (action < 8 && !live.empty()) {
        const auto idx = rng.NextBelow(live.size());
        const EventId id = live[idx];
        EXPECT_EQ(heap.Cancel(id), wheel.Cancel(id));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else if (!heap.Empty()) {
        Event he = heap.PopNext();
        Event we = wheel.PopNext();
        ASSERT_EQ(he.time, we.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(he.id, we.id);
        now = he.time;
        heap_popped.emplace_back(he.time, he.id);
        wheel_popped.emplace_back(we.time, we.id);
        std::erase(live, he.id);
      }
    }
    while (!heap.Empty()) {
      Event he = heap.PopNext();
      Event we = wheel.PopNext();
      ASSERT_EQ(he.time, we.time);
      ASSERT_EQ(he.id, we.id);
    }
    EXPECT_TRUE(wheel.Empty());
  }
}

TEST(TimingWheel, StressManyTimescales) {
  HierarchicalTimingWheel wheel;
  Rng rng(99);
  std::vector<SimTime> times;
  for (int i = 0; i < 20000; ++i) {
    // Mix of ns, µs, ms, s, and hour horizons.
    static constexpr SimTime kSpans[] = {100,        Micros(10), Millis(5),
                                         Seconds(2), Seconds(7200)};
    const SimTime t = static_cast<SimTime>(
        rng.NextBelow(static_cast<std::uint64_t>(kSpans[rng.NextBelow(5)])));
    times.push_back(t);
    wheel.Schedule(t, [] {});
  }
  std::sort(times.begin(), times.end());
  for (const SimTime expected : times) {
    Event e = wheel.PopNext();
    ASSERT_EQ(e.time, expected);
  }
  EXPECT_TRUE(wheel.Empty());
}

TEST(SimulatorWithWheel, ProducesSameResultsAsHeap) {
  // A miniature "protocol": timers plus event chains; final state must be
  // identical under both queue kinds.
  auto run = [](QueueKind kind) {
    Simulator sim(kind);
    std::uint64_t checksum = 0;
    PeriodicTimer timer(sim, Millis(1), [&] {
      checksum = checksum * 31 + static_cast<std::uint64_t>(sim.Now());
    });
    timer.Start();
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleAt(i * Micros(37), [&sim, &checksum] {
        checksum ^= static_cast<std::uint64_t>(sim.Now());
        sim.ScheduleAfter(Micros(11), [&checksum] { checksum += 7; });
      });
    }
    sim.RunUntil(Millis(20));
    return checksum;
  };
  EXPECT_EQ(run(QueueKind::kBinaryHeap), run(QueueKind::kTimingWheel));
}

// Randomized cancel/reschedule fuzz: callbacks executing inside RunUntil
// cancel other pending events (some already fired, some self-cancelled
// twice) and reschedule replacements, across both queue kinds. The fired
// sequence (tag, time) and the cancellation outcomes must be identical
// under kBinaryHeap and kTimingWheel for every seed — this pins the
// Cancel-while-draining semantics the timing wheel's lazy deletion must
// reproduce exactly.
TEST(SimulatorWithWheel, CancelRescheduleFuzzMatchesHeap) {
  struct RunLog {
    std::vector<std::pair<int, SimTime>> fired;
    std::uint64_t cancel_hits = 0;    // Cancel returned true
    std::uint64_t cancel_misses = 0;  // already fired or double-cancel
    std::uint64_t events_run = 0;

    bool operator==(const RunLog&) const = default;
  };

  auto run = [](QueueKind kind, std::uint64_t seed) {
    Rng rng(seed);
    Simulator sim(kind);
    RunLog log;
    std::vector<EventId> pending;
    int next_tag = 0;

    // Recursive-ish scheduling: each event logs itself and then, driven by
    // the shared deterministic Rng, cancels a random pending event and/or
    // schedules a replacement at a random offset.
    std::function<void(int)> fire = [&](int tag) {
      log.fired.emplace_back(tag, sim.Now());
      const std::uint64_t roll = rng() % 100;
      if (roll < 45 && !pending.empty()) {
        const EventId victim = pending[rng() % pending.size()];
        if (sim.Cancel(victim)) {
          ++log.cancel_hits;
        } else {
          ++log.cancel_misses;  // stale id: fired or doubly cancelled
        }
      }
      if (roll < 80) {
        const int t = next_tag++;
        pending.push_back(sim.ScheduleAfter(
            static_cast<SimDuration>(rng() % Micros(500)),
            [&fire, t] { fire(t); }));
      }
    };

    for (int i = 0; i < 64; ++i) {
      const int t = next_tag++;
      pending.push_back(sim.ScheduleAt(
          static_cast<SimTime>(rng() % Millis(5)), [&fire, t] { fire(t); }));
    }
    log.events_run = sim.RunUntil(Millis(50));
    return log;
  };

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RunLog heap = run(QueueKind::kBinaryHeap, seed);
    const RunLog wheel = run(QueueKind::kTimingWheel, seed);
    EXPECT_EQ(heap, wheel) << "queue kinds diverged at seed " << seed
                           << " (heap fired " << heap.fired.size()
                           << ", wheel fired " << wheel.fired.size() << ")";
    EXPECT_GT(heap.cancel_hits, 0u) << "fuzz never cancelled (seed " << seed
                                    << ")";
    EXPECT_GT(heap.cancel_misses, 0u)
        << "fuzz never raced a fired event (seed " << seed << ")";
  }
}

}  // namespace
}  // namespace haechi::sim
