// Chaos soak: full Haechi experiments under randomized fault plans and
// scripted client crashes, swept across seeds. The properties under test:
// the system neither crashes nor stalls, surviving clients keep meeting
// their reservations, a dead client's claims are reclaimed through the
// report lease, a restarted client re-admits cleanly (no admission-slot
// leak), and every run replays bit-identically under a fixed seed.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/experiment.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Mode;

constexpr std::size_t kClients = 4;

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

/// A small saturated Haechi cluster with the report lease armed: 60% of
/// capacity reserved, every client's open-loop demand well above its share.
ExperimentConfig ChaosBase(std::uint64_t seed) {
  ExperimentConfig config;
  config.mode = Mode::kHaechi;
  config.net.capacity_scale = 0.02;
  config.warmup = Seconds(1);
  config.measure_periods = 4;
  config.records = 256;
  config.qos.token_batch = 100;
  config.qos.report_lease_intervals = 8;
  config.seed = seed;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap * 6 / 10, kClients)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  return config;
}

/// The randomized transport-fault mix for one seed. Faults target the QoS
/// control plane (token FAAs and report WRITEs — the paths the resilience
/// machinery must absorb) plus a low-rate delay on every op. Control SENDs
/// are left alone: a lost PeriodStart legitimately costs that client its
/// period, which is not the invariant under test here.
rdma::FaultPlan RandomFaults(std::uint64_t seed) {
  rdma::FaultPlan plan;
  plan.seed = seed * 7919 + 1;

  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.05;
  plan.Add(drop_faa);

  rdma::FaultRule drop_report;
  drop_report.action = rdma::FaultAction::kDrop;
  drop_report.opcode = rdma::Opcode::kWrite;
  drop_report.probability = 0.05;
  plan.Add(drop_report);

  rdma::FaultRule dup_report;
  dup_report.action = rdma::FaultAction::kDuplicate;
  dup_report.opcode = rdma::Opcode::kWrite;
  dup_report.probability = 0.05;
  plan.Add(dup_report);

  rdma::FaultRule jitter;
  jitter.action = rdma::FaultAction::kDelay;
  jitter.probability = 0.1;
  jitter.delay = 3'000;
  plan.Add(jitter);
  return plan;
}

// ---------------------------------------------------------------------------
// Soak across 8 seeds: transport chaos plus one client crash/restart per
// run. No crash, no stall (the run finishes), survivors hold their
// reservations every period, the victim is reclaimed by the lease and
// later re-admitted without leaking an admission slot.

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, SurvivesRandomizedFaultPlan) {
  const std::uint64_t seed = GetParam();
  ExperimentConfig config = ChaosBase(seed);
  config.measure_periods = 5;
  config.faults = RandomFaults(seed);

  // One client crashes mid-period (offset varies with the seed) and
  // restarts two periods later.
  const std::size_t victim = seed % kClients;
  ExperimentConfig::ClientFault fault;
  fault.client = victim;
  fault.crash_at = Seconds(2) + Millis(200 + 37 * (seed % 16));
  fault.restart_at = Seconds(4) + Millis(100);
  config.client_faults.push_back(fault);

  Experiment experiment(std::move(config));
  ExperimentResult result = experiment.Run();

  // The run finished and the plan actually perturbed the fabric.
  EXPECT_GT(result.total_kiops, 0.0);
  EXPECT_GT(result.fault_stats.ops_dropped, 0u);

  // The crash was detected by the report lease and the reservation
  // reclaimed; the restart re-admitted the client, so the admission table
  // is full again — no leaked or lost slot.
  EXPECT_GE(result.monitor_stats.lease_expirations, 1u);
  EXPECT_GT(result.monitor_stats.reclaimed_tokens, 0);
  ASSERT_NE(experiment.monitor(), nullptr);
  EXPECT_EQ(experiment.monitor()->admission().AdmittedCount(), kClients);

  // Survivors kept their reservations in every measured period (the
  // victim's own periods are disturbed by design). The 90% floor leaves
  // room for the injected FAA/report losses.
  for (std::uint32_t c = 0; c < kClients; ++c) {
    if (c == victim) continue;
    EXPECT_GE(result.series.ClientMinPerPeriod(MakeClientId(c)),
              result.reservations[c] * 90 / 100)
        << "seed " << seed << " surviving client " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// The demo scenario: a client crashes mid-period and never returns. The
// monitor reclaims its claims within the lease, surviving clients'
// aggregate throughput recovers to >= 95% of the pre-crash aggregate, and
// the whole scenario replays bit-identically.

ExperimentConfig CrashDemoConfig(std::uint64_t seed) {
  ExperimentConfig config = ChaosBase(seed);
  config.measure_periods = 6;
  ExperimentConfig::ClientFault fault;
  fault.client = 0;
  fault.crash_at = Seconds(2) + Millis(500);  // mid monitor-period 2
  config.client_faults.push_back(fault);
  return config;
}

TEST(CrashReclamationDemo, LeaseReclaimsAndSurvivorsRecover) {
  Experiment experiment(CrashDemoConfig(5));
  ExperimentResult result = experiment.Run();

  EXPECT_EQ(result.monitor_stats.lease_expirations, 1u);
  EXPECT_EQ(result.monitor_stats.readmissions, 0u);
  EXPECT_GT(result.monitor_stats.reclaimed_tokens, 0);
  EXPECT_EQ(experiment.monitor()->admission().AdmittedCount(), kClients - 1);

  // The lease (k = 8 check intervals of 1 ms) catches the crash inside the
  // same monitor period it happened in: that period's ledger entry carries
  // the reclaimed residual.
  const auto& ledger = experiment.monitor()->ledger();
  ASSERT_GT(ledger.size(), 2u);
  EXPECT_GT(ledger[2].reclaimed, 0);

  // Measured periods cover [1s, 7s); the crash lands in series period 1.
  // Compare the survivors' aggregate in the last measured period against
  // their pre-crash aggregate: with the dead client's claims reclaimed it
  // must recover to at least 95% — and in fact grow, because the
  // capacity-starved survivors' open-loop demand absorbs the freed tokens.
  auto survivors_at = [&result](std::size_t period) {
    std::int64_t sum = 0;
    for (std::uint32_t c = 1; c < kClients; ++c) {
      sum += result.series.At(period, MakeClientId(c));
    }
    return sum;
  };
  const std::int64_t before = survivors_at(0);
  const std::int64_t after = survivors_at(result.series.Periods() - 1);
  EXPECT_GE(after, before * 95 / 100);
  EXPECT_GT(after, before);
}

TEST(CrashReclamationDemo, FullyDeterministicUnderAFixedSeed) {
  ExperimentResult a = Experiment(CrashDemoConfig(7)).Run();
  ExperimentResult b = Experiment(CrashDemoConfig(7)).Run();
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.total_kiops, b.total_kiops);
  EXPECT_EQ(a.monitor_stats.lease_expirations,
            b.monitor_stats.lease_expirations);
  EXPECT_EQ(a.monitor_stats.reclaimed_tokens, b.monitor_stats.reclaimed_tokens);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(a.series.ClientTotal(MakeClientId(c)),
              b.series.ClientTotal(MakeClientId(c)));
  }
}

// ---------------------------------------------------------------------------
// Re-admission handshake WITHOUT a lease expiry: the client restarts
// before the monitor notices anything, re-admits under its old id (the
// stale incarnation's admission is released first), and the admission
// table neither leaks nor double-counts.

TEST(Readmission, RestartBeforeLeaseExpiryReplacesTheOldAdmission) {
  ExperimentConfig config = ChaosBase(3);
  config.qos.report_lease_intervals = 0;  // lease disabled: silent crash
  config.measure_periods = 5;
  ExperimentConfig::ClientFault fault;
  fault.client = 1;
  fault.crash_at = Seconds(2) + Millis(300);
  fault.restart_at = Seconds(2) + Millis(900);
  config.client_faults.push_back(fault);

  Experiment experiment(std::move(config));
  ExperimentResult result = experiment.Run();

  EXPECT_EQ(result.monitor_stats.lease_expirations, 0u);
  EXPECT_EQ(result.monitor_stats.readmissions, 1u);
  EXPECT_EQ(experiment.monitor()->admission().AdmittedCount(), kClients);
  EXPECT_EQ(experiment.monitor()->admission().TotalReserved(),
            std::accumulate(result.reservations.begin(),
                            result.reservations.end(), std::int64_t{0}));
  // The restarted client resumes service: its last measured period shows
  // completions again.
  EXPECT_GT(result.series.At(result.series.Periods() - 1, MakeClientId(1)), 0);
}

}  // namespace
}  // namespace haechi
