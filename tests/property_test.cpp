// Property-based invariant sweeps (parameterised gtest): the DESIGN.md §5
// invariants checked across randomised reservation vectors, seeds,
// reserved fractions, and request patterns.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/experiment.hpp"
#include "workload/distributions.hpp"

namespace haechi {
namespace {

using harness::ClientSpec;
using harness::Experiment;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Mode;

constexpr double kScale = 0.02;

ExperimentConfig BaseConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.mode = Mode::kHaechi;
  config.net.capacity_scale = kScale;
  config.warmup = Seconds(1);
  config.measure_periods = 4;
  config.records = 256;
  config.qos.token_batch = 100;
  config.seed = seed;
  return config;
}

std::int64_t Capacity(const ExperimentConfig& config) {
  return static_cast<std::int64_t>(config.net.GlobalCapacityIops());
}

// ---------------------------------------------------------------------------
// Invariant 1: every admitted, continuously-backlogged client receives at
// least its reservation each period (demand sufficiency via open loop).
// Swept over random reservation vectors and seeds.

class ReservationInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReservationInvariant, BackloggedClientsMeetReservations) {
  const std::uint64_t seed = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  const std::int64_t cap = Capacity(config);

  // Random reservation vector: 3..8 clients, 60-90% of capacity reserved,
  // random weights.
  Rng rng(seed * 977 + 3);
  const std::size_t n = 3 + rng.NextBelow(6);
  const double reserved_frac = 0.6 + 0.3 * rng.NextDouble();
  std::vector<double> weights(n);
  for (auto& w : weights) w = 0.2 + rng.NextDouble();
  const auto reservations = workload::WeightedShare(
      static_cast<std::int64_t>(static_cast<double>(cap) * reserved_frac),
      weights);

  const std::int64_t local_cap =
      static_cast<std::int64_t>(config.net.LocalCapacityIops());
  for (const auto r : reservations) {
    ClientSpec spec;
    // Stay within the admissible region (local capacity constraint).
    spec.reservation = std::min(r, local_cap);
    spec.demand = spec.reservation + cap / 10;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }

  ExperimentResult result = Experiment(std::move(config)).Run();
  for (std::uint32_t c = 0; c < result.reservations.size(); ++c) {
    EXPECT_GE(result.series.ClientMinPerPeriod(MakeClientId(c)),
              result.reservations[c] * 97 / 100)
        << "seed " << seed << " client " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationInvariant,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Invariant 2/3: work conservation and no systematic over-allocation. With
// aggregate backlog >= capacity all period, total completions stay within
// a few percent of capacity — from below AND above.

class WorkConservation
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(WorkConservation, SaturatedThroughputTracksCapacity) {
  const auto [seed, reserved_frac] = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  const std::int64_t cap = Capacity(config);
  const auto reservations = workload::ZipfGroupShare(
      static_cast<std::int64_t>(static_cast<double>(cap) * reserved_frac), 10,
      5, 0.6);
  for (const auto r : reservations) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  ExperimentResult result = Experiment(std::move(config)).Run();
  const double capacity_kiops = static_cast<double>(cap) / 1e3;
  EXPECT_GT(result.total_kiops, capacity_kiops * 0.95);
  EXPECT_LT(result.total_kiops, capacity_kiops * 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    FractionsAndSeeds, WorkConservation,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0.5, 0.7, 0.9)));

// ---------------------------------------------------------------------------
// Invariant 3b: work conservation under insufficient demand — idle
// reservations are recycled to hungry clients (token conversion).

class ConversionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConversionProperty, IdleReservationIsRecycled) {
  const std::uint64_t seed = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  const std::int64_t cap = Capacity(config);
  const double config_local_iops_ = config.net.LocalCapacityIops();
  Rng rng(seed * 31 + 7);
  const auto reservations =
      workload::UniformShare(cap * 8 / 10, 6);
  const std::size_t idle_count = 1 + rng.NextBelow(3);
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = i < idle_count ? 0 : reservations[i] + cap;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  const std::size_t active = reservations.size() - idle_count;
  ExperimentResult result = Experiment(std::move(config)).Run();
  // Hungry clients recover nearly all surrendered capacity: total reaches
  // 90% of the achievable ceiling — the node capacity or, with few active
  // clients, their combined local capacity C_L (paper §II-C).
  const double ceiling =
      std::min(static_cast<double>(cap),
               static_cast<double>(active) * config_local_iops_);
  EXPECT_GT(result.total_kiops, ceiling / 1e3 * 0.90)
      << "seed " << seed << " idle " << idle_count;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConversionProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Invariant 4: limits hold for every client that has one, under random
// limit placements.

class LimitProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LimitProperty, NoClientExceedsItsLimit) {
  const std::uint64_t seed = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  const std::int64_t cap = Capacity(config);
  Rng rng(seed * 131 + 17);
  const auto reservations = workload::UniformShare(cap / 2, 5);
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    ClientSpec spec;
    spec.reservation = reservations[i];
    spec.demand = cap;  // everyone wants everything
    spec.pattern = workload::RequestPattern::kOpenLoop;
    if (rng.NextBelow(2) == 0) {
      spec.limit = reservations[i] +
                   static_cast<std::int64_t>(rng.NextBelow(
                       static_cast<std::uint64_t>(reservations[i])));
    }
    config.clients.push_back(spec);
  }
  const auto limits = config.clients;
  ExperimentResult result = Experiment(std::move(config)).Run();
  for (std::uint32_t c = 0; c < limits.size(); ++c) {
    if (limits[c].limit <= 0) continue;
    for (std::size_t p = 0; p < result.series.Periods(); ++p) {
      EXPECT_LE(result.series.At(p, MakeClientId(c)),
                limits[c].limit + limits[c].limit / 50 + 64)
          << "seed " << seed << " client " << c << " period " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LimitProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Invariant 6 at the protocol level: after a capacity step the closed loop
// (reports -> Algorithm 1 -> tokens) re-converges and reservations hold.

class AdaptationProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(AdaptationProperty, EstimateTracksCapacityStep) {
  const auto [seed, congestion_starts] = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  config.measure_periods = 14;
  const std::int64_t cap = Capacity(config);
  const auto reservations = workload::UniformShare(cap * 7 / 10, 5);
  for (const auto r : reservations) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }
  // Background flows eat ~20% of the node in [on, off).
  config.background_demand = cap / 5 / 5;  // per node, 5 nodes
  if (congestion_starts) {
    config.background_on = Seconds(8);
    config.background_off = kSimTimeMax;
  } else {
    config.background_on = 0;
    config.background_off = Seconds(8);
  }
  ExperimentResult result = Experiment(std::move(config)).Run();
  ASSERT_GE(result.capacity_trace.size(), 12u);
  const auto early = result.capacity_trace[4].estimate;   // pre-step
  const auto late = result.capacity_trace.back().estimate;
  if (congestion_starts) {
    EXPECT_LT(late, early * 95 / 100) << "estimate failed to drop";
  } else {
    EXPECT_GT(late, early * 105 / 100) << "estimate failed to recover";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDirections, AdaptationProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Scale invariance: the reproduction's claim that shapes survive
// capacity_scale (how the benches offer --scale) — normalised per-client
// shares must agree across scales within a small tolerance.

TEST(ScaleInvariance, NormalisedSharesAgreeAcrossScales) {
  auto run = [](double scale) {
    ExperimentConfig config;
    config.mode = Mode::kHaechi;
    config.net.capacity_scale = scale;
    config.warmup = Seconds(1);
    config.measure_periods = 4;
    config.records = 256;
    config.qos.token_batch =
        std::max<std::int64_t>(10, static_cast<std::int64_t>(1000 * scale));
    const auto cap = Capacity(config);
    const auto reservations = workload::ZipfGroupShare(cap * 9 / 10, 10, 5,
                                                       0.6);
    for (const auto r : reservations) {
      ClientSpec spec;
      spec.reservation = r;
      spec.demand = r + cap / 10;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    ExperimentResult result = Experiment(std::move(config)).Run();
    std::vector<double> shares(10);
    const auto total = result.series.Total();
    for (std::uint32_t c = 0; c < 10; ++c) {
      shares[c] = static_cast<double>(
                      result.series.ClientTotal(MakeClientId(c))) /
                  static_cast<double>(total);
    }
    return shares;
  };
  const auto small = run(0.02);
  const auto large = run(0.08);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_NEAR(small[c], large[c], 0.02) << "client " << c;
  }
}

// ---------------------------------------------------------------------------
// Cross-cutting: the whole protocol is deterministic for a fixed seed and
// sensitive to it otherwise.

TEST(Determinism, SameSeedSameResults) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig config = BaseConfig(seed);
    const std::int64_t cap = Capacity(config);
    const auto reservations = workload::ZipfGroupShare(cap * 4 / 5, 6, 3, 0.6);
    for (const auto r : reservations) {
      ClientSpec spec;
      spec.reservation = r;
      spec.demand = r + cap / 10;
      spec.pattern = workload::RequestPattern::kOpenLoop;
      config.clients.push_back(spec);
    }
    return Experiment(std::move(config)).Run();
  };
  ExperimentResult a = run(5);
  ExperimentResult b = run(5);
  ExperimentResult c = run(6);
  EXPECT_EQ(a.total_kiops, b.total_kiops);
  EXPECT_EQ(a.events_run, b.events_run);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a.series.ClientTotal(MakeClientId(i)),
              b.series.ClientTotal(MakeClientId(i)));
  }
  EXPECT_NE(a.events_run, c.events_run);
}

// ---------------------------------------------------------------------------
// Invariant: token conservation under fault. Whatever the fabric drops,
// delays or duplicates — and even when a client dies mid-period and its
// residual is reclaimed — every closed period's ledger entry satisfies
//   initial_pool + minted - granted == end_pool
// exactly: faults may destroy I/Os, never tokens. Swept over seeds; each
// run injects FAA/report losses plus one mid-run client crash.

class TokenConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenConservation, LedgerBalancesEveryPeriodUnderFaults) {
  const std::uint64_t seed = GetParam();
  ExperimentConfig config = BaseConfig(seed);
  config.measure_periods = 5;
  config.qos.report_lease_intervals = 8;
  const std::int64_t cap = Capacity(config);
  for (const auto r : workload::UniformShare(cap * 3 / 5, 4)) {
    ClientSpec spec;
    spec.reservation = r;
    spec.demand = r + cap / 5;
    spec.pattern = workload::RequestPattern::kOpenLoop;
    config.clients.push_back(spec);
  }

  config.faults.seed = seed * 31 + 7;
  rdma::FaultRule drop_faa;
  drop_faa.action = rdma::FaultAction::kDrop;
  drop_faa.opcode = rdma::Opcode::kFetchAdd;
  drop_faa.probability = 0.05;
  config.faults.Add(drop_faa);
  rdma::FaultRule drop_report;
  drop_report.action = rdma::FaultAction::kDrop;
  drop_report.opcode = rdma::Opcode::kWrite;
  drop_report.probability = 0.05;
  config.faults.Add(drop_report);

  ExperimentConfig::ClientFault fault;
  fault.client = seed % 4;
  fault.crash_at = Seconds(2) + Millis(400 + 29 * (seed % 8));
  config.client_faults.push_back(fault);

  Experiment experiment(std::move(config));
  ExperimentResult result = experiment.Run();
  EXPECT_GE(result.monitor_stats.lease_expirations, 1u);

  const auto& ledger = experiment.monitor()->ledger();
  ASSERT_GT(ledger.size(), 2u);
  std::int64_t reclaimed_total = 0;
  // The newest entry is still accumulating when the run stops; every
  // earlier one is closed and must balance exactly.
  for (std::size_t i = 0; i + 1 < ledger.size(); ++i) {
    const auto& entry = ledger[i];
    EXPECT_EQ(entry.initial_pool + entry.minted - entry.granted,
              entry.end_pool)
        << "seed " << seed << " period " << entry.period;
    if (entry.dispatched <= entry.capacity) {
      EXPECT_EQ(entry.dispatched + entry.initial_pool, entry.capacity)
          << "seed " << seed << " period " << entry.period;
    }
    reclaimed_total += entry.reclaimed;
  }
  // Reclaimed residuals are part of `minted`, and the stats counter agrees
  // with the ledger column.
  EXPECT_EQ(reclaimed_total, result.monitor_stats.reclaimed_tokens);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenConservation,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace haechi
