// Unit tests for admission control (paper §II-C, Definition 2).
#include <gtest/gtest.h>

#include "core/admission.hpp"

namespace haechi::core {
namespace {

// Paper's profiled capacities, tokens per 1 s period.
constexpr std::int64_t kAggregate = 1'570'000;  // C_G * T
constexpr std::int64_t kLocal = 400'000;        // C_L * T

TEST(Admission, AcceptsWithinBothConstraints) {
  AdmissionController adm(kAggregate, kLocal);
  EXPECT_TRUE(adm.Admit(MakeClientId(0), 300'000).ok());
  EXPECT_TRUE(adm.Admit(MakeClientId(1), 400'000).ok());
  EXPECT_EQ(adm.TotalReserved(), 700'000);
  EXPECT_EQ(adm.AdmittedCount(), 2u);
  EXPECT_TRUE(adm.IsAdmitted(MakeClientId(0)));
}

TEST(Admission, RejectsLocalCapacityViolation) {
  // Paper: a single client can never exceed C_L = 400 KIOPS, so a larger
  // reservation is unsatisfiable even on an idle node.
  AdmissionController adm(kAggregate, kLocal);
  const Status s = adm.Admit(MakeClientId(0), 400'001);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("local"), std::string::npos);
  EXPECT_EQ(adm.AdmittedCount(), 0u);
}

TEST(Admission, RejectsAggregateCapacityViolation) {
  AdmissionController adm(kAggregate, kLocal);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(adm.Admit(MakeClientId(i), 390'000).ok());
  }
  // 4 x 390K = 1560K; 11K headroom left.
  const Status s = adm.Admit(MakeClientId(4), 12'000);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("aggregate"), std::string::npos);
  EXPECT_TRUE(adm.Admit(MakeClientId(4), 10'000).ok());
}

TEST(Admission, ExactFitIsAdmitted) {
  AdmissionController adm(1000, 1000);
  EXPECT_TRUE(adm.Admit(MakeClientId(0), 1000).ok());
  EXPECT_FALSE(adm.Admit(MakeClientId(1), 1).ok());
}

TEST(Admission, ZeroReservationAlwaysFits) {
  AdmissionController adm(1000, 1000);
  EXPECT_TRUE(adm.Admit(MakeClientId(0), 1000).ok());
  EXPECT_TRUE(adm.Admit(MakeClientId(1), 0).ok());  // best-effort client
}

TEST(Admission, RejectsDuplicateAdmission) {
  AdmissionController adm(kAggregate, kLocal);
  ASSERT_TRUE(adm.Admit(MakeClientId(0), 100).ok());
  EXPECT_EQ(adm.Admit(MakeClientId(0), 100).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Admission, RejectsNegativeReservation) {
  AdmissionController adm(kAggregate, kLocal);
  EXPECT_EQ(adm.Admit(MakeClientId(0), -5).code(),
            StatusCode::kInvalidArgument);
}

TEST(Admission, ReleaseFreesCapacity) {
  AdmissionController adm(1000, 1000);
  ASSERT_TRUE(adm.Admit(MakeClientId(0), 800).ok());
  EXPECT_FALSE(adm.Admit(MakeClientId(1), 300).ok());
  ASSERT_TRUE(adm.Release(MakeClientId(0)).ok());
  EXPECT_EQ(adm.TotalReserved(), 0);
  EXPECT_FALSE(adm.IsAdmitted(MakeClientId(0)));
  EXPECT_TRUE(adm.Admit(MakeClientId(1), 300).ok());
}

TEST(Admission, ReleaseUnknownClientFails) {
  AdmissionController adm(1000, 1000);
  EXPECT_EQ(adm.Release(MakeClientId(9)).code(), StatusCode::kNotFound);
}

TEST(Admission, UpdateGrowsAndShrinks) {
  AdmissionController adm(1000, 500);
  ASSERT_TRUE(adm.Admit(MakeClientId(0), 400).ok());
  ASSERT_TRUE(adm.Admit(MakeClientId(1), 400).ok());
  // Growing client 0 to 500 fits locally but not in aggregate.
  EXPECT_FALSE(adm.Update(MakeClientId(0), 700).ok());   // local violation
  EXPECT_FALSE(adm.Update(MakeClientId(0), 601).ok());   // local violation
  EXPECT_TRUE(adm.Update(MakeClientId(0), 500).ok());
  EXPECT_EQ(adm.TotalReserved(), 900);
  EXPECT_TRUE(adm.Update(MakeClientId(0), 100).ok());
  EXPECT_EQ(adm.TotalReserved(), 500);
  EXPECT_EQ(adm.Update(MakeClientId(5), 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(adm.Update(MakeClientId(0), -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(Admission, PaperExample2Shape) {
  // Example 2 from the paper: C_G=100, C_L=50; R_1=40, R_2..5=10 each.
  // All are admitted (sum 80 <= 100, each <= 50) — the example's point is
  // that the *runtime* local constraint can still be violated later, which
  // admission alone cannot prevent.
  AdmissionController adm(100, 50);
  EXPECT_TRUE(adm.Admit(MakeClientId(1), 40).ok());
  for (int i = 2; i <= 5; ++i) {
    EXPECT_TRUE(adm.Admit(MakeClientId(i), 10).ok());
  }
  EXPECT_EQ(adm.TotalReserved(), 80);
}

}  // namespace
}  // namespace haechi::core
