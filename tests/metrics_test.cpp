// MetricsRegistry snapshot edge cases: an empty histogram's quantile rows,
// delta semantics across snapshots with no writes in between, and
// last-write-wins gauge overwrites.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace haechi::obs {
namespace {

using Row = MetricsRegistry::SnapshotRow;

const Row* FindRow(const std::vector<Row>& rows, std::uint32_t period,
                   const std::string& name, const std::string& kind) {
  const auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) {
    return r.period == period && r.name == name && r.kind == kind;
  });
  return it == rows.end() ? nullptr : &*it;
}

TEST(Metrics, EmptyHistogramSnapshotsAllZeroQuantiles) {
  MetricsRegistry metrics;
  metrics.Histogram("io.latency_ns");  // registered, never recorded
  metrics.SnapshotPeriod(1);

  for (const char* kind : {"histogram_count", "histogram_p50",
                           "histogram_p99", "histogram_max"}) {
    const Row* row = FindRow(metrics.snapshots(), 1, "io.latency_ns", kind);
    ASSERT_NE(row, nullptr) << kind;
    EXPECT_EQ(row->value, 0.0) << kind;
    EXPECT_EQ(row->delta, 0.0) << kind;
  }
}

TEST(Metrics, SnapshotWithoutWritesYieldsZeroDeltas) {
  MetricsRegistry metrics;
  metrics.Add("engine.faa_ops", 7);
  metrics.Set("monitor.xi_global", 42.5);
  metrics.Record("io.latency_ns", 1000);
  metrics.SnapshotPeriod(1);
  metrics.SnapshotPeriod(2);  // nothing written in between

  const Row* first = FindRow(metrics.snapshots(), 1, "engine.faa_ops",
                             "counter");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 7.0);
  EXPECT_EQ(first->delta, 7.0);  // first snapshot measures from zero

  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, std::string>>{
           {"engine.faa_ops", "counter"},
           {"monitor.xi_global", "gauge"},
           {"io.latency_ns", "histogram_count"},
           {"io.latency_ns", "histogram_p50"}}) {
    const Row* second = FindRow(metrics.snapshots(), 2, name, kind);
    ASSERT_NE(second, nullptr) << kind << ":" << name;
    const Row* before = FindRow(metrics.snapshots(), 1, name, kind);
    ASSERT_NE(before, nullptr);
    EXPECT_EQ(second->value, before->value) << kind << ":" << name;
    EXPECT_EQ(second->delta, 0.0) << kind << ":" << name;
  }
}

TEST(Metrics, GaugeOverwriteKeepsLastValueAndDeltaOfTheDifference) {
  MetricsRegistry metrics;
  metrics.Set("monitor.capacity_estimate", 1000.0);
  metrics.SnapshotPeriod(1);
  metrics.Set("monitor.capacity_estimate", 1500.0);
  metrics.Set("monitor.capacity_estimate", 1200.0);  // last write wins
  metrics.SnapshotPeriod(2);

  EXPECT_EQ(metrics.GaugeValue("monitor.capacity_estimate"), 1200.0);
  const Row* row = FindRow(metrics.snapshots(), 2,
                           "monitor.capacity_estimate", "gauge");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->value, 1200.0);
  EXPECT_EQ(row->delta, 200.0);  // vs the 1000 captured at period 1
}

}  // namespace
}  // namespace haechi::obs
