// Tests for the experiment harness itself and the profiling helper —
// the plumbing every bench and example relies on.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/profiling.hpp"

namespace haechi::harness {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.net.capacity_scale = 0.02;
  config.warmup = Millis(500);
  config.measure_periods = 2;
  config.records = 128;
  config.qos.token_batch = 50;
  return config;
}

TEST(Harness, UniformClientsHelper) {
  const auto specs =
      UniformClients(4, 100, 200, workload::RequestPattern::kBurst);
  ASSERT_EQ(specs.size(), 4u);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.reservation, 100);
    EXPECT_EQ(spec.demand, 200);
    EXPECT_EQ(spec.pattern, workload::RequestPattern::kBurst);
    EXPECT_EQ(spec.limit, 0);
  }
}

TEST(Harness, SeriesHasOneRowPerMeasuredPeriod) {
  ExperimentConfig config = TinyConfig();
  config.mode = Mode::kBare;
  config.clients = UniformClients(
      2, 0, static_cast<std::int64_t>(config.net.GlobalCapacityIops()),
      workload::RequestPattern::kBurst);
  ExperimentResult r = Experiment(std::move(config)).Run();
  EXPECT_EQ(r.series.Periods(), 2u);
  EXPECT_EQ(r.series.Clients(), 2u);
  EXPECT_GT(r.series.Total(), 0);
  EXPECT_GT(r.events_run, 0u);
}

TEST(Harness, LatencyRecordedOnlyAfterWarmup) {
  ExperimentConfig config = TinyConfig();
  config.mode = Mode::kBare;
  config.clients = UniformClients(1, 0, 1000,
                                  workload::RequestPattern::kConstantRate);
  ExperimentResult r = Experiment(std::move(config)).Run();
  // 2 measured periods at 1000/period; warm-up samples excluded.
  EXPECT_LE(r.latency.Count(), 2100u);
  EXPECT_GT(r.latency.Count(), 1800u);
  EXPECT_GT(r.latency.Mean(), 0.0);
}

TEST(Harness, ResultCarriesEngineAndMonitorStats) {
  ExperimentConfig config = TinyConfig();
  config.mode = Mode::kHaechi;
  const auto cap = static_cast<std::int64_t>(config.net.GlobalCapacityIops());
  ClientSpec spec;
  spec.reservation = cap / 5;
  spec.demand = cap / 4;
  spec.pattern = workload::RequestPattern::kOpenLoop;
  config.clients = {spec, spec};
  ExperimentResult r = Experiment(std::move(config)).Run();
  ASSERT_EQ(r.engine_stats.size(), 2u);
  EXPECT_GT(r.engine_stats[0].completed_total, 0);
  EXPECT_GE(r.monitor_stats.periods, 2u);
  EXPECT_EQ(r.reservations, (std::vector<std::int64_t>{cap / 5, cap / 5}));
}

TEST(Harness, TwoSidedModeServesRpcs) {
  ExperimentConfig config = TinyConfig();
  config.mode = Mode::kBare;
  config.io_path = IoPath::kTwoSided;
  config.clients = UniformClients(
      2, 0, static_cast<std::int64_t>(config.net.TwoSidedCapacityIops()),
      workload::RequestPattern::kBurst);
  Experiment exp(std::move(config));
  ExperimentResult r = exp.Run();
  EXPECT_GT(r.total_kiops, 0.0);
  EXPECT_GT(exp.server().RpcsServed(), 0u);
}

TEST(Harness, CopyPayloadsValidatesRealData) {
  ExperimentConfig config = TinyConfig();
  config.mode = Mode::kBare;
  config.copy_payloads = true;
  config.clients = UniformClients(1, 0, 500,
                                  workload::RequestPattern::kConstantRate);
  // KvClient validation is off by default, but the seqlock check runs on
  // every GET; a clean run proves frames stayed consistent.
  ExperimentResult r = Experiment(std::move(config)).Run();
  EXPECT_GT(r.series.Total(), 900);
}

TEST(Harness, BackgroundTrafficReducesForegroundShare) {
  auto run = [](std::int64_t bg_demand) {
    ExperimentConfig config = TinyConfig();
    config.measure_periods = 3;
    config.mode = Mode::kBare;
    const auto cap =
        static_cast<std::int64_t>(config.net.GlobalCapacityIops());
    config.clients = UniformClients(4, 0, cap,
                                    workload::RequestPattern::kBurst);
    config.background_demand = bg_demand;
    return Experiment(std::move(config)).Run().total_kiops;
  };
  const double quiet = run(0);
  ExperimentConfig probe = TinyConfig();
  const auto cap =
      static_cast<std::int64_t>(probe.net.GlobalCapacityIops());
  const double congested = run(cap / 10 / 4);  // ~10% across 4 nodes
  EXPECT_LT(congested, quiet * 0.95);
  EXPECT_GT(congested, quiet * 0.80);
}

TEST(Profiling, MeanMatchesCalibratedCapacity) {
  net::ModelParams params;
  params.capacity_scale = 0.02;
  const ProfileResult result =
      ProfileCapacity(params, /*clients=*/6, /*reps=*/5, /*seed=*/3,
                      /*period=*/Millis(250));
  ASSERT_EQ(result.samples_iops.size(), 5u);
  EXPECT_NEAR(result.mean_iops, params.GlobalCapacityIops(),
              params.GlobalCapacityIops() * 0.03);
  // Deterministic per-seed jitter keeps sigma small but nonzero.
  EXPECT_GE(result.sigma_iops, 0.0);
  EXPECT_LT(result.sigma_iops, params.GlobalCapacityIops() * 0.02);
}

TEST(Profiling, SingleClientProfilesLocalCapacity) {
  net::ModelParams params;
  params.capacity_scale = 0.02;
  const ProfileResult result =
      ProfileCapacity(params, /*clients=*/1, /*reps=*/3, /*seed=*/9,
                      /*period=*/Millis(250));
  EXPECT_NEAR(result.mean_iops, params.LocalCapacityIops(),
              params.LocalCapacityIops() * 0.03);
}

}  // namespace
}  // namespace haechi::harness
